"""LPTV VCO: when the oscillator's sensitivity depends on its own cycle.

A real oscillator's response to a control perturbation depends on *where in
its cycle* the perturbation lands — the impulse sensitivity function v(t)
(Demir et al.; the paper's eq. 22).  The paper's HTM model covers this
(eq. 25) but its experiments use only the time-invariant case.  This example
exercises the general machinery:

* build a loop whose VCO has a sinusoidally rippled ISF;
* compare conversion sidebands with / without the ripple: the ISF adds
  frequency translation beyond the sampler's, with a characteristic
  upper/lower asymmetry;
* verify the closed-form prediction against the engine's exact LPTV
  time-domain simulation.

Run:  python examples/lptv_vco_conversion.py
"""

import numpy as np

from repro import PLL, VCO, design_typical_loop
from repro.pll.closedloop import ClosedLoopHTM
from repro.signals.isf import ImpulseSensitivity
from repro.simulator.transfer_extraction import measure_closed_loop_transfer

OMEGA0 = 2 * np.pi
RATIO = 0.08


def with_ripple(base, ripple, phase=0.7):
    return PLL(
        pfd=base.pfd,
        charge_pump=base.charge_pump,
        filter_impedance=base.filter_impedance,
        vco=VCO(ImpulseSensitivity.sinusoidal(1.0, ripple, OMEGA0, phase=phase)),
    )


def main():
    base = design_typical_loop(omega0=OMEGA0, omega_ug=RATIO * OMEGA0)
    probe = 0.06 * OMEGA0

    print(f"{'ISF ripple':>11} {'|H00|':>8} {'|H(-1,0)|':>10} {'|H(+1,0)|':>10} {'asym':>6}")
    for ripple in (0.0, 0.2, 0.5):
        pll = base if ripple == 0.0 else with_ripple(base, ripple)
        closed = ClosedLoopHTM(pll)
        s = 1j * probe
        h00 = abs(closed.h00(s))
        lower = abs(closed.element(s, -1, 0))
        upper = abs(closed.element(s, 1, 0))
        asym = upper / lower
        print(f"{ripple:>11.1f} {h00:>8.4f} {lower:>10.5f} {upper:>10.5f} {asym:>6.2f}")

    # End-to-end check against the exact LPTV time-domain engine.
    pll = with_ripple(base, 0.5)
    closed = ClosedLoopHTM(pll)
    meas = measure_closed_loop_transfer(
        pll, probe, measure_cycles=250, discard_cycles=200, sideband_orders=(-1, 1)
    )
    print("\nclosed form vs exact LPTV simulation (ripple 0.5):")
    pred = closed.h00(1j * meas.omega)
    print(
        f"  H00     : {abs(meas.response):.5f} measured, {abs(pred):.5f} predicted "
        f"({100 * abs(meas.response - pred) / abs(pred):.3f}% off)"
    )
    for n in (-1, 1):
        p = closed.element(1j * meas.omega, n, 0)
        m = meas.sidebands[n]
        print(
            f"  H({n:+d},0) : {abs(m):.5f} measured, {abs(p):.5f} predicted "
            f"({100 * abs(m - p) / abs(p):.2f}% off)"
        )
    print(
        "\nThe sampler alone fixes the sideband ratio (0.80 here, set by |A| at\n"
        "w -/+ w0); the rippled ISF *moves* it (0.80 -> 1.84) — the signature\n"
        "of oscillator-cycle-dependent sensitivity."
    )


if __name__ == "__main__":
    main()
