"""Frequency-synthesizer noise budget with HTM-shaped transfers.

A 2.4 GHz synthesizer from a 10 MHz crystal (divider folded into the VCO
model, as the paper assumes): compose the output phase noise from the
reference and VCO contributions, including the sampler's noise folding —
every reference harmonic band aliases onto the output with the *same*
closed-loop gain because the PFD's HTM is rank one.

Run:  python examples/frequency_synthesizer_noise.py
"""

import numpy as np

from repro import NoiseAnalysis, design_typical_loop
from repro.pll.noise import flat_psd, one_over_f2_psd

F_REF = 10e6  # 10 MHz crystal
OMEGA0 = 2 * np.pi * F_REF
RATIO = 0.05  # 500 kHz loop bandwidth target


def main():
    pll = design_typical_loop(
        omega0=OMEGA0,
        omega_ug=RATIO * OMEGA0,
        charge_pump_current=500e-6,
        vco_sensitivity=1.0,
    )
    analysis = NoiseAnalysis(pll)

    # Offset-frequency grid from 1 kHz to just below the alias fold.
    offsets_hz = np.logspace(3, np.log10(0.45 * F_REF), 60)
    omega = 2 * np.pi * offsets_hz

    # Crystal: flat far-out phase noise floor; VCO: 1/f^2 slope, both in the
    # phase-in-seconds convention (s^2/Hz).
    ref_psd = flat_psd(1e-30)
    vco_psd = one_over_f2_psd(1e-28, omega_ref=2 * np.pi * 1e6)

    total = analysis.output_psd(
        omega, reference_psd=ref_psd, vco_psd=vco_psd, folded_bands=2
    )
    ref_only = analysis.output_psd(omega, reference_psd=ref_psd, folded_bands=2)
    vco_only = analysis.output_psd(omega, vco_psd=vco_psd)

    print(f"{'offset (Hz)':>12} {'ref part':>11} {'vco part':>11} {'total':>11}")
    for i in range(0, offsets_hz.size, 10):
        print(
            f"{offsets_hz[i]:>12.3g} {ref_only[i]:>11.3e} "
            f"{vco_only[i]:>11.3e} {total[i]:>11.3e}"
        )

    # Crossover: in-band the (folded) reference dominates, out-of-band the VCO.
    dominance = np.where(ref_only > vco_only, "ref", "vco")
    flip = np.argmax(dominance != dominance[0])
    print(f"\nreference/VCO dominance crossover near {offsets_hz[flip]:.3g} Hz")

    sigma = analysis.rms_jitter(omega, total)
    print(f"integrated RMS jitter over the band: {sigma * 1e15:.2f} fs")

    # The folding penalty: each extra pair of aliased reference bands adds
    # the same in-band noise power (rank-one sampling).
    g0 = analysis.folded_reference_gain(omega[:1], bands=0)[0]
    g3 = analysis.folded_reference_gain(omega[:1], bands=3)[0]
    print(f"noise folding penalty for ±3 bands: {g3 / g0:.1f}x (expected 7x)")


if __name__ == "__main__":
    main()
