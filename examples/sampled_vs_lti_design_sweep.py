"""Design-space sweep: margin-aware loop design under sampling.

A designer picks a zero/pole separation for phase margin and a bandwidth
ratio for settling speed.  Classically those axes are independent — the LTI
margin depends only on the separation.  With a sampling PFD they are
coupled: this sweep maps the *effective* phase margin over (separation,
w_UG/w0) and extracts, per separation, the fastest loop that still keeps a
target margin — a design rule classical analysis cannot produce.

Run:  python examples/sampled_vs_lti_design_sweep.py
"""

import numpy as np

from repro import design_typical_loop
from repro.baselines.zdomain import stability_limit_ratio
from repro.pll.design import shape_phase_margin_deg
from repro.pll.margins import compare_margins

OMEGA0 = 2 * np.pi
TARGET_MARGIN_DEG = 45.0


def max_ratio_with_margin(separation, target_deg, lo=0.01, hi=0.30, steps=18):
    """Bisect for the largest w_UG/w0 keeping the effective PM above target."""

    def margin_ok(ratio):
        pll = design_typical_loop(
            omega0=OMEGA0, omega_ug=ratio * OMEGA0, separation=separation
        )
        try:
            return compare_margins(pll).phase_margin_eff_deg >= target_deg
        except Exception:
            return False  # no crossover below the alias fold: definitely not ok

    if not margin_ok(lo):
        return float("nan")
    for _ in range(steps):
        mid = np.sqrt(lo * hi)
        if margin_ok(mid):
            lo = mid
        else:
            hi = mid
    return lo


def main():
    print(
        f"target effective margin: {TARGET_MARGIN_DEG:.0f} deg\n"
        f"{'separation':>11} {'LTI PM':>8} {'max wUG/w0':>11} {'z-limit':>9} "
        f"{'LTI verdict':>12}"
    )
    for separation in (2.5, 4.0, 6.0, 10.0):
        lti_pm = shape_phase_margin_deg(separation)
        max_ratio = max_ratio_with_margin(separation, TARGET_MARGIN_DEG)
        z_limit = stability_limit_ratio(
            lambda r, sep=separation: design_typical_loop(
                omega0=OMEGA0, omega_ug=r * OMEGA0, separation=sep
            )
        )
        verdict = "any speed ok" if lti_pm >= TARGET_MARGIN_DEG else "never ok"
        print(
            f"{separation:>11.1f} {lti_pm:>8.1f} {max_ratio:>11.4f} "
            f"{z_limit:>9.4f} {verdict:>12}"
        )

    print(
        "\nReading: LTI says margin is set by separation alone ('any speed ok'),\n"
        "but the sampled loop caps the usable bandwidth ratio per row — and\n"
        "more LTI margin buys surprisingly little extra speed."
    )


if __name__ == "__main__":
    main()
