"""Fast-loop stability: where the LTI textbook analysis silently fails.

The motivating scenario of the paper's introduction: push the loop bandwidth
toward the reference frequency and watch three models disagree with the
classical one —

* classical LTI analysis reports a comfortable ~62 degree margin at *every*
  speed (it cannot see the sampling);
* the effective open-loop gain lambda(s) shows the margin collapsing;
* the z-domain baseline puts a hard stability boundary near w_UG/w0 = 0.28;
* the behavioural simulator develops a sustained limit cycle past it.

Run:  python examples/fast_loop_stability.py
"""

import numpy as np

from repro import design_typical_loop
from repro.baselines.lti_approx import ClassicalLTIAnalysis
from repro.baselines.zdomain import closed_loop_z, sampled_open_loop, stability_limit_ratio
from repro.pll.margins import compare_margins
from repro.simulator import BehavioralPLLSimulator, SimulationConfig

OMEGA0 = 2 * np.pi


def designer(ratio):
    return design_typical_loop(omega0=OMEGA0, omega_ug=ratio * OMEGA0)


def behavioural_tail_error(ratio, cycles=1200):
    """Residual oscillation after a small kick: ~0 when stable, a limit
    cycle amplitude when the sampled loop has gone unstable."""
    cfg = SimulationConfig(cycles=cycles, frequency_offset=0.001)
    result = BehavioralPLLSimulator(designer(ratio), config=cfg).run()
    return float(np.max(np.abs(result.phase_errors[-100:])))


def main():
    print(f"{'wUG/w0':>8} {'LTI PM':>8} {'eff PM':>8} {'z-stable':>9} {'limit cycle':>12}")
    for ratio in (0.05, 0.10, 0.15, 0.20, 0.25, 0.30):
        lti_pm = ClassicalLTIAnalysis(designer(ratio)).phase_margin_deg()
        try:
            eff_pm = f"{compare_margins(designer(ratio)).phase_margin_eff_deg:8.1f}"
        except Exception:
            eff_pm = "    none"  # no unity crossing left below the alias fold
        z_stable = closed_loop_z(sampled_open_loop(designer(ratio))).is_stable()
        tail = behavioural_tail_error(ratio)
        cycle = f"{tail:.2e}" if tail > 1e-9 else "decays"
        print(f"{ratio:>8.2f} {lti_pm:>8.1f} {eff_pm} {str(z_stable):>9} {cycle:>12}")

    limit = stability_limit_ratio(designer)
    print(f"\nz-domain stability boundary: wUG/w0 = {limit:.4f}")
    print("LTI analysis predicts stability everywhere above — the paper's point.")


if __name__ == "__main__":
    main()
