"""Quickstart: analyse one PLL with the HTM framework in ~40 lines.

Designs the paper's "typical loop" (Fig. 5 characteristic), computes the
classical LTI quantities, then the time-varying effective quantities the
paper introduces, and cross-checks the closed-loop transfer against the
behavioural simulator.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ClosedLoopHTM, compare_margins, design_typical_loop, lti_open_loop
from repro.simulator import measure_closed_loop_transfer

OMEGA0 = 2 * np.pi  # reference: 1 Hz, so the period is 1 second
RATIO = 0.15  # a fast loop: unity gain at 15% of the reference frequency


def main():
    # 1. Design the loop: charge pump + series-RC//C filter + integrating VCO,
    #    zero/pole placed symmetrically about the target crossover.
    pll = design_typical_loop(omega0=OMEGA0, omega_ug=RATIO * OMEGA0)
    print("designed:", pll.describe())

    # 2. Classical continuous-time picture: A(s) of paper eq. (35).
    a = lti_open_loop(pll)
    print(f"|A(j w_UG)| = {abs(a(1j * RATIO * OMEGA0)):.6f}  (unity by design)")

    # 3. Time-varying picture: the effective open-loop gain lambda(s) —
    #    the aliasing sum of eq. (37), evaluated in closed form.
    closed = ClosedLoopHTM(pll)
    s = 1j * RATIO * OMEGA0
    print(f"lambda(j w_UG) = {closed.effective_gain(s):.4f}  vs  A = {a(s):.4f}")

    # 4. Margins: LTI analysis vs the effective (true) margins.
    margins = compare_margins(pll)
    print(margins.summary())

    # 5. Closed-loop transfer H00 (eq. 38) and an independent check from the
    #    event-driven behavioural simulator (flip-flop PFD, real pulses).
    probe = 0.1 * OMEGA0
    measured = measure_closed_loop_transfer(
        pll, probe, measure_cycles=200, discard_cycles=150
    )
    predicted = closed.h00(1j * measured.omega)
    err = abs(measured.response - predicted) / abs(predicted)
    print(
        f"H00(j{measured.omega:.3f}): HTM {abs(predicted):.4f}, "
        f"simulated {abs(measured.response):.4f}  (relative error {100 * err:.3f}%)"
    )


if __name__ == "__main__":
    main()
