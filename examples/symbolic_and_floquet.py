"""Symbolic closed forms, Floquet multipliers and reference spurs.

Three extensions layered on the paper's framework, cross-validated live:

1. **Symbolic**: the effective open-loop gain lambda(s) printed as an exact
   finite sum of coth terms (the paper's "symbolic expressions" claim), and
   shown to evaluate identically to the numeric pipeline.
2. **Floquet**: the behavioural engine's one-cycle return map linearised
   numerically; its eigenvalues (Floquet multipliers) coincide with the
   z-domain closed-loop poles — three independent models, one answer.
3. **Spurs**: the deterministic reference spurs a leaky charge pump creates,
   predicted analytically and measured from the transient engine.

Run:  python examples/symbolic_and_floquet.py
"""

import numpy as np

from repro import ChargePump, PLL, design_typical_loop
from repro.baselines.zdomain import closed_loop_z, sampled_open_loop
from repro.pll.closedloop import ClosedLoopHTM
from repro.pll.spurs import measure_reference_spurs, predict_reference_spurs
from repro.simulator.floquet import floquet_multipliers
from repro.symbolic import effective_gain_expression, h00_expression

OMEGA0 = 2 * np.pi
RATIO = 0.1


def main():
    pll = design_typical_loop(omega0=OMEGA0, omega_ug=RATIO * OMEGA0)

    # --- 1. symbolic closed form of lambda(s) -----------------------------
    lam = effective_gain_expression(pll)
    print("lambda(s) =", lam.render())
    s_probe = 1j * 0.13 * OMEGA0
    numeric = ClosedLoopHTM(pll).effective_gain(s_probe)
    symbolic = lam.evaluate({"s": s_probe})
    print(f"  at s = j0.13*w0: symbolic {symbolic:.6f} vs numeric {numeric:.6f}")
    print("  LaTeX:", h00_expression(pll).latex()[:120], "...")

    # --- 2. Floquet multipliers vs z-domain poles --------------------------
    flo = floquet_multipliers(pll)
    z_poles = closed_loop_z(sampled_open_loop(pll)).poles()
    print("\nFloquet multipliers (from the nonlinear engine, linearised):")
    print("  ", np.round(np.sort_complex(flo.multipliers), 5))
    print("z-domain closed-loop poles (impulse-invariant model):")
    print("  ", np.round(np.sort_complex(z_poles), 5))
    print(
        f"stable: {flo.is_stable}; dominant mode decays in "
        f"{flo.decay_time_constant_cycles():.1f} cycles"
    )

    # --- 3. reference spurs from charge-pump leakage -----------------------
    leaky = PLL(
        pfd=pll.pfd,
        charge_pump=ChargePump(pll.charge_pump.current, leakage=1e-6),
        filter_impedance=pll.filter_impedance,
        vco=pll.vco,
    )
    pred = predict_reference_spurs(leaky, harmonics=3)
    meas = measure_reference_spurs(leaky, harmonics=3)
    carrier = leaky.vco.f0  # carrier consistent with the normalised loop
    print(f"\nleakage 1 uA -> static phase offset {pred.static_phase_offset:.3e} s")
    print(f"{'k':>3} {'|pred|':>11} {'|measured|':>11} {'spur (dBc)':>11}")
    for k in (1, 2, 3):
        print(
            f"{k:>3} {abs(pred.harmonics[k]):>11.3e} {abs(meas.harmonics[k]):>11.3e} "
            f"{pred.spur_dbc(k, carrier):>11.1f}"
        )


if __name__ == "__main__":
    main()
