"""The analysis server: asyncio HTTP/JSON front end over the task adapters.

Stdlib-only (``asyncio`` streams + hand-rolled HTTP/1.1) so serving costs
no dependencies.  The request path is deliberately thin — every endpoint
is *parse → fingerprint → cache → batch → encode*:

1. the JSON body's ``design`` dict canonicalizes to the campaign point id
   (the design **fingerprint**);
2. the :class:`~repro.serve.cache.ShardedGridCache` answers repeats
   without computing;
3. misses join the :class:`~repro.serve.batcher.MicroBatcher` — concurrent
   same-fingerprint requests collapse to one underlying evaluation on a
   merged frequency grid, sliced back per request;
4. results stream out through the zero-copy encoder
   (:func:`~repro.serve.protocol.dumps_bytes`).

Admission control is a plain in-flight counter: past ``max_inflight`` the
server answers ``429`` with ``Retry-After`` instead of queueing unbounded
work.  Requests may carry ``deadline_seconds``; a request that cannot
finish in time gets ``504`` (its batch still completes and lands in the
cache, so the retry is cheap).  Stability maps larger than the spill
threshold become background campaign jobs (:mod:`repro.serve.jobs`),
answered ``202`` + job id.

Observability: the expensive compute opens a ``serve.request/<endpoint>``
span *in the worker thread* (the obs span stack is thread-local, so spans
must never straddle an ``await`` on the event loop); the async layer
records per-endpoint request counters and latency histograms, and 500s
raise ``serve.request_failure`` health events.
"""

from __future__ import annotations

import asyncio
import dataclasses
import math
import os
import time
import urllib.parse
from pathlib import Path
from typing import Any, Awaitable, Callable, Mapping

import numpy as np

from repro._errors import ReproError, ValidationError
from repro.campaign import tasks as campaign_tasks
from repro.campaign.executor import run_campaign
from repro.campaign.spec import CampaignSpec, GridSpace
from repro.campaign.store import ResultStore
from repro.obs import health as obs_health
from repro.obs import manifest as obs_manifest
from repro.obs import profile as obs_profile
from repro.obs import prom as obs_prom
from repro.obs import slo as obs_slo
from repro.obs import spans as obs
from repro.obs import trace as obs_trace
from repro.obs.registry import histogram_quantiles
from repro.pll.closedloop import ClosedLoopHTM
from repro.serve.batcher import MicroBatcher
from repro.serve.cache import ShardedGridCache
from repro.serve.jobs import JobManager
from repro.serve.protocol import (
    MAX_BODY_BYTES,
    ServeError,
    design_fingerprint,
    design_params,
    dumps_bytes,
    error_body,
    grid_from_request,
    parse_json_body,
)

__all__ = ["AnalysisServer", "ServerConfig", "ServerStats"]

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclasses.dataclass
class ServerConfig:
    """Every serving knob, recorded verbatim in the server manifest."""

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 4  # compute thread-pool width
    max_inflight: int = 64  # admission bound -> 429 past this
    retry_after: float = 1.0  # seconds clients should back off on 429
    cache_shards: int = 4
    cache_entries: int = 256  # per shard
    cache_bytes: int | None = None  # total across shards
    cache_ttl: float | None = None  # seconds
    batch_window: float = 0.005  # micro-batching window, seconds
    max_batch: int = 64
    spill_threshold: int = 64  # stability-map cells beyond which -> job
    jobs_dir: str | None = None  # None disables the job spill path
    job_workers: int = 1
    job_autostart: bool = True  # False: only prepare store+lease plan for
    #   an external `repro campaign worker` fleet on a shared jobs dir
    job_lease_batch: int | None = None  # lease-plan batch size (None=default)
    manifest_path: str | None = None  # None -> <jobs_dir>/server.manifest.json
    trace_log: str | None = None  # span-event JSONL; enables trace recording
    profile: bool = False  # always-on statistical sampling profiler
    profile_hz: int = 97  # sampling rate for the always-on profiler
    profile_log: str | None = None  # profile shard (.json file or directory)
    slo_spec: str | None = None  # SLO definitions JSON; None -> serve defaults
    slo_interval: float = 10.0  # seconds between SLO burn-rate samples

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)


class ServerStats:
    """Request-level counters for ``/v1/statz`` (obs-independent)."""

    __slots__ = (
        "started",
        "requests",
        "rejected",
        "timeouts",
        "failures",
        "cache_hits",
        "by_endpoint",
        "by_status",
        "by_id_source",
    )

    def __init__(self) -> None:
        self.started = time.monotonic()
        self.requests = 0
        self.rejected = 0
        self.timeouts = 0
        self.failures = 0
        self.cache_hits = 0
        self.by_endpoint: dict[str, int] = {}
        self.by_status: dict[int, int] = {}
        self.by_id_source: dict[str, int] = {}

    def record(self, endpoint: str, status: int) -> None:
        self.requests += 1
        self.by_endpoint[endpoint] = self.by_endpoint.get(endpoint, 0) + 1
        self.by_status[status] = self.by_status.get(status, 0) + 1

    def record_id_source(self, source: str) -> None:
        self.by_id_source[source] = self.by_id_source.get(source, 0) + 1

    def to_dict(self) -> dict[str, Any]:
        return {
            "uptime_seconds": time.monotonic() - self.started,
            "requests": self.requests,
            "rejected": self.rejected,
            "timeouts": self.timeouts,
            "failures": self.failures,
            "cache_hits": self.cache_hits,
            "by_endpoint": dict(self.by_endpoint),
            "by_status": {str(k): v for k, v in self.by_status.items()},
            "by_id_source": dict(self.by_id_source),
        }


class AnalysisServer:
    """One asyncio server instance; create, ``await start()``, ``serve()``.

    Lifecycle::

        server = AnalysisServer(ServerConfig(port=0))
        await server.start()          # binds; server.port is now real
        await server.serve_forever()  # or: await server.stop()
    """

    def __init__(self, config: ServerConfig | None = None):
        self.config = config or ServerConfig()
        self.stats = ServerStats()
        self.cache = ShardedGridCache(
            shards=self.config.cache_shards,
            maxsize=self.config.cache_entries,
            max_bytes=self.config.cache_bytes,
            ttl_seconds=self.config.cache_ttl,
        )
        self.batcher = MicroBatcher(
            window=self.config.batch_window, max_batch=self.config.max_batch
        )
        self.jobs: JobManager | None = (
            JobManager(
                self.config.jobs_dir,
                workers=self.config.job_workers,
                autostart=self.config.job_autostart,
                lease_batch=self.config.job_lease_batch,
            )
            if self.config.jobs_dir
            else None
        )
        self._executor = None  # set in start(): ThreadPoolExecutor(workers)
        self._server: asyncio.base_events.Server | None = None
        self._inflight = 0
        self._own_trace_sink = False  # True when start() configured trace_log
        self._own_profiler = False  # True when start() armed the sampler
        self._own_profile_sink = False
        self._profilez_busy = False  # one on-demand capture at a time
        self._env_info: dict[str, Any] = {}  # cached environment_info()
        self._slo_monitor: obs_slo.SLOMonitor | None = None
        self._slo_task: asyncio.Task | None = None

    # -- lifecycle -----------------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`; 0 binds any)."""
        if self._server is None:
            return self.config.port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        from concurrent.futures import ThreadPoolExecutor

        self._executor = ThreadPoolExecutor(
            max_workers=max(int(self.config.workers), 1),
            thread_name_prefix="repro-serve",
        )
        self.batcher.executor = self._executor
        if self.config.trace_log:
            log = Path(self.config.trace_log)
            if log.suffix not in (".jsonl", ".json"):
                log = log.with_suffix(log.suffix + ".jsonl")
            obs_trace.configure_sink(log)
            self._own_trace_sink = True
        # Environment identity is computed once (the git lookup shells out)
        # and merged into every /v1/healthz response.
        self._env_info = obs_manifest.environment_info()
        if self.config.profile or obs_profile.profile_requested():
            if obs_profile.active() is None:
                obs_profile.start(hz=self.config.profile_hz)
                self._own_profiler = True
            if self.config.profile_log and not obs_profile.sink_configured():
                obs_profile.configure_sink(self.config.profile_log)
                self._own_profile_sink = True
        definitions = (
            obs_slo.load_slo_spec(self.config.slo_spec)
            if self.config.slo_spec
            else obs_slo.default_serve_slos()
        )
        self._slo_monitor = obs_slo.SLOMonitor(definitions)
        self._server = await asyncio.start_server(
            self._handle_client, host=self.config.host, port=self.config.port
        )
        self._slo_task = asyncio.get_running_loop().create_task(self._slo_loop())
        self._write_manifest()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._slo_task is not None:
            self._slo_task.cancel()
            try:
                await self._slo_task
            except asyncio.CancelledError:
                pass
            self._slo_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        if self._own_profiler:
            obs_profile.stop()  # flushes the final shard when a sink is set
            self._own_profiler = False
        if self._own_profile_sink:
            obs_profile.close_sink()
            self._own_profile_sink = False
        if self._own_trace_sink:
            obs_trace.close_sink()
            self._own_trace_sink = False

    def _write_manifest(self) -> None:
        """Record the serving configuration + environment, like a run manifest."""
        path = self.config.manifest_path
        if path is None and self.config.jobs_dir:
            path = str(Path(self.config.jobs_dir) / "server.manifest.json")
        if not path:
            return
        manifest = {
            "kind": "server_manifest",
            "created": time.time(),
            "host": self.config.host,
            "port": self.port,
            "config": self.config.to_dict(),
            **obs_manifest.environment_info(),
        }
        obs_manifest.write_manifest(path, manifest)

    # -- HTTP plumbing -------------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                try:
                    method, target, version = (
                        request_line.decode("latin-1").strip().split(" ", 2)
                    )
                except ValueError:
                    await self._respond(
                        writer,
                        400,
                        error_body(400, "bad_request_line", "unparseable request line"),
                        {"X-Request-Id": self._request_id(None)},
                    )
                    break
                headers: dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                request_id = self._request_id(headers)
                try:
                    length = int(headers.get("content-length") or 0)
                except ValueError:
                    length = -1
                if length < 0 or length > MAX_BODY_BYTES:
                    # Drain the oversized body (bounded) before answering:
                    # closing with unread data pending turns into a TCP RST
                    # and the client never sees the 413.
                    if 0 < length <= (64 << 20):
                        try:
                            await reader.readexactly(length)
                        except Exception:
                            pass
                    await self._respond(
                        writer,
                        413,
                        error_body(413, "body_too_large", f"body must be <= {MAX_BODY_BYTES} bytes"),
                        {"X-Request-Id": request_id},
                    )
                    break
                body = await reader.readexactly(length) if length else b""
                status, payload, extra = await self._dispatch(
                    method, target, body, headers, request_id
                )
                keep_alive = (
                    version == "HTTP/1.1"
                    and headers.get("connection", "").lower() != "close"
                )
                await self._respond(writer, status, payload, extra, keep_alive)
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
        extra_headers: Mapping[str, str] | None = None,
        keep_alive: bool = False,
    ) -> None:
        body = payload if isinstance(payload, bytes) else dumps_bytes(payload)
        extra = dict(extra_headers or {})
        content_type = extra.pop("Content-Type", "application/json")
        head = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in extra.items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()

    def _request_id(self, headers: Mapping[str, str] | None) -> str:
        """Echo the client-supplied ``X-Request-Id`` or mint one.

        Every response — including the early 400/413 and the 429/504/500
        error paths — carries the id back, and ``/v1/statz`` counts how
        many requests brought their own versus got one generated.
        """
        rid = (headers or {}).get("x-request-id", "").strip()
        if rid:
            self.stats.record_id_source("client")
            return rid
        self.stats.record_id_source("generated")
        return os.urandom(8).hex()

    async def _dispatch(
        self,
        method: str,
        target: str,
        raw: bytes,
        headers: Mapping[str, str] | None = None,
        request_id: str | None = None,
    ) -> tuple[int, Any, dict[str, str]]:
        """Route + run one request; always returns a JSON-able triple."""
        headers = headers or {}
        if request_id is None:
            request_id = self._request_id(headers)
        parsed = urllib.parse.urlsplit(target)
        path = parsed.path.rstrip("/") or "/"
        query = dict(urllib.parse.parse_qsl(parsed.query))
        endpoint = path.split("/")[-1] if path != "/" else "root"
        if path.startswith("/v1/jobs/"):
            endpoint = "jobs"
        # Server-side span context: a child of the client's traceparent when
        # one was sent, else a fresh root when span events are being logged.
        client_ctx = obs_trace.parse_traceparent(headers.get("traceparent"))
        if client_ctx is not None:
            ctx = client_ctx.child()
        elif obs_trace.sink_configured():
            ctx = obs_trace.new_context()
        else:
            ctx = None
        start = time.perf_counter()
        wall0 = time.time() if ctx is not None else 0.0
        status, payload, extra = await self._route(method, path, query, raw, ctx)
        elapsed = time.perf_counter() - start
        extra = dict(extra)
        extra["X-Request-Id"] = request_id
        if ctx is not None:
            extra.setdefault("traceparent", ctx.traceparent())
            obs_trace.record_event(
                f"serve.request/{endpoint}",
                ctx,
                wall0,
                time.time(),
                status=status,
                request_id=request_id,
            )
        self.stats.record(endpoint, status)
        if obs.enabled():
            obs.add(f"serve.requests.{endpoint}")
            obs.observe(f"serve.latency.{endpoint}", elapsed)
            if status >= 500:
                with obs_trace.activate(ctx):
                    obs.health_event(
                        "serve.request_failure",
                        1.0,
                        0.0,
                        severity="error",
                        message=f"{method} {path} -> {status}",
                    )
        return status, payload, extra

    async def _route(
        self,
        method: str,
        path: str,
        query: dict[str, str],
        raw: bytes,
        ctx: obs_trace.TraceContext | None = None,
    ) -> tuple[int, Any, dict[str, str]]:
        try:
            if method == "GET":
                if path == "/v1/healthz":
                    return 200, self._healthz(), {}
                if path == "/v1/statz":
                    return 200, self._statz(), {}
                if path == "/v1/sloz":
                    return 200, self._sloz(), {}
                if path == "/v1/profilez":
                    return await self._profilez(query)
                if path == "/v1/metricsz":
                    return (
                        200,
                        self._metricsz(),
                        {"Content-Type": "text/plain; version=0.0.4; charset=utf-8"},
                    )
                if path.startswith("/v1/jobs/"):
                    job_id = path[len("/v1/jobs/") :]
                    return 200, await self._job_status(job_id, query), {}
                raise ServeError(404, "unknown_route", f"no such resource: {path}")
            if method != "POST":
                raise ServeError(405, "method_not_allowed", f"unsupported method {method}")
            handlers: dict[
                str,
                Callable[[dict[str, Any], obs_trace.TraceContext | None], Awaitable[Any]],
            ] = {
                "/v1/margins": self._margins,
                "/v1/noise": self._noise,
                "/v1/response": self._response,
                "/v1/stability_map": self._stability_map,
            }
            handler = handlers.get(path)
            if handler is None:
                raise ServeError(404, "unknown_route", f"no such resource: {path}")
            if self._inflight >= self.config.max_inflight:
                self.stats.rejected += 1
                if obs.enabled():
                    obs.add("serve.rejected")
                raise ServeError(
                    429,
                    "overloaded",
                    f"{self._inflight} requests in flight (limit {self.config.max_inflight})",
                    retry_after=self.config.retry_after,
                )
            body = parse_json_body(raw)
            deadline = body.get("deadline_seconds")
            self._inflight += 1
            try:
                if deadline is not None:
                    result = await asyncio.wait_for(
                        handler(body, ctx), timeout=float(deadline)
                    )
                else:
                    result = await handler(body, ctx)
            finally:
                self._inflight -= 1
            if isinstance(result, tuple):  # (status, payload) handler override
                return result[0], result[1], {}
            return 200, result, {}
        except ServeError as exc:
            extra = {}
            if exc.retry_after is not None:
                extra["Retry-After"] = f"{exc.retry_after:g}"
            return exc.status, exc.body(), extra
        except asyncio.TimeoutError:
            self.stats.timeouts += 1
            return 504, error_body(504, "deadline_exceeded", "request deadline exceeded"), {}
        except ReproError as exc:
            return 400, error_body(400, "invalid_request", str(exc)), {}
        except Exception as exc:  # noqa: BLE001 - the 500 boundary
            self.stats.failures += 1
            return (
                500,
                error_body(500, "internal_error", f"{type(exc).__name__}: {exc}"),
                {},
            )

    # -- GET endpoints -------------------------------------------------------------

    def _healthz(self) -> dict[str, Any]:
        counts = obs_health.severity_counts(obs.snapshot()) if obs.enabled() else {}
        degraded = bool(counts.get("error") or counts.get("fatal"))
        env = self._env_info
        return {
            "status": "degraded" if degraded else "ok",
            "uptime_seconds": time.monotonic() - self.stats.started,
            "inflight": self._inflight,
            "health_events": counts,
            "version": env.get("package_version"),
            "git_sha": env.get("git_sha"),
            "python": env.get("python"),
            "numpy": env.get("numpy"),
        }

    # -- SLO burn-rate monitoring ----------------------------------------------------

    def _slo_sample_once(self) -> None:
        """Feed one cumulative-counter sample to the SLO monitor."""
        monitor = self._slo_monitor
        if monitor is None:
            return
        stats = self.stats
        sample: dict[str, Any] = {
            "requests": float(stats.requests),
            "failures": float(stats.failures + stats.timeouts),
            "rejected": float(stats.rejected),
        }
        snap = obs.snapshot() if obs.enabled() else None
        if snap is not None:
            counts = obs_health.severity_counts(snap)
            if counts:
                sample["health"] = counts
        monitor.sample(sample, snapshot=snap)

    async def _slo_loop(self) -> None:
        """Background sampler driving multi-window burn-rate evaluation."""
        interval = max(float(self.config.slo_interval), 0.1)
        while True:
            await asyncio.sleep(interval)
            try:
                self._slo_sample_once()
                monitor = self._slo_monitor
                if monitor is not None:
                    monitor.evaluate()  # emits obs.slo.burn events on breach
            except Exception:
                pass  # monitoring must never take down the server

    def _sloz(self) -> dict[str, Any]:
        if self._slo_monitor is None:
            raise ServeError(503, "slo_disabled", "server started without SLOs")
        self._slo_sample_once()
        return self._slo_monitor.evaluate()

    # -- on-demand profile capture ---------------------------------------------------

    async def _profilez(self, query: dict[str, str]) -> tuple[int, Any, dict[str, str]]:
        """Capture ``seconds`` of stack samples and return collapsed stacks.

        With the always-on profiler running this is a pure snapshot delta;
        otherwise a temporary sampler is armed for the window (thread mode —
        the capture runs on the compute pool, not the main thread).
        """
        try:
            seconds = float(query.get("seconds", "5"))
            hz = int(query.get("hz", str(self.config.profile_hz)))
        except ValueError:
            raise ServeError(
                400, "invalid_profile_params", "seconds and hz must be numeric"
            ) from None
        if not 0 < seconds <= 60:
            raise ServeError(
                400, "invalid_profile_params", "seconds must be in (0, 60]"
            )
        if self._profilez_busy:
            raise ServeError(
                429,
                "profile_busy",
                "a profile capture is already running",
                retry_after=seconds,
            )
        self._profilez_busy = True
        try:
            loop = asyncio.get_running_loop()
            profile = await loop.run_in_executor(
                self._executor, lambda: obs_profile.capture(seconds, hz=hz)
            )
        finally:
            self._profilez_busy = False
        if query.get("format") == "json":
            return 200, profile, {}
        return (
            200,
            obs_profile.to_collapsed(profile).encode("utf-8"),
            {"Content-Type": "text/plain; charset=utf-8"},
        )

    def _statz(self) -> dict[str, Any]:
        out = {
            "server": self.stats.to_dict(),
            "batcher": self.batcher.stats.to_dict(),
            "cache": self.cache.stats(),
            "config": self.config.to_dict(),
        }
        if obs.enabled():
            quantiles: dict[str, dict[str, float]] = {}
            snap = obs.snapshot()
            for entry in (snap.get("histograms") or {}).values():
                name = str(entry.get("name", ""))
                if name.startswith("serve.latency."):
                    q = histogram_quantiles(entry)
                    if q:
                        quantiles[name[len("serve.latency.") :]] = q
            out["latency_quantiles"] = quantiles
        if self.jobs is not None:
            out["jobs"] = [
                {k: job.get(k) for k in ("job_id", "running", "complete", "done", "failed", "pending")}
                for job in self.jobs.list_jobs()
            ]
        return out

    def _metricsz(self) -> bytes:
        """The obs registry + server counters in Prometheus text format."""
        lines = [obs_prom.to_prometheus(obs.snapshot()).rstrip("\n")]
        stats = self.stats
        for name, value in (
            ("repro_serve_requests_total", stats.requests),
            ("repro_serve_rejected_total", stats.rejected),
            ("repro_serve_timeouts_total", stats.timeouts),
            ("repro_serve_failures_total", stats.failures),
            ("repro_serve_cache_hits_total", stats.cache_hits),
        ):
            lines.append(f"# TYPE {name} counter")
            lines.append(obs_prom.format_sample(name, {}, float(value)))
        lines.append("# TYPE repro_serve_requests_by_endpoint_total counter")
        for endpoint in sorted(stats.by_endpoint):
            lines.append(
                obs_prom.format_sample(
                    "repro_serve_requests_by_endpoint_total",
                    {"endpoint": endpoint},
                    float(stats.by_endpoint[endpoint]),
                )
            )
        lines.append("# TYPE repro_serve_responses_total counter")
        for status in sorted(stats.by_status):
            lines.append(
                obs_prom.format_sample(
                    "repro_serve_responses_total",
                    {"status": str(status)},
                    float(stats.by_status[status]),
                )
            )
        lines.append("# TYPE repro_serve_requests_by_id_source_total counter")
        for source in sorted(stats.by_id_source):
            lines.append(
                obs_prom.format_sample(
                    "repro_serve_requests_by_id_source_total",
                    {"source": source},
                    float(stats.by_id_source[source]),
                )
            )
        lines.append("# TYPE repro_serve_uptime_seconds gauge")
        lines.append(
            obs_prom.format_sample(
                "repro_serve_uptime_seconds", {}, time.monotonic() - stats.started
            )
        )
        return ("\n".join(lines) + "\n").encode("utf-8")

    async def _job_status(self, job_id: str, query: dict[str, str]) -> dict[str, Any]:
        if self.jobs is None:
            raise ServeError(503, "jobs_disabled", "server started without --jobs-dir")
        if not job_id:
            raise ServeError(404, "unknown_job", "empty job id")
        loop = asyncio.get_running_loop()
        status = await loop.run_in_executor(self._executor, self.jobs.status, job_id)
        if status is None:
            raise ServeError(404, "unknown_job", f"no job {job_id!r}")
        if query.get("results") in ("1", "true", "yes") and status.get("complete"):
            records = await loop.run_in_executor(
                self._executor,
                lambda: ResultStore.open(self.jobs.store_path(job_id)).point_records(),
            )
            status["records"] = records
        return status

    # -- POST endpoints ------------------------------------------------------------

    async def _margins(
        self, body: dict[str, Any], ctx: obs_trace.TraceContext | None = None
    ) -> dict[str, Any]:
        return await self._scalar_endpoint("margins", body, ctx)

    async def _noise(
        self, body: dict[str, Any], ctx: obs_trace.TraceContext | None = None
    ) -> dict[str, Any]:
        return await self._scalar_endpoint("noise_summary", body, ctx, endpoint="noise")

    async def _scalar_endpoint(
        self,
        task_name: str,
        body: dict[str, Any],
        ctx: obs_trace.TraceContext | None = None,
        endpoint: str | None = None,
    ) -> dict[str, Any]:
        """Shared scalar path: one metrics dict per design fingerprint.

        Scalar batching is pure deduplication — every coalesced waiter
        shares the single computed metrics dict.
        """
        endpoint = endpoint or task_name
        params = design_params(body)
        fingerprint = design_fingerprint(params)
        flavor = (endpoint,)
        cached = self.cache.lookup(fingerprint, None, flavor=flavor)
        if cached is not None:
            self.stats.cache_hits += 1
            return self._scalar_payload(params, fingerprint, cached, cached=True)
        task = campaign_tasks.get_task(task_name)
        compute_ctx = ctx.child() if ctx is not None else None

        def compute(_merged: np.ndarray | None) -> dict[str, float]:
            with obs_trace.activate(compute_ctx):
                with obs.span(f"serve.request/{endpoint}", fingerprint=fingerprint):
                    return task(dict(params))

        metrics = await self.batcher.submit(
            (fingerprint, endpoint), None, compute, trace=ctx
        )
        self.cache.store(fingerprint, None, metrics, flavor=flavor)
        return self._scalar_payload(params, fingerprint, metrics, cached=False)

    @staticmethod
    def _scalar_payload(
        params: dict[str, Any],
        fingerprint: str,
        metrics: Mapping[str, float],
        cached: bool,
    ) -> dict[str, Any]:
        return {
            "design": params,
            "fingerprint": fingerprint,
            "metrics": dict(metrics),
            "cached": cached,
        }

    async def _response(
        self, body: dict[str, Any], ctx: obs_trace.TraceContext | None = None
    ) -> dict[str, Any]:
        """Closed-loop baseband frequency response H00(j omega) on a grid.

        The grid endpoint exercises the full micro-batching mechanism:
        concurrent same-design requests are computed once on the merged
        (union) grid, and each response carries exactly the grid it asked
        for — bitwise identical to a serial evaluation.
        """
        params = design_params(body)
        fingerprint = design_fingerprint(params)
        omega0 = float(params.get("omega0", 2 * math.pi))
        grid = grid_from_request(body, omega0)
        omega = grid.omega
        flavor = ("response",)
        cached = self.cache.lookup(fingerprint, omega, flavor=flavor)
        if cached is not None:
            self.stats.cache_hits += 1
            return self._response_payload(params, fingerprint, omega, cached, True)
        compute_ctx = ctx.child() if ctx is not None else None

        def compute(merged: np.ndarray | None) -> np.ndarray:
            assert merged is not None
            with obs_trace.activate(compute_ctx):
                with obs.span(
                    "serve.request/response",
                    fingerprint=fingerprint,
                    points=int(merged.size),
                ):
                    pll = campaign_tasks.design_from_params(params)
                    return ClosedLoopHTM(pll).frequency_response(merged)

        h00 = await self.batcher.submit(
            (fingerprint, "response"), omega, compute, trace=ctx
        )
        self.cache.store(fingerprint, omega, h00, flavor=flavor)
        return self._response_payload(params, fingerprint, omega, h00, False)

    @staticmethod
    def _response_payload(
        params: dict[str, Any],
        fingerprint: str,
        omega: np.ndarray,
        h00: np.ndarray,
        cached: bool,
    ) -> dict[str, Any]:
        return {
            "design": params,
            "fingerprint": fingerprint,
            "points": int(np.asarray(omega).size),
            "omega": omega,
            "h00": h00,
            "cached": cached,
        }

    async def _stability_map(
        self, body: dict[str, Any], ctx: obs_trace.TraceContext | None = None
    ) -> Any:
        """A (separation, ratio) stability map — inline when small, job when big.

        The request's parameter grid *is* a campaign spec; past the spill
        threshold it runs as a background campaign job (202 + job id),
        otherwise inline on the compute pool.
        """
        spec = self._map_spec(body)
        cells = len(spec)
        if cells > self.config.spill_threshold:
            if self.jobs is None:
                raise ServeError(
                    503,
                    "jobs_disabled",
                    f"{cells} cells exceeds the inline limit "
                    f"({self.config.spill_threshold}) and the server has no jobs dir",
                )
            loop = asyncio.get_running_loop()
            job_ctx = ctx.child() if ctx is not None else None
            spill_start = time.time() if ctx is not None else 0.0
            job_id = await loop.run_in_executor(
                self._executor, lambda: self.jobs.submit(spec, trace=job_ctx)
            )
            if ctx is not None:
                obs_trace.record_event(
                    "serve.job.spill",
                    job_ctx,
                    spill_start,
                    time.time(),
                    job_id=job_id,
                    cells=cells,
                )
            if obs.enabled():
                obs.add("serve.jobs.spilled")
            return 202, {
                "job_id": job_id,
                "cells": cells,
                "poll": f"/v1/jobs/{job_id}",
            }
        fingerprint = obs_manifest.spec_fingerprint(spec)
        flavor = ("stability_map",)
        cached = self.cache.lookup(fingerprint, None, flavor=flavor)
        if cached is not None:
            self.stats.cache_hits += 1
            return dict(cached, cached=True)
        compute_ctx = ctx.child() if ctx is not None else None

        def compute(_merged: np.ndarray | None) -> dict[str, Any]:
            with obs_trace.activate(compute_ctx):
                with obs.span("serve.request/stability_map", cells=cells):
                    result = run_campaign(spec, workers=1, trace=compute_ctx)
            return {
                "cells": cells,
                "fingerprint": fingerprint,
                "records": [
                    {
                        "id": r["id"],
                        "params": r["params"],
                        "status": r["status"],
                        "metrics": r.get("metrics"),
                    }
                    for r in result.records
                ],
                "failed": len(result.failed_records),
            }

        payload = await self.batcher.submit(
            (fingerprint, "stability_map"), None, compute, trace=ctx
        )
        self.cache.store(fingerprint, None, payload, flavor=flavor)
        return dict(payload, cached=False)

    def _map_spec(self, body: dict[str, Any]) -> CampaignSpec:
        space = body.get("space")
        if not isinstance(space, Mapping) or not space:
            raise ServeError(
                400,
                "missing_space",
                "stability_map needs a 'space' object of parameter lists "
                "(e.g. {'separation': [...], 'ratio': [...]})",
            )
        defaults = body.get("defaults") or {}
        if not isinstance(defaults, Mapping):
            raise ServeError(400, "invalid_defaults", "'defaults' must be a JSON object")
        try:
            axes = {
                str(name): list(values if isinstance(values, (list, tuple)) else [values])
                for name, values in space.items()
            }
            return CampaignSpec.create(
                name=str(body.get("name", "serve-stability-map")),
                space=GridSpace.of(**axes),
                task=str(body.get("task", "stability_cell")),
                defaults=dict(defaults),
            )
        except ValidationError as exc:
            raise ServeError(400, "invalid_space", str(exc)) from None
