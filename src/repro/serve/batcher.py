"""Cross-request micro-batching: coalesce same-fingerprint work.

The highest-leverage serving optimisation for this workload: analysis
requests are *fingerprint-addressable* (a design's canonical parameters
hash to the campaign point id), and concurrent clients very often ask
about the same design — dashboards refreshing, sweeps fanned out over
HTTP, retries.  Instead of evaluating the same operator stack once per
request, the :class:`MicroBatcher` holds each arriving request for a short
batching window (default 5 ms); everything that lands on the same key in
that window becomes **one** underlying ``evaluate()``/``dense_grid`` call:

* **grid mode** — requests carry frequency grids; the batch leader merges
  them (``np.unique`` of the concatenation: sorted, de-duplicated), the
  compute callable runs once on the merged grid in a worker thread, and
  each waiter gets its slice back via ``searchsorted`` index mapping.  A
  waiter whose grid *is* the merged grid shares the result array directly
  (read-only, zero copy).  Grid evaluation is elementwise across frequency
  points, so merged-grid slices are bitwise identical to a serial
  evaluation of the original grid — asserted by the equivalence tests.
* **scalar mode** (``omega=None``) — pure deduplication: every waiter
  shares the single computed result.

Failure/cancellation semantics: a compute error propagates to every waiter
of that batch (they asked the same question; they get the same answer).  A
*cancelled* waiter (client disconnected mid-batch) never poisons the
batch — remaining waiters still get their results, and a batch whose
waiters have all been cancelled still completes its compute (the result
lands in the serve cache, so the work is not wasted).

The batcher is event-loop-confined: all bookkeeping mutations happen on
the loop thread between awaits, so no locks are needed; only the compute
callable runs in the executor.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable

import numpy as np

from repro.obs import spans as obs
from repro.obs import trace as obs_trace

__all__ = ["BatchStats", "MicroBatcher"]


class BatchStats:
    """Plain counters the server surfaces via ``/v1/statz`` (obs-independent)."""

    __slots__ = (
        "requests",
        "coalesced",
        "batches",
        "underlying_calls",
        "errors",
        "cancelled",
        "merged_points",
    )

    def __init__(self) -> None:
        self.requests = 0
        self.coalesced = 0
        self.batches = 0
        self.underlying_calls = 0
        self.errors = 0
        self.cancelled = 0
        self.merged_points = 0

    def to_dict(self) -> dict[str, int | float]:
        out = {name: getattr(self, name) for name in self.__slots__}
        out["coalescing_ratio"] = (
            self.coalesced / self.requests if self.requests else 0.0
        )
        return out


class _Waiter:
    __slots__ = ("omega", "future", "trace", "enqueued")

    def __init__(
        self,
        omega: np.ndarray | None,
        future: asyncio.Future,
        trace: "obs_trace.TraceContext | None" = None,
    ):
        self.omega = omega
        self.future = future
        self.trace = trace
        # wall-clock enqueue time, only read when tracing (queue-wait span)
        self.enqueued = time.time() if trace is not None else 0.0


class _PendingBatch:
    __slots__ = ("key", "compute", "waiters", "flush_event")

    def __init__(self, key: Any, compute: Callable[[np.ndarray | None], Any]):
        self.key = key
        self.compute = compute
        self.waiters: list[_Waiter] = []
        self.flush_event = asyncio.Event()


class MicroBatcher:
    """Coalesces concurrent same-key submissions into one compute call.

    Parameters
    ----------
    window:
        Batching window in seconds — how long the first request of a batch
        waits for company.  Zero still coalesces whatever arrives in the
        same event-loop tick.
    max_batch:
        Waiter count that triggers an immediate flush (latency guard under
        a thundering herd).
    executor:
        ``concurrent.futures`` executor the compute callables run on
        (``None`` = the loop's default thread pool).
    """

    def __init__(
        self,
        window: float = 0.005,
        max_batch: int = 64,
        executor=None,
    ):
        self.window = float(window)
        self.max_batch = int(max_batch)
        self.executor = executor
        self.stats = BatchStats()
        self._pending: dict[Any, _PendingBatch] = {}

    def pending_keys(self) -> list[Any]:
        return list(self._pending)

    async def submit(
        self,
        key: Any,
        omega: np.ndarray | None,
        compute: Callable[[np.ndarray | None], Any],
        trace: "obs_trace.TraceContext | None" = None,
    ) -> Any:
        """Join (or open) the batch for ``key``; returns this caller's slice.

        ``compute`` receives the merged frequency grid (grid mode) or
        ``None`` (scalar mode) and runs once per batch in the executor.
        Only the *first* submitter's ``compute`` is used — same key must
        mean same computation, which the fingerprint guarantees.

        ``trace`` is the submitting request's trace context; the batch
        records fan-in span links from its single underlying compute back
        to every traced waiter (many requests -> one evaluation).
        """
        loop = asyncio.get_running_loop()
        batch = self._pending.get(key)
        self.stats.requests += 1
        if batch is None:
            batch = _PendingBatch(key, compute)
            self._pending[key] = batch
            loop.create_task(self._run_batch(batch))
        else:
            self.stats.coalesced += 1
            if obs.enabled():
                obs.add("serve.batch.coalesced")
        future: asyncio.Future = loop.create_future()
        batch.waiters.append(_Waiter(omega, future, trace))
        if len(batch.waiters) >= self.max_batch:
            batch.flush_event.set()
        try:
            return await future
        except asyncio.CancelledError:
            self.stats.cancelled += 1
            raise

    async def _run_batch(self, batch: _PendingBatch) -> None:
        try:
            if self.window > 0:
                try:
                    await asyncio.wait_for(
                        batch.flush_event.wait(), timeout=self.window
                    )
                except asyncio.TimeoutError:
                    pass
            else:
                await asyncio.sleep(0)
        finally:
            # Close the batch *before* computing: late arrivals open a new one.
            if self._pending.get(batch.key) is batch:
                del self._pending[batch.key]
        self.stats.batches += 1
        self.stats.underlying_calls += 1
        if obs.enabled():
            obs.add("serve.batch.underlying")
            obs.add("serve.batch.size", float(len(batch.waiters)))
        merged = self._merge([w.omega for w in batch.waiters])
        if merged is not None:
            self.stats.merged_points += int(merged.size)
        traced = (
            [w for w in batch.waiters if w.trace is not None]
            if obs_trace.sink_configured()
            else []
        )
        compute_start = time.time() if traced else 0.0
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(
                self.executor, batch.compute, merged
            )
        except asyncio.CancelledError:  # pragma: no cover - loop teardown
            raise
        except Exception as exc:
            self.stats.errors += 1
            for waiter in batch.waiters:
                if not waiter.future.done():
                    waiter.future.set_exception(exc)
            return
        if traced:
            self._record_batch_trace(batch, traced, compute_start)
        self._deliver(batch, merged, result)

    @staticmethod
    def _record_batch_trace(
        batch: _PendingBatch, traced: list[_Waiter], compute_start: float
    ) -> None:
        """One batch span (child of the first traced waiter) with fan-in links.

        The links carry every waiter's ``(trace_id, span_id)`` so the
        collector can join N request traces to the single underlying
        evaluation; the queue-wait span covers first-enqueue -> compute.
        """
        ctx = traced[0].trace.child()
        links = [
            {"trace_id": w.trace.trace_id, "span_id": w.trace.span_id}
            for w in traced
        ]
        now = time.time()
        obs_trace.record_event(
            "serve.batch",
            ctx,
            compute_start,
            now,
            links=links,
            waiters=len(batch.waiters),
            key=str(batch.key),
        )
        wait_start = min(w.enqueued for w in traced)
        if compute_start > wait_start:
            obs_trace.record_event(
                "serve.batch.wait",
                ctx.child(),
                wait_start,
                compute_start,
                waiters=len(traced),
                key=str(batch.key),
            )

    @staticmethod
    def _merge(omegas: list[np.ndarray | None]) -> np.ndarray | None:
        """The union frequency grid (sorted, de-duplicated) or ``None``.

        A batch is uniformly grid-mode or scalar-mode — the key embeds the
        endpoint, and each endpoint picks one mode.
        """
        arrays = [np.asarray(w, dtype=float) for w in omegas if w is not None]
        if not arrays:
            return None
        if len(arrays) == 1:
            return arrays[0]
        return np.unique(np.concatenate(arrays))

    def _deliver(
        self, batch: _PendingBatch, merged: np.ndarray | None, result: Any
    ) -> None:
        if isinstance(result, np.ndarray):
            result = np.asarray(result)
            result.flags.writeable = False
        for waiter in batch.waiters:
            if waiter.future.done():  # cancelled mid-batch
                continue
            if merged is None or waiter.omega is None:
                waiter.future.set_result(result)
                continue
            omega = np.asarray(waiter.omega, dtype=float)
            if omega.size == merged.size and np.array_equal(omega, merged):
                waiter.future.set_result(result)
                continue
            indices = np.searchsorted(merged, omega)
            try:
                sliced = np.take(result, indices, axis=-1)
            except Exception as exc:  # result not sliceable along frequency
                waiter.future.set_exception(exc)
                continue
            if isinstance(sliced, np.ndarray):
                sliced.flags.writeable = False
            waiter.future.set_result(sliced)
