"""Background jobs: heavy requests spill to campaign stores.

A stability map over hundreds of cells does not belong inside an HTTP
request/response cycle.  When a ``/v1/stability_map`` request crosses the
server's spill threshold, it becomes a *job*: the request's parameter grid
is exactly a :class:`~repro.campaign.spec.CampaignSpec`, so the job **is**
a campaign run — same executor, same append-only JSONL store, same
streaming telemetry, same crash-safe resume.  The server returns ``202``
with a job id immediately and the client polls ``GET /v1/jobs/<id>``.

Two properties fall out of reusing the campaign machinery rather than
inventing a job queue:

* **Deterministic ids** — the job id is the campaign spec fingerprint, so
  resubmitting the same request (a retry, a second dashboard tab) attaches
  to the existing store instead of recomputing, whether the original run
  is still going, finished, or was SIGKILLed halfway.
* **Crash resumability** — a job store with pending points is resumed, not
  restarted; completed points survive any crash of the server or the
  worker thread.  ``repro jobs <dir>`` and ``repro campaign resume`` both
  work on the same files.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any

from repro.campaign.executor import resume_campaign, run_campaign
from repro.campaign.spec import CampaignSpec
from repro.campaign.watch import poll_store
from repro.obs import manifest as obs_manifest
from repro.obs import stream as obs_stream
from repro.obs import trace as obs_trace

__all__ = ["JobManager", "job_id_for"]


def job_id_for(spec: CampaignSpec) -> str:
    """Deterministic job id: the leading half of the spec fingerprint."""
    return obs_manifest.spec_fingerprint(spec)


class JobManager:
    """Runs campaign specs on daemon worker threads, one store per job.

    Thread-confinement contract: ``submit``/``status``/``list_jobs`` may be
    called from any thread (the server calls them from executor threads);
    internal maps are guarded by one lock.  The campaign executor itself
    runs serially inside the job thread — a serving process multiplexes
    many small requests, so one core per background job is the right
    footprint (``workers`` raises it for dedicated job hosts).
    """

    def __init__(
        self,
        jobs_dir: str | Path,
        workers: int = 1,
        autostart: bool = True,
        lease_batch: int | None = None,
    ):
        self.jobs_dir = Path(jobs_dir)
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.workers = max(int(workers), 1)
        self.autostart = bool(autostart)
        self.lease_batch = lease_batch
        self._lock = threading.Lock()
        self._threads: dict[str, threading.Thread] = {}
        self._errors: dict[str, str] = {}

    def store_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.jsonl"

    def submit(
        self, spec: CampaignSpec, trace: "obs_trace.TraceContext | None" = None
    ) -> str:
        """Start (or attach to) the job for ``spec``; returns its id.

        Idempotent by construction: an identical spec maps to the same
        store.  A live run is joined, a complete store is returned as-is,
        and a dead partial store (crashed server, SIGKILL) is resumed.

        ``trace`` is the originating request's trace context; it is stamped
        into the campaign manifest (and lease plan), so every record the
        job produces — on this host or on an external lease worker —
        carries the request's ``trace_id``.

        With ``autostart=False`` the manager only *prepares* the job —
        store, manifest, frozen lease plan — and leaves execution to an
        external fleet of ``repro campaign worker`` processes (dedicated
        job hosts pointed at a shared jobs directory).
        """
        job_id = job_id_for(spec)
        store = self.store_path(job_id)
        if not self.autostart:
            self._prepare(spec, store, trace)
            return job_id
        with self._lock:
            thread = self._threads.get(job_id)
            if thread is not None and thread.is_alive():
                return job_id
            self._errors.pop(job_id, None)
            thread = threading.Thread(
                target=self._run,
                args=(job_id, spec, store, trace),
                name=f"repro-job-{job_id}",
                daemon=True,
            )
            self._threads[job_id] = thread
            thread.start()
        return job_id

    def _prepare(
        self,
        spec: CampaignSpec,
        store: Path,
        trace: "obs_trace.TraceContext | None",
    ) -> None:
        """Create store + manifest + lease plan without executing anything.

        Mirrors ``repro campaign init``: the lease plan is frozen with
        O_EXCL, so concurrent submits of the same spec agree on one plan.
        """
        from repro.campaign.executor import ExecutionPolicy
        from repro.campaign.lease import DEFAULT_LEASE_BATCH, ensure_plan, lease_dir
        from repro.campaign.store import ResultStore

        if not store.exists():
            ResultStore.create(store, spec)
        manifest = obs_manifest.build_manifest(
            spec,
            ExecutionPolicy(scheduler="lease", batch_size=self.lease_batch),
        )
        if trace is not None:
            manifest["trace"] = trace.to_dict()
        manifest_file = obs_manifest.manifest_path(store)
        if obs_manifest.load_manifest(manifest_file) is None:
            obs_manifest.write_manifest(manifest_file, manifest)
        ensure_plan(
            lease_dir(store),
            spec,
            self.lease_batch or DEFAULT_LEASE_BATCH,
            trace=trace,
        )

    def _run(
        self,
        job_id: str,
        spec: CampaignSpec,
        store: Path,
        trace: "obs_trace.TraceContext | None" = None,
    ) -> None:
        stream = obs_stream.stream_path(store)
        try:
            if store.exists():
                resume_campaign(
                    store,
                    spec=spec,
                    workers=self.workers,
                    stream_path=stream,
                    trace=trace,
                )
            else:
                run_campaign(
                    spec,
                    store,
                    workers=self.workers,
                    stream_path=stream,
                    trace=trace,
                )
        except Exception as exc:  # surfaced through status(), never raised
            with self._lock:
                self._errors[job_id] = f"{type(exc).__name__}: {exc}"

    def status(self, job_id: str) -> dict[str, Any] | None:
        """Liveness + progress for one job, or ``None`` if unknown.

        Known means *a store exists* — the manager's thread table is an
        optimization, not the source of truth, so jobs survive server
        restarts.
        """
        store = self.store_path(job_id)
        if not store.exists():
            return None
        with self._lock:
            thread = self._threads.get(job_id)
            error = self._errors.get(job_id)
        out: dict[str, Any] = {
            "job_id": job_id,
            "store": str(store),
            "running": bool(thread is not None and thread.is_alive()),
        }
        if error:
            out["error"] = error
        out.update(poll_store(store))
        return out

    def list_jobs(self) -> list[dict[str, Any]]:
        """All jobs this directory knows about (running or not)."""
        out = []
        for path in sorted(self.jobs_dir.glob("*.jsonl")):
            if path.name.endswith(".stream.jsonl"):
                continue
            status = self.status(path.stem)
            if status is not None:
                out.append(status)
        return out
