"""Wire protocol of the analysis service: requests, errors, serialization.

The serving layer speaks plain HTTP/JSON (stdlib only).  This module owns
everything that touches the wire format so the app/batcher stay about
control flow:

* :class:`ServeError` — structured HTTP errors.  Every client-visible
  failure maps to one ``{"error": {"code", "message", ...}}`` body with a
  meaningful status (400 malformed request, 404 unknown route/job, 413
  oversized body, 429 admission backpressure, 503 feature disabled, 504
  deadline exceeded, 500 anything unexpected).
* request parsing — :func:`parse_json_body`, :func:`design_params`,
  :func:`grid_from_request`: JSON bodies carry a ``design`` parameter dict
  (the same scalars the campaign task adapters accept) plus
  endpoint-specific fields.  Design identity is the campaign point-id
  scheme — :func:`design_fingerprint` is :func:`repro.campaign.spec.
  point_id` (canonical-JSON blake2b), so a design hashes identically
  whether it arrives over HTTP or enumerates out of a campaign space.
* response encoding — :func:`dumps_bytes`: JSON with **zero intermediate
  copies** for numpy arrays.  A C-contiguous float64 array is serialized
  by iterating ``memoryview(arr).cast("d")`` (element-at-a-time off the
  original buffer — never ``tolist()``, which materializes the whole array
  as boxed floats first); complex arrays are emitted as ``{"re", "im"}``
  from their ``.real``/``.imag`` *views* (no copy either).  Non-finite
  values encode as ``null`` (JSON has no NaN/Inf).
"""

from __future__ import annotations

import json
import math
from typing import Any, Iterable, Mapping

import numpy as np

from repro._errors import ValidationError
from repro.campaign.spec import canonical_params, point_id
from repro.core.grid import FrequencyGrid

__all__ = [
    "MAX_BODY_BYTES",
    "ServeError",
    "design_fingerprint",
    "design_params",
    "dumps_bytes",
    "error_body",
    "grid_from_request",
    "parse_json_body",
]

#: Request-body cap: analysis requests are parameter dicts, never bulk
#: uploads, so anything past 1 MiB is a client bug (or abuse) -> 413.
MAX_BODY_BYTES = 1 << 20


class ServeError(ValidationError):
    """A client-visible service error with an HTTP status and stable code."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        retry_after: float | None = None,
        **detail: Any,
    ):
        super().__init__(message)
        self.status = int(status)
        self.code = str(code)
        self.message = str(message)
        self.retry_after = retry_after
        self.detail = detail

    def body(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "error": {"code": self.code, "message": self.message}
        }
        if self.detail:
            out["error"]["detail"] = self.detail
        return out


def error_body(status: int, code: str, message: str) -> dict[str, Any]:
    """A :class:`ServeError`-shaped body without raising."""
    return {"error": {"code": code, "message": message}}


def parse_json_body(raw: bytes) -> dict[str, Any]:
    """Decode a request body into a JSON object; 400 on anything else."""
    if not raw:
        raise ServeError(400, "empty_body", "request body must be a JSON object")
    try:
        data = json.loads(raw)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ServeError(
            400, "malformed_json", f"request body is not valid JSON: {exc}"
        ) from None
    if not isinstance(data, dict):
        raise ServeError(
            400,
            "malformed_json",
            f"request body must be a JSON object, got {type(data).__name__}",
        )
    return data


def design_params(body: Mapping[str, Any]) -> dict[str, Any]:
    """The canonical design-parameter dict of a request body.

    ``body["design"]`` must be an object of JSON scalars — the same
    parameters the campaign task adapters take (``ratio``/``omega_ug``,
    ``separation``, ``omega0``, ``points``, ...).  Canonicalization (key
    sort + scalar coercion) is what makes the fingerprint stable.
    """
    design = body.get("design")
    if not isinstance(design, Mapping) or not design:
        raise ServeError(
            400,
            "missing_design",
            "request needs a non-empty 'design' object of scalar parameters",
        )
    try:
        return canonical_params(design)
    except ValidationError as exc:
        raise ServeError(400, "invalid_design", str(exc)) from None


def design_fingerprint(params: Mapping[str, Any]) -> str:
    """Deterministic blake2b fingerprint — the campaign point-id scheme."""
    return point_id(params)


def grid_from_request(
    body: Mapping[str, Any], omega0: float, max_points: int = 20_000
) -> FrequencyGrid:
    """Build the request's frequency grid.

    ``body["grid"]`` is either ``{"omega": [...]}`` (explicit rad/s values)
    or ``{"kind": "log"|"linear"|"baseband", "start", "stop", "points"}``.
    Missing entirely, the canonical baseband margin grid of the design's
    ``omega0`` is used (200 points up to just below ``omega0/2``).
    """
    spec = body.get("grid")
    try:
        if spec is None:
            return FrequencyGrid.baseband(omega0)
        if not isinstance(spec, Mapping):
            raise ServeError(
                400, "invalid_grid", "'grid' must be a JSON object"
            )
        if "omega" in spec:
            omega = np.asarray(spec["omega"], dtype=float)
            if omega.ndim != 1 or omega.size == 0:
                raise ServeError(
                    400, "invalid_grid", "'grid.omega' must be a non-empty list"
                )
            if omega.size > max_points:
                raise ServeError(
                    413,
                    "grid_too_large",
                    f"grid has {omega.size} points; the limit is {max_points}",
                )
            return FrequencyGrid(omega)
        kind = str(spec.get("kind", "log"))
        points = int(spec.get("points", 200))
        if points > max_points:
            raise ServeError(
                413,
                "grid_too_large",
                f"grid has {points} points; the limit is {max_points}",
            )
        if kind == "baseband":
            return FrequencyGrid.baseband(
                float(spec.get("omega0", omega0)), points=points
            )
        if kind not in ("log", "linear"):
            raise ServeError(
                400,
                "invalid_grid",
                f"unknown grid kind {kind!r}; expected log/linear/baseband",
            )
        start = float(spec["start"])
        stop = float(spec["stop"])
        factory = FrequencyGrid.log if kind == "log" else FrequencyGrid.linear
        return factory(start, stop, points)
    except ServeError:
        raise
    except (KeyError, TypeError, ValueError, ValidationError) as exc:
        raise ServeError(400, "invalid_grid", f"bad grid spec: {exc}") from None


# -- zero-copy JSON encoding -------------------------------------------------------

_COMMA = b","


def _encode_float(value: float, out: list[bytes]) -> None:
    if math.isfinite(value):
        out.append(repr(value).encode())
    else:
        out.append(b"null")


def _iter_floats(arr: np.ndarray) -> Iterable[float]:
    """Element-at-a-time float iteration without materializing a list.

    C-contiguous float64 data iterates straight off the buffer through a
    ``memoryview`` cast; strided views (``.real`` of a complex array) fall
    back to ``np.nditer``, which also walks the original buffer.
    """
    if arr.dtype == np.float64 and arr.flags.c_contiguous:
        # cast() only converts via the byte format, so round-trip through "B".
        return memoryview(arr).cast("B").cast("d")
    return (float(x) for x in np.nditer(arr, order="C"))


def _encode_array(arr: np.ndarray, out: list[bytes]) -> None:
    if np.iscomplexobj(arr):
        # .real/.imag are strided *views* of the same buffer — no copies.
        out.append(b'{"re":')
        _encode_array(arr.real, out)
        out.append(b',"im":')
        _encode_array(arr.imag, out)
        out.append(b"}")
        return
    flat = arr.reshape(-1) if arr.ndim != 1 else arr
    if arr.ndim > 1:
        # Nested rows keep the shape information; each row is a 1-D view.
        out.append(b"[")
        for i in range(arr.shape[0]):
            if i:
                out.append(_COMMA)
            _encode_array(arr[i], out)
        out.append(b"]")
        return
    out.append(b"[")
    first = True
    for value in _iter_floats(flat):
        if not first:
            out.append(_COMMA)
        first = False
        _encode_float(float(value), out)
    out.append(b"]")


def _encode(obj: Any, out: list[bytes]) -> None:
    if isinstance(obj, np.ndarray):
        _encode_array(obj, out)
    elif isinstance(obj, Mapping):
        out.append(b"{")
        first = True
        for key, value in obj.items():
            if not first:
                out.append(_COMMA)
            first = False
            out.append(json.dumps(str(key)).encode())
            out.append(b":")
            _encode(value, out)
        out.append(b"}")
    elif isinstance(obj, (list, tuple)):
        out.append(b"[")
        for i, value in enumerate(obj):
            if i:
                out.append(_COMMA)
            _encode(value, out)
        out.append(b"]")
    elif isinstance(obj, (np.floating, float)):
        _encode_float(float(obj), out)
    elif isinstance(obj, (np.integer,)):
        out.append(str(int(obj)).encode())
    else:
        out.append(json.dumps(obj).encode())


def dumps_bytes(obj: Any) -> bytes:
    """Encode a response payload as JSON bytes (see module docs).

    Numpy arrays stream element-wise off their buffers; NaN/Inf become
    ``null`` so the output is always strict JSON.
    """
    out: list[bytes] = []
    _encode(obj, out)
    return b"".join(out)
