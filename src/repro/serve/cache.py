"""Sharded TTL/byte-budget result cache for the analysis service.

One process-global :data:`repro.core.memo.grid_cache` is fine for a single
sweep, but a server answering concurrent requests funnels *every* lookup
through one lock.  :class:`ShardedGridCache` splits the key space over N
independent :class:`~repro.core.memo.GridEvalCache` shards — the shard is
picked from the design fingerprint's leading bytes, so all variants of one
design (different grids, different endpoints) live on, and contend for,
one shard while unrelated designs proceed in parallel.  Each shard carries
the TTL and byte-budget eviction the memo layer grew for exactly this use:
a long-lived server must bound both memory and staleness.

Values are either numpy arrays (byte-accounted via ``nbytes``) or, for the
scalar endpoints, :class:`Payload`-wrapped JSON-able dicts whose ``nbytes``
is estimated from their encoded size — so the byte budget is honest across
both shapes.
"""

from __future__ import annotations

import json
from typing import Any, Callable

import numpy as np

from repro.core.memo import GridEvalCache

__all__ = ["Payload", "ShardedGridCache"]

#: One-point grid standing in for "no frequency axis" (scalar endpoints).
_NO_GRID = np.zeros(1)


class _FingerprintKey:
    """Adapter giving a raw fingerprint the operator ``fingerprint()`` shape.

    :class:`GridEvalCache` keys on ``operator.fingerprint()`` and pins the
    operator object per entry; for served results the "operator" is just
    the design fingerprint string, which is content-based and therefore
    safe to re-wrap on every call.
    """

    __slots__ = ("_fp",)

    def __init__(self, fingerprint: str | bytes):
        self._fp = (
            fingerprint if isinstance(fingerprint, bytes) else fingerprint.encode()
        )

    def fingerprint(self) -> bytes:
        return self._fp


class Payload:
    """A non-array cache value with an explicit byte-size estimate."""

    __slots__ = ("value", "nbytes")

    def __init__(self, value: Any):
        self.value = value
        try:
            self.nbytes = len(json.dumps(value, default=str))
        except (TypeError, ValueError):
            self.nbytes = 0


class ShardedGridCache:
    """N independent TTL/byte-budget caches addressed by fingerprint hash."""

    def __init__(
        self,
        shards: int = 4,
        maxsize: int = 256,
        max_bytes: int | None = None,
        ttl_seconds: float | None = None,
    ):
        shards = max(int(shards), 1)
        per_shard_bytes = (
            None if max_bytes is None else max(int(max_bytes) // shards, 1)
        )
        self._shards = tuple(
            GridEvalCache(
                maxsize=maxsize,
                max_bytes=per_shard_bytes,
                ttl_seconds=ttl_seconds,
            )
            for _ in range(shards)
        )

    def __len__(self) -> int:
        return len(self._shards)

    def shard_index(self, fingerprint: str) -> int:
        """Deterministic shard for a fingerprint (leading hex bytes)."""
        try:
            value = int(str(fingerprint)[:8], 16)
        except ValueError:
            value = sum(str(fingerprint).encode())
        return value % len(self._shards)

    def _shard(self, fingerprint: str) -> GridEvalCache:
        return self._shards[self.shard_index(fingerprint)]

    @staticmethod
    def _omega(omega: np.ndarray | None) -> np.ndarray:
        return _NO_GRID if omega is None else np.asarray(omega, dtype=float)

    def lookup(
        self,
        fingerprint: str,
        omega: np.ndarray | None,
        flavor: tuple | None = None,
    ) -> Any | None:
        """Cached value for ``(fingerprint, omega, flavor)`` or ``None``."""
        value = self._shard(fingerprint).lookup(
            _FingerprintKey(fingerprint), self._omega(omega), 0, flavor=flavor
        )
        return value.value if isinstance(value, Payload) else value

    def store(
        self,
        fingerprint: str,
        omega: np.ndarray | None,
        value: Any,
        flavor: tuple | None = None,
    ) -> None:
        """Insert an externally computed value (arrays become read-only)."""
        if not isinstance(value, np.ndarray):
            value = Payload(value)
        self._shard(fingerprint).store(
            _FingerprintKey(fingerprint),
            self._omega(omega),
            0,
            value,
            flavor=flavor,
        )

    def fetch(
        self,
        fingerprint: str,
        omega: np.ndarray | None,
        compute: Callable[[], Any],
        flavor: tuple | None = None,
    ) -> Any:
        """Lookup-or-compute convenience used by tests and simple callers."""
        value = self.lookup(fingerprint, omega, flavor=flavor)
        if value is not None:
            return value
        value = compute()
        self.store(fingerprint, omega, value, flavor=flavor)
        return value

    def clear(self) -> None:
        for shard in self._shards:
            shard.clear()

    def purge_expired(self) -> int:
        """Drop expired entries across every shard; returns the count."""
        return sum(shard.purge_expired() for shard in self._shards)

    def configure(self, **kwargs: Any) -> None:
        """Forward a :meth:`GridEvalCache.configure` call to every shard."""
        for shard in self._shards:
            shard.configure(**kwargs)

    def stats(self) -> dict[str, Any]:
        """Aggregated counters plus the per-shard entry distribution."""
        merged: dict[str, Any] = {
            "shards": len(self._shards),
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "expirations": 0,
            "entries": 0,
            "bytes": 0,
        }
        per_shard = []
        for shard in self._shards:
            stats = shard.stats()
            for key in ("hits", "misses", "evictions", "expirations", "entries", "bytes"):
                merged[key] += stats[key]
            per_shard.append(stats["entries"])
        merged["entries_per_shard"] = per_shard
        merged["max_bytes"] = self._shards[0].max_bytes
        merged["ttl_seconds"] = self._shards[0].ttl_seconds
        merged["maxsize"] = self._shards[0].maxsize
        total = merged["hits"] + merged["misses"]
        merged["hit_rate"] = merged["hits"] / total if total else 0.0
        return merged
