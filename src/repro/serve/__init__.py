"""repro.serve — analysis-as-a-service over the task adapters.

A stdlib-only asyncio HTTP/JSON server that turns the per-design analyses
(margins, noise summaries, closed-loop frequency responses, stability
maps) into concurrent endpoints, with three serving-specific mechanisms:

* **cross-request micro-batching** (:mod:`~repro.serve.batcher`) —
  concurrent requests for the same design fingerprint coalesce into one
  underlying evaluation on a merged frequency grid;
* a **sharded TTL/byte-budget cache** (:mod:`~repro.serve.cache`) built
  from :class:`~repro.core.memo.GridEvalCache` shards;
* **job spill** (:mod:`~repro.serve.jobs`) — heavy stability maps run as
  resumable background campaigns, polled via ``GET /v1/jobs/<id>``.

Start from the shell::

    python -m repro serve --port 8080 --jobs-dir jobs/

or in-process::

    from repro.serve import AnalysisServer, ServerConfig
    server = AnalysisServer(ServerConfig(port=0))
    await server.start()

See ``docs/SERVING.md`` for the endpoint reference and wire contract.
"""

from repro.serve.app import AnalysisServer, ServerConfig, ServerStats
from repro.serve.batcher import BatchStats, MicroBatcher
from repro.serve.cache import Payload, ShardedGridCache
from repro.serve.jobs import JobManager, job_id_for
from repro.serve.protocol import (
    MAX_BODY_BYTES,
    ServeError,
    design_fingerprint,
    design_params,
    dumps_bytes,
    grid_from_request,
    parse_json_body,
)

__all__ = [
    "MAX_BODY_BYTES",
    "AnalysisServer",
    "BatchStats",
    "JobManager",
    "MicroBatcher",
    "Payload",
    "ServeError",
    "ServerConfig",
    "ServerStats",
    "ShardedGridCache",
    "design_fingerprint",
    "design_params",
    "dumps_bytes",
    "grid_from_request",
    "job_id_for",
    "parse_json_body",
]
