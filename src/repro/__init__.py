"""repro — time-varying, frequency-domain PLL analysis with HTMs.

A full reproduction of Vanassche, Gielen & Sansen, *"Time-Varying,
Frequency-Domain Modeling and Analysis of Phase-Locked Loops with Sampling
Phase-Frequency Detectors"* (DATE 2003), as a production-quality Python
library.

Quick start::

    from repro import design_typical_loop, ClosedLoopHTM, compare_margins

    pll = design_typical_loop(omega0=2 * 3.14159, omega_ug=0.3 * 2 * 3.14159)
    closed = ClosedLoopHTM(pll)              # rank-one SMW closed form
    h00 = closed.h00(1j * 0.1)               # baseband transfer (eq. 38)
    print(compare_margins(pll).summary())    # LTI vs effective margins

Package layout:

* :mod:`repro.lti` — transfer functions, Bode margins, state space;
* :mod:`repro.signals` — Fourier series, waveforms, ISF models;
* :mod:`repro.core` — the HTM formalism (operators, rank-one SMW closure,
  exact aliasing sums);
* :mod:`repro.blocks` — PFD / charge pump / loop filter / VCO models;
* :mod:`repro.pll` — closed-loop analysis, effective margins, loop design,
  noise;
* :mod:`repro.baselines` — classical LTI and z-domain comparison models;
* :mod:`repro.simulator` — event-driven behavioural simulator (the
  verification testbench);
* :mod:`repro.campaign` — parallel, fault-tolerant design-space
  exploration with checkpoint/resume (see ``docs/CAMPAIGNS.md``);
* :mod:`repro.obs` — zero-dependency observability: nested tracing spans,
  typed counters, profiling hooks; free when off (``REPRO_OBS=1`` to
  enable, see ``docs/OBSERVABILITY.md``);
* :mod:`repro.experiments` — regeneration of every figure in the paper.
"""

from repro._errors import (
    ConvergenceError,
    DesignError,
    LockError,
    ReproError,
    StabilityError,
    TruncationError,
    ValidationError,
)
from repro.blocks import (
    ChargePump,
    Divider,
    LoopDelay,
    MultiplyingPFD,
    SampleHoldPFD,
    SamplingPFD,
    SeriesRCShuntCFilter,
    VCO,
)
from repro.core import HTM, AliasedSum, FrequencyGrid, truncated_alias_sum
from repro.lti import RationalFunction, StateSpace, TransferFunction
from repro.pll import (
    PLL,
    ClosedLoopHTM,
    NoiseAnalysis,
    compare_margins,
    design_typical_loop,
    lti_open_loop,
    margin_sweep,
    typical_open_loop_shape,
)
from repro.signals import FourierSeries, ImpulseSensitivity

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ValidationError",
    "TruncationError",
    "ConvergenceError",
    "StabilityError",
    "LockError",
    "DesignError",
    "ChargePump",
    "Divider",
    "LoopDelay",
    "MultiplyingPFD",
    "SampleHoldPFD",
    "SamplingPFD",
    "SeriesRCShuntCFilter",
    "VCO",
    "HTM",
    "AliasedSum",
    "FrequencyGrid",
    "truncated_alias_sum",
    "RationalFunction",
    "StateSpace",
    "TransferFunction",
    "PLL",
    "ClosedLoopHTM",
    "NoiseAnalysis",
    "compare_margins",
    "design_typical_loop",
    "lti_open_loop",
    "margin_sweep",
    "typical_open_loop_shape",
    "FourierSeries",
    "ImpulseSensitivity",
    "__version__",
]
