"""A minimal symbolic expression tree.

Deliberately small: enough to represent and render the closed-form loop
expressions (rational functions of ``s`` plus ``coth``/``exp`` terms), with
numeric evaluation, light simplification on construction, plain-text and
LaTeX rendering.  Not a computer-algebra system — no expansion, collection
or equation solving.

Construction uses Python operators::

    s = Sym("s")
    expr = (1 + s / 2) ** 2 * coth_of(s)
    expr.evaluate({"s": 0.3 + 1j})
    expr.latex()
"""

from __future__ import annotations

import cmath
from abc import ABC, abstractmethod
from typing import Mapping

from repro._errors import ValidationError

_FUNCTIONS = {
    "coth": lambda z: cmath.cosh(z) / cmath.sinh(z),
    "exp": cmath.exp,
    "sinh": cmath.sinh,
    "cosh": cmath.cosh,
}


def _fmt_number(value: complex) -> str:
    """Compact numeric literal: drop vanishing imaginary/real parts."""
    if value.imag == 0:
        real = value.real
        if real == int(real) and abs(real) < 1e15:
            return str(int(real))
        return f"{real:.6g}"
    if value.real == 0:
        return f"{value.imag:.6g}j"
    return f"({value.real:.6g}{value.imag:+.6g}j)"


class Expr(ABC):
    """Abstract expression node."""

    @abstractmethod
    def evaluate(self, env: Mapping[str, complex]) -> complex:
        """Numerically evaluate with symbol values from ``env``."""

    @abstractmethod
    def render(self) -> str:
        """Plain-text rendering."""

    @abstractmethod
    def latex(self) -> str:
        """LaTeX rendering."""

    @abstractmethod
    def symbols(self) -> frozenset[str]:
        """Free symbols appearing in the expression."""

    @property
    def precedence(self) -> int:
        """Operator precedence for parenthesisation (higher binds tighter)."""
        return 100

    # -- operator sugar ------------------------------------------------------

    @staticmethod
    def _coerce(value) -> "Expr":
        if isinstance(value, Expr):
            return value
        if isinstance(value, (int, float, complex)):
            return Num(complex(value))
        raise TypeError(f"cannot use {type(value).__name__} in a symbolic expression")

    def __add__(self, other) -> "Expr":
        return Add.of(self, Expr._coerce(other))

    def __radd__(self, other) -> "Expr":
        return Add.of(Expr._coerce(other), self)

    def __sub__(self, other) -> "Expr":
        return Add.of(self, Mul.of(Num(-1), Expr._coerce(other)))

    def __rsub__(self, other) -> "Expr":
        return Add.of(Expr._coerce(other), Mul.of(Num(-1), self))

    def __mul__(self, other) -> "Expr":
        return Mul.of(self, Expr._coerce(other))

    def __rmul__(self, other) -> "Expr":
        return Mul.of(Expr._coerce(other), self)

    def __truediv__(self, other) -> "Expr":
        return Mul.of(self, Pow.of(Expr._coerce(other), -1))

    def __rtruediv__(self, other) -> "Expr":
        return Mul.of(Expr._coerce(other), Pow.of(self, -1))

    def __neg__(self) -> "Expr":
        return Mul.of(Num(-1), self)

    def __pow__(self, exponent: int) -> "Expr":
        if not isinstance(exponent, int):
            raise TypeError("symbolic exponents must be integers")
        return Pow.of(self, exponent)

    def __repr__(self) -> str:
        return f"Expr({self.render()})"

    def _wrapped(self, parent_precedence: int) -> str:
        text = self.render()
        if self.precedence < parent_precedence:
            return f"({text})"
        return text

    def _wrapped_latex(self, parent_precedence: int) -> str:
        text = self.latex()
        if self.precedence < parent_precedence:
            return rf"\left({text}\right)"
        return text


class Num(Expr):
    """A numeric constant."""

    __slots__ = ("value",)

    def __init__(self, value: complex):
        self.value = complex(value)

    def evaluate(self, env):
        return self.value

    def render(self):
        return _fmt_number(self.value)

    def latex(self):
        text = _fmt_number(self.value)
        return text.replace("j", r"\mathrm{j}")

    def symbols(self):
        return frozenset()

    @property
    def precedence(self):
        # Negative or complex literals bind like a product for wrapping.
        if self.value.imag != 0 or self.value.real < 0:
            return 40
        return 100

    def __eq__(self, other):
        return isinstance(other, Num) and other.value == self.value

    def __hash__(self):
        return hash(("Num", self.value))


class Sym(Expr):
    """A free symbol (e.g. the Laplace variable ``s``)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name or not isinstance(name, str):
            raise ValidationError("symbol name must be a non-empty string")
        self.name = name

    def evaluate(self, env):
        try:
            return complex(env[self.name])
        except KeyError:
            raise ValidationError(f"no value supplied for symbol {self.name!r}") from None

    def render(self):
        return self.name

    def latex(self):
        if len(self.name) == 1:
            return self.name
        if "_" in self.name:
            head, tail = self.name.split("_", 1)
            return rf"{head}_{{{tail}}}"
        return rf"\mathrm{{{self.name}}}"

    def symbols(self):
        return frozenset({self.name})

    def __eq__(self, other):
        return isinstance(other, Sym) and other.name == self.name

    def __hash__(self):
        return hash(("Sym", self.name))


class Add(Expr):
    """A sum of terms."""

    __slots__ = ("terms",)

    def __init__(self, terms: tuple[Expr, ...]):
        self.terms = terms

    @classmethod
    def of(cls, *terms: Expr) -> Expr:
        flat: list[Expr] = []
        constant = 0.0 + 0.0j
        stack = list(terms)
        while stack:
            term = stack.pop(0)
            if isinstance(term, Add):
                stack = list(term.terms) + stack
            elif isinstance(term, Num):
                constant += term.value
            else:
                flat.append(term)
        if constant != 0:
            flat.append(Num(constant))
        if not flat:
            return Num(0.0)
        if len(flat) == 1:
            return flat[0]
        return cls(tuple(flat))

    def evaluate(self, env):
        return sum(term.evaluate(env) for term in self.terms)

    @property
    def precedence(self):
        return 20

    def render(self):
        parts = [self.terms[0]._wrapped(20)]
        for term in self.terms[1:]:
            text = term._wrapped(21)
            if text.startswith("-"):
                parts.append(f"- {text[1:]}")
            else:
                parts.append(f"+ {text}")
        return " ".join(parts)

    def latex(self):
        parts = [self.terms[0]._wrapped_latex(20)]
        for term in self.terms[1:]:
            text = term._wrapped_latex(21)
            if text.startswith("-"):
                parts.append(f"- {text[1:]}")
            else:
                parts.append(f"+ {text}")
        return " ".join(parts)

    def symbols(self):
        out: frozenset[str] = frozenset()
        for term in self.terms:
            out |= term.symbols()
        return out


class Mul(Expr):
    """A product of factors."""

    __slots__ = ("factors",)

    def __init__(self, factors: tuple[Expr, ...]):
        self.factors = factors

    @classmethod
    def of(cls, *factors: Expr) -> Expr:
        flat: list[Expr] = []
        constant = 1.0 + 0.0j
        stack = list(factors)
        while stack:
            factor = stack.pop(0)
            if isinstance(factor, Mul):
                stack = list(factor.factors) + stack
            elif isinstance(factor, Num):
                constant *= factor.value
            else:
                flat.append(factor)
        if constant == 0:
            return Num(0.0)
        if constant != 1:
            flat.insert(0, Num(constant))
        if not flat:
            return Num(1.0)
        if len(flat) == 1:
            return flat[0]
        return cls(tuple(flat))

    def evaluate(self, env):
        out = 1.0 + 0.0j
        for factor in self.factors:
            out *= factor.evaluate(env)
        return out

    @property
    def precedence(self):
        return 40

    def render(self):
        # Separate inverse factors into a denominator for readability.
        num_parts, den_parts = [], []
        for factor in self.factors:
            if isinstance(factor, Pow) and isinstance(factor.exponent, int) and factor.exponent < 0:
                den_parts.append(Pow.of(factor.base, -factor.exponent))
            else:
                num_parts.append(factor)
        num_text = "*".join(f._wrapped(40) for f in num_parts) if num_parts else "1"
        if not den_parts:
            return num_text
        den_text = "*".join(f._wrapped(41) for f in den_parts)
        if len(den_parts) > 1:
            den_text = f"({den_text})"
        return f"{num_text}/{den_text}"

    def latex(self):
        num_parts, den_parts = [], []
        for factor in self.factors:
            if isinstance(factor, Pow) and isinstance(factor.exponent, int) and factor.exponent < 0:
                den_parts.append(Pow.of(factor.base, -factor.exponent))
            else:
                num_parts.append(factor)
        num_text = (
            r" \, ".join(f._wrapped_latex(40) for f in num_parts) if num_parts else "1"
        )
        if not den_parts:
            return num_text
        den_text = r" \, ".join(f._wrapped_latex(40) for f in den_parts)
        return rf"\frac{{{num_text}}}{{{den_text}}}"

    def symbols(self):
        out: frozenset[str] = frozenset()
        for factor in self.factors:
            out |= factor.symbols()
        return out


class Pow(Expr):
    """An integer power."""

    __slots__ = ("base", "exponent")

    def __init__(self, base: Expr, exponent: int):
        self.base = base
        self.exponent = exponent

    @classmethod
    def of(cls, base: Expr, exponent: int) -> Expr:
        if exponent == 0:
            return Num(1.0)
        if exponent == 1:
            return base
        if isinstance(base, Num):
            return Num(base.value**exponent)
        if isinstance(base, Pow):
            return cls.of(base.base, base.exponent * exponent)
        return cls(base, exponent)

    def evaluate(self, env):
        return self.base.evaluate(env) ** self.exponent

    @property
    def precedence(self):
        return 60

    def render(self):
        if self.exponent < 0:
            inverse = Pow.of(self.base, -self.exponent)
            return f"1/{inverse._wrapped(61)}"
        return f"{self.base._wrapped(61)}^{self.exponent}"

    def latex(self):
        if self.exponent < 0:
            inverse = Pow.of(self.base, -self.exponent)
            return rf"\frac{{1}}{{{inverse.latex()}}}"
        return rf"{self.base._wrapped_latex(61)}^{{{self.exponent}}}"

    def symbols(self):
        return self.base.symbols()


class Func(Expr):
    """A named unary function application (coth, exp, sinh, cosh)."""

    __slots__ = ("name", "argument")

    def __init__(self, name: str, argument: Expr):
        if name not in _FUNCTIONS:
            raise ValidationError(
                f"unknown function {name!r}; available: {sorted(_FUNCTIONS)}"
            )
        self.name = name
        self.argument = argument

    def evaluate(self, env):
        return _FUNCTIONS[self.name](self.argument.evaluate(env))

    def render(self):
        return f"{self.name}({self.argument.render()})"

    def latex(self):
        return rf"\{self.name}\!\left({self.argument.latex()}\right)"

    def symbols(self):
        return self.argument.symbols()


def coth_of(argument: Expr) -> Func:
    """Convenience constructor ``coth(argument)``."""
    return Func("coth", Expr._coerce(argument))


def exp_of(argument: Expr) -> Func:
    """Convenience constructor ``exp(argument)``."""
    return Func("exp", Expr._coerce(argument))


def polynomial_in(variable: Expr, coefficients) -> Expr:
    """Build ``sum c_k * variable**k`` from ascending coefficients."""
    terms = []
    for k, c in enumerate(coefficients):
        if c == 0:
            continue
        terms.append(Mul.of(Num(complex(c)), Pow.of(variable, k)))
    return Add.of(*terms) if terms else Num(0.0)
