"""Symbolic closed forms of the loop quantities.

Builders turning a :class:`~repro.pll.architecture.PLL` into expression
trees in the Laplace symbol ``s``:

* :func:`open_loop_expression` — ``A(s)`` as a ratio of polynomials
  (paper eq. 35);
* :func:`effective_gain_expression` — ``lambda(s)`` as the *finite* sum of
  coth terms obtained by applying the elementary aliasing identities to the
  partial fractions of ``A`` (the symbolic counterpart of eq. 37)::

      sum_m 1/(s - p + j m w0)^k
        = (-1)^(k-1) c^k / (k-1)! * P_k(coth(c (s - p))),   c = T/2

  with ``P_k`` the polynomials of :func:`repro.core.aliasing._alias_poly`;
* :func:`h00_expression` — ``A(s) / (1 + lambda(s))`` (eq. 38).

The expressions are numerically exact: evaluating them reproduces the
numeric :class:`~repro.pll.closedloop.ClosedLoopHTM` values to rounding.
"""

from __future__ import annotations

import math

import numpy as np

from repro._errors import ValidationError
from repro.core.aliasing import _alias_poly
from repro.lti.rational import RationalFunction
from repro.pll.architecture import PLL
from repro.pll.openloop import lti_open_loop
from repro.symbolic.expr import Add, Expr, Mul, Num, Sym, coth_of, polynomial_in

S = Sym("s")


def _rational_expression(rf: RationalFunction, variable: Expr = S) -> Expr:
    """Expression for a rational function (descending-coefficient arrays)."""
    num = polynomial_in(variable, rf.num[::-1])
    den = polynomial_in(variable, rf.den[::-1])
    return num / den


def open_loop_expression(pll: PLL) -> Expr:
    """Symbolic ``A(s)`` of paper eq. (35)."""
    return _rational_expression(lti_open_loop(pll).rational)


def _elementary_sum_expression(pole: complex, order: int, omega0: float) -> Expr:
    """Symbolic ``sum_m 1/(s - pole + j m w0)^order`` via the coth identity."""
    c = math.pi / omega0  # T/2
    y = coth_of(Mul.of(Num(c), Add.of(S, Num(-pole))))
    poly_coeffs = _alias_poly(order)
    poly = polynomial_in(y, poly_coeffs)
    scale = (-1.0) ** (order - 1) * c**order / math.factorial(order - 1)
    return Mul.of(Num(scale), poly)


def effective_gain_expression(pll: PLL, round_tol: float = 1e-10) -> Expr:
    """Symbolic ``lambda(s)`` — the closed-form aliasing sum of eq. (37).

    Requires a delay-free loop with zero sampling offset (same condition as
    the numeric closed form).  Supports LPTV ISFs through one aliasing sum
    per ISF harmonic.

    Parameters
    ----------
    round_tol:
        Residues with magnitude below ``round_tol`` times the largest are
        dropped to keep the expression readable.
    """
    if pll.has_delay or pll.pfd.sampling_offset != 0.0:
        raise ValidationError(
            "symbolic closed form requires a delay-free loop with zero sampling offset"
        )
    omega0 = pll.omega0
    gain = pll.pfd.gain
    isf = pll.vco.isf
    h_lf = pll.h_lf.rational
    terms: list[Expr] = []
    all_residues: list[complex] = []
    pieces: list[tuple[complex, complex, int]] = []  # (residue, pole, order)
    for k in range(-isf.order, isf.order + 1):
        vk = isf.coefficient(k)
        if vk == 0:
            continue
        shift_pole = RationalFunction([1.0], [1.0, 1j * k * omega0])
        b_k = (gain * vk) * h_lf * shift_pole
        _, pf_terms = b_k.partial_fractions()
        for term in pf_terms:
            pieces.append((term.residue, term.pole, term.order))
            all_residues.append(term.residue)
    if not pieces:
        return Num(0.0)
    scale = max(abs(r) for r in all_residues)
    for residue, pole, order in pieces:
        if abs(residue) < round_tol * scale:
            continue
        terms.append(Mul.of(Num(residue), _elementary_sum_expression(pole, order, omega0)))
    return Add.of(*terms)


def h00_expression(pll: PLL) -> Expr:
    """Symbolic baseband closed-loop transfer ``H00(s) = A(s)/(1 + lambda(s))``.

    For an LPTV VCO the numerator generalises to ``V_0(s)`` — the paper's
    eq. (34) row element — which for the time-invariant case is ``A(s)``.
    """
    lam = effective_gain_expression(pll)
    if pll.vco.is_time_invariant():
        numerator = open_loop_expression(pll)
    else:
        numerator = _vtilde0_expression(pll)
    return numerator / (Num(1.0) + lam)


def _vtilde0_expression(pll: PLL) -> Expr:
    """Symbolic ``V_0(s) = (w0/2pi) sum_k v_k H_LF(s - j k w0) / s``."""
    omega0 = pll.omega0
    isf = pll.vco.isf
    h_lf = pll.h_lf.rational
    terms: list[Expr] = []
    for k in range(-isf.order, isf.order + 1):
        vk = isf.coefficient(k)
        if vk == 0:
            continue
        shifted = h_lf.shifted(-1j * k * omega0)
        terms.append(Mul.of(Num(vk), _rational_expression(shifted)))
    total = Add.of(*terms) if terms else Num(0.0)
    return Mul.of(Num(pll.pfd.gain), total) / S


def evaluate_on_grid(expr: Expr, s_values) -> np.ndarray:
    """Evaluate an expression over an array of complex frequencies."""
    s_arr = np.asarray(s_values, dtype=complex)
    return np.array([expr.evaluate({"s": complex(s)}) for s in s_arr.ravel()]).reshape(
        s_arr.shape
    )
