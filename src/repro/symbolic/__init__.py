"""Symbolic closed-form expressions for PLL loop quantities.

The paper's abstract promises that the HTM method "can be used to obtain
both numerical results and symbolic expressions".  This subpackage delivers
the symbolic half: a small, dependency-free expression tree
(:mod:`repro.symbolic.expr`) and builders (:mod:`repro.symbolic.loop`) that
produce human-readable / LaTeX closed forms for

* the open-loop gain ``A(s)``,
* the effective open-loop gain ``lambda(s)`` as an explicit finite sum of
  ``coth`` terms (the aliasing sums in closed form),
* the baseband closed-loop transfer ``H00(s) = A(s) / (1 + lambda(s))``.

Every expression evaluates numerically (``expr.evaluate({"s": 1j})``) and is
tested against the numeric :class:`~repro.pll.closedloop.ClosedLoopHTM`
pipeline, so the symbolic output is guaranteed consistent with the numbers.
"""

from repro.symbolic.expr import (
    Add,
    Expr,
    Func,
    Mul,
    Num,
    Pow,
    Sym,
    coth_of,
    exp_of,
)
from repro.symbolic.loop import (
    effective_gain_expression,
    h00_expression,
    open_loop_expression,
)

__all__ = [
    "Expr",
    "Num",
    "Sym",
    "Add",
    "Mul",
    "Pow",
    "Func",
    "coth_of",
    "exp_of",
    "open_loop_expression",
    "effective_gain_expression",
    "h00_expression",
]
