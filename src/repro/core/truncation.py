"""Automatic truncation-order selection for HTM computations.

Truncating the doubly-infinite HTM to harmonics ``-K..K`` introduces an
error that falls with ``K`` at a rate set by how fast the loop gain rolls
off past ``K * w0``.  :func:`choose_truncation_order` doubles ``K`` until a
probe quantity (by default the baseband element of the operator) changes by
less than a tolerance, and reports the convergence history — this is the
machinery behind DESIGN.md ablation A3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro._errors import ConvergenceError, ValidationError
from repro._validation import as_float_array, check_order
from repro.core.operators import HarmonicOperator
from repro.obs import health
from repro.obs import spans as obs


@dataclass(frozen=True)
class TruncationReport:
    """Convergence record of a truncation-order search.

    Attributes
    ----------
    order:
        The accepted truncation order K.
    achieved_change:
        Relative change of the probe between the last two orders tried.
    history:
        ``(order, max |probe change|)`` pairs for each refinement step.
    """

    order: int
    achieved_change: float
    history: tuple[tuple[int, float], ...] = field(default_factory=tuple)


def probe_baseband(operator: HarmonicOperator, omega: np.ndarray, order: int) -> np.ndarray:
    """Default probe: the baseband-to-baseband element over the grid."""
    out = np.empty(omega.size, dtype=complex)
    for i, w in enumerate(omega):
        out[i] = operator.htm(1j * w, order).element(0, 0)
    return out


def choose_truncation_order(
    operator: HarmonicOperator,
    omega: Sequence[float] | np.ndarray,
    rtol: float = 1e-6,
    initial_order: int = 2,
    max_order: int = 256,
    probe: Callable[[HarmonicOperator, np.ndarray, int], np.ndarray] | None = None,
) -> TruncationReport:
    """Grow the truncation order until the probe stabilises.

    The order doubles each step (2, 4, 8, ...) and the probe (default:
    baseband transfer over the supplied grid) is compared between steps with
    a relative max-norm.  Stops at the first step whose change is below
    ``rtol``.

    Raises
    ------
    ConvergenceError
        If ``max_order`` is reached without meeting the tolerance.
    """
    omega_arr = as_float_array("omega", omega)
    initial_order = check_order("initial_order", initial_order, minimum=1)
    max_order = check_order("max_order", max_order, minimum=initial_order)
    if rtol <= 0:
        raise ValidationError(f"rtol must be positive, got {rtol}")
    probe_fn = probe or probe_baseband
    order = initial_order
    previous = probe_fn(operator, omega_arr, order)
    history: list[tuple[int, float]] = []
    while order < max_order:
        next_order = min(order * 2, max_order)
        current = probe_fn(operator, omega_arr, next_order)
        scale = max(float(np.max(np.abs(current))), 1e-300)
        change = float(np.max(np.abs(current - previous))) / scale
        history.append((next_order, change))
        if obs.enabled() and len(history) >= 2 and history[-1][1] > history[-2][1]:
            obs.health_event(
                "health.truncation.tail_growth",
                history[-1][1],
                history[-2][1],
                severity="warning",
                message="probe change grew when K doubled: tail not decaying",
                order=next_order,
            )
        if change <= rtol:
            if obs.enabled():
                obs.health_event(
                    "health.truncation.converged",
                    change,
                    rtol,
                    severity="info",
                    message="truncation-order search converged",
                    order=next_order,
                )
            return TruncationReport(
                order=next_order, achieved_change=change, history=tuple(history)
            )
        order = next_order
        previous = current
    if obs.enabled():
        obs.health_event(
            "health.truncation.no_convergence",
            history[-1][1] if history else float("inf"),
            rtol,
            severity="error",
            message=f"no convergence by max_order={max_order}",
            order=max_order,
        )
    raise ConvergenceError(
        f"truncation did not converge to rtol={rtol} by order {max_order}; "
        f"last change {history[-1][1]:.3g}" if history else "no refinement performed"
    )


def truncation_error_estimate(
    operator: HarmonicOperator,
    omega: Sequence[float] | np.ndarray,
    order: int,
    reference_order: int | None = None,
) -> float:
    """Estimate the truncation error of ``order`` against a larger reference.

    Returns the relative max-norm difference of the baseband probe between
    ``order`` and ``reference_order`` (default ``2 * order``).
    """
    omega_arr = as_float_array("omega", omega)
    order = check_order("order", order, minimum=1)
    ref = reference_order if reference_order is not None else 2 * order
    ref = check_order("reference_order", ref, minimum=order + 1)
    coarse = probe_baseband(operator, omega_arr, order)
    fine = probe_baseband(operator, omega_arr, ref)
    scale = max(float(np.max(np.abs(fine))), 1e-300)
    estimate = float(np.max(np.abs(fine - coarse))) / scale
    if obs.enabled():
        obs.health_event(
            "health.truncation.error_estimate",
            estimate,
            health.TRUNCATION_WARN_TOL,
            severity=(
                "warning" if estimate > health.TRUNCATION_WARN_TOL else "info"
            ),
            message="relative truncation error of the requested order",
            order=order,
        )
    return estimate
