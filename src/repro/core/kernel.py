"""Reconstruction of time-varying kernels from HTMs (paper eqs. 1–3).

The HTM is built from the harmonic transfer functions
``H_k(s) = L{h_k(tau)}`` of the T-periodic kernel expansion

    h(t, tau) = sum_k h_k(tau) * exp(j k w0 t)            (eq. 2)

This module inverts the construction: given any
:class:`~repro.core.operators.HarmonicOperator`, it samples
``H_k(j omega)`` (available as the HTM element ``(k, 0)`` at ``s = j omega``)
on a wide frequency grid and inverse-Fourier-transforms to recover the
harmonic impulse responses ``h_k(tau)`` and the full two-variable kernel —
closing the loop between the frequency-domain formalism and the time-domain
definition it started from.

Only operators whose ``H_k`` decay in frequency (i.e. contain some lowpass
dynamics) reconstruct cleanly; memoryless operators have Dirac kernels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._errors import ValidationError
from repro._validation import check_order, check_positive
from repro.core.operators import HarmonicOperator


@dataclass(frozen=True)
class KernelReconstruction:
    """Sampled harmonic impulse responses of an LPTV operator.

    Attributes
    ----------
    tau:
        Lag grid (seconds), uniform, starting at 0.
    responses:
        Array of shape ``(2K+1, len(tau))``; row ``k + K`` is ``h_k(tau)``.
    omega0:
        Fundamental angular frequency.
    """

    tau: np.ndarray
    responses: np.ndarray
    omega0: float

    @property
    def order(self) -> int:
        """Highest reconstructed kernel harmonic K."""
        return (self.responses.shape[0] - 1) // 2

    def harmonic(self, k: int) -> np.ndarray:
        """The sampled harmonic impulse response ``h_k(tau)``."""
        if abs(k) > self.order:
            raise ValidationError(f"harmonic {k} beyond reconstruction order {self.order}")
        return self.responses[k + self.order].copy()

    def kernel(self, t: float, tau: np.ndarray | None = None) -> np.ndarray:
        """The kernel slice ``h(t, tau)`` at observation time ``t`` (eq. 2)."""
        tau_grid = self.tau if tau is None else np.asarray(tau, dtype=float)
        if tau is not None:
            values = np.array(
                [
                    np.interp(tau_grid, self.tau, self.responses[i].real)
                    + 1j * np.interp(tau_grid, self.tau, self.responses[i].imag)
                    for i in range(self.responses.shape[0])
                ]
            )
        else:
            values = self.responses
        k = np.arange(-self.order, self.order + 1)
        phases = np.exp(1j * k * self.omega0 * t)
        return phases @ values

    def response_to_impulse_at(self, t_apply: float, t_observe: np.ndarray) -> np.ndarray:
        """Output at times ``t_observe`` for a unit impulse applied at ``t_apply``.

        ``y(t) = h(t, t - t_apply)`` for ``t >= t_apply`` (causal kernels).
        """
        t_obs = np.asarray(t_observe, dtype=float)
        out = np.zeros(t_obs.shape, dtype=complex)
        for i, t in enumerate(t_obs):
            lag = t - t_apply
            if lag < 0 or lag > self.tau[-1]:
                continue
            out[i] = self.kernel(t, np.array([lag]))[0]
        return out


def reconstruct_kernel(
    operator: HarmonicOperator,
    order: int,
    tau_max: float,
    samples: int = 4096,
    bandwidth_factor: float = 0.0,
) -> KernelReconstruction:
    """Sample ``H_k(j omega)`` and inverse-transform to ``h_k(tau)``.

    Parameters
    ----------
    operator:
        The LPTV system; the HTM element ``(k, 0)`` at ``s = j omega`` *is*
        ``H_k(j omega)`` (paper eq. 5 with ``m = 0``).
    order:
        Number of kernel harmonics to reconstruct (``-order..order``).
    tau_max:
        Length of the reconstructed lag axis (seconds).
    samples:
        FFT length; sets both the lag resolution ``tau_max / samples`` and
        the frequency span ``pi * samples / tau_max``.
    bandwidth_factor:
        Unused reserve for windowing strategies; kept at 0 (rectangular).

    Notes
    -----
    Accuracy requires the operator's harmonic transfer functions to decay
    within the sampled band; a warning-level validation rejects obviously
    non-decaying (memoryless) operators by probing the band edge.
    """
    order = check_order("order", order, minimum=0)
    check_positive("tau_max", tau_max)
    samples = check_order("samples", samples, minimum=16)
    del bandwidth_factor
    d_tau = tau_max / samples
    omega_grid = 2 * np.pi * np.fft.fftfreq(samples, d=d_tau)
    # Probe band-edge decay on the central harmonic.
    edge = operator.htm(1j * float(np.max(np.abs(omega_grid))) , order).element(0, 0)
    centre = operator.htm(1e-3j, order).element(0, 0)
    if abs(edge) > 0.5 * max(abs(centre), 1e-12):
        raise ValidationError(
            "harmonic transfer functions do not decay within the sampled band; "
            "increase samples/tau resolution or note the kernel is singular "
            "(memoryless operators have Dirac kernels)"
        )
    size = 2 * order + 1
    spectra = np.empty((size, samples), dtype=complex)
    for i, w in enumerate(omega_grid):
        htm = operator.htm(1j * float(w), order)
        for k in range(-order, order + 1):
            spectra[k + order, i] = htm.element(k, 0)
    # h_k(tau) = (1/2pi) integral H_k(jw) e^{jw tau} dw  ->  inverse DFT.
    responses = np.fft.ifft(spectra, axis=1) / d_tau
    tau = np.arange(samples) * d_tau
    return KernelReconstruction(tau=tau, responses=responses, omega0=operator.omega0)
