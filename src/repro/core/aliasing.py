"""Exact aliasing sums ``sum_m F(s + j m w0)`` for rational ``F``.

The paper's effective open-loop gain is the aliasing sum of the LTI loop
gain (eq. 37)::

    lambda(s) = sum_{m = -inf}^{+inf} A(s + j m w0)

Truncating this sum converges slowly; this module instead evaluates it in
closed form.  Expanding ``A`` into partial fractions, every term
``r / (s - p)^j`` contributes an elementary sum

    S_j(x) = sum_m 1 / (x + j m w0)^j,   x = s - p

and ``S_1(x) = (T/2) coth(T x / 2)`` (the Mittag-Leffler expansion of coth,
interpreted as the symmetric principal-value limit, which is the physically
correct pairing of ±m alias terms).  Higher orders follow by repeated
differentiation, which closes over polynomials in ``y = coth(T x / 2)``
because ``dy/du = 1 - y^2``::

    S_j(x) = (-1)^(j-1) c^j / (j-1)! * p_j(y),   c = T/2
    p_1(y) = y,   p_{j+1}(y) = (1 - y^2) p_j'(y)

This reproduces the known special cases ``S_2 = c^2 csch^2`` and
``S_3 = c^3 coth csch^2`` and extends to any pole multiplicity — needed
because the paper's loop gain has a double pole at DC.

The truncated fallback :func:`truncated_alias_sum` uses symmetric ±m pairing
so that relative-degree-1 functions still converge (quadratically).
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from functools import lru_cache
from typing import Callable

import numpy as np

from repro._errors import ValidationError
from repro._validation import check_order, check_positive
from repro.core.grid import as_omega_grid
from repro.lti.rational import PartialFractionTerm, RationalFunction
from repro.lti.transfer import TransferFunction
from repro.obs import health
from repro.obs import spans as _obs


def coth(z: complex | np.ndarray) -> complex | np.ndarray:
    """Numerically stable complex hyperbolic cotangent.

    Uses ``coth(z) = (1 + e^{-2z}) / (1 - e^{-2z})`` on the right half plane
    (where ``|e^{-2z}| <= 1`` so nothing overflows) and odd symmetry
    elsewhere.  Poles at ``z = j k pi`` produce ``inf`` naturally.
    """
    z_arr = np.asarray(z, dtype=complex)
    scalar = z_arr.ndim == 0
    z_arr = np.atleast_1d(z_arr)
    sign = np.where(z_arr.real < 0, -1.0, 1.0)
    z_pos = z_arr * sign
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        w = np.exp(-2.0 * z_pos)
        out = sign * (1.0 + w) / (1.0 - w)
    if scalar:
        return complex(out[0])
    return out


@lru_cache(maxsize=64)
def _alias_poly(order: int) -> tuple[float, ...]:
    """Coefficients (ascending powers of y) of ``p_order`` from the recurrence.

    ``p_1 = y``; ``p_{j+1} = (1 - y^2) * dp_j/dy``.  Cached because orders
    repeat across partial-fraction terms.
    """
    coeffs = np.array([0.0, 1.0])  # p_1(y) = y
    for _ in range(order - 1):
        deriv = np.polynomial.polynomial.polyder(coeffs)
        # (1 - y^2) * deriv
        coeffs = np.polynomial.polynomial.polymul(np.array([1.0, 0.0, -1.0]), deriv)
        if coeffs.size == 0:
            coeffs = np.array([0.0])
    return tuple(float(c) for c in coeffs)


def elementary_alias_sum(x: complex | np.ndarray, omega0: float, order: int = 1):
    """``S_order(x) = sum_m 1/(x + j m w0)^order`` in closed form.

    ``order = 1`` is the principal-value (symmetric) sum; ``order >= 2`` is
    absolutely convergent.
    """
    omega0 = check_positive("omega0", omega0)
    order = check_order("order", order, minimum=1)
    c = math.pi / omega0  # T / 2
    y = coth(c * np.asarray(x, dtype=complex))
    poly = np.asarray(_alias_poly(order))
    value = np.polynomial.polynomial.polyval(y, poly)
    scale = (-1.0) ** (order - 1) * c**order / math.factorial(order - 1)
    result = scale * value
    if np.ndim(x) == 0:
        return complex(result)
    return result


# Content-keyed LRU of AliasedSum constructions (see AliasedSum.of).
_OF_CACHE: "OrderedDict[tuple, AliasedSum]" = OrderedDict()
_OF_CACHE_LOCK = threading.Lock()
_OF_CACHE_MAXSIZE = 128


class AliasedSum:
    """Callable closed form of ``sum_m F(s + j m w0)`` for rational ``F``.

    Build with :meth:`of`.  Evaluation is vectorized over ``s`` and exact up
    to partial-fraction round-off; in particular it contains *all* alias
    terms, unlike any finite truncation.

    Raises
    ------
    ValidationError
        If ``F`` is not strictly proper — the aliasing sum of a function
        that does not roll off diverges.
    """

    __slots__ = ("omega0", "terms", "source")

    def __init__(self, omega0: float, terms: list[PartialFractionTerm], source: RationalFunction):
        self.omega0 = check_positive("omega0", omega0)
        self.terms = list(terms)
        self.source = source

    @classmethod
    def of(cls, system, omega0: float, cluster_tol: float | None = None) -> "AliasedSum":
        """Construct from a rational system (TransferFunction or RationalFunction).

        Constructions are memoized on the *content* of the rational function
        (coefficient bytes, ``omega0``, ``cluster_tol``): rebuilding the same
        effective-gain decomposition — e.g. one
        :class:`~repro.pll.closedloop.ClosedLoopHTM` per metric of a design
        sweep — reuses the partial-fraction expansion instead of re-running
        the tolerance ladder.  :class:`AliasedSum` instances are immutable,
        so sharing them is safe.
        """
        if isinstance(system, TransferFunction):
            rational = system.rational
        elif isinstance(system, RationalFunction):
            rational = system
        else:
            raise ValidationError(
                f"AliasedSum requires a rational system, got {type(system).__name__}"
            )
        key = (rational.num.tobytes(), rational.den.tobytes(), float(omega0), cluster_tol)
        with _OF_CACHE_LOCK:
            cached = _OF_CACHE.get(key)
            if cached is not None:
                _OF_CACHE.move_to_end(key)
                return cached
        if not rational.is_strictly_proper() and not rational.is_zero():
            raise ValidationError(
                "aliasing sum diverges: the function must be strictly proper "
                f"(relative degree {rational.relative_degree})"
            )
        direct, terms = rational.partial_fractions(tol=cluster_tol)
        if np.any(np.abs(direct) > 0):
            raise ValidationError("aliasing sum diverges: non-zero direct polynomial part")
        result = cls(omega0, terms, rational)
        with _OF_CACHE_LOCK:
            _OF_CACHE[key] = result
            _OF_CACHE.move_to_end(key)
            while len(_OF_CACHE) > _OF_CACHE_MAXSIZE:
                _OF_CACHE.popitem(last=False)
        return result

    def __call__(self, s: complex | np.ndarray) -> complex | np.ndarray:
        """Evaluate the full aliasing sum at ``s`` (scalar or array)."""
        s_arr = np.asarray(s, dtype=complex)
        out = np.zeros(np.atleast_1d(s_arr).shape, dtype=complex)
        flat_s = np.atleast_1d(s_arr)
        for term in self.terms:
            out += term.residue * elementary_alias_sum(
                flat_s - term.pole, self.omega0, term.order
            )
        if s_arr.ndim == 0:
            return complex(out[0])
        return out

    def eval_jomega(self, omega) -> np.ndarray:
        """Evaluate on the imaginary axis (for Bode/margin tooling).

        Accepts a :class:`~repro.core.grid.FrequencyGrid` or a raw array.
        """
        omega_arr = as_omega_grid("omega", omega)
        return np.asarray(self(1j * omega_arr), dtype=complex)

    def base_poles(self) -> np.ndarray:
        """Poles of the summand ``F``; the sum has copies at ``p + j m w0``."""
        return np.array(sorted({t.pole for t in self.terms}, key=lambda p: (p.real, p.imag)))

    def derivative(self) -> "AliasedSum":
        """The exact derivative ``d/ds sum_m F(s + j m w0)``.

        Term-wise: ``d/dx S_j(x) = -j * S_{j+1}(x)``, so each partial
        fraction term of order ``j`` maps to one of order ``j + 1`` with
        residue ``-j * r`` — still a closed-form aliasing sum.  Used by the
        Newton pole search in :mod:`repro.pll.poles`.
        """
        new_terms = [
            PartialFractionTerm(
                pole=t.pole, order=t.order + 1, residue=-t.order * t.residue
            )
            for t in self.terms
        ]
        return AliasedSum(self.omega0, new_terms, self.source)

    def is_periodic_check(self, s: complex, rtol: float = 1e-8) -> "health.CheckResult":
        """Verify the defining periodicity ``lambda(s + j w0) = lambda(s)``.

        The aliasing sum is invariant under ``s -> s + j w0`` by construction;
        exposed as a cheap self-test hook.  Returns a
        :class:`repro.obs.health.CheckResult` whose value is the relative
        deviation between the two evaluations and whose threshold is
        ``rtol``; it is truthy exactly when the check passes, so
        ``assert alias.is_periodic_check(s)`` works unchanged.  A failure
        emits a warning health event when observability is enabled.
        """
        a = self(s)
        b = self(s + 1j * self.omega0)
        deviation = abs(a - b) / max(abs(a), abs(b), 1e-30)
        result = health.CheckResult(
            "is_periodic_check", deviation, float(rtol), deviation <= float(rtol)
        )
        if not result.passed:
            _obs.health_event(
                "health.aliasing.periodicity",
                deviation,
                float(rtol),
                severity="warning",
                message="aliasing sum not j*w0-periodic at this s",
            )
        return result

    def __repr__(self) -> str:
        return f"AliasedSum(omega0={self.omega0:.6g}, terms={len(self.terms)})"


def truncated_alias_sum(
    system: Callable[[complex], complex],
    s: complex | np.ndarray,
    omega0: float,
    harmonics: int,
) -> complex | np.ndarray:
    """Symmetric truncation ``sum_{m=-M}^{M} F(s + j m w0)``.

    Works for any callable ``F`` (not only rational).  Terms are added in
    ±m pairs from the outside in, which both implements the principal-value
    pairing and improves floating-point summation accuracy.
    """
    omega0 = check_positive("omega0", omega0)
    harmonics = check_order("harmonics", harmonics, minimum=0)
    s_arr = np.asarray(s, dtype=complex)
    flat = np.atleast_1d(s_arr)
    total = np.zeros(flat.shape, dtype=complex)
    for m in range(harmonics, 0, -1):
        total += np.asarray(system(flat + 1j * m * omega0), dtype=complex)
        total += np.asarray(system(flat - 1j * m * omega0), dtype=complex)
    total += np.asarray(system(flat), dtype=complex)
    if s_arr.ndim == 0:
        return complex(total[0])
    return total
