"""Rank-one HTMs and the Sherman–Morrison–Woodbury loop closure.

The sampling PFD's HTM is rank one (paper sec. 3.1), so the PLL open-loop
gain factors as ``G(s) = V(s) l^T`` (eq. 30).  The Sherman–Morrison–Woodbury
identity then reduces the infinite-dimensional loop inversion to scalar
arithmetic (eqs. 31–34)::

    (I + V l^T)^{-1} = I - V l^T / (1 + lambda),   lambda = l^T V
    closed loop:  theta = V l^T thetaref / (1 + lambda)

This module implements that closure for *truncated* vectors of any order and
exposes it both as raw vector algebra (:func:`smw_inverse_apply`,
:func:`smw_closed_loop`) and as a :class:`RankOneHTM` convenience wrapper.
"""

from __future__ import annotations

import numpy as np

from repro._errors import ValidationError
from repro.core.htm import HTM
from repro.obs import health
from repro.obs import spans as obs


class RankOneHTM:
    """An HTM of the form ``column @ row^T`` (outer product).

    The sampling PFD is the canonical instance: ``column = row = l`` scaled
    by ``w0/2pi``.  Stored factored, so products with diagonal/dense matrices
    stay O(N) / O(N^2) instead of O(N^3).
    """

    __slots__ = ("column", "row", "omega0", "s")

    def __init__(self, column: np.ndarray, row: np.ndarray, omega0: float, s: complex = 0j):
        column = np.asarray(column, dtype=complex)
        row = np.asarray(row, dtype=complex)
        if column.ndim != 1 or row.ndim != 1 or column.size != row.size:
            raise ValidationError("column and row must be 1-D vectors of equal length")
        if column.size % 2 == 0:
            raise ValidationError("rank-one HTM factors must have odd length (harmonics -K..K)")
        self.column = column.copy()
        self.row = row.copy()
        self.omega0 = float(omega0)
        self.s = complex(s)

    @property
    def order(self) -> int:
        """Truncation order K."""
        return (self.column.size - 1) // 2

    def to_htm(self) -> HTM:
        """Materialise the dense snapshot."""
        return HTM(np.outer(self.column, self.row), self.omega0, self.s)

    def left_multiply_dense(self, matrix: np.ndarray) -> "RankOneHTM":
        """Return ``matrix @ self`` — still rank one with a new column factor."""
        matrix = np.asarray(matrix, dtype=complex)
        if matrix.shape != (self.column.size, self.column.size):
            raise ValidationError(
                f"matrix shape {matrix.shape} incompatible with rank-one factors of "
                f"size {self.column.size}"
            )
        return RankOneHTM(matrix @ self.column, self.row, self.omega0, self.s)

    def trace_like(self) -> complex:
        """``row^T column`` — the scalar lambda of the SMW closure."""
        return complex(self.row @ self.column)


def smw_inverse_apply(column: np.ndarray, row: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Apply ``(I + column row^T)^{-1}`` to ``rhs`` without forming matrices.

    Implements paper eq. (31)–(32).  Raises if ``1 + row^T column`` is
    numerically zero — that is precisely the loop's characteristic equation
    ``1 + lambda(s) = 0``, i.e. ``s`` sits on a closed-loop pole.
    """
    column = np.asarray(column, dtype=complex)
    row = np.asarray(row, dtype=complex)
    rhs = np.asarray(rhs, dtype=complex)
    lam = complex(row @ column)
    denom = 1.0 + lam
    if obs.enabled():
        _solve_health(column, row, denom)
    if abs(denom) < 1e-300:
        raise ZeroDivisionError("1 + lambda(s) = 0: s lies on a closed-loop pole")
    obs.add("core.rank_one.smw_inverse_apply", size=int(column.size))
    return rhs - column * (row @ rhs) / denom


def smw_closed_loop(column: np.ndarray, row: np.ndarray) -> np.ndarray:
    """Dense closed-loop matrix ``(I + V l^T)^{-1} V l^T = V l^T / (1 + lambda)``.

    This is paper eq. (34) in matrix form; the result is again rank one.
    """
    column = np.asarray(column, dtype=complex)
    row = np.asarray(row, dtype=complex)
    lam = complex(row @ column)
    denom = 1.0 + lam
    if obs.enabled():
        _solve_health(column, row, denom)
    if abs(denom) < 1e-300:
        raise ZeroDivisionError("1 + lambda(s) = 0: s lies on a closed-loop pole")
    obs.add("core.rank_one.smw_closed_loop", size=int(column.size))
    return np.outer(column, row) / denom


def smw_closed_loop_grid(
    column: np.ndarray, row: np.ndarray, backend=None
) -> tuple[np.ndarray, np.ndarray]:
    """Batched SMW closure over a grid, staying in factored rank-one form.

    ``column`` and ``row`` are ``(L, N)`` stacks of the open-loop factors
    ``G(s_l) = c_l r_l^T`` per grid point.  Returns the closed-loop factors
    ``(column / (1 + lambda), row)`` — paper eq. (34) without ever forming a
    matrix, O(N) per point.  The scalar reduction runs through the pluggable
    kernel set of :mod:`repro.core.backend`.

    Unlike the scalar :func:`smw_closed_loop`, grid points where
    ``1 + lambda`` vanishes do **not** raise: they go to inf/nan — the same
    behaviour as the batched dense solve this path replaces — and are
    flagged through a warning health event when observability is enabled.
    """
    from repro.core.backend import resolve_backend

    bk = resolve_backend(backend)
    column = np.asarray(column, dtype=complex)
    row = np.asarray(row, dtype=complex)
    if column.ndim != 2 or column.shape != row.shape:
        raise ValidationError(
            "column and row must be (points, size) stacks of equal shape, got "
            f"{column.shape} and {row.shape}"
        )
    lam = bk.rank_one_lambda(column, row)
    denom = 1.0 + lam
    if obs.enabled():
        obs.add("core.rank_one.smw_closed_loop_grid", points=int(column.shape[0]))
        mags = np.abs(denom[np.isfinite(denom)])
        margin = float(np.min(mags)) if mags.size else 0.0
        if margin < health.LAMBDA_SINGULAR_TOL:
            obs.health_event(
                "health.rank_one.near_singular",
                margin,
                health.LAMBDA_SINGULAR_TOL,
                severity="warning",
                direction="below",
                message="|1 + lambda| near zero on the grid: points close to a closed-loop pole",
                size=int(column.shape[1]),
            )
    with np.errstate(divide="ignore", invalid="ignore"):
        closed = bk.smw_close_column(column, denom)
    return closed, row


def _solve_health(column: np.ndarray, row: np.ndarray, denom: complex) -> None:
    """Obs-enabled health probes for one SMW solve.

    Always checks the closure denominator against the near-singular
    tolerance; additionally runs the full (dense, expensive) identity check
    per solve when ``REPRO_OBS_SMW_CHECK=1`` opts in.
    """
    if abs(denom) < health.LAMBDA_SINGULAR_TOL:
        obs.health_event(
            "health.rank_one.near_singular",
            abs(denom),
            health.LAMBDA_SINGULAR_TOL,
            severity="warning",
            direction="below",
            message="|1 + lambda| near zero: s close to a closed-loop pole",
            size=int(column.size),
        )
    if health.smw_probe_enabled() and abs(denom) >= 1e-300:
        smw_identity_check(column, row, rtol=health.SMW_RESIDUAL_TOL)


def smw_identity_check(
    column: np.ndarray, row: np.ndarray, rtol: float = 1e-9
) -> health.CheckResult:
    """Residual of ``(I + C r^T) (I - C r^T/(1+lam)) - I`` as a structured check.

    Returns a :class:`repro.obs.health.CheckResult` whose value is the
    maximum absolute element of the residual matrix and whose threshold is
    ``rtol``.  The result still compares like the bare float this function
    historically returned (``smw_identity_check(c, r) < 1e-12`` works
    unchanged).  A failing check emits a warning health event when
    observability is enabled.
    """
    column = np.asarray(column, dtype=complex)
    row = np.asarray(row, dtype=complex)
    n = column.size
    lam = complex(row @ column)
    eye = np.eye(n, dtype=complex)
    forward = eye + np.outer(column, row)
    inverse = eye - np.outer(column, row) / (1.0 + lam)
    residual = float(np.max(np.abs(forward @ inverse - eye)))
    result = health.CheckResult(
        "smw_identity_check", residual, float(rtol), residual <= float(rtol)
    )
    if not result.passed:
        obs.health_event(
            "health.rank_one.smw_residual",
            residual,
            float(rtol),
            severity="warning",
            message="SMW closure disagrees with the dense inverse",
            size=int(n),
        )
    return result
