"""Frequency sweeps and band-transfer maps of harmonic operators.

These helpers turn a lazy :class:`~repro.core.operators.HarmonicOperator`
into the arrays the experiments plot: an element ``H_{n,m}(j omega)`` versus
frequency, the full matrix stack over a grid, or the Fig. 2-style map of how
much power each input band contributes to each output band.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._errors import ValidationError
from repro._validation import as_float_array, check_order
from repro.core.operators import HarmonicOperator


def sweep_matrix(
    operator: HarmonicOperator,
    omega: Sequence[float] | np.ndarray,
    order: int,
) -> np.ndarray:
    """Evaluate the truncated HTM on ``s = j omega`` for each grid frequency.

    Returns an array of shape ``(len(omega), 2*order+1, 2*order+1)`` suitable
    for :meth:`repro.signals.spectra.BasebandVector.apply_matrix`.
    """
    omega_arr = as_float_array("omega", omega)
    order = check_order("order", order, minimum=0)
    size = 2 * order + 1
    out = np.empty((omega_arr.size, size, size), dtype=complex)
    for i, w in enumerate(omega_arr):
        out[i] = operator.dense(1j * w, order)
    return out


def sweep_element(
    operator: HarmonicOperator,
    omega: Sequence[float] | np.ndarray,
    n: int,
    m: int,
    order: int | None = None,
) -> np.ndarray:
    """Evaluate a single element ``H_{n,m}(j omega)`` over a frequency grid.

    ``order`` defaults to ``max(|n|, |m|, 1)``; note that for operators whose
    element values depend on truncation (feedback closures), the order should
    be chosen with :func:`repro.core.truncation.choose_truncation_order`.
    """
    omega_arr = as_float_array("omega", omega)
    if order is None:
        order = max(abs(n), abs(m), 1)
    order = check_order("order", order, minimum=0)
    if max(abs(n), abs(m)) > order:
        raise ValidationError(f"element ({n},{m}) outside truncation order {order}")
    out = np.empty(omega_arr.size, dtype=complex)
    for i, w in enumerate(omega_arr):
        out[i] = operator.htm(1j * w, order).element(n, m)
    return out


def band_transfer_map(
    operator: HarmonicOperator,
    omega: float,
    order: int,
) -> np.ndarray:
    """Magnitude map ``|H_{n,m}(j omega)|`` — the Fig. 2 picture at one frequency.

    Row ``n + order`` / column ``m + order`` gives the gain from input band
    ``m w0`` to output band ``n w0`` for baseband offset ``omega``.
    """
    order = check_order("order", order, minimum=0)
    mat = operator.dense(1j * float(omega), order)
    return np.abs(mat)


def dominant_conversion(
    operator: HarmonicOperator,
    omega: float,
    order: int,
    exclude_diagonal: bool = True,
) -> tuple[int, int, float]:
    """Strongest frequency-converting entry ``(n, m, gain)`` at one frequency.

    With ``exclude_diagonal`` the direct (non-converting) transfers are
    ignored, isolating the genuinely time-varying behaviour; an LTI operator
    then reports zero gain.
    """
    mags = band_transfer_map(operator, omega, order)
    if exclude_diagonal:
        np.fill_diagonal(mags, 0.0)
    idx = np.unravel_index(int(np.argmax(mags)), mags.shape)
    return idx[0] - order, idx[1] - order, float(mags[idx])
