"""Frequency sweeps and band-transfer maps of harmonic operators.

These helpers turn a lazy :class:`~repro.core.operators.HarmonicOperator`
into the arrays the experiments plot: an element ``H_{n,m}(j omega)`` versus
frequency, the full matrix stack over a grid, or the Fig. 2-style map of how
much power each input band contributes to each output band.

All of them ride on the batched evaluation API
(:meth:`~repro.core.operators.HarmonicOperator.dense_grid`): the whole grid
is evaluated as one vectorized ``(len(omega), 2K+1, 2K+1)`` stack instead of
a Python loop per frequency, and repeated sweeps of the same operator/grid
hit the memoization layer of :mod:`repro.core.memo`.  Grids may be given as
a :class:`~repro.core.grid.FrequencyGrid` or as a raw ``omega`` array.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._errors import ValidationError
from repro._validation import check_order
from repro.core.grid import FrequencyGrid, as_omega_grid
from repro.core.operators import HarmonicOperator, default_element_order


def sweep_matrix(
    operator: HarmonicOperator,
    omega: FrequencyGrid | Sequence[float] | np.ndarray,
    order: int,
) -> np.ndarray:
    """Evaluate the truncated HTM on ``s = j omega`` for each grid frequency.

    Returns an array of shape ``(len(omega), 2*order+1, 2*order+1)`` suitable
    for :meth:`repro.signals.spectra.BasebandVector.apply_matrix`.  The
    result comes from the (cached) batched path and is **read-only**;
    ``.copy()`` before mutating.
    """
    omega_arr = as_omega_grid("omega", omega)
    order = check_order("order", order, minimum=0)
    return operator.dense_grid(1j * omega_arr, order)


def sweep_element(
    operator: HarmonicOperator,
    omega: FrequencyGrid | Sequence[float] | np.ndarray,
    n: int,
    m: int,
    order: int | None = None,
) -> np.ndarray:
    """Evaluate a single element ``H_{n,m}(j omega)`` over a frequency grid.

    ``order`` defaults to the canonical rule ``max(|n|, |m|, 1)`` (see
    :func:`repro.core.operators.default_element_order`); for operators whose
    element values depend on truncation (feedback closures), the order should
    be chosen with :func:`repro.core.truncation.choose_truncation_order`.
    """
    omega_arr = as_omega_grid("omega", omega)
    if order is None:
        order = default_element_order(n, m)
    order = check_order("order", order, minimum=0)
    if max(abs(n), abs(m)) > order:
        raise ValidationError(f"element ({n},{m}) outside truncation order {order}")
    stack = operator.dense_grid(1j * omega_arr, order)
    return stack[:, n + order, m + order].copy()


def band_transfer_map(
    operator: HarmonicOperator,
    omega: float | FrequencyGrid | Sequence[float] | np.ndarray,
    order: int,
) -> np.ndarray:
    """Magnitude map ``|H_{n,m}(j omega)|`` — the Fig. 2 picture.

    For a scalar ``omega`` the shape is ``(2*order+1, 2*order+1)``: row
    ``n + order`` / column ``m + order`` gives the gain from input band
    ``m w0`` to output band ``n w0`` for baseband offset ``omega``.  A
    :class:`~repro.core.grid.FrequencyGrid` or array input returns the
    batched stack of maps, shape ``(len(omega), 2*order+1, 2*order+1)``.
    """
    order = check_order("order", order, minimum=0)
    if not isinstance(omega, FrequencyGrid) and np.ndim(omega) == 0:
        mat = operator.dense(1j * float(omega), order)
        return np.abs(mat)
    omega_arr = as_omega_grid("omega", omega)
    return np.abs(operator.dense_grid(1j * omega_arr, order))


def dominant_conversion(
    operator: HarmonicOperator,
    omega: float,
    order: int,
    exclude_diagonal: bool = True,
) -> tuple[int, int, float]:
    """Strongest frequency-converting entry ``(n, m, gain)`` at one frequency.

    With ``exclude_diagonal`` the direct (non-converting) transfers are
    ignored, isolating the genuinely time-varying behaviour; an LTI operator
    then reports zero gain.
    """
    mags = band_transfer_map(operator, omega, order)
    if exclude_diagonal:
        np.fill_diagonal(mags, 0.0)
    idx = np.unravel_index(int(np.argmax(mags)), mags.shape)
    return idx[0] - order, idx[1] - order, float(mags[idx])
