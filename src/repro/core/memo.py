"""Evaluation-level memoization for batched HTM grid blocks.

Margin sweeps, stability maps and the figure experiments evaluate the same
operator stacks on the same frequency grids over and over — e.g. every
metric of :func:`repro.pll.sweeps.standard_metrics` rebuilds the closed
loop for the same PLL.  :class:`GridEvalCache` memoizes the result of
``operator.dense_grid(s, order)`` per *operator node*, keyed on

``(id-stable operator fingerprint, grid hash, truncation order[, flavor])``

so a composite evaluation reuses any child block that was already computed
for the same grid.  The optional ``flavor`` component separates evaluation
variants of the same operator/grid/order — structured evaluation uses
``("structured", backend_name)`` so a lazily-tagged
:class:`~repro.core.structured.StructuredGrid` and the dense oracle stack
never collide, and results from different compute backends stay distinct.

Scalar conveniences (``operator.dense``, ``operator.htm``) evaluate inside
:func:`bypass`, a scope in which :meth:`GridEvalCache.fetch` neither looks
up nor stores — one-point probes would otherwise churn the LRU and distort
scalar-vs-batched benchmarks.

Invalidation rules
------------------
* Fingerprints of value-based operators (Toeplitz multiplication, sampling,
  ISF integration, rational LTI embeddings) are content hashes — equal
  content hits the cache regardless of object identity.
* Operators wrapping *arbitrary callables* (irrational ``H(s)``, delays)
  are fingerprinted by ``id(callable)``.  Each cache entry keeps a strong
  reference to its operator, so an id can never be recycled while its entry
  is alive; evicting the entry drops the pin.  Mutating a callable in place
  is NOT tracked — treat transfer callables as immutable or call
  :func:`clear_cache`.
* Cached arrays are returned **read-only** (they may be shared between
  callers and with the cache).  ``.copy()`` before mutating.

The cache is a bounded LRU (default 256 grid blocks) with two further
optional limits:

* ``max_bytes`` — a byte budget over the summed logical ``nbytes`` of the
  live entries; inserting past it evicts LRU entries (the newest entry is
  always kept, even when it alone exceeds the budget — evicting the block
  the caller is about to use would only guarantee thrash).
* ``ttl_seconds`` — entries older than this (monotonic clock) are treated
  as absent: an expired hit is dropped, counted under ``expirations``, and
  recomputed.  The serving layer uses this so long-lived processes do not
  pin stale design results forever.

Disable the cache entirely with ``configure(enabled=False)`` to force
recomputation.

Multi-process use
-----------------
The cache is **per process**: pool workers (e.g. a
:mod:`repro.campaign` run) each own a private instance and silently warm
it from cold — an N-worker campaign pays up to N cold warm-ups.  Two hooks
make that visible and manageable:

* :func:`cache_snapshot` returns a plain-``dict`` (picklable) snapshot of
  the counters *plus* the configuration, safe to ship across process
  boundaries; the campaign telemetry aggregates per-worker deltas of it.
* :func:`configure` is **idempotent**: re-applying the current
  configuration is a no-op, so it is safe as a pool-worker initializer
  (both under ``fork``, where the worker inherits the parent's
  configuration, and under ``spawn``, where it starts fresh).
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import Any, Callable

import numpy as np

from repro.obs import spans as obs

__all__ = [
    "GridEvalCache",
    "grid_cache",
    "bypass",
    "bypass_active",
    "clear_cache",
    "cache_stats",
    "cache_snapshot",
    "configure",
]

_bypass = threading.local()


@contextmanager
def bypass():
    """Scope in which grid-cache fetches neither look up nor store.

    Used by the scalar conveniences (one-point grids) so probing a single
    frequency never evicts real grid blocks or pollutes hit/miss counters.
    Re-entrant and per-thread.
    """
    depth = getattr(_bypass, "depth", 0)
    _bypass.depth = depth + 1
    try:
        yield
    finally:
        _bypass.depth = depth


def bypass_active() -> bool:
    """True while inside a :func:`bypass` scope on this thread."""
    return getattr(_bypass, "depth", 0) > 0


def _grid_key(s_arr: np.ndarray) -> bytes:
    digest = hashlib.blake2b(digest_size=16)
    digest.update(s_arr.tobytes())
    digest.update(str(s_arr.shape).encode())
    return digest.digest()


#: Sentinel distinguishing "not passed" from an explicit ``None`` (= no
#: limit) in :meth:`GridEvalCache.configure`.
_UNSET: Any = object()


class GridEvalCache:
    """Bounded LRU cache of ``(fingerprint, grid, order) -> dense grid block``.

    Three eviction dimensions compose:

    * ``maxsize`` — entry-count LRU bound (the original limit);
    * ``max_bytes`` — byte budget over the summed logical ``nbytes``
      (``None`` = unlimited);
    * ``ttl_seconds`` — per-entry time-to-live on the monotonic clock
      (``None`` = entries never expire).
    """

    def __init__(
        self,
        maxsize: int = 256,
        max_bytes: int | None = None,
        ttl_seconds: float | None = None,
    ):
        self.maxsize = int(maxsize)
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self.ttl_seconds = None if ttl_seconds is None else float(ttl_seconds)
        self.enabled = True
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        # Byte-size estimate of the cached arrays (logical ``nbytes``; a
        # broadcast block counts at its logical, not physical, size).
        self.bytes = 0
        self._lock = threading.Lock()
        # key -> (value, pinned operator, stored_at). The pin keeps any
        # id()-based fingerprint component valid for the lifetime of the
        # entry; ``stored_at`` is the monotonic insertion time the TTL is
        # measured against.  Values are dense ndarray stacks or
        # StructuredGrid instances (both expose ``nbytes``; both are
        # immutable once stored).
        self._entries: "OrderedDict[tuple, tuple[object, object, float]]" = OrderedDict()

    @staticmethod
    def _key(operator, s_arr: np.ndarray, order: int, flavor: tuple | None) -> tuple:
        key = (operator.fingerprint(), _grid_key(s_arr), int(order))
        if flavor is not None:
            key = key + (flavor,)
        return key

    def _expired(self, stored_at: float) -> bool:
        return (
            self.ttl_seconds is not None
            and time.monotonic() - stored_at > self.ttl_seconds
        )

    def _get_locked(self, key: tuple):
        """Live entry value for ``key`` or None; drops expired entries.

        Counts a hit on success; callers count the miss (a pure lookup
        miss and a fetch miss are the same event).  Must hold ``_lock``.
        """
        entry = self._entries.get(key)
        if entry is None:
            return None
        if self._expired(entry[2]):
            del self._entries[key]
            self.bytes -= int(getattr(entry[0], "nbytes", 0))
            self.expirations += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry[0]

    def _store_locked(self, key: tuple, value, operator) -> int:
        """Insert ``value`` and enforce the count and byte limits."""
        previous = self._entries.pop(key, None)
        if previous is not None:
            self.bytes -= int(getattr(previous[0], "nbytes", 0))
        nbytes = int(getattr(value, "nbytes", 0))
        self._entries[key] = (value, operator, time.monotonic())
        self.bytes += nbytes
        while len(self._entries) > self.maxsize or (
            self.max_bytes is not None
            and self.bytes > self.max_bytes
            and len(self._entries) > 1
        ):
            _, (evicted, _pin, _t) = self._entries.popitem(last=False)
            self.bytes -= int(getattr(evicted, "nbytes", 0))
            self.evictions += 1
        return nbytes

    def fetch(
        self,
        operator,
        s_arr: np.ndarray,
        order: int,
        compute: Callable[[np.ndarray, int], np.ndarray],
        flavor: tuple | None = None,
    ) -> np.ndarray:
        """Return the cached grid block or compute, store and return it.

        ``flavor``, when given, becomes part of the key — evaluation
        variants (structured grids per backend) cache independently of the
        plain dense stack.
        """
        if not self.enabled or self.maxsize <= 0 or bypass_active():
            return compute(s_arr, order)
        key = self._key(operator, s_arr, order, flavor)
        with self._lock:
            value = self._get_locked(key)
        if value is not None:
            if obs.enabled():
                obs.add("memo.hit")
            return value
        value = compute(s_arr, order)
        if isinstance(value, np.ndarray):
            value = np.asarray(value)
            value.flags.writeable = False
        with self._lock:
            self.misses += 1
            nbytes = self._store_locked(key, value, operator)
        if obs.enabled():
            obs.add("memo.miss")
            obs.add("memo.bytes_stored", nbytes)
        return value

    def lookup(
        self,
        operator,
        s_arr: np.ndarray,
        order: int,
        flavor: tuple | None = None,
    ):
        """Non-computing probe: the cached value, or ``None`` on a miss.

        Counts hits and misses like :meth:`fetch`; pair with :meth:`store`
        when the computation happens elsewhere (the serving layer computes
        through the micro-batcher, then stores each request's slice).
        """
        if not self.enabled or self.maxsize <= 0 or bypass_active():
            return None
        key = self._key(operator, s_arr, order, flavor)
        with self._lock:
            value = self._get_locked(key)
            if value is None:
                self.misses += 1
        if obs.enabled():
            obs.add("memo.hit" if value is not None else "memo.miss")
        return value

    def store(
        self,
        operator,
        s_arr: np.ndarray,
        order: int,
        value,
        flavor: tuple | None = None,
    ) -> None:
        """Insert an externally computed value (no hit/miss accounting)."""
        if not self.enabled or self.maxsize <= 0 or bypass_active():
            return
        if isinstance(value, np.ndarray):
            value = np.asarray(value)
            value.flags.writeable = False
        key = self._key(operator, s_arr, order, flavor)
        with self._lock:
            nbytes = self._store_locked(key, value, operator)
        if obs.enabled():
            obs.add("memo.bytes_stored", nbytes)

    def purge_expired(self) -> int:
        """Drop every expired entry now; returns the number removed."""
        if self.ttl_seconds is None:
            return 0
        removed = 0
        with self._lock:
            for key in [
                k for k, (_v, _p, t) in self._entries.items() if self._expired(t)
            ]:
                value, _pin, _t = self._entries.pop(key)
                self.bytes -= int(getattr(value, "nbytes", 0))
                self.expirations += 1
                removed += 1
        return removed

    def clear(self) -> None:
        """Drop every entry (and the operator pins) and reset counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.expirations = 0
            self.bytes = 0

    def stats(self) -> dict[str, int]:
        """Current counters: hits/misses/evictions/expirations/entries/bytes/limits.

        ``bytes`` is the byte-size *estimate* of the live entries (summed
        logical ``nbytes``), the figure ``repro obs summary`` reports.
        """
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "expirations": self.expirations,
                "entries": len(self._entries),
                "bytes": self.bytes,
                "maxsize": self.maxsize,
                "max_bytes": self.max_bytes,
                "ttl_seconds": self.ttl_seconds,
            }

    def snapshot(self) -> dict[str, int | float | bool | None]:
        """Picklable snapshot: :meth:`stats` plus the configuration.

        Safe to send across process boundaries (plain builtins only) —
        campaign workers report deltas of this to the run telemetry.
        """
        out = self.stats()
        out["enabled"] = self.enabled
        return out

    def configure(
        self,
        enabled: bool | None = None,
        maxsize: int | None = None,
        max_bytes: int | None = _UNSET,
        ttl_seconds: float | None = _UNSET,
    ) -> None:
        """Toggle the cache or retune its limits (shrinking evicts LRU entries).

        ``max_bytes`` / ``ttl_seconds`` accept an explicit ``None`` to
        remove the respective limit; leaving them unpassed changes nothing.
        Idempotent: re-applying the current values changes nothing (no
        eviction, no counter reset), so this is safe to call once per pool
        worker regardless of the start method.
        """
        with self._lock:
            if enabled is not None:
                self.enabled = bool(enabled)
            if ttl_seconds is not _UNSET:
                new_ttl = None if ttl_seconds is None else float(ttl_seconds)
                if new_ttl != self.ttl_seconds:
                    self.ttl_seconds = new_ttl
            changed_bytes = False
            if max_bytes is not _UNSET:
                new_bytes = None if max_bytes is None else int(max_bytes)
                if new_bytes != self.max_bytes:
                    self.max_bytes = new_bytes
                    changed_bytes = True
            if maxsize is not None and int(maxsize) != self.maxsize:
                self.maxsize = int(maxsize)
                changed_bytes = True
            if changed_bytes:
                while len(self._entries) > max(self.maxsize, 0) or (
                    self.max_bytes is not None
                    and self.bytes > self.max_bytes
                    and len(self._entries) > 1
                ):
                    _, (evicted, _pin, _t) = self._entries.popitem(last=False)
                    self.bytes -= int(getattr(evicted, "nbytes", 0))
                    self.evictions += 1


#: Process-wide cache used by :meth:`HarmonicOperator.dense_grid`.
grid_cache = GridEvalCache()


def clear_cache() -> None:
    """Clear the process-wide grid evaluation cache."""
    grid_cache.clear()


def cache_stats() -> dict[str, int]:
    """Counters of the process-wide grid evaluation cache."""
    return grid_cache.stats()


def cache_snapshot() -> dict[str, int | float | bool | None]:
    """Picklable snapshot (counters + config) of the process-wide cache."""
    return grid_cache.snapshot()


def configure(
    enabled: bool | None = None,
    maxsize: int | None = None,
    max_bytes: int | None = _UNSET,
    ttl_seconds: float | None = _UNSET,
) -> None:
    """Configure the process-wide grid evaluation cache."""
    grid_cache.configure(
        enabled=enabled,
        maxsize=maxsize,
        max_bytes=max_bytes,
        ttl_seconds=ttl_seconds,
    )
