"""Evaluation-level memoization for batched HTM grid blocks.

Margin sweeps, stability maps and the figure experiments evaluate the same
operator stacks on the same frequency grids over and over — e.g. every
metric of :func:`repro.pll.sweeps.standard_metrics` rebuilds the closed
loop for the same PLL.  :class:`GridEvalCache` memoizes the result of
``operator.dense_grid(s, order)`` per *operator node*, keyed on

``(id-stable operator fingerprint, grid hash, truncation order[, flavor])``

so a composite evaluation reuses any child block that was already computed
for the same grid.  The optional ``flavor`` component separates evaluation
variants of the same operator/grid/order — structured evaluation uses
``("structured", backend_name)`` so a lazily-tagged
:class:`~repro.core.structured.StructuredGrid` and the dense oracle stack
never collide, and results from different compute backends stay distinct.

Scalar conveniences (``operator.dense``, ``operator.htm``) evaluate inside
:func:`bypass`, a scope in which :meth:`GridEvalCache.fetch` neither looks
up nor stores — one-point probes would otherwise churn the LRU and distort
scalar-vs-batched benchmarks.

Invalidation rules
------------------
* Fingerprints of value-based operators (Toeplitz multiplication, sampling,
  ISF integration, rational LTI embeddings) are content hashes — equal
  content hits the cache regardless of object identity.
* Operators wrapping *arbitrary callables* (irrational ``H(s)``, delays)
  are fingerprinted by ``id(callable)``.  Each cache entry keeps a strong
  reference to its operator, so an id can never be recycled while its entry
  is alive; evicting the entry drops the pin.  Mutating a callable in place
  is NOT tracked — treat transfer callables as immutable or call
  :func:`clear_cache`.
* Cached arrays are returned **read-only** (they may be shared between
  callers and with the cache).  ``.copy()`` before mutating.

The cache is a bounded LRU (default 256 grid blocks); disable it entirely
with ``configure(enabled=False)`` to force recomputation.

Multi-process use
-----------------
The cache is **per process**: pool workers (e.g. a
:mod:`repro.campaign` run) each own a private instance and silently warm
it from cold — an N-worker campaign pays up to N cold warm-ups.  Two hooks
make that visible and manageable:

* :func:`cache_snapshot` returns a plain-``dict`` (picklable) snapshot of
  the counters *plus* the configuration, safe to ship across process
  boundaries; the campaign telemetry aggregates per-worker deltas of it.
* :func:`configure` is **idempotent**: re-applying the current
  configuration is a no-op, so it is safe as a pool-worker initializer
  (both under ``fork``, where the worker inherits the parent's
  configuration, and under ``spawn``, where it starts fresh).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable

import numpy as np

from repro.obs import spans as obs

__all__ = [
    "GridEvalCache",
    "grid_cache",
    "bypass",
    "bypass_active",
    "clear_cache",
    "cache_stats",
    "cache_snapshot",
    "configure",
]

_bypass = threading.local()


@contextmanager
def bypass():
    """Scope in which grid-cache fetches neither look up nor store.

    Used by the scalar conveniences (one-point grids) so probing a single
    frequency never evicts real grid blocks or pollutes hit/miss counters.
    Re-entrant and per-thread.
    """
    depth = getattr(_bypass, "depth", 0)
    _bypass.depth = depth + 1
    try:
        yield
    finally:
        _bypass.depth = depth


def bypass_active() -> bool:
    """True while inside a :func:`bypass` scope on this thread."""
    return getattr(_bypass, "depth", 0) > 0


def _grid_key(s_arr: np.ndarray) -> bytes:
    digest = hashlib.blake2b(digest_size=16)
    digest.update(s_arr.tobytes())
    digest.update(str(s_arr.shape).encode())
    return digest.digest()


class GridEvalCache:
    """Bounded LRU cache of ``(fingerprint, grid, order) -> dense grid block``."""

    def __init__(self, maxsize: int = 256):
        self.maxsize = int(maxsize)
        self.enabled = True
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Byte-size estimate of the cached arrays (logical ``nbytes``; a
        # broadcast block counts at its logical, not physical, size).
        self.bytes = 0
        self._lock = threading.Lock()
        # key -> (value, pinned operator). The pin keeps any id()-based
        # fingerprint component valid for the lifetime of the entry.  Values
        # are dense ndarray stacks or StructuredGrid instances (both expose
        # ``nbytes``; both are immutable once stored).
        self._entries: "OrderedDict[tuple, tuple[object, object]]" = OrderedDict()

    def fetch(
        self,
        operator,
        s_arr: np.ndarray,
        order: int,
        compute: Callable[[np.ndarray, int], np.ndarray],
        flavor: tuple | None = None,
    ) -> np.ndarray:
        """Return the cached grid block or compute, store and return it.

        ``flavor``, when given, becomes part of the key — evaluation
        variants (structured grids per backend) cache independently of the
        plain dense stack.
        """
        if not self.enabled or self.maxsize <= 0 or bypass_active():
            return compute(s_arr, order)
        key = (operator.fingerprint(), _grid_key(s_arr), int(order))
        if flavor is not None:
            key = key + (flavor,)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
        if entry is not None:
            if obs.enabled():
                obs.add("memo.hit")
            return entry[0]
        value = compute(s_arr, order)
        if isinstance(value, np.ndarray):
            value = np.asarray(value)
            value.flags.writeable = False
        nbytes = int(getattr(value, "nbytes", 0))
        with self._lock:
            self.misses += 1
            self._entries[key] = (value, operator)
            self._entries.move_to_end(key)
            self.bytes += nbytes
            while len(self._entries) > self.maxsize:
                _, (evicted, _pin) = self._entries.popitem(last=False)
                self.bytes -= int(getattr(evicted, "nbytes", 0))
                self.evictions += 1
        if obs.enabled():
            obs.add("memo.miss")
            obs.add("memo.bytes_stored", nbytes)
        return value

    def clear(self) -> None:
        """Drop every entry (and the operator pins) and reset counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.bytes = 0

    def stats(self) -> dict[str, int]:
        """Current counters: hits/misses/evictions/entries/bytes/maxsize.

        ``bytes`` is the byte-size *estimate* of the live entries (summed
        logical ``nbytes``), the figure ``repro obs summary`` reports.
        """
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._entries),
                "bytes": self.bytes,
                "maxsize": self.maxsize,
            }

    def snapshot(self) -> dict[str, int | bool]:
        """Picklable snapshot: :meth:`stats` plus the configuration.

        Safe to send across process boundaries (plain builtins only) —
        campaign workers report deltas of this to the run telemetry.
        """
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._entries),
                "bytes": self.bytes,
                "maxsize": self.maxsize,
                "enabled": self.enabled,
            }

    def configure(self, enabled: bool | None = None, maxsize: int | None = None) -> None:
        """Toggle the cache or resize it (shrinking evicts LRU entries).

        Idempotent: re-applying the current values changes nothing (no
        eviction, no counter reset), so this is safe to call once per pool
        worker regardless of the start method.
        """
        with self._lock:
            if enabled is not None:
                self.enabled = bool(enabled)
            if maxsize is not None and int(maxsize) != self.maxsize:
                self.maxsize = int(maxsize)
                while len(self._entries) > max(self.maxsize, 0):
                    _, (evicted, _pin) = self._entries.popitem(last=False)
                    self.bytes -= int(getattr(evicted, "nbytes", 0))
                    self.evictions += 1


#: Process-wide cache used by :meth:`HarmonicOperator.dense_grid`.
grid_cache = GridEvalCache()


def clear_cache() -> None:
    """Clear the process-wide grid evaluation cache."""
    grid_cache.clear()


def cache_stats() -> dict[str, int]:
    """Counters of the process-wide grid evaluation cache."""
    return grid_cache.stats()


def cache_snapshot() -> dict[str, int | bool]:
    """Picklable snapshot (counters + config) of the process-wide cache."""
    return grid_cache.snapshot()


def configure(enabled: bool | None = None, maxsize: int | None = None) -> None:
    """Configure the process-wide grid evaluation cache."""
    grid_cache.configure(enabled=enabled, maxsize=maxsize)
