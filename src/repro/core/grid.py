"""Frequency-grid value object for batched HTM evaluation.

Every figure, margin scan and stability map in this reproduction evaluates
transfers on a grid of frequencies.  :class:`FrequencyGrid` names that grid
once — real angular frequencies ``omega`` with the matching Laplace points
``s = j omega`` — so the batched evaluation API
(:meth:`~repro.core.operators.HarmonicOperator.dense_grid`,
:func:`~repro.core.sweep.sweep_matrix`, the closed-loop responses, the noise
analysis) can accept one object everywhere a raw ``omega`` array used to be
passed.  Raw array inputs remain accepted for backward compatibility via the
:func:`as_omega_grid` / :func:`as_s_grid` coercers.

Grids are immutable (the stored array is read-only), hashable, and expose a
stable :meth:`fingerprint` so evaluation results can be memoized against
them (see :mod:`repro.core.memo`).
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterator, Sequence

import numpy as np

from repro._errors import ValidationError
from repro._validation import as_float_array, check_order, check_positive

__all__ = ["FrequencyGrid", "as_omega_grid", "as_s_grid"]


class FrequencyGrid:
    """An immutable 1-D grid of real angular frequencies (rad/s).

    Parameters
    ----------
    omega:
        Finite real angular frequencies.  Any 1-D sequence; no ordering is
        enforced (margin tooling wants increasing grids, band maps may not).

    Notes
    -----
    ``grid.omega`` is the real grid and ``grid.s`` the imaginary-axis
    Laplace points ``j omega``.  Both are read-only views/copies — a grid
    never changes after construction, which is what makes it a safe
    memoization key.
    """

    __slots__ = ("_omega", "_s")

    def __init__(self, omega: Sequence[float] | np.ndarray):
        arr = as_float_array("omega", omega).copy()
        arr.flags.writeable = False
        object.__setattr__(self, "_omega", arr)
        object.__setattr__(self, "_s", None)

    def __setattr__(self, name, value):  # pragma: no cover - defensive
        raise AttributeError("FrequencyGrid is immutable")

    # -- constructors -------------------------------------------------------

    @classmethod
    def linear(cls, start: float, stop: float, points: int) -> "FrequencyGrid":
        """Uniformly spaced grid of ``points`` frequencies on [start, stop]."""
        points = check_order("points", points, minimum=1)
        if not (np.isfinite(start) and np.isfinite(stop)):
            raise ValidationError("start and stop must be finite")
        return cls(np.linspace(float(start), float(stop), points))

    @classmethod
    def log(cls, start: float, stop: float, points: int) -> "FrequencyGrid":
        """Logarithmically spaced grid; requires ``0 < start < stop``."""
        points = check_order("points", points, minimum=1)
        start = check_positive("start", start)
        stop = check_positive("stop", stop)
        if stop <= start:
            raise ValidationError(f"need start < stop, got [{start}, {stop}]")
        return cls(np.logspace(math.log10(start), math.log10(stop), points))

    @classmethod
    def baseband(
        cls,
        omega0: float,
        points: int = 200,
        lo_factor: float = 1e-3,
        hi_factor: float = 0.499,
    ) -> "FrequencyGrid":
        """Log grid over one alias band ``[lo_factor, hi_factor] * omega0``.

        The effective gain ``lambda`` repeats with period ``omega0``, so the
        scan up to just below ``omega0 / 2`` is the canonical margin grid.
        """
        omega0 = check_positive("omega0", omega0)
        if not 0.0 < lo_factor < hi_factor:
            raise ValidationError("need 0 < lo_factor < hi_factor")
        return cls.log(lo_factor * omega0, hi_factor * omega0, points)

    # -- accessors ----------------------------------------------------------

    @property
    def omega(self) -> np.ndarray:
        """The real angular-frequency grid (read-only array)."""
        return self._omega

    @property
    def s(self) -> np.ndarray:
        """The imaginary-axis Laplace points ``j omega`` (read-only array).

        Computed once and cached read-only: the serving micro-batcher and
        the campaign batch dispatch both hand out slices of this array to
        concurrent consumers, so a writable fresh copy per access would be
        a silent aliasing hazard (a consumer mutating its "own" slice would
        corrupt every other view of the same grid).
        """
        s = self._s
        if s is None:
            s = 1j * self._omega
            s.flags.writeable = False
            object.__setattr__(self, "_s", s)
        return s

    def __len__(self) -> int:
        return int(self._omega.size)

    def __iter__(self) -> Iterator[float]:
        return iter(self._omega)

    def __getitem__(self, index):
        return self._omega[index]

    def __eq__(self, other) -> bool:
        if not isinstance(other, FrequencyGrid):
            return NotImplemented
        return self._omega.shape == other._omega.shape and bool(
            np.array_equal(self._omega, other._omega)
        )

    def __hash__(self) -> int:
        return hash(self.fingerprint())

    def fingerprint(self) -> bytes:
        """Stable digest of the grid contents — the memoization key piece."""
        digest = hashlib.blake2b(digest_size=16)
        digest.update(self._omega.tobytes())
        digest.update(str(self._omega.shape).encode())
        return digest.digest()

    def __repr__(self) -> str:
        w = self._omega
        return (
            f"FrequencyGrid({w.size} points, "
            f"[{w.min():.6g}, {w.max():.6g}] rad/s)"
        )


def as_omega_grid(name: str, value) -> np.ndarray:
    """Coerce a :class:`FrequencyGrid` or raw array into real omegas.

    The single entry-point coercer used by every API that historically took
    a raw ``omega`` array (``eval_jomega``, ``sweep_element``,
    ``frequency_response``, the noise analysis, ...).
    """
    if isinstance(value, FrequencyGrid):
        return value.omega
    return as_float_array(name, value)


def as_s_grid(name: str, value) -> np.ndarray:
    """Coerce a :class:`FrequencyGrid` or complex array into Laplace points.

    A :class:`FrequencyGrid` maps to its imaginary-axis points ``j omega``;
    raw (real or complex) arrays are taken verbatim as ``s`` values.
    """
    if isinstance(value, FrequencyGrid):
        return value.s
    arr = np.atleast_1d(np.asarray(value, dtype=complex))
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValidationError(f"{name} must not be empty")
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} must contain only finite values")
    return arr
