"""Dense truncated harmonic transfer matrices.

An :class:`HTM` is a snapshot of a harmonic transfer matrix at one complex
frequency ``s``, truncated to harmonics ``-K .. K`` and stored as a dense
``(2K+1, 2K+1)`` complex matrix.  Row/column index ``i`` corresponds to
harmonic ``i - K``; :meth:`HTM.element` uses the paper's ``(n, m)`` harmonic
indices directly.

Snapshots support the composition rules of paper eqs. (10)–(11) — parallel
connection is matrix addition, series connection ``y = H2[H1[u]]`` is the
matrix product ``H2 @ H1`` — plus truncated inversion for feedback loops.
"""

from __future__ import annotations

import numpy as np

from repro._errors import TruncationError, ValidationError
from repro._validation import check_positive


class HTM:
    """A truncated harmonic transfer matrix evaluated at one frequency.

    Parameters
    ----------
    matrix:
        Square complex array of odd size ``2K+1``.
    omega0:
        Fundamental angular frequency of the underlying LPTV system (rad/s).
    s:
        The complex frequency the snapshot was evaluated at.
    """

    __slots__ = ("_matrix", "_omega0", "_s")

    def __init__(self, matrix: np.ndarray, omega0: float, s: complex = 0j):
        matrix = np.asarray(matrix, dtype=complex)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValidationError(f"HTM matrix must be square, got shape {matrix.shape}")
        if matrix.shape[0] % 2 == 0:
            raise ValidationError(
                f"HTM size must be odd (harmonics -K..K), got {matrix.shape[0]}"
            )
        self._matrix = matrix.copy()
        self._omega0 = check_positive("omega0", omega0)
        self._s = complex(s)

    # -- accessors -----------------------------------------------------------

    @property
    def matrix(self) -> np.ndarray:
        """Copy of the dense matrix (index ``i`` = harmonic ``i - K``)."""
        return self._matrix.copy()

    @property
    def omega0(self) -> float:
        """Fundamental angular frequency (rad/s)."""
        return self._omega0

    @property
    def s(self) -> complex:
        """Evaluation frequency of this snapshot."""
        return self._s

    @property
    def order(self) -> int:
        """Truncation order K."""
        return (self._matrix.shape[0] - 1) // 2

    @property
    def size(self) -> int:
        """Matrix dimension ``2K + 1``."""
        return self._matrix.shape[0]

    def element(self, n: int, m: int) -> complex:
        """Matrix element ``H_{n,m}(s)``: transfer from band ``m w0`` to ``n w0``."""
        k = self.order
        if abs(n) > k or abs(m) > k:
            raise TruncationError(
                f"harmonic index ({n}, {m}) outside truncation ±{k}"
            )
        return complex(self._matrix[n + k, m + k])

    def harmonic_transfer(self, k: int) -> np.ndarray:
        """The ``k``-th diagonal: samples of the harmonic transfer function ``H_k``.

        Entry ``i`` is ``H_k(s + j m w0)`` for ``m = -K+max(k,0) .. K+min(k,0)``
        ordered by increasing ``m`` (paper eq. 5 with ``n - m = k``).
        """
        if abs(k) > 2 * self.order:
            raise TruncationError(f"diagonal {k} outside matrix of order {self.order}")
        return np.diagonal(self._matrix, offset=-k).copy()

    def baseband_transfer(self) -> complex:
        """The ``(0, 0)`` element — baseband-to-baseband transfer (eq. 38)."""
        return self.element(0, 0)

    def is_diagonal(self, tol: float = 1e-12) -> bool:
        """True when all off-diagonal entries are negligible (LTI behaviour)."""
        off = self._matrix - np.diag(np.diag(self._matrix))
        scale = max(np.max(np.abs(self._matrix)), 1.0)
        return bool(np.max(np.abs(off)) <= tol * scale)

    def numerical_rank(self, tol: float = 1e-9) -> int:
        """Rank by singular-value threshold relative to the largest."""
        svals = np.linalg.svd(self._matrix, compute_uv=False)
        if svals.size == 0 or svals[0] == 0:
            return 0
        return int(np.sum(svals > tol * svals[0]))

    # -- composition (paper eqs. 10-11) ---------------------------------------

    def _check_compatible(self, other: "HTM") -> None:
        if self.size != other.size:
            raise ValidationError(f"HTM size mismatch: {self.size} vs {other.size}")
        if abs(self._omega0 - other._omega0) > 1e-12 * self._omega0:
            raise ValidationError("HTM fundamental frequencies differ")
        if abs(self._s - other._s) > 1e-9 * (1.0 + abs(self._s)):
            raise ValidationError(
                f"HTM snapshots evaluated at different s: {self._s} vs {other._s}"
            )

    def __add__(self, other: "HTM") -> "HTM":
        """Parallel connection (eq. 10)."""
        self._check_compatible(other)
        return HTM(self._matrix + other._matrix, self._omega0, self._s)

    def __sub__(self, other: "HTM") -> "HTM":
        self._check_compatible(other)
        return HTM(self._matrix - other._matrix, self._omega0, self._s)

    def __neg__(self) -> "HTM":
        return HTM(-self._matrix, self._omega0, self._s)

    def __matmul__(self, other: "HTM") -> "HTM":
        """Series connection ``self`` after ``other`` (eq. 11: ``H2 @ H1``)."""
        self._check_compatible(other)
        return HTM(self._matrix @ other._matrix, self._omega0, self._s)

    def __mul__(self, scalar) -> "HTM":
        if not isinstance(scalar, (int, float, complex, np.number)):
            raise TypeError("use @ for series composition; * is scalar scaling")
        return HTM(self._matrix * complex(scalar), self._omega0, self._s)

    __rmul__ = __mul__

    def apply(self, vector: np.ndarray) -> np.ndarray:
        """Apply to a stacked signal vector ``[U_{-K} .. U_{K}]`` (eq. 6/9)."""
        vector = np.asarray(vector, dtype=complex)
        if vector.shape != (self.size,):
            raise ValidationError(f"vector must have shape ({self.size},), got {vector.shape}")
        return self._matrix @ vector

    @classmethod
    def identity(cls, order: int, omega0: float, s: complex = 0j) -> "HTM":
        """The identity HTM (the memoryless unity system)."""
        return cls(np.eye(2 * order + 1, dtype=complex), omega0, s)

    @classmethod
    def from_stack(cls, stack, omega0: float, s_arr, index: int = 0) -> "HTM":
        """Snapshot one slice of a batched ``(L, N, N)`` grid stack.

        The slice is copied, so read-only stacks (memoized grid blocks,
        densified :class:`~repro.core.structured.StructuredGrid` results)
        are safe sources.
        """
        stack = np.asarray(stack)
        if stack.ndim != 3:
            raise ValidationError(
                f"grid stack must be 3-D (points, size, size), got shape {stack.shape}"
            )
        s_arr = np.asarray(s_arr, dtype=complex)
        return cls(stack[index], omega0, complex(s_arr[index]))

    def inverse(self, rcond: float = 1e-12) -> "HTM":
        """Truncated matrix inverse.

        Raises
        ------
        TruncationError
            If the matrix is numerically singular at this truncation: the
            operator may be rank-deficient in the full space (e.g. the
            sampling operator) or the truncation too small.
        """
        svals = np.linalg.svd(self._matrix, compute_uv=False)
        if svals[-1] <= rcond * svals[0]:
            raise TruncationError(
                f"HTM numerically singular (cond ~ {svals[0] / max(svals[-1], 1e-300):.3g}); "
                "cannot invert at this truncation"
            )
        return HTM(np.linalg.inv(self._matrix), self._omega0, self._s)

    def feedback_closure(self) -> "HTM":
        """Closed loop ``(I + H)^{-1} H`` of a negative-feedback loop (eq. 28)."""
        eye = np.eye(self.size, dtype=complex)
        closed = np.linalg.solve(eye + self._matrix, self._matrix)
        return HTM(closed, self._omega0, self._s)

    def truncated(self, order: int) -> "HTM":
        """Central sub-matrix at a smaller truncation order."""
        if order > self.order:
            raise TruncationError(
                f"cannot grow snapshot from order {self.order} to {order}"
            )
        k = self.order
        sl = slice(k - order, k + order + 1)
        return HTM(self._matrix[sl, sl], self._omega0, self._s)

    def __repr__(self) -> str:
        return f"HTM(order={self.order}, omega0={self._omega0:.6g}, s={self._s:.6g})"
