"""Lazy, composable LPTV operators with HTM evaluation.

A :class:`HarmonicOperator` represents an LPTV system symbolically and can
produce its truncated HTM at any complex frequency and truncation order.
Keeping operators lazy (instead of fixing a truncation up front) lets the
same loop description be evaluated at whatever order an accuracy target
demands — the truncation study of DESIGN.md ablation A3 relies on this.

Primitive operators mirror the paper's building blocks:

* :class:`LTIOperator` — diagonal HTM ``H(s + j n w0)`` (eq. 12);
* :class:`MultiplicationOperator` — Toeplitz HTM ``P_{n-m}`` (eq. 13);
* :class:`SamplingOperator` — the impulse-train sampler, rank-one
  ``(w0/2pi) l l^T`` (eqs. 19–20);
* :class:`IsfIntegrationOperator` — the VCO phase operator
  ``v_{n-m} / (s + j n w0)`` (eq. 25).

Composites: :class:`SeriesOperator`, :class:`ParallelOperator`,
:class:`ScaledOperator`, :class:`FeedbackOperator`.

Evaluation comes in two flavours:

* :meth:`HarmonicOperator.dense` — one dense matrix at one scalar ``s``;
* :meth:`HarmonicOperator.dense_grid` — the **batched API**: a
  ``(len(s), 2K+1, 2K+1)`` stack for a whole frequency grid at once.  Every
  primitive and composite overrides the vectorized kernel
  (:meth:`_dense_grid`); the base class provides a correct-by-construction
  fallback that loops over :meth:`dense`.  Results are memoized per
  operator node in :data:`repro.core.memo.grid_cache` and returned
  **read-only** — ``.copy()`` before mutating.
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod


import numpy as np

from repro._errors import ValidationError
from repro._validation import check_order, check_positive
from repro.core.grid import as_s_grid
from repro.core.htm import HTM
from repro.core.memo import grid_cache
from repro.obs import health
from repro.obs import spans as obs
from repro.signals.fourier import FourierSeries
from repro.signals.isf import ImpulseSensitivity


def default_element_order(n: int, m: int) -> int:
    """The canonical default truncation order for a single element request.

    ``max(|n|, |m|, 1)`` — never less than 1, so feedback closures are never
    silently evaluated on a degenerate 1x1 truncation.  This is the one rule
    used by both :meth:`HarmonicOperator.element` and
    :func:`repro.core.sweep.sweep_element`; the historical
    ``max(|n|, |m|)`` default of ``element`` (order 0 for the baseband
    element) is deprecated.
    """
    return max(abs(n), abs(m), 1)


class HarmonicOperator(ABC):
    """Abstract LPTV operator on a fundamental frequency ``omega0``."""

    def __init__(self, omega0: float):
        self._omega0 = check_positive("omega0", omega0)

    @property
    def omega0(self) -> float:
        """Fundamental angular frequency (rad/s)."""
        return self._omega0

    @property
    def period(self) -> float:
        """Fundamental period in seconds."""
        return 2 * np.pi / self._omega0

    @abstractmethod
    def dense(self, s: complex, order: int) -> np.ndarray:
        """Dense ``(2*order+1)^2`` matrix of the truncated HTM at ``s``."""

    # -- batched evaluation -------------------------------------------------

    def dense_grid(self, s, order: int) -> np.ndarray:
        """Batched HTM stack ``(len(s), 2*order+1, 2*order+1)`` over a grid.

        ``s`` may be a :class:`~repro.core.grid.FrequencyGrid` (evaluated on
        ``j omega``) or any 1-D array of complex Laplace points.  Results
        are memoized per operator node (see :mod:`repro.core.memo`) and are
        **read-only**; ``.copy()`` before mutating.

        Subclasses override :meth:`_dense_grid` with genuinely vectorized
        kernels; the base fallback loops over :meth:`dense`, so
        ``dense_grid(s, order)[i] == dense(s[i], order)`` holds for every
        operator by construction (and is enforced by the property suite).
        """
        s_arr = as_s_grid("s", s)
        order = check_order("order", order, minimum=0)
        if obs.enabled():
            # Spans nest: a composite's children report under its path, so
            # `repro obs top` separates e.g. a feedback solve's inner grid
            # evaluations from standalone sweeps of the same operator.
            with obs.span(
                "core.dense_grid",
                op=type(self).__name__,
                points=int(s_arr.size),
                order=int(order),
            ):
                out = grid_cache.fetch(self, s_arr, order, self._dense_grid)
                health.check_finite(
                    "health.dense_grid.nonfinite", out, op=type(self).__name__
                )
                return out
        return grid_cache.fetch(self, s_arr, order, self._dense_grid)

    def _dense_grid(self, s_arr: np.ndarray, order: int) -> np.ndarray:
        """Vectorized kernel behind :meth:`dense_grid`; fallback loops."""
        size = 2 * order + 1
        out = np.empty((s_arr.size, size, size), dtype=complex)
        for i, si in enumerate(s_arr):
            out[i] = self.dense(complex(si), order)
        return out

    def _diag_grid(self, s_arr: np.ndarray, order: int) -> np.ndarray | None:
        """Batched diagonal ``(len(s), 2*order+1)`` for diagonal operators.

        Returns ``None`` for operators whose HTM is not structurally
        diagonal.  :class:`SeriesOperator` uses this to replace a stacked
        matmul with broadcast row/column scaling when one factor is an LTI
        embedding — scaling by a diagonal is exactly what the matmul
        computes, minus the arithmetic on the structural zeros.
        """
        return None

    def fingerprint(self) -> tuple:
        """Hashable, id-stable structural key for grid memoization.

        Value-based where the operator content is plain data; falls back to
        object identity for opaque subclasses (the cache pins the operator
        so the id cannot be recycled while the entry lives).
        """
        return (type(self).__name__, id(self))

    def htm(self, s: complex, order: int) -> HTM:
        """Evaluate the truncated HTM snapshot at ``s``."""
        order = check_order("order", order, minimum=0)
        return HTM(self.dense(complex(s), order), self._omega0, complex(s))

    def element(self, s: complex, n: int, m: int, order: int | None = None) -> complex:
        """Single HTM element ``H_{n,m}(s)``.

        ``order`` defaults to the canonical rule ``max(|n|, |m|, 1)`` (see
        :func:`default_element_order`).  The historical default
        ``max(|n|, |m|)`` — which evaluated the baseband element on a
        degenerate order-0 truncation — is deprecated; a warning is emitted
        in the only case where the two rules differ (``n == m == 0``).
        """
        if order is None:
            if n == 0 and m == 0:
                warnings.warn(
                    "element(s, 0, 0) now defaults to truncation order 1 "
                    "(canonical rule max(|n|, |m|, 1)); the old order-0 "
                    "default is deprecated — pass order=0 explicitly if the "
                    "degenerate 1x1 truncation is really wanted",
                    DeprecationWarning,
                    stacklevel=2,
                )
            order = default_element_order(n, m)
        return self.htm(s, order).element(n, m)

    # -- composition sugar ------------------------------------------------------

    def _check_same_fundamental(self, other: "HarmonicOperator") -> None:
        if abs(self._omega0 - other._omega0) > 1e-12 * self._omega0:
            raise ValidationError("operators have different fundamental frequencies")

    def __matmul__(self, other: "HarmonicOperator") -> "SeriesOperator":
        """Series: ``self`` applied after ``other`` (paper eq. 11)."""
        return SeriesOperator(self, other)

    def __add__(self, other: "HarmonicOperator") -> "ParallelOperator":
        """Parallel connection (paper eq. 10)."""
        return ParallelOperator(self, other)

    def __mul__(self, scalar) -> "ScaledOperator":
        if isinstance(scalar, np.ndarray):
            if scalar.ndim != 0:
                raise TypeError(
                    "operator * expects a scalar, got an array of shape "
                    f"{scalar.shape}; use @ for composition"
                )
            scalar = scalar[()]  # unwrap the 0-d array to a NumPy scalar
        if not isinstance(scalar, (int, float, complex, np.number)):
            raise TypeError("operator * expects a scalar; use @ for composition")
        return ScaledOperator(self, complex(scalar))

    __rmul__ = __mul__

    def __neg__(self) -> "ScaledOperator":
        return ScaledOperator(self, -1.0)

    def feedback(self) -> "FeedbackOperator":
        """Negative-feedback closure ``(I + self)^{-1} self`` (eq. 28)."""
        return FeedbackOperator(self)


class IdentityOperator(HarmonicOperator):
    """The identity system ``y = u``."""

    def dense(self, s: complex, order: int) -> np.ndarray:
        return np.eye(2 * order + 1, dtype=complex)

    def _dense_grid(self, s_arr: np.ndarray, order: int) -> np.ndarray:
        size = 2 * order + 1
        eye = np.eye(size, dtype=complex)
        return np.broadcast_to(eye, (s_arr.size, size, size))

    def _diag_grid(self, s_arr: np.ndarray, order: int) -> np.ndarray:
        return np.ones((s_arr.size, 2 * order + 1), dtype=complex)

    def fingerprint(self) -> tuple:
        return ("identity", self._omega0)


def _transfer_fingerprint(transfer) -> tuple:
    """Value-based key for rational transfers, id-based for raw callables."""
    num = getattr(transfer, "num", None)
    den = getattr(transfer, "den", None)
    if isinstance(num, np.ndarray) and isinstance(den, np.ndarray):
        return ("rational", num.tobytes(), den.tobytes())
    return ("callable", id(transfer))


class LTIOperator(HarmonicOperator):
    """An LTI system embedded as a diagonal HTM (paper eq. 12).

    ``transfer`` may be a :class:`~repro.lti.transfer.TransferFunction`, a
    :class:`~repro.lti.rational.RationalFunction`, or any scalar callable
    ``H(s)`` (which permits irrational responses such as delays).
    """

    def __init__(self, transfer, omega0: float):
        super().__init__(omega0)
        if not callable(transfer):
            raise ValidationError("transfer must be callable as H(s)")
        self.transfer = transfer

    def _transfer_values(self, s_grid: np.ndarray) -> np.ndarray:
        """Evaluate the transfer on an arbitrary-shape complex grid.

        Tries the callable directly (rational transfers and well-behaved
        closures broadcast over NumPy arrays); falls back to an element-wise
        loop for scalar-only callables — which also re-raises any genuine
        evaluation error.
        """
        try:
            values = np.asarray(self.transfer(s_grid), dtype=complex)
            if values.shape == s_grid.shape:
                return values
        except Exception:
            pass
        flat = np.array(
            [self.transfer(complex(si)) for si in s_grid.ravel()], dtype=complex
        )
        return flat.reshape(s_grid.shape)

    def dense(self, s: complex, order: int) -> np.ndarray:
        n = np.arange(-order, order + 1)
        diag = self._transfer_values(s + 1j * n * self._omega0)
        return np.diag(diag)

    def _dense_grid(self, s_arr: np.ndarray, order: int) -> np.ndarray:
        n = np.arange(-order, order + 1)
        diag = self._transfer_values(s_arr[:, None] + 1j * self._omega0 * n[None, :])
        size = n.size
        out = np.zeros((s_arr.size, size, size), dtype=complex)
        idx = np.arange(size)
        out[:, idx, idx] = diag
        return out

    def _diag_grid(self, s_arr: np.ndarray, order: int) -> np.ndarray:
        n = np.arange(-order, order + 1)
        return self._transfer_values(s_arr[:, None] + 1j * self._omega0 * n[None, :])

    def fingerprint(self) -> tuple:
        return ("lti", self._omega0, _transfer_fingerprint(self.transfer))


class MultiplicationOperator(HarmonicOperator):
    """Memoryless multiplication ``y(t) = p(t) u(t)`` (paper eq. 13)."""

    def __init__(self, series: FourierSeries):
        super().__init__(series.omega0)
        self.series = series

    def dense(self, s: complex, order: int) -> np.ndarray:
        # The Toeplitz HTM is independent of s.
        return self.series.toeplitz(2 * order + 1)

    def _dense_grid(self, s_arr: np.ndarray, order: int) -> np.ndarray:
        size = 2 * order + 1
        mat = self.series.toeplitz(size)
        # s-independent: one Toeplitz block broadcast (zero-copy) over the grid.
        return np.broadcast_to(mat, (s_arr.size, size, size))

    def fingerprint(self) -> tuple:
        return ("mult", self._omega0, self.series.coefficients.tobytes())


class SamplingOperator(HarmonicOperator):
    """Ideal impulse-train sampler ``y(t) = sum_m delta(t - mT - offset) u(t)``.

    With zero offset this is the paper's sampling-PFD kernel: the rank-one
    all-ones HTM scaled by ``w0 / 2pi`` (eqs. 19–20).  A non-zero sampling
    phase ``offset`` (sampling instants ``t_m = m T + offset``) rotates the
    kernel coefficients to ``P_k = (1/T) exp(-j k w0 offset)`` but preserves
    rank one.
    """

    def __init__(self, omega0: float, offset: float = 0.0):
        super().__init__(omega0)
        self.offset = float(offset)

    def column_vector(self, order: int) -> np.ndarray:
        """The rank-one column factor: ``exp(-j n w0 offset)`` per output harmonic."""
        n = np.arange(-order, order + 1)
        return np.exp(-1j * n * self._omega0 * self.offset)

    def row_vector(self, order: int) -> np.ndarray:
        """The rank-one row factor: ``exp(-j m w0 offset)`` per input harmonic."""
        return np.conj(self.column_vector(order))

    def dense(self, s: complex, order: int) -> np.ndarray:
        gain = self._omega0 / (2 * np.pi)
        col = self.column_vector(order)
        row = self.row_vector(order)
        return gain * np.outer(col, row)

    def _dense_grid(self, s_arr: np.ndarray, order: int) -> np.ndarray:
        size = 2 * order + 1
        # s-independent rank-one outer product broadcast over the grid.
        return np.broadcast_to(self.dense(0j, order), (s_arr.size, size, size))

    def fingerprint(self) -> tuple:
        return ("sampling", self._omega0, self.offset)


class IsfIntegrationOperator(HarmonicOperator):
    """The VCO phase operator: ISF multiplication followed by integration.

    Implements paper eq. (25): ``H[n, m](s) = v_{n-m} / (s + j n w0)``.
    For a time-invariant ISF the matrix is diagonal ``v0 / (s + j n w0)``,
    i.e. the LTI integrator of the classical analysis.
    """

    def __init__(self, isf: ImpulseSensitivity):
        super().__init__(isf.omega0)
        self.isf = isf

    def dense(self, s: complex, order: int) -> np.ndarray:
        return self._dense_grid(np.array([s], dtype=complex), order)[0].copy()

    def _nonzero_offsets(self) -> np.ndarray:
        """Toeplitz offsets ``k`` with ``v_k != 0`` (usually a handful)."""
        series = self.isf.series
        coeffs = series.coefficients
        return np.flatnonzero(coeffs) - series.order

    def _dense_grid(self, s_arr: np.ndarray, order: int) -> np.ndarray:
        size = 2 * order + 1
        n = np.arange(-order, order + 1)
        denom = s_arr[:, None] + 1j * n[None, :] * self._omega0  # (L, N)
        out = np.zeros((s_arr.size, size, size), dtype=complex)
        # Fill one Toeplitz band per non-zero ISF harmonic; structural zeros
        # are never divided, so they stay exact zeros even at the integrator
        # poles s = -j n w0.
        idx = np.arange(size)
        with np.errstate(divide="ignore"):
            for k in self._nonzero_offsets():
                rows = idx[(idx - k >= 0) & (idx - k < size)]
                if rows.size == 0:
                    continue
                vk = complex(self.isf.coefficient(int(k)))
                out[:, rows, rows - k] = vk / denom[:, rows]
        return out

    def _diag_grid(self, s_arr: np.ndarray, order: int) -> np.ndarray | None:
        offsets = self._nonzero_offsets()
        if offsets.size == 0:
            return np.zeros((s_arr.size, 2 * order + 1), dtype=complex)
        if np.any(offsets != 0):
            return None
        # Time-invariant ISF: the diagonal integrator v0 / (s + j n w0).
        n = np.arange(-order, order + 1)
        v0 = complex(self.isf.coefficient(0))
        with np.errstate(divide="ignore"):
            return v0 / (s_arr[:, None] + 1j * n[None, :] * self._omega0)

    def fingerprint(self) -> tuple:
        return ("isf", self._omega0, self.isf.series.coefficients.tobytes())


class SeriesOperator(HarmonicOperator):
    """Cascade ``y = first-then-second``: stored as (second, first)."""

    def __init__(self, second: HarmonicOperator, first: HarmonicOperator):
        second._check_same_fundamental(first)
        super().__init__(second.omega0)
        self.second = second
        self.first = first

    def dense(self, s: complex, order: int) -> np.ndarray:
        return self.second.dense(s, order) @ self.first.dense(s, order)

    def _dense_grid(self, s_arr: np.ndarray, order: int) -> np.ndarray:
        # A diagonal factor turns the stacked matmul into broadcast scaling
        # (what the matmul would compute, minus the structural-zero terms).
        diag_second = self.second._diag_grid(s_arr, order)
        if diag_second is not None:
            # Fold a whole chain of diagonal left factors into one scaling.
            inner = self.first
            while isinstance(inner, SeriesOperator):
                diag = inner.second._diag_grid(s_arr, order)
                if diag is None:
                    break
                diag_second = diag_second * diag
                inner = inner.first
            obs.add("core.series.diag_fastpath", side="left")
            return diag_second[:, :, None] * inner.dense_grid(s_arr, order)
        diag_first = self.first._diag_grid(s_arr, order)
        if diag_first is not None:
            obs.add("core.series.diag_fastpath", side="right")
            return self.second.dense_grid(s_arr, order) * diag_first[:, None, :]
        obs.add("core.series.matmul")
        return np.matmul(
            self.second.dense_grid(s_arr, order), self.first.dense_grid(s_arr, order)
        )

    def _diag_grid(self, s_arr: np.ndarray, order: int) -> np.ndarray | None:
        diag_second = self.second._diag_grid(s_arr, order)
        if diag_second is None:
            return None
        diag_first = self.first._diag_grid(s_arr, order)
        if diag_first is None:
            return None
        return diag_second * diag_first

    def fingerprint(self) -> tuple:
        return ("series", self.second.fingerprint(), self.first.fingerprint())


class ParallelOperator(HarmonicOperator):
    """Summing junction of two operators driven by the same input."""

    def __init__(self, left: HarmonicOperator, right: HarmonicOperator):
        left._check_same_fundamental(right)
        super().__init__(left.omega0)
        self.left = left
        self.right = right

    def dense(self, s: complex, order: int) -> np.ndarray:
        return self.left.dense(s, order) + self.right.dense(s, order)

    def _dense_grid(self, s_arr: np.ndarray, order: int) -> np.ndarray:
        return self.left.dense_grid(s_arr, order) + self.right.dense_grid(s_arr, order)

    def fingerprint(self) -> tuple:
        return ("parallel", self.left.fingerprint(), self.right.fingerprint())


class ScaledOperator(HarmonicOperator):
    """Scalar multiple of an operator."""

    def __init__(self, inner: HarmonicOperator, scalar: complex):
        super().__init__(inner.omega0)
        self.inner = inner
        self.scalar = complex(scalar)

    def dense(self, s: complex, order: int) -> np.ndarray:
        return self.scalar * self.inner.dense(s, order)

    def _dense_grid(self, s_arr: np.ndarray, order: int) -> np.ndarray:
        return self.scalar * self.inner.dense_grid(s_arr, order)

    def _diag_grid(self, s_arr: np.ndarray, order: int) -> np.ndarray | None:
        inner = self.inner._diag_grid(s_arr, order)
        if inner is None:
            return None
        return self.scalar * inner

    def fingerprint(self) -> tuple:
        return ("scaled", self.scalar, self.inner.fingerprint())


class FeedbackOperator(HarmonicOperator):
    """Dense negative-feedback closure ``(I + G)^{-1} G`` (paper eq. 28).

    This is the brute-force route the paper contrasts with the rank-one SMW
    closed form (:mod:`repro.core.rank_one`); it is kept as the reference
    implementation and as the general path for loops whose forward operator
    is *not* rank one.
    """

    def __init__(self, open_loop: HarmonicOperator):
        super().__init__(open_loop.omega0)
        self.open_loop = open_loop

    def dense(self, s: complex, order: int) -> np.ndarray:
        g = self.open_loop.dense(s, order)
        eye = np.eye(g.shape[0], dtype=complex)
        return np.linalg.solve(eye + g, g)

    def _dense_grid(self, s_arr: np.ndarray, order: int) -> np.ndarray:
        g = self.open_loop.dense_grid(s_arr, order)
        eye = np.eye(g.shape[-1], dtype=complex)
        if obs.enabled():
            # The dense linear solve is the expensive tail of a feedback
            # closure — spanned separately from the open-loop evaluation.
            with obs.span(
                "core.feedback.solve", points=int(s_arr.size), order=int(order)
            ):
                system = eye[None, :, :] + g
                with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
                    cond = np.linalg.cond(system)
                worst = float(np.max(cond)) if cond.size else 0.0
                if not np.isfinite(worst) or worst > health.CONDITION_LIMIT:
                    obs.health_event(
                        "health.feedback.condition",
                        worst,
                        health.CONDITION_LIMIT,
                        severity="warning",
                        message="ill-conditioned I + G in feedback solve",
                        order=int(order),
                    )
                return np.linalg.solve(system, g)
        return np.linalg.solve(eye[None, :, :] + g, g)

    def fingerprint(self) -> tuple:
        return ("feedback", self.open_loop.fingerprint())


def lti_diagonal(transfer, omega0: float, s: complex, order: int) -> np.ndarray:
    """Convenience: dense diagonal embedding of an LTI transfer at ``s``."""
    return LTIOperator(transfer, omega0).dense(s, order)


def ones_vector(order: int) -> np.ndarray:
    """The truncated all-ones vector ``l`` of paper eq. (20)."""
    check_order("order", order, minimum=0)
    return np.ones(2 * order + 1, dtype=complex)
