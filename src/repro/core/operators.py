"""Lazy, composable LPTV operators with structured HTM evaluation.

A :class:`HarmonicOperator` represents an LPTV system symbolically and can
produce its truncated HTM at any complex frequency and truncation order.
Keeping operators lazy (instead of fixing a truncation up front) lets the
same loop description be evaluated at whatever order an accuracy target
demands — the truncation study of DESIGN.md ablation A3 relies on this.

Primitive operators mirror the paper's building blocks:

* :class:`LTIOperator` — diagonal HTM ``H(s + j n w0)`` (eq. 12);
* :class:`MultiplicationOperator` — Toeplitz HTM ``P_{n-m}`` (eq. 13);
* :class:`SamplingOperator` — the impulse-train sampler, rank-one
  ``(w0/2pi) l l^T`` (eqs. 19–20);
* :class:`IsfIntegrationOperator` — the VCO phase operator
  ``v_{n-m} / (s + j n w0)`` (eq. 25).

Composites: :class:`SeriesOperator`, :class:`ParallelOperator`,
:class:`ScaledOperator`, :class:`FeedbackOperator`.

Evaluation comes in three flavours:

* :meth:`HarmonicOperator.evaluate` — the **preferred entry point**: a
  structure-tagged :class:`~repro.core.structured.StructuredGrid` over a
  whole frequency grid.  Primitives report their HTM structure (diagonal /
  banded / rank-one / dense) and composites compose the *tags* symbolically
  — a rank-one loop's feedback closure runs through the paper's SMW scalar
  denominator instead of a stacked solve — closing to numbers only at the
  terminal call, through a pluggable compute backend
  (:mod:`repro.core.backend`).
* :meth:`HarmonicOperator.dense_grid` — the batched **dense oracle**: a
  ``(len(s), 2K+1, 2K+1)`` stack built by brute-force composition
  (feedback really solves the stacked system).  The property suite asserts
  ``evaluate(...).to_dense()`` against it.
* :meth:`HarmonicOperator.dense` — one dense matrix at one scalar ``s``,
  delegated to the grid path via a one-point grid (cache-bypassed).

Grid results are memoized per operator node in
:data:`repro.core.memo.grid_cache` — structured and dense blocks under
separate cache flavors — and returned **read-only**; ``.copy()`` before
mutating.  Subclasses implement :meth:`_structured_grid`; overriding
:meth:`_dense_grid` directly still works but is deprecated.
"""

from __future__ import annotations

import warnings
from abc import ABC

import numpy as np

from repro._errors import ValidationError
from repro._validation import check_order, check_positive
from repro.core.backend import ComputeBackend, resolve_backend
from repro.core.grid import as_s_grid
from repro.core.htm import HTM
from repro.core.memo import bypass as memo_bypass
from repro.core.memo import grid_cache
from repro.core.structured import StructuredGrid
from repro.obs import health
from repro.obs import spans as obs
from repro.signals.fourier import FourierSeries
from repro.signals.isf import ImpulseSensitivity


def default_element_order(n: int, m: int) -> int:
    """The canonical default truncation order for a single element request.

    ``max(|n|, |m|, 1)`` — never less than 1, so feedback closures are never
    silently evaluated on a degenerate 1x1 truncation.  This is the one rule
    used by both :meth:`HarmonicOperator.element` and
    :func:`repro.core.sweep.sweep_element`; the historical
    ``max(|n|, |m|)`` default of ``element`` (order 0 for the baseband
    element) is deprecated.
    """
    return max(abs(n), abs(m), 1)


#: Classes already warned about their legacy ``_dense_grid`` override.
_LEGACY_DENSE_GRID_WARNED: set[type] = set()


def _warn_legacy_dense_grid(cls: type) -> None:
    """One DeprecationWarning per class for direct ``_dense_grid`` overrides."""
    if cls in _LEGACY_DENSE_GRID_WARNED:
        return
    _LEGACY_DENSE_GRID_WARNED.add(cls)
    warnings.warn(
        f"{cls.__name__} overrides _dense_grid directly; implement the "
        "structured protocol (_structured_grid) instead — dense-only "
        "operators keep working, wrapped as kind='dense', but forgo "
        "structure-aware composition and backend kernels",
        DeprecationWarning,
        stacklevel=3,
    )


class HarmonicOperator(ABC):
    """Abstract LPTV operator on a fundamental frequency ``omega0``."""

    def __init__(self, omega0: float):
        self._omega0 = check_positive("omega0", omega0)

    @property
    def omega0(self) -> float:
        """Fundamental angular frequency (rad/s)."""
        return self._omega0

    @property
    def period(self) -> float:
        """Fundamental period in seconds."""
        return 2 * np.pi / self._omega0

    # -- structured evaluation ---------------------------------------------------

    def evaluate(
        self, s, order: int, backend: str | ComputeBackend | None = None
    ) -> StructuredGrid:
        """Structure-tagged lazy evaluation over a grid — the preferred API.

        ``s`` may be a :class:`~repro.core.grid.FrequencyGrid` (evaluated on
        ``j omega``) or any 1-D array of complex Laplace points.  Returns a
        :class:`~repro.core.structured.StructuredGrid` whose tag records the
        HTM structure (diagonal / banded / rank_one / dense); composites
        compose tags symbolically and numbers are only materialised by
        ``.to_dense()`` or a genuinely dense fallback.

        ``backend`` selects the terminal-closure kernels (name, instance, or
        ``None`` for the scoped/env/default resolution of
        :func:`repro.core.backend.resolve_backend`).  Results are memoized
        per operator node under a ``("structured", backend)`` cache flavor,
        separate from the dense-oracle blocks, and are immutable.
        """
        s_arr = as_s_grid("s", s)
        order = check_order("order", order, minimum=0)
        bk = resolve_backend(backend)

        def compute(sa: np.ndarray, od: int) -> StructuredGrid:
            return self._structured_kernel(sa, od, bk)

        flavor = ("structured", bk.name)
        if obs.enabled():
            with obs.span(
                "core.evaluate",
                op=type(self).__name__,
                points=int(s_arr.size),
                order=int(order),
                backend=bk.name,
            ):
                return grid_cache.fetch(self, s_arr, order, compute, flavor=flavor)
        return grid_cache.fetch(self, s_arr, order, compute, flavor=flavor)

    def _structured_grid(
        self, s_arr: np.ndarray, order: int, backend: ComputeBackend
    ) -> StructuredGrid:
        """Structure-tagged kernel behind :meth:`evaluate` — override this.

        The base class raises; :meth:`_structured_kernel` falls back to
        wrapping a legacy ``_dense_grid`` / ``dense`` override as a dense
        structured grid.
        """
        raise NotImplementedError

    def _structured_kernel(
        self, s_arr: np.ndarray, order: int, backend: ComputeBackend
    ) -> StructuredGrid:
        """Dispatch to the best available kernel for this class.

        Preference order: the structured protocol, then a legacy
        ``_dense_grid`` override (deprecation-warned once per class), then a
        scalar ``dense`` override looped over the grid.
        """
        cls = type(self)
        if cls._structured_grid is not HarmonicOperator._structured_grid:
            return self._structured_grid(s_arr, order, backend)
        if cls._dense_grid is not HarmonicOperator._dense_grid:
            _warn_legacy_dense_grid(cls)
            return StructuredGrid.dense(
                self._dense_grid(s_arr, order), order=order, backend=backend
            )
        if cls.dense is not HarmonicOperator.dense:
            size = 2 * order + 1
            out = np.empty((s_arr.size, size, size), dtype=complex)
            for i, si in enumerate(s_arr):
                out[i] = self.dense(complex(si), order)
            return StructuredGrid.dense(out, order=order, backend=backend)
        raise TypeError(
            f"{cls.__name__} implements none of _structured_grid, _dense_grid "
            "or dense"
        )

    # -- dense evaluation (oracle path) -------------------------------------------

    def dense(self, s: complex, order: int) -> np.ndarray:
        """Dense ``(2*order+1)^2`` matrix of the truncated HTM at ``s``.

        Delegates to the grid kernel on a one-point grid (inside
        :func:`repro.core.memo.bypass`, so scalar probes never churn the
        grid cache).  The returned matrix is a fresh writable copy.
        """
        order = check_order("order", order, minimum=0)
        s_arr = np.array([complex(s)], dtype=complex)
        with memo_bypass():
            return np.array(self._dense_grid(s_arr, order)[0])

    def dense_grid(self, s, order: int) -> np.ndarray:
        """Batched dense HTM stack ``(len(s), 2*order+1, 2*order+1)``.

        This is the brute-force **oracle** path: composites really multiply
        / add / solve stacked matrices, independent of the structured
        algebra behind :meth:`evaluate` — which is what makes
        structured-vs-dense equivalence assertions meaningful.  Results are
        memoized per operator node (see :mod:`repro.core.memo`) and are
        **read-only**; ``.copy()`` before mutating.
        """
        s_arr = as_s_grid("s", s)
        order = check_order("order", order, minimum=0)
        if obs.enabled():
            # Spans nest: a composite's children report under its path, so
            # `repro obs top` separates e.g. a feedback solve's inner grid
            # evaluations from standalone sweeps of the same operator.
            with obs.span(
                "core.dense_grid",
                op=type(self).__name__,
                points=int(s_arr.size),
                order=int(order),
            ):
                out = grid_cache.fetch(self, s_arr, order, self._dense_grid)
                health.check_finite(
                    "health.dense_grid.nonfinite", out, op=type(self).__name__
                )
                return out
        return grid_cache.fetch(self, s_arr, order, self._dense_grid)

    def _dense_grid(self, s_arr: np.ndarray, order: int) -> np.ndarray:
        """Vectorized dense kernel behind :meth:`dense_grid`.

        The base implementation densifies the structured kernel.
        Overriding this directly is deprecated (implement
        :meth:`_structured_grid`); :class:`FeedbackOperator` keeps an
        explicit override so the dense path stays a genuinely independent
        stacked solve.
        """
        return np.asarray(
            self._structured_kernel(s_arr, order, resolve_backend(None)).to_dense()
        )

    def fingerprint(self) -> tuple:
        """Hashable, id-stable structural key for grid memoization.

        Value-based where the operator content is plain data; falls back to
        object identity for opaque subclasses (the cache pins the operator
        so the id cannot be recycled while the entry lives).
        """
        return (type(self).__name__, id(self))

    def htm(self, s: complex, order: int) -> HTM:
        """Evaluate the truncated HTM snapshot at ``s``."""
        order = check_order("order", order, minimum=0)
        s_arr = np.array([complex(s)], dtype=complex)
        with memo_bypass():
            stack = self._dense_grid(s_arr, order)
        return HTM.from_stack(stack, self._omega0, s_arr, 0)

    def element(self, s: complex, n: int, m: int, order: int | None = None) -> complex:
        """Single HTM element ``H_{n,m}(s)``.

        ``order`` defaults to the canonical rule ``max(|n|, |m|, 1)`` (see
        :func:`default_element_order`).  The historical default
        ``max(|n|, |m|)`` — which evaluated the baseband element on a
        degenerate order-0 truncation — is deprecated; a warning is emitted
        in the only case where the two rules differ (``n == m == 0``).
        """
        if order is None:
            if n == 0 and m == 0:
                warnings.warn(
                    "element(s, 0, 0) now defaults to truncation order 1 "
                    "(canonical rule max(|n|, |m|, 1)); the old order-0 "
                    "default is deprecated — pass order=0 explicitly if the "
                    "degenerate 1x1 truncation is really wanted",
                    DeprecationWarning,
                    stacklevel=2,
                )
            order = default_element_order(n, m)
        return self.htm(s, order).element(n, m)

    # -- composition sugar ------------------------------------------------------

    def _check_same_fundamental(self, other: "HarmonicOperator") -> None:
        if abs(self._omega0 - other._omega0) > 1e-12 * self._omega0:
            raise ValidationError("operators have different fundamental frequencies")

    def __matmul__(self, other: "HarmonicOperator") -> "SeriesOperator":
        """Series: ``self`` applied after ``other`` (paper eq. 11)."""
        return SeriesOperator(self, other)

    def __add__(self, other: "HarmonicOperator") -> "ParallelOperator":
        """Parallel connection (paper eq. 10)."""
        return ParallelOperator(self, other)

    def __mul__(self, scalar) -> "ScaledOperator":
        if isinstance(scalar, np.ndarray):
            if scalar.ndim != 0:
                raise TypeError(
                    "operator * expects a scalar, got an array of shape "
                    f"{scalar.shape}; use @ for composition"
                )
            scalar = scalar[()]  # unwrap the 0-d array to a NumPy scalar
        if not isinstance(scalar, (int, float, complex, np.number)):
            raise TypeError("operator * expects a scalar; use @ for composition")
        return ScaledOperator(self, complex(scalar))

    __rmul__ = __mul__

    def __neg__(self) -> "ScaledOperator":
        return ScaledOperator(self, -1.0)

    def feedback(self) -> "FeedbackOperator":
        """Negative-feedback closure ``(I + self)^{-1} self`` (eq. 28)."""
        return FeedbackOperator(self)


class IdentityOperator(HarmonicOperator):
    """The identity system ``y = u``."""

    def _structured_grid(
        self, s_arr: np.ndarray, order: int, backend: ComputeBackend
    ) -> StructuredGrid:
        ones = np.ones(2 * order + 1, dtype=complex)
        return StructuredGrid.diagonal(
            np.broadcast_to(ones, (s_arr.size, ones.size)),
            order=order,
            backend=backend,
        )

    def fingerprint(self) -> tuple:
        return ("identity", self._omega0)


def _transfer_fingerprint(transfer) -> tuple:
    """Value-based key for rational transfers, id-based for raw callables."""
    num = getattr(transfer, "num", None)
    den = getattr(transfer, "den", None)
    if isinstance(num, np.ndarray) and isinstance(den, np.ndarray):
        return ("rational", num.tobytes(), den.tobytes())
    return ("callable", id(transfer))


class LTIOperator(HarmonicOperator):
    """An LTI system embedded as a diagonal HTM (paper eq. 12).

    ``transfer`` may be a :class:`~repro.lti.transfer.TransferFunction`, a
    :class:`~repro.lti.rational.RationalFunction`, or any scalar callable
    ``H(s)`` (which permits irrational responses such as delays).
    """

    def __init__(self, transfer, omega0: float):
        super().__init__(omega0)
        if not callable(transfer):
            raise ValidationError("transfer must be callable as H(s)")
        self.transfer = transfer

    def _transfer_values(self, s_grid: np.ndarray) -> np.ndarray:
        """Evaluate the transfer on an arbitrary-shape complex grid.

        Tries the callable directly (rational transfers and well-behaved
        closures broadcast over NumPy arrays); falls back to an element-wise
        loop for scalar-only callables — which also re-raises any genuine
        evaluation error.
        """
        try:
            values = np.asarray(self.transfer(s_grid), dtype=complex)
            if values.shape == s_grid.shape:
                return values
        except Exception:
            pass
        flat = np.array(
            [self.transfer(complex(si)) for si in s_grid.ravel()], dtype=complex
        )
        return flat.reshape(s_grid.shape)

    def _structured_grid(
        self, s_arr: np.ndarray, order: int, backend: ComputeBackend
    ) -> StructuredGrid:
        n = np.arange(-order, order + 1)
        diag = self._transfer_values(s_arr[:, None] + 1j * self._omega0 * n[None, :])
        return StructuredGrid.diagonal(diag, order=order, backend=backend)

    def fingerprint(self) -> tuple:
        return ("lti", self._omega0, _transfer_fingerprint(self.transfer))


class MultiplicationOperator(HarmonicOperator):
    """Memoryless multiplication ``y(t) = p(t) u(t)`` (paper eq. 13)."""

    def __init__(self, series: FourierSeries):
        super().__init__(series.omega0)
        self.series = series

    def _structured_grid(
        self, s_arr: np.ndarray, order: int, backend: ComputeBackend
    ) -> StructuredGrid:
        # The Toeplitz HTM is s-independent: one broadcast constant per
        # non-zero harmonic band, zero extra memory per grid point.
        size = 2 * order + 1
        coeffs = np.asarray(self.series.coefficients, dtype=complex)
        offsets = np.arange(coeffs.size) - self.series.order
        bands: dict[int, np.ndarray] = {}
        for pk, k in zip(coeffs, offsets):
            k = int(k)
            if (pk == 0 and k != 0) or abs(k) > size - 1:
                continue
            bands[k] = np.broadcast_to(np.asarray(pk), (s_arr.size, size))
        if not bands or set(bands) == {0}:
            diag = bands.get(0, np.zeros((s_arr.size, size), dtype=complex))
            return StructuredGrid.diagonal(diag, order=order, backend=backend)
        return StructuredGrid.banded(bands, order=order, backend=backend)

    def fingerprint(self) -> tuple:
        return ("mult", self._omega0, self.series.coefficients.tobytes())


class SamplingOperator(HarmonicOperator):
    """Ideal impulse-train sampler ``y(t) = sum_m delta(t - mT - offset) u(t)``.

    With zero offset this is the paper's sampling-PFD kernel: the rank-one
    all-ones HTM scaled by ``w0 / 2pi`` (eqs. 19–20).  A non-zero sampling
    phase ``offset`` (sampling instants ``t_m = m T + offset``) rotates the
    kernel coefficients to ``P_k = (1/T) exp(-j k w0 offset)`` but preserves
    rank one.
    """

    def __init__(self, omega0: float, offset: float = 0.0):
        super().__init__(omega0)
        self.offset = float(offset)

    def column_vector(self, order: int) -> np.ndarray:
        """The rank-one column factor: ``exp(-j n w0 offset)`` per output harmonic."""
        n = np.arange(-order, order + 1)
        return np.exp(-1j * n * self._omega0 * self.offset)

    def row_vector(self, order: int) -> np.ndarray:
        """The rank-one row factor: ``exp(-j m w0 offset)`` per input harmonic."""
        return np.conj(self.column_vector(order))

    def _structured_grid(
        self, s_arr: np.ndarray, order: int, backend: ComputeBackend
    ) -> StructuredGrid:
        # s-independent rank one: the gain folds into the column factor and
        # both factors broadcast (zero-copy) over the grid.
        gain = self._omega0 / (2 * np.pi)
        column = gain * self.column_vector(order)
        row = self.row_vector(order)
        return StructuredGrid.rank_one(
            np.broadcast_to(column, (s_arr.size, column.size)),
            np.broadcast_to(row, (s_arr.size, row.size)),
            order=order,
            backend=backend,
        )

    def fingerprint(self) -> tuple:
        return ("sampling", self._omega0, self.offset)


class IsfIntegrationOperator(HarmonicOperator):
    """The VCO phase operator: ISF multiplication followed by integration.

    Implements paper eq. (25): ``H[n, m](s) = v_{n-m} / (s + j n w0)``.
    For a time-invariant ISF the matrix is diagonal ``v0 / (s + j n w0)``,
    i.e. the LTI integrator of the classical analysis.
    """

    def __init__(self, isf: ImpulseSensitivity):
        super().__init__(isf.omega0)
        self.isf = isf

    def _nonzero_offsets(self) -> np.ndarray:
        """Toeplitz offsets ``k`` with ``v_k != 0`` (usually a handful)."""
        series = self.isf.series
        coeffs = series.coefficients
        return np.flatnonzero(coeffs) - series.order

    def _structured_grid(
        self, s_arr: np.ndarray, order: int, backend: ComputeBackend
    ) -> StructuredGrid:
        size = 2 * order + 1
        n = np.arange(-order, order + 1)
        denom = s_arr[:, None] + 1j * n[None, :] * self._omega0  # (L, N)
        offsets = [int(k) for k in self._nonzero_offsets() if abs(int(k)) <= size - 1]
        if not offsets:
            return StructuredGrid.diagonal(
                np.zeros((s_arr.size, size), dtype=complex),
                order=order,
                backend=backend,
            )
        # One band per non-zero ISF harmonic; rows whose column index falls
        # outside the truncation stay exact zeros and are never divided, so
        # structural zeros survive even at the integrator poles s = -j n w0.
        idx = np.arange(size)
        bands: dict[int, np.ndarray] = {}
        with np.errstate(divide="ignore"):
            for k in offsets:
                vk = complex(self.isf.coefficient(k))
                val = np.zeros((s_arr.size, size), dtype=complex)
                rows = idx[(idx - k >= 0) & (idx - k < size)]
                if rows.size:
                    val[:, rows] = vk / denom[:, rows]
                bands[k] = val
        if set(bands) == {0}:
            return StructuredGrid.diagonal(bands[0], order=order, backend=backend)
        return StructuredGrid.banded(bands, order=order, backend=backend)

    def fingerprint(self) -> tuple:
        return ("isf", self._omega0, self.isf.series.coefficients.tobytes())


class SeriesOperator(HarmonicOperator):
    """Cascade ``y = first-then-second``: stored as (second, first)."""

    def __init__(self, second: HarmonicOperator, first: HarmonicOperator):
        second._check_same_fundamental(first)
        super().__init__(second.omega0)
        self.second = second
        self.first = first

    def _structured_grid(
        self, s_arr: np.ndarray, order: int, backend: ComputeBackend
    ) -> StructuredGrid:
        # Structure composes symbolically: diagonal x diagonal stays an
        # elementwise product, anything x rank-one stays factored, and only
        # genuinely dense pairs fall back to a stacked matmul.
        return self.second.evaluate(s_arr, order, backend=backend) @ self.first.evaluate(
            s_arr, order, backend=backend
        )

    def fingerprint(self) -> tuple:
        return ("series", self.second.fingerprint(), self.first.fingerprint())


class ParallelOperator(HarmonicOperator):
    """Summing junction of two operators driven by the same input."""

    def __init__(self, left: HarmonicOperator, right: HarmonicOperator):
        left._check_same_fundamental(right)
        super().__init__(left.omega0)
        self.left = left
        self.right = right

    def _structured_grid(
        self, s_arr: np.ndarray, order: int, backend: ComputeBackend
    ) -> StructuredGrid:
        return self.left.evaluate(s_arr, order, backend=backend) + self.right.evaluate(
            s_arr, order, backend=backend
        )

    def fingerprint(self) -> tuple:
        return ("parallel", self.left.fingerprint(), self.right.fingerprint())


class ScaledOperator(HarmonicOperator):
    """Scalar multiple of an operator."""

    def __init__(self, inner: HarmonicOperator, scalar: complex):
        super().__init__(inner.omega0)
        self.inner = inner
        self.scalar = complex(scalar)

    def _structured_grid(
        self, s_arr: np.ndarray, order: int, backend: ComputeBackend
    ) -> StructuredGrid:
        return self.inner.evaluate(s_arr, order, backend=backend).scale(self.scalar)

    def fingerprint(self) -> tuple:
        return ("scaled", self.scalar, self.inner.fingerprint())


class FeedbackOperator(HarmonicOperator):
    """Negative-feedback closure ``(I + G)^{-1} G`` (paper eq. 28).

    Two genuinely independent evaluation routes coexist:

    * :meth:`evaluate` composes structure — a rank-one open loop closes via
      the SMW scalar denominator (paper eqs. 30–34, O(N) per grid point), a
      diagonal loop closes elementwise;
    * :meth:`dense_grid` / :meth:`dense` keep the brute-force stacked
      ``np.linalg.solve`` as the reference implementation — the correctness
      oracle the structured path is asserted against, and the general route
      for loops with no exploitable structure.
    """

    def __init__(self, open_loop: HarmonicOperator):
        super().__init__(open_loop.omega0)
        self.open_loop = open_loop

    def _structured_grid(
        self, s_arr: np.ndarray, order: int, backend: ComputeBackend
    ) -> StructuredGrid:
        return self.open_loop.evaluate(s_arr, order, backend=backend).feedback()

    def _dense_grid(self, s_arr: np.ndarray, order: int) -> np.ndarray:
        g = self.open_loop.dense_grid(s_arr, order)
        eye = np.eye(g.shape[-1], dtype=complex)
        if obs.enabled():
            # The dense linear solve is the expensive tail of a feedback
            # closure — spanned separately from the open-loop evaluation.
            with obs.span(
                "core.feedback.solve", points=int(s_arr.size), order=int(order)
            ):
                system = eye[None, :, :] + g
                with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
                    cond = np.linalg.cond(system)
                worst = float(np.max(cond)) if cond.size else 0.0
                if not np.isfinite(worst) or worst > health.CONDITION_LIMIT:
                    obs.health_event(
                        "health.feedback.condition",
                        worst,
                        health.CONDITION_LIMIT,
                        severity="warning",
                        message="ill-conditioned I + G in feedback solve",
                        order=int(order),
                    )
                return np.linalg.solve(system, g)
        return np.linalg.solve(eye[None, :, :] + g, g)

    def fingerprint(self) -> tuple:
        return ("feedback", self.open_loop.fingerprint())


def lti_diagonal(transfer, omega0: float, s: complex, order: int) -> np.ndarray:
    """Convenience: dense diagonal embedding of an LTI transfer at ``s``."""
    return LTIOperator(transfer, omega0).dense(s, order)


def ones_vector(order: int) -> np.ndarray:
    """The truncated all-ones vector ``l`` of paper eq. (20)."""
    check_order("order", order, minimum=0)
    return np.ones(2 * order + 1, dtype=complex)
