"""Lazy, composable LPTV operators with HTM evaluation.

A :class:`HarmonicOperator` represents an LPTV system symbolically and can
produce its truncated HTM at any complex frequency and truncation order.
Keeping operators lazy (instead of fixing a truncation up front) lets the
same loop description be evaluated at whatever order an accuracy target
demands — the truncation study of DESIGN.md ablation A3 relies on this.

Primitive operators mirror the paper's building blocks:

* :class:`LTIOperator` — diagonal HTM ``H(s + j n w0)`` (eq. 12);
* :class:`MultiplicationOperator` — Toeplitz HTM ``P_{n-m}`` (eq. 13);
* :class:`SamplingOperator` — the impulse-train sampler, rank-one
  ``(w0/2pi) l l^T`` (eqs. 19–20);
* :class:`IsfIntegrationOperator` — the VCO phase operator
  ``v_{n-m} / (s + j n w0)`` (eq. 25).

Composites: :class:`SeriesOperator`, :class:`ParallelOperator`,
:class:`ScaledOperator`, :class:`FeedbackOperator`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod


import numpy as np

from repro._errors import ValidationError
from repro._validation import check_order, check_positive
from repro.core.htm import HTM
from repro.signals.fourier import FourierSeries
from repro.signals.isf import ImpulseSensitivity


class HarmonicOperator(ABC):
    """Abstract LPTV operator on a fundamental frequency ``omega0``."""

    def __init__(self, omega0: float):
        self._omega0 = check_positive("omega0", omega0)

    @property
    def omega0(self) -> float:
        """Fundamental angular frequency (rad/s)."""
        return self._omega0

    @property
    def period(self) -> float:
        """Fundamental period in seconds."""
        return 2 * np.pi / self._omega0

    @abstractmethod
    def dense(self, s: complex, order: int) -> np.ndarray:
        """Dense ``(2*order+1)^2`` matrix of the truncated HTM at ``s``."""

    def htm(self, s: complex, order: int) -> HTM:
        """Evaluate the truncated HTM snapshot at ``s``."""
        order = check_order("order", order, minimum=0)
        return HTM(self.dense(complex(s), order), self._omega0, complex(s))

    def element(self, s: complex, n: int, m: int, order: int | None = None) -> complex:
        """Single HTM element ``H_{n,m}(s)``; order defaults to ``max(|n|,|m|)``."""
        if order is None:
            order = max(abs(n), abs(m))
        return self.htm(s, order).element(n, m)

    # -- composition sugar ------------------------------------------------------

    def _check_same_fundamental(self, other: "HarmonicOperator") -> None:
        if abs(self._omega0 - other._omega0) > 1e-12 * self._omega0:
            raise ValidationError("operators have different fundamental frequencies")

    def __matmul__(self, other: "HarmonicOperator") -> "SeriesOperator":
        """Series: ``self`` applied after ``other`` (paper eq. 11)."""
        return SeriesOperator(self, other)

    def __add__(self, other: "HarmonicOperator") -> "ParallelOperator":
        """Parallel connection (paper eq. 10)."""
        return ParallelOperator(self, other)

    def __mul__(self, scalar) -> "ScaledOperator":
        if not isinstance(scalar, (int, float, complex, np.number)):
            raise TypeError("operator * expects a scalar; use @ for composition")
        return ScaledOperator(self, complex(scalar))

    __rmul__ = __mul__

    def __neg__(self) -> "ScaledOperator":
        return ScaledOperator(self, -1.0)

    def feedback(self) -> "FeedbackOperator":
        """Negative-feedback closure ``(I + self)^{-1} self`` (eq. 28)."""
        return FeedbackOperator(self)


class IdentityOperator(HarmonicOperator):
    """The identity system ``y = u``."""

    def dense(self, s: complex, order: int) -> np.ndarray:
        return np.eye(2 * order + 1, dtype=complex)


class LTIOperator(HarmonicOperator):
    """An LTI system embedded as a diagonal HTM (paper eq. 12).

    ``transfer`` may be a :class:`~repro.lti.transfer.TransferFunction`, a
    :class:`~repro.lti.rational.RationalFunction`, or any scalar callable
    ``H(s)`` (which permits irrational responses such as delays).
    """

    def __init__(self, transfer, omega0: float):
        super().__init__(omega0)
        if not callable(transfer):
            raise ValidationError("transfer must be callable as H(s)")
        self.transfer = transfer

    def dense(self, s: complex, order: int) -> np.ndarray:
        n = np.arange(-order, order + 1)
        diag = np.array([self.transfer(s + 1j * k * self._omega0) for k in n], dtype=complex)
        return np.diag(diag)


class MultiplicationOperator(HarmonicOperator):
    """Memoryless multiplication ``y(t) = p(t) u(t)`` (paper eq. 13)."""

    def __init__(self, series: FourierSeries):
        super().__init__(series.omega0)
        self.series = series

    def dense(self, s: complex, order: int) -> np.ndarray:
        # The Toeplitz HTM is independent of s.
        return self.series.toeplitz(2 * order + 1)


class SamplingOperator(HarmonicOperator):
    """Ideal impulse-train sampler ``y(t) = sum_m delta(t - mT - offset) u(t)``.

    With zero offset this is the paper's sampling-PFD kernel: the rank-one
    all-ones HTM scaled by ``w0 / 2pi`` (eqs. 19–20).  A non-zero sampling
    phase ``offset`` (sampling instants ``t_m = m T + offset``) rotates the
    kernel coefficients to ``P_k = (1/T) exp(-j k w0 offset)`` but preserves
    rank one.
    """

    def __init__(self, omega0: float, offset: float = 0.0):
        super().__init__(omega0)
        self.offset = float(offset)

    def column_vector(self, order: int) -> np.ndarray:
        """The rank-one column factor: ``exp(-j n w0 offset)`` per output harmonic."""
        n = np.arange(-order, order + 1)
        return np.exp(-1j * n * self._omega0 * self.offset)

    def row_vector(self, order: int) -> np.ndarray:
        """The rank-one row factor: ``exp(-j m w0 offset)`` per input harmonic."""
        return np.conj(self.column_vector(order))

    def dense(self, s: complex, order: int) -> np.ndarray:
        gain = self._omega0 / (2 * np.pi)
        col = self.column_vector(order)
        row = self.row_vector(order)
        return gain * np.outer(col, row)


class IsfIntegrationOperator(HarmonicOperator):
    """The VCO phase operator: ISF multiplication followed by integration.

    Implements paper eq. (25): ``H[n, m](s) = v_{n-m} / (s + j n w0)``.
    For a time-invariant ISF the matrix is diagonal ``v0 / (s + j n w0)``,
    i.e. the LTI integrator of the classical analysis.
    """

    def __init__(self, isf: ImpulseSensitivity):
        super().__init__(isf.omega0)
        self.isf = isf

    def dense(self, s: complex, order: int) -> np.ndarray:
        size = 2 * order + 1
        mat = np.zeros((size, size), dtype=complex)
        for n in range(-order, order + 1):
            denom = s + 1j * n * self._omega0
            for m in range(-order, order + 1):
                vk = self.isf.coefficient(n - m)
                if vk != 0:
                    mat[n + order, m + order] = vk / denom
        return mat


class SeriesOperator(HarmonicOperator):
    """Cascade ``y = first-then-second``: stored as (second, first)."""

    def __init__(self, second: HarmonicOperator, first: HarmonicOperator):
        second._check_same_fundamental(first)
        super().__init__(second.omega0)
        self.second = second
        self.first = first

    def dense(self, s: complex, order: int) -> np.ndarray:
        return self.second.dense(s, order) @ self.first.dense(s, order)


class ParallelOperator(HarmonicOperator):
    """Summing junction of two operators driven by the same input."""

    def __init__(self, left: HarmonicOperator, right: HarmonicOperator):
        left._check_same_fundamental(right)
        super().__init__(left.omega0)
        self.left = left
        self.right = right

    def dense(self, s: complex, order: int) -> np.ndarray:
        return self.left.dense(s, order) + self.right.dense(s, order)


class ScaledOperator(HarmonicOperator):
    """Scalar multiple of an operator."""

    def __init__(self, inner: HarmonicOperator, scalar: complex):
        super().__init__(inner.omega0)
        self.inner = inner
        self.scalar = complex(scalar)

    def dense(self, s: complex, order: int) -> np.ndarray:
        return self.scalar * self.inner.dense(s, order)


class FeedbackOperator(HarmonicOperator):
    """Dense negative-feedback closure ``(I + G)^{-1} G`` (paper eq. 28).

    This is the brute-force route the paper contrasts with the rank-one SMW
    closed form (:mod:`repro.core.rank_one`); it is kept as the reference
    implementation and as the general path for loops whose forward operator
    is *not* rank one.
    """

    def __init__(self, open_loop: HarmonicOperator):
        super().__init__(open_loop.omega0)
        self.open_loop = open_loop

    def dense(self, s: complex, order: int) -> np.ndarray:
        g = self.open_loop.dense(s, order)
        eye = np.eye(g.shape[0], dtype=complex)
        return np.linalg.solve(eye + g, g)


def lti_diagonal(transfer, omega0: float, s: complex, order: int) -> np.ndarray:
    """Convenience: dense diagonal embedding of an LTI transfer at ``s``."""
    return LTIOperator(transfer, omega0).dense(s, order)


def ones_vector(order: int) -> np.ndarray:
    """The truncated all-ones vector ``l`` of paper eq. (20)."""
    check_order("order", order, minimum=0)
    return np.ones(2 * order + 1, dtype=complex)
