"""Pluggable compute backends for structured HTM evaluation.

The structured evaluation layer (:mod:`repro.core.structured`) keeps
operator compositions symbolic and only closes to numbers at the terminal
call.  That terminal closure — rank-one lambda reductions, SMW column
scaling, diagonal feedback, dense materialisation — is a small set of
kernels, factored here behind a registry so it can be swapped per call:

* ``numpy`` (default) — vectorized NumPy; always available.
* ``numba`` — the same kernels JIT-compiled over the grid axis.  Optional:
  registering it costs nothing, but *resolving* it on a machine without
  ``numba`` **falls back to numpy gracefully**, bumping the
  ``core.backend.fallback`` counter and emitting a
  ``health.backend.fallback`` warning event (when observability is on)
  instead of raising.

Selection precedence for :func:`resolve_backend`:

1. an explicit ``backend=`` argument (name or :class:`ComputeBackend`);
2. a scoped default installed by :func:`backend_scope` /
   :func:`set_default_backend` (campaign task adapters use this to honour
   a ``backend`` point parameter);
3. the ``REPRO_BACKEND`` environment variable;
4. ``"numpy"``.

Unknown names raise :class:`~repro._errors.ValidationError` — a typo should
be loud; only a *registered but unavailable* backend falls back.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Callable

import numpy as np

from repro._errors import ValidationError
from repro.obs import spans as obs

__all__ = [
    "BackendUnavailable",
    "ComputeBackend",
    "NumpyBackend",
    "NumbaBackend",
    "available_backends",
    "backend_scope",
    "default_backend_name",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "set_default_backend",
]

DEFAULT_BACKEND = "numpy"

#: Environment variable consulted when no explicit/scoped backend is set.
ENV_VAR = "REPRO_BACKEND"


class BackendUnavailable(RuntimeError):
    """A registered backend's runtime dependency is missing on this machine."""


class ComputeBackend:
    """Terminal-closure kernel set for :class:`~repro.core.structured.StructuredGrid`.

    All kernels operate on batched factors: ``column`` / ``row`` / ``diag``
    are ``(L, N)`` complex arrays (grid point x harmonic index).  Subclasses
    override the kernels; the registry hands out one shared instance per
    backend name.
    """

    name = "abstract"

    def rank_one_lambda(self, column: np.ndarray, row: np.ndarray) -> np.ndarray:
        """Per-point SMW scalar ``lambda = row^T column`` — shape ``(L,)``."""
        raise NotImplementedError

    def smw_close_column(self, column: np.ndarray, denom: np.ndarray) -> np.ndarray:
        """Closed-loop column ``column / (1 + lambda)`` given ``denom = 1 + lambda``."""
        raise NotImplementedError

    def diag_feedback(self, diag: np.ndarray) -> np.ndarray:
        """Elementwise diagonal feedback closure ``d / (1 + d)``."""
        raise NotImplementedError

    def rank_one_dense(self, column: np.ndarray, row: np.ndarray) -> np.ndarray:
        """Materialise the batched outer product — shape ``(L, N, N)``."""
        raise NotImplementedError

    def diag_dense(self, diag: np.ndarray) -> np.ndarray:
        """Materialise a batched diagonal stack — shape ``(L, N, N)``."""
        out = np.zeros(diag.shape + (diag.shape[-1],), dtype=complex)
        idx = np.arange(diag.shape[-1])
        out[:, idx, idx] = diag
        return out


class NumpyBackend(ComputeBackend):
    """Vectorized NumPy kernels — the always-available default."""

    name = "numpy"

    def rank_one_lambda(self, column: np.ndarray, row: np.ndarray) -> np.ndarray:
        return np.einsum("ln,ln->l", row, column)

    def smw_close_column(self, column: np.ndarray, denom: np.ndarray) -> np.ndarray:
        return column / denom[:, None]

    def diag_feedback(self, diag: np.ndarray) -> np.ndarray:
        return diag / (1.0 + diag)

    def rank_one_dense(self, column: np.ndarray, row: np.ndarray) -> np.ndarray:
        return column[:, :, None] * row[:, None, :]


def _build_numba_kernels(numba):
    """Compile the fused grid-axis kernels once per process."""
    njit = numba.njit

    @njit(cache=False)
    def rank_one_lambda(column, row):  # pragma: no cover - requires numba
        npoints, size = column.shape
        out = np.empty(npoints, dtype=np.complex128)
        for i in range(npoints):
            acc = 0j
            for n in range(size):
                acc += row[i, n] * column[i, n]
            out[i] = acc
        return out

    @njit(cache=False)
    def smw_close_column(column, denom):  # pragma: no cover - requires numba
        npoints, size = column.shape
        out = np.empty((npoints, size), dtype=np.complex128)
        for i in range(npoints):
            d = denom[i]
            for n in range(size):
                out[i, n] = column[i, n] / d
        return out

    @njit(cache=False)
    def rank_one_dense(column, row):  # pragma: no cover - requires numba
        npoints, size = column.shape
        out = np.empty((npoints, size, size), dtype=np.complex128)
        for i in range(npoints):
            for n in range(size):
                cn = column[i, n]
                for m in range(size):
                    out[i, n, m] = cn * row[i, m]
        return out

    return {
        "rank_one_lambda": rank_one_lambda,
        "smw_close_column": smw_close_column,
        "rank_one_dense": rank_one_dense,
    }


class NumbaBackend(NumpyBackend):
    """Numba-JIT kernels fused across the grid axis.

    Construction raises :class:`BackendUnavailable` when ``numba`` is not
    importable — :func:`resolve_backend` turns that into a graceful numpy
    fallback.  Kernels that numba does not cover inherit the NumPy path.
    """

    name = "numba"

    def __init__(self):
        try:
            import numba  # noqa: F401  (optional dependency)
        except ImportError as exc:
            raise BackendUnavailable(
                "the 'numba' backend requires the numba package, which is "
                "not installed"
            ) from exc
        self._kernels = _build_numba_kernels(numba)

    @staticmethod
    def _contiguous(arr: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(arr, dtype=np.complex128)

    def rank_one_lambda(self, column, row):  # pragma: no cover - requires numba
        return self._kernels["rank_one_lambda"](
            self._contiguous(column), self._contiguous(row)
        )

    def smw_close_column(self, column, denom):  # pragma: no cover - requires numba
        return self._kernels["smw_close_column"](
            self._contiguous(column), np.ascontiguousarray(denom, dtype=np.complex128)
        )

    def rank_one_dense(self, column, row):  # pragma: no cover - requires numba
        return self._kernels["rank_one_dense"](
            self._contiguous(column), self._contiguous(row)
        )


# -- registry ----------------------------------------------------------------------

_FACTORIES: dict[str, Callable[[], ComputeBackend]] = {}
_INSTANCES: dict[str, ComputeBackend] = {}
_LOCK = threading.Lock()
_scope = threading.local()


def register_backend(
    name: str, factory: Callable[[], ComputeBackend], *, replace: bool = False
) -> None:
    """Register a backend factory under ``name``.

    The factory runs at most once per process (the instance is shared); it
    may raise :class:`BackendUnavailable` to signal a missing dependency.
    """
    with _LOCK:
        if name in _FACTORIES and not replace:
            raise ValidationError(f"backend {name!r} is already registered")
        _FACTORIES[name] = factory
        _INSTANCES.pop(name, None)


def get_backend(name: str) -> ComputeBackend:
    """Instantiate (or reuse) the backend registered under ``name``.

    Raises :class:`~repro._errors.ValidationError` for unknown names and
    propagates :class:`BackendUnavailable` — use :func:`resolve_backend`
    for the fallback behaviour.
    """
    with _LOCK:
        if name not in _FACTORIES:
            raise ValidationError(
                f"unknown backend {name!r}; registered: {sorted(_FACTORIES)}"
            )
        instance = _INSTANCES.get(name)
        if instance is None:
            instance = _FACTORIES[name]()
            _INSTANCES[name] = instance
        return instance


def available_backends() -> dict[str, bool]:
    """``name -> importable`` for every registered backend."""
    out: dict[str, bool] = {}
    for name in sorted(_FACTORIES):
        try:
            get_backend(name)
            out[name] = True
        except BackendUnavailable:
            out[name] = False
    return out


def set_default_backend(name: str | None) -> None:
    """Install (or clear, with ``None``) the scoped default backend name."""
    _scope.name = name


def _scoped_default() -> str | None:
    return getattr(_scope, "name", None)


@contextmanager
def backend_scope(name: str | None):
    """Scoped default backend — ``None`` is a no-op passthrough.

    Campaign task adapters wrap point evaluation in this so a ``backend``
    point parameter steers every structured evaluation underneath without
    threading the keyword through arbitrary metric callables.
    """
    if name is None:
        yield
        return
    previous = _scoped_default()
    set_default_backend(str(name))
    try:
        yield
    finally:
        set_default_backend(previous)


def resolve_backend(spec: str | ComputeBackend | None = None) -> ComputeBackend:
    """Resolve a backend argument to an instance, with graceful fallback.

    ``spec`` may be an instance (returned as-is), a registered name, or
    ``None`` — which consults the scoped default, then ``REPRO_BACKEND``,
    then ``"numpy"``.  A registered-but-unavailable backend (numba on a
    machine without it) falls back to numpy, counted by
    ``core.backend.fallback`` and flagged by a ``health.backend.fallback``
    warning event when observability is enabled.
    """
    if isinstance(spec, ComputeBackend):
        return spec
    name = spec or _scoped_default() or os.environ.get(ENV_VAR, "").strip() or DEFAULT_BACKEND
    try:
        return get_backend(str(name))
    except BackendUnavailable as exc:
        if obs.enabled():
            obs.add("core.backend.fallback", requested=str(name))
            obs.health_event(
                "health.backend.fallback",
                1.0,
                0.0,
                severity="warning",
                message=f"backend {name!r} unavailable ({exc}); using numpy",
                requested=str(name),
            )
        return get_backend(DEFAULT_BACKEND)


def default_backend_name() -> str:
    """The backend name :func:`resolve_backend` would pick right now.

    Recorded in campaign run manifests so a stored run documents which
    kernel set produced it (after any unavailability fallback).
    """
    return resolve_backend(None).name


register_backend("numpy", NumpyBackend)
register_backend("numba", NumbaBackend)
