"""Structure-tagged lazy HTM grids — the evaluation layer behind ``evaluate()``.

The paper's loop is *structured*: LTI blocks are diagonal in the harmonic
basis (eq. 12), memoryless multiplication and ISF integration are banded
Toeplitz (eqs. 13, 25), and the sampling PFD is rank one (eqs. 19–20).  A
:class:`StructuredGrid` carries a whole frequency grid's worth of one
operator's HTM in the cheapest faithful representation:

=============  =======================  =================================
kind           storage                  matrix entry ``H[l, i, j]``
=============  =======================  =================================
``diagonal``   ``diag (L, N)``          ``diag[l, i]`` when ``i == j``
``banded``     ``{k: val (L, N)}``      ``val[l, i]`` when ``i - j == k``
``rank_one``   ``column, row (L, N)``   ``column[l, i] * row[l, j]``
``dense``      ``data (L, N, N)``       ``data[l, i, j]``
=============  =======================  =================================

Composition (``@``, ``+``, :meth:`scale`, :meth:`feedback`) dispatches on
the tags and stays symbolic wherever the algebra allows — diagonal times
diagonal is an elementwise product, anything times rank-one stays rank-one,
and the feedback closure of a rank-one loop goes through the SMW scalar
denominator (paper eqs. 30–34, O(N) per grid point) instead of a stacked
``(N, N)`` solve.  Numbers are only materialised by :meth:`to_dense` (or a
genuinely dense fallback), through the pluggable kernel set of
:mod:`repro.core.backend`.

Instances are immutable: component arrays are frozen read-only so cached
grids can be shared between callers (see :mod:`repro.core.memo`).
"""

from __future__ import annotations

import numpy as np

from repro._errors import ValidationError
from repro.core.backend import ComputeBackend, resolve_backend
from repro.core.rank_one import smw_closed_loop_grid
from repro.obs import health
from repro.obs import spans as obs

__all__ = ["StructuredGrid"]

DIAGONAL = "diagonal"
BANDED = "banded"
RANK_ONE = "rank_one"
DENSE = "dense"


def _freeze(arr) -> np.ndarray:
    arr = np.asarray(arr, dtype=complex)
    if arr.flags.writeable:
        arr.flags.writeable = False
    return arr


class StructuredGrid:
    """One operator's HTM over a frequency grid, tagged with its structure."""

    __slots__ = ("kind", "order", "backend", "_diag", "_bands", "_column", "_row", "_data")

    def __init__(self, kind: str, order: int, backend: ComputeBackend | None = None):
        self.kind = kind
        self.order = int(order)
        self.backend = resolve_backend(backend)
        self._diag = None
        self._bands = None
        self._column = None
        self._row = None
        self._data = None

    # -- constructors ------------------------------------------------------------

    @classmethod
    def diagonal(cls, diag, *, order: int, backend=None) -> "StructuredGrid":
        """A diagonal stack from ``diag`` of shape ``(L, 2*order+1)``."""
        out = cls(DIAGONAL, order, backend)
        out._diag = _freeze(diag)
        out._check_factor(out._diag, "diag")
        return out

    @classmethod
    def banded(cls, bands, *, order: int, backend=None) -> "StructuredGrid":
        """A banded Toeplitz-like stack from ``{offset: (L, N) values}``.

        ``bands[k][l, i]`` is the entry at ``(i, i - k)``; positions whose
        column index falls outside the truncation are ignored, so they may
        hold arbitrary values (broadcast constants included).
        """
        out = cls(BANDED, order, backend)
        frozen = {int(k): _freeze(v) for k, v in bands.items()}
        if not frozen:
            raise ValidationError("banded grid needs at least one band")
        for val in frozen.values():
            out._check_factor(val, "band")
        out._bands = frozen
        return out

    @classmethod
    def rank_one(cls, column, row, *, order: int, backend=None) -> "StructuredGrid":
        """A rank-one stack ``column[l] row[l]^T`` from ``(L, N)`` factors."""
        out = cls(RANK_ONE, order, backend)
        out._column = _freeze(column)
        out._row = _freeze(row)
        out._check_factor(out._column, "column")
        out._check_factor(out._row, "row")
        return out

    @classmethod
    def dense(cls, data, *, order: int, backend=None) -> "StructuredGrid":
        """A dense stack from ``data`` of shape ``(L, N, N)``."""
        out = cls(DENSE, order, backend)
        out._data = _freeze(data)
        size = 2 * out.order + 1
        if out._data.ndim != 3 or out._data.shape[1:] != (size, size):
            raise ValidationError(
                f"dense grid needs shape (L, {size}, {size}), got {out._data.shape}"
            )
        return out

    def _check_factor(self, arr: np.ndarray, label: str) -> None:
        if arr.ndim != 2 or arr.shape[1] != self.size:
            raise ValidationError(
                f"structured {label} needs shape (L, {self.size}), got {arr.shape}"
            )

    # -- shape -------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Truncated matrix size ``N = 2*order + 1``."""
        return 2 * self.order + 1

    @property
    def npoints(self) -> int:
        """Number of grid points ``L``."""
        if self.kind == DIAGONAL:
            return self._diag.shape[0]
        if self.kind == BANDED:
            return next(iter(self._bands.values())).shape[0]
        if self.kind == RANK_ONE:
            return self._column.shape[0]
        return self._data.shape[0]

    @property
    def shape(self) -> tuple[int, int, int]:
        return (self.npoints, self.size, self.size)

    @property
    def nbytes(self) -> int:
        """Logical byte size of the stored factors (broadcast views count full)."""
        if self.kind == DIAGONAL:
            return int(self._diag.nbytes)
        if self.kind == BANDED:
            return int(sum(v.nbytes for v in self._bands.values()))
        if self.kind == RANK_ONE:
            return int(self._column.nbytes + self._row.nbytes)
        return int(self._data.nbytes)

    def __repr__(self) -> str:
        return (
            f"StructuredGrid(kind={self.kind!r}, points={self.npoints}, "
            f"order={self.order}, backend={self.backend.name!r})"
        )

    # -- element access -----------------------------------------------------------

    def element_grid(self, n: int, m: int) -> np.ndarray:
        """Entries ``H_{n,m}`` across the grid, without densifying."""
        i, j = n + self.order, m + self.order
        if not (0 <= i < self.size and 0 <= j < self.size):
            raise ValidationError(
                f"harmonic indices ({n}, {m}) outside truncation order {self.order}"
            )
        if self.kind == DIAGONAL:
            if i != j:
                return np.zeros(self.npoints, dtype=complex)
            return self._diag[:, i].copy()
        if self.kind == BANDED:
            val = self._bands.get(i - j)
            if val is None:
                return np.zeros(self.npoints, dtype=complex)
            return val[:, i].copy()
        if self.kind == RANK_ONE:
            return self._column[:, i] * self._row[:, j]
        return self._data[:, i, j].copy()

    # -- terminal closure ---------------------------------------------------------

    def to_dense(self) -> np.ndarray:
        """Materialise the ``(L, N, N)`` stack (read-only) — the terminal call."""
        if self.kind == DENSE:
            return self._data
        if self.kind == DIAGONAL:
            return _freeze(self.backend.diag_dense(self._diag))
        if self.kind == RANK_ONE:
            return _freeze(self.backend.rank_one_dense(self._column, self._row))
        out = np.zeros(self.shape, dtype=complex)
        idx = np.arange(self.size)
        for k, val in self._bands.items():
            rows = idx[(idx - k >= 0) & (idx - k < self.size)]
            if rows.size:
                out[:, rows, rows - k] = val[:, rows]
        return _freeze(out)

    # -- factor application (rank-one absorption) -----------------------------------

    def apply_to_column(self, vec: np.ndarray) -> np.ndarray:
        """``M @ vec`` per grid point for ``vec`` of shape ``(L, N)``."""
        if self.kind == DIAGONAL:
            return self._diag * vec
        if self.kind == RANK_ONE:
            inner = self.backend.rank_one_lambda(vec, self._row)
            return self._column * inner[:, None]
        if self.kind == BANDED:
            out = np.zeros(vec.shape, dtype=complex)
            idx = np.arange(self.size)
            for k, val in self._bands.items():
                rows = idx[(idx - k >= 0) & (idx - k < self.size)]
                if rows.size:
                    out[:, rows] += val[:, rows] * vec[:, rows - k]
            return out
        return np.einsum("lij,lj->li", self._data, vec)

    def apply_to_row(self, vec: np.ndarray) -> np.ndarray:
        """``vec^T @ M`` per grid point for ``vec`` of shape ``(L, N)``."""
        if self.kind == DIAGONAL:
            return vec * self._diag
        if self.kind == RANK_ONE:
            inner = self.backend.rank_one_lambda(self._column, vec)
            return self._row * inner[:, None]
        if self.kind == BANDED:
            out = np.zeros(vec.shape, dtype=complex)
            idx = np.arange(self.size)
            for k, val in self._bands.items():
                cols = idx[(idx + k >= 0) & (idx + k < self.size)]
                if cols.size:
                    out[:, cols] += val[:, cols + k] * vec[:, cols + k]
            return out
        return np.einsum("li,lij->lj", vec, self._data)

    # -- composition --------------------------------------------------------------

    def _check_compatible(self, other: "StructuredGrid") -> None:
        if not isinstance(other, StructuredGrid):
            raise TypeError(
                f"expected a StructuredGrid operand, got {type(other).__name__}"
            )
        if other.order != self.order or other.npoints != self.npoints:
            raise ValidationError(
                f"structured grids disagree: {self.shape} vs {other.shape}"
            )

    def _as_bands(self) -> dict[int, np.ndarray]:
        if self.kind == BANDED:
            return dict(self._bands)
        return {0: self._diag}

    def __matmul__(self, other: "StructuredGrid") -> "StructuredGrid":
        self._check_compatible(other)
        if obs.enabled():
            obs.add("core.structured.matmul", pair=f"{self.kind}@{other.kind}")
        bk = self.backend
        if self.kind == DIAGONAL and other.kind == DIAGONAL:
            return StructuredGrid.diagonal(
                self._diag * other._diag, order=self.order, backend=bk
            )
        # Rank-one absorbs anything on either side and stays rank one.
        if other.kind == RANK_ONE:
            return StructuredGrid.rank_one(
                self.apply_to_column(other._column), other._row,
                order=self.order, backend=bk,
            )
        if self.kind == RANK_ONE:
            return StructuredGrid.rank_one(
                self._column, other.apply_to_row(self._row),
                order=self.order, backend=bk,
            )
        if self.kind in (DIAGONAL, BANDED) and other.kind in (DIAGONAL, BANDED):
            return self._banded_matmul(other)
        return StructuredGrid.dense(
            np.matmul(self.to_dense(), other.to_dense()),
            order=self.order, backend=bk,
        )

    def _banded_matmul(self, other: "StructuredGrid") -> "StructuredGrid":
        size = self.size
        idx = np.arange(size)
        out: dict[int, np.ndarray] = {}
        for a, av in self._as_bands().items():
            for b, bv in other._as_bands().items():
                off = a + b
                if abs(off) > size - 1:
                    continue
                term = np.zeros((self.npoints, size), dtype=complex)
                rows = idx[(idx - a >= 0) & (idx - a < size)]
                if rows.size == 0:
                    continue
                term[:, rows] = av[:, rows] * bv[:, rows - a]
                if off in out:
                    out[off] = out[off] + term
                else:
                    out[off] = term
        if not out:
            return StructuredGrid.diagonal(
                np.zeros((self.npoints, size), dtype=complex),
                order=self.order, backend=self.backend,
            )
        if set(out) == {0}:
            return StructuredGrid.diagonal(
                out[0], order=self.order, backend=self.backend
            )
        return StructuredGrid.banded(out, order=self.order, backend=self.backend)

    def __add__(self, other: "StructuredGrid") -> "StructuredGrid":
        self._check_compatible(other)
        if obs.enabled():
            obs.add("core.structured.add", pair=f"{self.kind}+{other.kind}")
        bk = self.backend
        if self.kind == DIAGONAL and other.kind == DIAGONAL:
            return StructuredGrid.diagonal(
                self._diag + other._diag, order=self.order, backend=bk
            )
        if self.kind in (DIAGONAL, BANDED) and other.kind in (DIAGONAL, BANDED):
            merged = self._as_bands()
            for k, val in other._as_bands().items():
                merged[k] = merged[k] + val if k in merged else val
            if set(merged) == {0}:
                return StructuredGrid.diagonal(merged[0], order=self.order, backend=bk)
            return StructuredGrid.banded(merged, order=self.order, backend=bk)
        return StructuredGrid.dense(
            self.to_dense() + other.to_dense(), order=self.order, backend=bk
        )

    def scale(self, alpha: complex) -> "StructuredGrid":
        """Scalar multiple — structure-preserving for every tag."""
        alpha = complex(alpha)
        bk = self.backend
        if self.kind == DIAGONAL:
            return StructuredGrid.diagonal(alpha * self._diag, order=self.order, backend=bk)
        if self.kind == BANDED:
            return StructuredGrid.banded(
                {k: alpha * v for k, v in self._bands.items()},
                order=self.order, backend=bk,
            )
        if self.kind == RANK_ONE:
            return StructuredGrid.rank_one(
                alpha * self._column, self._row, order=self.order, backend=bk
            )
        return StructuredGrid.dense(alpha * self._data, order=self.order, backend=bk)

    # -- feedback closure ---------------------------------------------------------

    def feedback(self) -> "StructuredGrid":
        """Negative-feedback closure ``(I + G)^{-1} G`` of this open loop.

        * rank-one: the paper's SMW scalar closure (eq. 34) — stays rank
          one, O(N) per grid point;
        * diagonal: elementwise ``d / (1 + d)``;
        * banded / dense: the batched dense solve (structure is not closed
          under feedback), counted by ``core.structured.feedback_dense``.

        Near-singular closures (``|1 + lambda|`` below the tolerance)
        mirror the dense solve: the affected points go to inf/nan and are
        flagged through warning health events rather than raising.
        """
        bk = self.backend
        if obs.enabled():
            obs.add("core.structured.feedback", kind=self.kind)
        if self.kind == RANK_ONE:
            column, row = smw_closed_loop_grid(self._column, self._row, backend=bk)
            return StructuredGrid.rank_one(column, row, order=self.order, backend=bk)
        if self.kind == DIAGONAL:
            denom = 1.0 + self._diag
            if obs.enabled():
                finite = np.abs(denom[np.isfinite(denom)])
                margin = float(np.min(finite)) if finite.size else 0.0
                if margin < health.LAMBDA_SINGULAR_TOL:
                    obs.health_event(
                        "health.rank_one.near_singular",
                        margin,
                        health.LAMBDA_SINGULAR_TOL,
                        severity="warning",
                        direction="below",
                        message="|1 + d| near zero in diagonal feedback closure",
                        size=int(self.size),
                    )
            with np.errstate(divide="ignore", invalid="ignore"):
                return StructuredGrid.diagonal(
                    bk.diag_feedback(self._diag), order=self.order, backend=bk
                )
        if obs.enabled():
            obs.add("core.structured.feedback_dense", kind=self.kind)
        g = self.to_dense()
        eye = np.eye(self.size, dtype=complex)
        system = eye[None, :, :] + g
        if obs.enabled():
            with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
                cond = np.linalg.cond(system)
            worst = float(np.max(cond)) if cond.size else 0.0
            if not np.isfinite(worst) or worst > health.CONDITION_LIMIT:
                obs.health_event(
                    "health.feedback.condition",
                    worst,
                    health.CONDITION_LIMIT,
                    severity="warning",
                    message="ill-conditioned I + G in structured feedback fallback",
                    order=int(self.order),
                )
        return StructuredGrid.dense(
            np.linalg.solve(system, g), order=self.order, backend=bk
        )
