"""Harmonic transfer matrix (HTM) core — the paper's formalism (sec. 2).

An LPTV system ``y(t) = integral h(t, tau) u(t - tau) dtau`` with T-periodic
kernel is represented in the frequency domain by the doubly-infinite matrix

    H[n, m](s) = H_{n-m}(s + j m w0)                      (paper eq. 5)

whose element ``(n, m)`` describes how signal content in the band around
``m * w0`` at the input transfers to the band around ``n * w0`` at the
output (Fig. 2).  This package provides:

* :class:`~repro.core.operators.HarmonicOperator` — lazy, composable
  operators (LTI embedding, memoryless multiplication, impulse-train
  sampling, ISF-weighted integration, series/parallel/feedback);
* :class:`~repro.core.htm.HTM` — a dense truncated snapshot at one ``s``;
* :mod:`~repro.core.rank_one` — the Sherman–Morrison–Woodbury closure that
  turns the infinite-matrix loop inversion into scalar arithmetic
  (paper eqs. 29–34);
* :mod:`~repro.core.aliasing` — exact closed forms for the aliasing sums
  ``sum_m F(s + j m w0)`` via coth identities (paper eq. 37);
* :mod:`~repro.core.sweep` / :mod:`~repro.core.truncation` — frequency
  sweeps, band-transfer maps and automatic truncation-order selection.
"""

from repro.core.backend import (
    BackendUnavailable,
    ComputeBackend,
    NumbaBackend,
    NumpyBackend,
    available_backends,
    backend_scope,
    get_backend,
    register_backend,
    resolve_backend,
    set_default_backend,
)
from repro.core.grid import FrequencyGrid, as_omega_grid, as_s_grid
from repro.core.htm import HTM
from repro.core.memo import GridEvalCache, cache_stats, clear_cache, grid_cache
from repro.core.structured import StructuredGrid
from repro.core.operators import (
    HarmonicOperator,
    IdentityOperator,
    LTIOperator,
    MultiplicationOperator,
    ParallelOperator,
    SamplingOperator,
    ScaledOperator,
    SeriesOperator,
    FeedbackOperator,
    IsfIntegrationOperator,
    default_element_order,
)
from repro.core.rank_one import (
    RankOneHTM,
    smw_closed_loop,
    smw_closed_loop_grid,
    smw_inverse_apply,
)
from repro.core.aliasing import AliasedSum, truncated_alias_sum
from repro.core.kernel import KernelReconstruction, reconstruct_kernel
from repro.core.sweep import band_transfer_map, sweep_element, sweep_matrix
from repro.core.truncation import TruncationReport, choose_truncation_order

__all__ = [
    "BackendUnavailable",
    "ComputeBackend",
    "NumbaBackend",
    "NumpyBackend",
    "available_backends",
    "backend_scope",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "set_default_backend",
    "StructuredGrid",
    "FrequencyGrid",
    "as_omega_grid",
    "as_s_grid",
    "GridEvalCache",
    "grid_cache",
    "cache_stats",
    "clear_cache",
    "default_element_order",
    "HTM",
    "HarmonicOperator",
    "IdentityOperator",
    "LTIOperator",
    "MultiplicationOperator",
    "ParallelOperator",
    "SamplingOperator",
    "ScaledOperator",
    "SeriesOperator",
    "FeedbackOperator",
    "IsfIntegrationOperator",
    "RankOneHTM",
    "smw_closed_loop",
    "smw_closed_loop_grid",
    "smw_inverse_apply",
    "AliasedSum",
    "truncated_alias_sum",
    "KernelReconstruction",
    "reconstruct_kernel",
    "band_transfer_map",
    "sweep_element",
    "sweep_matrix",
    "TruncationReport",
    "choose_truncation_order",
]
