"""Charge-pump loop-filter topologies and their impedances ``Z_LF(s)``.

For the charge-pump architecture of paper Fig. 3 the loop-filter transfer is
``H_LF(s) = I_cp * Z_LF(s)`` (eq. 21) where ``Z_LF`` is the impedance seen by
the pump.  The topologies here cover the standard progression:

* :class:`SingleCapacitorFilter` — pure integrator, type-2 loop with zero
  phase margin (unstable reference case);
* :class:`SeriesRCFilter` — integrator + stabilising zero (type-2,
  second-order loop, no high-frequency pole);
* :class:`SeriesRCShuntCFilter` — the classic R-C1 branch shunted by C2:
  integrator + zero + high-frequency pole.  Cascaded with the VCO's ``1/s``
  this produces exactly the Fig. 5 characteristic — three poles (two at DC)
  and one zero;
* :class:`ActivePIFilter` — op-amp PI equivalent, for completeness.

:func:`normalized_filter` designs the shape directly from ``(w_z, w_p)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._errors import ValidationError
from repro._validation import check_positive
from repro.lti.transfer import TransferFunction

__all__ = [
    "LoopFilterComponents",
    "SingleCapacitorFilter",
    "SeriesRCFilter",
    "SeriesRCShuntCFilter",
    "ThirdOrderFilter",
    "ActivePIFilter",
    "normalized_filter",
]


@dataclass(frozen=True)
class LoopFilterComponents:
    """Physical R/C values realizing a :class:`SeriesRCShuntCFilter`."""

    resistance: float
    capacitance_series: float
    capacitance_shunt: float

    def __post_init__(self):
        check_positive("resistance", self.resistance)
        check_positive("capacitance_series", self.capacitance_series)
        check_positive("capacitance_shunt", self.capacitance_shunt)


class SingleCapacitorFilter:
    """A single shunt capacitor: ``Z(s) = 1 / (s C)``."""

    def __init__(self, capacitance: float):
        self.capacitance = check_positive("capacitance", capacitance)

    def impedance(self) -> TransferFunction:
        """The impedance ``1 / (s C)``."""
        return TransferFunction([1.0], [self.capacitance, 0.0], name="Z_C")


class SeriesRCFilter:
    """Series R-C to ground: ``Z(s) = R + 1/(sC) = (1 + s R C) / (s C)``."""

    def __init__(self, resistance: float, capacitance: float):
        self.resistance = check_positive("resistance", resistance)
        self.capacitance = check_positive("capacitance", capacitance)

    @property
    def zero_frequency(self) -> float:
        """The stabilising zero ``w_z = 1 / (R C)`` (rad/s)."""
        return 1.0 / (self.resistance * self.capacitance)

    def impedance(self) -> TransferFunction:
        """The impedance ``(1 + s R C) / (s C)``."""
        rc = self.resistance * self.capacitance
        return TransferFunction([rc, 1.0], [self.capacitance, 0.0], name="Z_RC")


class SeriesRCShuntCFilter:
    """Series R-C1 branch in parallel with shunt C2 (the Fig. 3 filter).

    ``Z(s) = (1 + s R C1) / (s (C1 + C2) (1 + s / w_p))`` with
    ``w_z = 1/(R C1)`` and ``w_p = (C1 + C2) / (R C1 C2)``.
    """

    def __init__(self, resistance: float, capacitance_series: float, capacitance_shunt: float):
        self.components = LoopFilterComponents(
            resistance, capacitance_series, capacitance_shunt
        )

    @classmethod
    def from_components(cls, components: LoopFilterComponents) -> "SeriesRCShuntCFilter":
        """Build from a components record."""
        return cls(
            components.resistance,
            components.capacitance_series,
            components.capacitance_shunt,
        )

    @classmethod
    def from_pole_zero(
        cls, zero_frequency: float, pole_frequency: float, total_capacitance: float
    ) -> "SeriesRCShuntCFilter":
        """Solve component values from ``(w_z, w_p, C1 + C2)``.

        Requires ``w_p > w_z`` (the zero must precede the parasitic pole).
        """
        wz = check_positive("zero_frequency", zero_frequency)
        wp = check_positive("pole_frequency", pole_frequency)
        ctot = check_positive("total_capacitance", total_capacitance)
        if wp <= wz:
            raise ValidationError(
                f"pole frequency ({wp:.3g}) must exceed zero frequency ({wz:.3g})"
            )
        c1 = ctot * (1.0 - wz / wp)
        c2 = ctot * wz / wp
        r = 1.0 / (wz * c1)
        return cls(r, c1, c2)

    @property
    def zero_frequency(self) -> float:
        """``w_z = 1 / (R C1)`` (rad/s)."""
        c = self.components
        return 1.0 / (c.resistance * c.capacitance_series)

    @property
    def pole_frequency(self) -> float:
        """``w_p = (C1 + C2) / (R C1 C2)`` (rad/s)."""
        c = self.components
        return (c.capacitance_series + c.capacitance_shunt) / (
            c.resistance * c.capacitance_series * c.capacitance_shunt
        )

    @property
    def total_capacitance(self) -> float:
        """``C1 + C2`` (farads)."""
        c = self.components
        return c.capacitance_series + c.capacitance_shunt

    def impedance(self) -> TransferFunction:
        """The impedance ``(1 + s R C1) / (s (C1+C2) (1 + s/w_p))``."""
        c = self.components
        ctot = self.total_capacitance
        rc1 = c.resistance * c.capacitance_series
        # Z(s) = (1 + s R C1) / (s Ctot + s^2 R C1 C2)
        quad = c.resistance * c.capacitance_series * c.capacitance_shunt
        return TransferFunction([rc1, 1.0], [quad, ctot, 0.0], name="Z_RC||C")


class ThirdOrderFilter:
    """Second-order RC//C stage followed by a series-R shunt-C smoothing pole.

    The extra pole attenuates reference-rate ripple (spur reduction) at the
    cost of phase margin.  The pump-current-to-control transfer uses the
    standard unloaded approximation ``Z(s) = Z2(s) / (1 + s / w_3)``, valid
    when the second-stage resistor is large compared to ``|Z2|`` near the
    crossover (the usual design regime; see Banerjee-style references).
    """

    def __init__(self, second_order: SeriesRCShuntCFilter, resistance3: float, capacitance3: float):
        if not isinstance(second_order, SeriesRCShuntCFilter):
            raise ValidationError("ThirdOrderFilter wraps a SeriesRCShuntCFilter first stage")
        self.second_order = second_order
        self.resistance3 = check_positive("resistance3", resistance3)
        self.capacitance3 = check_positive("capacitance3", capacitance3)

    @classmethod
    def from_pole_frequencies(
        cls,
        zero_frequency: float,
        pole_frequency: float,
        third_pole_frequency: float,
        total_capacitance: float,
        resistance3: float = 1.0,
    ) -> "ThirdOrderFilter":
        """Build from the three break frequencies of the shape."""
        stage1 = SeriesRCShuntCFilter.from_pole_zero(
            zero_frequency, pole_frequency, total_capacitance
        )
        w3 = check_positive("third_pole_frequency", third_pole_frequency)
        c3 = 1.0 / (resistance3 * w3)
        return cls(stage1, resistance3, c3)

    @property
    def zero_frequency(self) -> float:
        """The stabilising zero of the first stage (rad/s)."""
        return self.second_order.zero_frequency

    @property
    def pole_frequency(self) -> float:
        """The first stage's high-frequency pole (rad/s)."""
        return self.second_order.pole_frequency

    @property
    def third_pole_frequency(self) -> float:
        """The smoothing pole ``w_3 = 1 / (R3 C3)`` (rad/s)."""
        return 1.0 / (self.resistance3 * self.capacitance3)

    def impedance(self) -> TransferFunction:
        """Unloaded transfer ``Z2(s) / (1 + s / w_3)``."""
        post = TransferFunction([1.0], [1.0 / self.third_pole_frequency, 1.0])
        return TransferFunction.from_rational(
            (self.second_order.impedance() * post).rational, name="Z_3rd"
        )

    def ripple_attenuation_db(self, omega: float) -> float:
        """Extra ripple attenuation the third pole buys at ``omega`` (dB > 0)."""
        check_positive("omega", omega)
        import math

        return 10.0 * math.log10(1.0 + (omega / self.third_pole_frequency) ** 2)


class ActivePIFilter:
    """Active proportional-integral filter ``Z_eq(s) = K_p + K_i / s``.

    Expressed as an equivalent impedance so it plugs into the same
    ``H_LF = I_cp * Z`` slot as the passive topologies.
    """

    def __init__(self, proportional: float, integral: float):
        self.proportional = check_positive("proportional", proportional)
        self.integral = check_positive("integral", integral)

    @property
    def zero_frequency(self) -> float:
        """``w_z = K_i / K_p`` (rad/s)."""
        return self.integral / self.proportional

    def impedance(self) -> TransferFunction:
        """The equivalent impedance ``(K_p s + K_i) / s``."""
        return TransferFunction(
            [self.proportional, self.integral], [1.0, 0.0], name="Z_PI"
        )


def normalized_filter(
    zero_frequency: float, pole_frequency: float, gain: float = 1.0
) -> TransferFunction:
    """Shape-first loop-filter transfer ``gain (1 + s/w_z) / (s (1 + s/w_p))``.

    This is ``H_LF(s)`` directly (charge-pump current already folded into
    ``gain``); combined with the VCO integrator it yields the paper's Fig. 5
    open-loop characteristic.  Use when only the loop *shape* matters and
    component values do not.
    """
    wz = check_positive("zero_frequency", zero_frequency)
    wp = check_positive("pole_frequency", pole_frequency)
    check_positive("gain", gain)
    if wp <= wz:
        raise ValidationError(
            f"pole frequency ({wp:.3g}) must exceed zero frequency ({wz:.3g})"
        )
    num = [gain / wz, gain]
    den = [1.0 / wp, 1.0, 0.0]
    return TransferFunction(num, den, name="H_LF")
