"""Feedback divider / prescaler.

The paper folds prescalers into the VCO model (footnote 1).  This module
makes the underlying reasoning explicit: in the *phase-in-seconds*
convention a noiseless divide-by-N passes edge time displacements through
unchanged — a VCO edge delayed by ``theta`` seconds produces a divider edge
delayed by the same ``theta`` seconds — so the small-signal divider HTM is
the identity.  (The familiar ``1/N`` of textbook models lives in the
*radian*-phase convention, where the carrier frequencies differ by N.)

What the divider does change is the *edge rate* seen by the PFD, which is
what the behavioural simulator needs, plus the radian-phase conversion
helpers for interfacing with textbook quantities.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_order, check_positive
from repro.core.operators import HarmonicOperator, IdentityOperator


class Divider:
    """Ideal divide-by-N edge decimator.

    Parameters
    ----------
    ratio:
        Integer division ratio N >= 1.
    omega0:
        Reference (output-side) angular frequency in rad/s.
    """

    def __init__(self, ratio: int, omega0: float):
        self.ratio = check_order("ratio", ratio, minimum=1)
        self.omega0 = check_positive("omega0", omega0)

    def operator(self) -> HarmonicOperator:
        """Identity HTM: time-displacement phase passes through a divider."""
        return IdentityOperator(self.omega0)

    def decimate_edges(self, edge_times: np.ndarray, phase: int = 0) -> np.ndarray:
        """Keep every N-th input edge, starting at index ``phase``."""
        edges = np.asarray(edge_times, dtype=float)
        if not 0 <= phase < self.ratio:
            raise ValueError(f"phase must lie in [0, {self.ratio}), got {phase}")
        return edges[phase :: self.ratio].copy()

    def radian_gain(self) -> float:
        """Radian-phase divider gain ``1/N`` for textbook cross-checks.

        ``theta_rad_out = theta_rad_in / N`` while the seconds-phase is
        preserved; the two conventions are linked by
        ``theta_rad = omega_carrier * theta_sec`` with carrier frequencies
        differing by N.
        """
        return 1.0 / self.ratio

    def __repr__(self) -> str:
        return f"Divider(ratio={self.ratio}, omega0={self.omega0:.6g})"
