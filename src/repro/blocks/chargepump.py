"""Charge-pump model: pump current, non-idealities and pulse generation.

In the small-signal HTM model the charge pump only contributes its current
``I_cp`` to the loop-filter transfer ``H_LF(s) = I_cp * Z_LF(s)`` (paper
eq. 21; the impulse-train weight carries the sampling).  For the behavioural
simulator the pump additionally turns PFD UP/DOWN intervals into current
segments, including optional mismatch and leakage non-idealities used by the
robustness tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._errors import ValidationError
from repro._validation import check_finite, check_nonnegative, check_positive
from repro.lti.transfer import TransferFunction


@dataclass(frozen=True)
class CurrentSegment:
    """A piecewise-constant charge-pump output: ``current`` over [start, stop)."""

    start: float
    stop: float
    current: float

    def __post_init__(self):
        if self.stop < self.start:
            raise ValidationError(
                f"segment stop ({self.stop}) before start ({self.start})"
            )

    @property
    def charge(self) -> float:
        """Total charge delivered by this segment (coulombs)."""
        return self.current * (self.stop - self.start)


@dataclass(frozen=True)
class ChargePump:
    """Charge pump with nominal current and optional non-idealities.

    Parameters
    ----------
    current:
        Nominal pump current ``I_cp`` (amperes), used for both polarities.
    mismatch:
        Fractional mismatch between UP and DOWN currents:
        ``I_up = I_cp (1 + mismatch/2)``, ``I_down = I_cp (1 - mismatch/2)``.
    leakage:
        Constant leakage current (amperes) always sinking from the filter.
    """

    current: float
    mismatch: float = 0.0
    leakage: float = 0.0

    def __post_init__(self):
        check_positive("current", self.current)
        check_finite("mismatch", self.mismatch)
        if abs(self.mismatch) >= 2.0:
            raise ValidationError(f"mismatch must satisfy |mismatch| < 2, got {self.mismatch}")
        check_nonnegative("leakage", abs(self.leakage))

    @property
    def up_current(self) -> float:
        """Sourcing current when UP is active."""
        return self.current * (1.0 + self.mismatch / 2.0)

    @property
    def down_current(self) -> float:
        """Sinking current magnitude when DOWN is active."""
        return self.current * (1.0 - self.mismatch / 2.0)

    def loop_filter_transfer(self, impedance: TransferFunction) -> TransferFunction:
        """The combined block transfer ``H_LF(s) = I_cp * Z_LF(s)`` (eq. 21)."""
        return TransferFunction.from_rational(
            self.current * impedance.rational, name="H_LF"
        )

    def pulse_segments(
        self, t_ref_edge: float, t_vco_edge: float
    ) -> list[CurrentSegment]:
        """Current segments for one PFD comparison (tri-state behaviour).

        The earlier edge raises its flip-flop; the later edge resets both.
        A reference edge leading the VCO edge produces a net UP pulse of
        width ``|dt|``, and vice versa.  The reset is modelled as
        instantaneous (no dead-zone, no reset pulse overlap) — matching the
        idealisation the HTM model linearises.
        """
        if t_ref_edge <= t_vco_edge:
            return [CurrentSegment(t_ref_edge, t_vco_edge, self.up_current)]
        return [CurrentSegment(t_vco_edge, t_ref_edge, -self.down_current)]

    def error_charge(self, phase_error: float) -> float:
        """Net charge for a phase error expressed in seconds (small-signal).

        This is the impulse weight the HTM model assigns to one sampling
        instant: ``Q = I_cp * (thetaref - theta)``.
        """
        return self.current * phase_error
