"""Loop transport delay ``e^{-s tau}``.

A feedback delay (buffer chains, divider latency, PFD reset time) erodes
phase margin linearly with frequency and interacts with the sampling
aliasing studied in the paper.  The delay is irrational, so it is provided
as a callable transfer usable directly by
:class:`~repro.core.operators.LTIOperator`, plus a Padé rational
approximation for code paths that need poles/zeros.
"""

from __future__ import annotations

import math

import numpy as np

from repro._validation import check_nonnegative, check_order, check_positive
from repro.core.operators import HarmonicOperator, LTIOperator
from repro.lti.rational import RationalFunction
from repro.lti.transfer import TransferFunction


class LoopDelay:
    """Pure transport delay of ``tau`` seconds."""

    def __init__(self, tau: float, omega0: float):
        self.tau = check_nonnegative("tau", tau)
        self.omega0 = check_positive("omega0", omega0)

    def transfer(self, s: complex | np.ndarray) -> complex | np.ndarray:
        """Evaluate ``e^{-s tau}``."""
        return np.exp(-np.asarray(s, dtype=complex) * self.tau)

    def operator(self) -> HarmonicOperator:
        """Diagonal HTM of the delay."""
        return LTIOperator(self.transfer, self.omega0)

    def phase_lag_deg(self, omega: float) -> float:
        """Phase lag contributed at ``omega`` (degrees, positive = lag)."""
        return math.degrees(omega * self.tau)

    def pade(self, order: int = 2) -> TransferFunction:
        """Diagonal Padé [order/order] rational approximation of the delay.

        Coefficients follow the closed form
        ``p_k = (2n - k)! n! / ((2n)! k! (n-k)!)`` with the numerator the
        alternating-sign mirror; accurate for ``omega * tau`` up to roughly
        the approximation order.
        """
        order = check_order("order", order, minimum=1)
        if self.tau == 0.0:
            return TransferFunction.gain(1.0, name="delay")
        n = order
        den = np.zeros(n + 1)
        for k in range(n + 1):
            den[n - k] = (
                math.factorial(2 * n - k)
                * math.factorial(n)
                / (math.factorial(2 * n) * math.factorial(k) * math.factorial(n - k))
            ) * self.tau**k
        num = den.copy()
        # Numerator flips the sign of odd powers of (s tau).
        for k in range(n + 1):
            if k % 2 == 1:
                num[n - k] = -num[n - k]
        return TransferFunction.from_rational(RationalFunction(num, den), name="delay")

    def __repr__(self) -> str:
        return f"LoopDelay(tau={self.tau:.6g})"
