"""Voltage-controlled oscillator model (paper sec. 3.3, after Demir et al.).

A perturbation ``du(t)`` on the control input shifts the VCO phase
(in seconds) as ``d theta/dt = v(t) du(t)`` (eq. 24): multiplication with
the periodic impulse sensitivity function followed by integration.  The
HTM is ``[H_VCO]_{n,m}(s) = v_{n-m} / (s + j n w0)`` (eq. 25).

With a constant ISF (``v_k = 0`` for ``k != 0``) the HTM is diagonal and the
VCO reduces to the classical ``v0 / s`` integrator — the case the paper's
experiments use (sec. 5).
"""

from __future__ import annotations

from repro._errors import ValidationError
from repro._validation import check_positive
from repro.core.operators import HarmonicOperator, IsfIntegrationOperator
from repro.lti.transfer import TransferFunction
from repro.signals.isf import ImpulseSensitivity


class VCO:
    """Controlled oscillator described by its ISF and free-running frequency.

    Parameters
    ----------
    isf:
        Impulse sensitivity of the control input (phase-in-seconds
        convention; see :mod:`repro.signals.isf`).
    f0:
        Free-running output frequency in Hz.  Only the behavioural simulator
        needs it; the small-signal HTM depends on the ISF alone.
    """

    def __init__(self, isf: ImpulseSensitivity, f0: float = 1.0):
        if not isinstance(isf, ImpulseSensitivity):
            raise ValidationError("VCO requires an ImpulseSensitivity instance")
        self.isf = isf
        self.f0 = check_positive("f0", f0)

    # -- constructors ------------------------------------------------------

    @classmethod
    def time_invariant(cls, v0: float, omega0: float, f0: float = 1.0) -> "VCO":
        """VCO with constant sensitivity ``v0`` (the paper's sec. 5 setting)."""
        return cls(ImpulseSensitivity.constant(v0, omega0), f0=f0)

    @classmethod
    def from_gain(cls, kvco_hz_per_unit: float, f0: float, omega0: float) -> "VCO":
        """VCO from the conventional gain ``K_v`` (Hz per input unit) at ``f0``."""
        return cls(
            ImpulseSensitivity.from_vco_gain(kvco_hz_per_unit, f0, omega0), f0=f0
        )

    # -- accessors -----------------------------------------------------------

    @property
    def omega0(self) -> float:
        """Fundamental angular frequency of the ISF periodicity (rad/s)."""
        return self.isf.omega0

    @property
    def v0(self) -> complex:
        """Average sensitivity — the LTI-approximation integrator gain."""
        return self.isf.v0

    def is_time_invariant(self) -> bool:
        """True when the ISF has no harmonics beyond DC."""
        return self.isf.is_time_invariant()

    # -- models ---------------------------------------------------------------

    def operator(self) -> HarmonicOperator:
        """The LPTV phase operator of eq. (25)."""
        return IsfIntegrationOperator(self.isf)

    def lti_transfer(self) -> TransferFunction:
        """The classical LTI approximation ``v0 / s``.

        Raises
        ------
        ValidationError
            If the ISF is genuinely time varying — collapsing it to ``v0/s``
            would silently discard the harmonic conversion terms.
        """
        if not self.is_time_invariant():
            raise ValidationError(
                "VCO has a time-varying ISF; its LTI reduction v0/s discards "
                "harmonic conversion — use operator() instead"
            )
        v0 = self.v0
        if abs(v0.imag) > 1e-12 * max(abs(v0.real), 1.0):
            raise ValidationError("constant ISF must be real for the v0/s reduction")
        return TransferFunction.integrator(v0.real, name="VCO")

    def __repr__(self) -> str:
        kind = "time-invariant" if self.is_time_invariant() else "LPTV"
        return f"VCO({kind}, v0={self.v0:.6g}, f0={self.f0:.6g})"
