"""Phase-frequency detector models.

The paper's central block is the *sampling* PFD: a digital tri-state
detector that measures the phase error as the distance between the
zero-crossings of the reference and VCO signals, once per reference period.
When the produced pulses are narrow compared to the loop time constant they
act as Dirac impulses whose weight equals the pulse width (Fig. 4), so the
small-signal model is multiplication with an impulse train::

    y(t) = sum_m delta(t - m T) * (thetaref(t) - theta(t))       (eq. 16)

whose HTM is the rank-one matrix ``(w0/2pi) l l^T`` (eqs. 19–20).  Two other
detector styles are provided to exercise the "arbitrary PFD" generality the
paper claims: a sample-and-hold PFD (zero-order hold, still rank one but
frequency-shaped) and a memoryless multiplying (mixer-style) detector (an
LTI gain).
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_finite, check_positive
from repro.core.operators import (
    HarmonicOperator,
    LTIOperator,
    SamplingOperator,
    SeriesOperator,
)


class SamplingPFD:
    """Ideal sampling PFD: impulse-train phase-error sampler (paper sec. 3.1).

    Parameters
    ----------
    omega0:
        Reference angular frequency (rad/s); the sampling rate.
    sampling_offset:
        Instant within the period at which the error is sampled (seconds).
        Zero matches the paper's alignment with reference edges.
    """

    def __init__(self, omega0: float, sampling_offset: float = 0.0):
        self.omega0 = check_positive("omega0", omega0)
        self.sampling_offset = check_finite("sampling_offset", sampling_offset)

    @property
    def gain(self) -> float:
        """The impulse-train weight ``w0 / 2pi = 1/T`` appearing in eq. (19)."""
        return self.omega0 / (2 * np.pi)

    @property
    def period(self) -> float:
        """Sampling period ``T`` (seconds)."""
        return 2 * np.pi / self.omega0

    def operator(self) -> HarmonicOperator:
        """The rank-one sampling operator (lazy HTM)."""
        return SamplingOperator(self.omega0, offset=self.sampling_offset)

    def column_vector(self, order: int) -> np.ndarray:
        """Rank-one column factor including the ``w0/2pi`` gain.

        For zero offset this is ``(w0/2pi) * l`` of eq. (20).
        """
        op = SamplingOperator(self.omega0, offset=self.sampling_offset)
        return self.gain * op.column_vector(order)

    def row_vector(self, order: int) -> np.ndarray:
        """Rank-one row factor (the ``l^T`` of eq. 20, phase-rotated by offset)."""
        op = SamplingOperator(self.omega0, offset=self.sampling_offset)
        return op.row_vector(order)

    def __repr__(self) -> str:
        return f"SamplingPFD(omega0={self.omega0:.6g}, offset={self.sampling_offset:.3g})"


class SampleHoldPFD:
    """Sample-and-hold PFD: impulse sampling followed by a zero-order hold.

    The hold filter ``ZOH(s) = (1 - e^{-sT}) / s`` is LTI, so the cascade is
    ``LTIOperator(ZOH) @ SamplingOperator`` — still rank one, but with a
    frequency-shaped column factor ``d_n(s) = ZOH(s + j n w0) * (w0/2pi)``.
    Holding the error over the whole period adds the classic extra ~half-period
    delay to the loop, further eroding phase margin.
    """

    def __init__(self, omega0: float):
        self.omega0 = check_positive("omega0", omega0)
        # Sampling instants at t = mT, as for the impulse-train detector.
        self.sampling_offset = 0.0

    @property
    def gain(self) -> float:
        """Impulse-train weight ``1/T``; the hold restores DC gain 1 overall."""
        return self.omega0 / (2 * np.pi)

    @property
    def period(self) -> float:
        """Sampling/hold period ``T`` (seconds)."""
        return 2 * np.pi / self.omega0

    def hold_transfer(self, s: complex | np.ndarray) -> complex | np.ndarray:
        """The zero-order-hold transfer ``(1 - e^{-sT}) / s`` (value ``T`` at DC)."""
        s_arr = np.asarray(s, dtype=complex)
        period = self.period
        small = np.abs(s_arr) * period < 1e-8
        with np.errstate(divide="ignore", invalid="ignore"):
            generic = (1.0 - np.exp(-s_arr * period)) / s_arr
        limit = period * (1.0 - s_arr * period / 2.0)
        out = np.where(small, limit, generic)
        if np.ndim(s) == 0:
            return complex(out)
        return out

    def operator(self) -> HarmonicOperator:
        """The cascaded hold-after-sample operator."""
        hold = LTIOperator(self.hold_transfer, self.omega0)
        return SeriesOperator(hold, SamplingOperator(self.omega0))

    def column_vector(self, order: int, s: complex) -> np.ndarray:
        """Rank-one column factor at frequency ``s``: ``(w0/2pi) ZOH(s + j n w0)``."""
        n = np.arange(-order, order + 1)
        return self.gain * np.asarray(
            [self.hold_transfer(s + 1j * k * self.omega0) for k in n], dtype=complex
        )

    def row_vector(self, order: int) -> np.ndarray:
        """Rank-one row factor: the all-ones ``l^T``."""
        return np.ones(2 * order + 1, dtype=complex)

    def __repr__(self) -> str:
        return f"SampleHoldPFD(omega0={self.omega0:.6g})"


class MultiplyingPFD:
    """Memoryless multiplying (mixer-style) phase detector.

    Produces ``y = k_pd * (thetaref - theta)`` continuously: an LTI gain with
    a diagonal HTM.  Included as the baseline detector for which classical
    LTI analysis is exact — the contrast case for the sampling PFD.
    """

    def __init__(self, omega0: float, k_pd: float = 1.0):
        self.omega0 = check_positive("omega0", omega0)
        self.k_pd = check_finite("k_pd", k_pd)

    @property
    def gain(self) -> float:
        """The detector gain ``k_pd``."""
        return self.k_pd

    def operator(self) -> HarmonicOperator:
        """Diagonal (LTI) operator of the constant gain."""
        return LTIOperator(lambda s: self.k_pd, self.omega0)

    def __repr__(self) -> str:
        return f"MultiplyingPFD(omega0={self.omega0:.6g}, k_pd={self.k_pd:.6g})"
