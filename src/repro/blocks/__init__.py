"""PLL building-block models (paper sec. 3).

Each block knows how to produce its harmonic-operator (HTM) representation:

* :class:`~repro.blocks.pfd.SamplingPFD` — the impulse-train sampler, the
  rank-one HTM of eqs. (19)–(20);
* :class:`~repro.blocks.pfd.SampleHoldPFD` /
  :class:`~repro.blocks.pfd.MultiplyingPFD` — alternative detectors showing
  the framework's generality ("extension to arbitrary PFDs is possible");
* :class:`~repro.blocks.chargepump.ChargePump` — pump current and
  non-idealities; combines with a loop-filter impedance into ``H_LF`` (eq. 21);
* :mod:`~repro.blocks.loopfilter` — charge-pump filter topologies and their
  impedances ``Z_LF(s)``;
* :class:`~repro.blocks.vco.VCO` — ISF-based oscillator, eq. (25);
* :class:`~repro.blocks.divider.Divider` — feedback divider (identity in the
  phase-in-seconds convention, edge decimation in the simulator);
* :class:`~repro.blocks.delay.LoopDelay` — optional feedback transport delay.
"""

from repro.blocks.pfd import MultiplyingPFD, SampleHoldPFD, SamplingPFD
from repro.blocks.chargepump import ChargePump
from repro.blocks.loopfilter import (
    ActivePIFilter,
    LoopFilterComponents,
    SeriesRCFilter,
    SeriesRCShuntCFilter,
    SingleCapacitorFilter,
    ThirdOrderFilter,
    normalized_filter,
)
from repro.blocks.vco import VCO
from repro.blocks.divider import Divider
from repro.blocks.delay import LoopDelay

__all__ = [
    "MultiplyingPFD",
    "SampleHoldPFD",
    "SamplingPFD",
    "ChargePump",
    "ActivePIFilter",
    "LoopFilterComponents",
    "SeriesRCFilter",
    "SeriesRCShuntCFilter",
    "SingleCapacitorFilter",
    "ThirdOrderFilter",
    "normalized_filter",
    "VCO",
    "Divider",
    "LoopDelay",
]
