"""Shared exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError` so that callers can catch library failures without
accidentally swallowing programming errors (``TypeError`` etc. raised by
NumPy or Python itself are left alone).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong range, shape or combination)."""


class TruncationError(ReproError):
    """An HTM truncation order was too small for the requested operation."""


class ConvergenceError(ReproError):
    """An iterative computation (aliasing sum, root search) did not converge."""


class StabilityError(ReproError):
    """A stability-dependent quantity was requested for an unstable system."""


class LockError(ReproError):
    """The behavioural simulator failed to acquire or hold phase lock."""


class DesignError(ReproError):
    """A loop-design request cannot be met (e.g. impossible margin target)."""
