"""Analytic time-domain responses from partial fractions.

Impulse and step responses are evaluated in closed form from the
partial-fraction expansion: a term ``r / (s - p)^k`` contributes
``r * t^(k-1) e^{p t} / (k-1)!``.  This gives machine-precision references
against which the state-space integrator of the behavioural simulator is
validated in the test suite.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro._errors import ValidationError
from repro.lti.rational import RationalFunction
from repro.lti.transfer import TransferFunction


def _as_rational(system) -> RationalFunction:
    if isinstance(system, TransferFunction):
        return system.rational
    if isinstance(system, RationalFunction):
        return system
    raise ValidationError(
        f"time-domain responses need a rational system, got {type(system).__name__}"
    )


def impulse_response(system, t: Sequence[float] | np.ndarray) -> np.ndarray:
    """Impulse response ``h(t)`` evaluated at the given times (t >= 0).

    The system must be strictly proper — a direct feedthrough term would
    contribute a Dirac impulse which has no pointwise value.
    """
    rf = _as_rational(system)
    if not rf.is_strictly_proper():
        raise ValidationError("impulse response requires a strictly proper system")
    t_arr = np.asarray(t, dtype=float)
    if np.any(t_arr < 0):
        raise ValidationError("impulse response is defined for t >= 0 only")
    _, terms = rf.partial_fractions()
    out = np.zeros(t_arr.shape, dtype=complex)
    for term in terms:
        k = term.order
        out += (
            term.residue
            * t_arr ** (k - 1)
            * np.exp(term.pole * t_arr)
            / math.factorial(k - 1)
        )
    return _realify(out)


def step_response(system, t: Sequence[float] | np.ndarray) -> np.ndarray:
    """Unit-step response evaluated at the given times (t >= 0).

    Computed as the impulse response of ``H(s) / s``; the extra integrator
    pole merges automatically with any existing pole at the origin through
    the multiplicity-aware partial-fraction machinery.
    """
    rf = _as_rational(system)
    if not rf.is_proper():
        raise ValidationError("step response requires a proper system")
    stepped = rf * RationalFunction.integrator()
    t_arr = np.asarray(t, dtype=float)
    if np.any(t_arr < 0):
        raise ValidationError("step response is defined for t >= 0 only")
    _, terms = stepped.partial_fractions()
    out = np.zeros(t_arr.shape, dtype=complex)
    for term in terms:
        k = term.order
        out += (
            term.residue
            * t_arr ** (k - 1)
            * np.exp(term.pole * t_arr)
            / math.factorial(k - 1)
        )
    return _realify(out)


def _realify(values: np.ndarray) -> np.ndarray:
    """Drop the imaginary part when it is numerical noise, else keep complex."""
    scale = np.max(np.abs(values)) if values.size else 0.0
    if scale == 0.0 or np.max(np.abs(values.imag)) <= 1e-9 * scale:
        return values.real.copy()
    return values
