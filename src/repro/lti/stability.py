"""Stability tests: pole locations, Routh–Hurwitz and Nyquist counting.

The closed-loop PLL with time-varying effects is *not* rational, so pole
inspection alone is not enough; the Nyquist encirclement counter here works
on sampled frequency responses and is what the time-varying stability
assessment (:mod:`repro.pll.margins`) uses for the effective open-loop gain.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro._errors import ValidationError
from repro.lti.bode import as_response


def hurwitz_stable(den: Sequence[float] | np.ndarray, margin: float = 0.0) -> bool:
    """True when all roots of ``den`` have real part < ``-margin``.

    Direct root computation; robust for the modest polynomial degrees used
    in loop analysis and immune to the zero-row corner cases of the Routh
    tabulation.
    """
    den_arr = np.atleast_1d(np.asarray(den, dtype=complex))
    if den_arr.size == 0 or np.all(den_arr == 0):
        raise ValidationError("denominator must be a non-zero polynomial")
    roots = np.roots(den_arr)
    if roots.size == 0:
        return True
    return bool(np.all(roots.real < -margin))


def routh_table(den: Sequence[float] | np.ndarray, epsilon: float = 1e-9) -> np.ndarray:
    """Build the Routh array of a *real* polynomial.

    Zero leading elements are replaced by ``epsilon`` (the classical
    perturbation workaround).  The first column's sign changes equal the
    number of right-half-plane roots.

    Returns
    -------
    ndarray of shape ``(degree + 1, ceil((degree + 1) / 2))``.
    """
    den_arr = np.atleast_1d(np.asarray(den, dtype=float))
    den_arr = den_arr[np.argmax(den_arr != 0) :] if np.any(den_arr != 0) else den_arr
    if den_arr.size == 0 or den_arr[0] == 0:
        raise ValidationError("denominator must have a non-zero leading coefficient")
    n = den_arr.size - 1
    cols = (n + 2) // 2
    table = np.zeros((n + 1, cols))
    table[0, : len(den_arr[0::2])] = den_arr[0::2]
    if n >= 1:
        table[1, : len(den_arr[1::2])] = den_arr[1::2]
    for row in range(2, n + 1):
        pivot = table[row - 1, 0]
        if pivot == 0:
            pivot = epsilon
        for col in range(cols - 1):
            table[row, col] = (
                pivot * table[row - 2, col + 1] - table[row - 2, 0] * table[row - 1, col + 1]
            ) / pivot
    return table


def routh_rhp_count(den: Sequence[float] | np.ndarray) -> int:
    """Number of right-half-plane roots according to the Routh criterion."""
    table = routh_table(den)
    first_col = table[:, 0]
    first_col = np.where(first_col == 0, 1e-12, first_col)
    return int(np.sum(np.diff(np.sign(first_col)) != 0))


@dataclass(frozen=True)
class NyquistSummary:
    """Result of a sampled Nyquist evaluation of an open-loop gain ``L``.

    Attributes
    ----------
    encirclements:
        Net counter-clockwise encirclements of -1 by ``L(j omega)`` as omega
        sweeps the full (two-sided) imaginary axis.
    open_loop_rhp_poles:
        RHP pole count supplied by the caller (0 for the usual stable-plus-
        integrator loop gains once the indentation is handled by symmetry).
    closed_loop_stable:
        Nyquist verdict ``Z = P - N == 0``.
    """

    encirclements: int
    open_loop_rhp_poles: int

    @property
    def closed_loop_stable(self) -> bool:
        return self.open_loop_rhp_poles + self.encirclements == 0

    @property
    def closed_loop_rhp_poles(self) -> int:
        """Predicted number of unstable closed-loop poles ``Z = P + N_cw``."""
        return self.open_loop_rhp_poles + self.encirclements


def nyquist_encirclements(
    system,
    omega_min: float = 1e-4,
    omega_max: float = 1e4,
    points: int = 20000,
    open_loop_rhp_poles: int = 0,
) -> NyquistSummary:
    """Count clockwise encirclements of -1 by a sampled Nyquist contour.

    The contour runs ``-omega_max .. -omega_min, +omega_min .. +omega_max``;
    for loop gains with poles at the origin the small-semicircle indentation
    contributes no net encirclement when the two sides are closed through
    the conjugate-symmetric response, which holds for all real-coefficient
    loops analysed here.  Accuracy depends on ``points``; the winding number
    is integer-rounded and the residual is checked.
    """
    response = as_response(system)
    grid = np.logspace(math.log10(omega_min), math.log10(omega_max), points)
    upper = response(grid)
    # Real-coefficient symmetry: L(-jw) = conj(L(jw)).
    contour = np.concatenate([np.conj(upper[::-1]), upper])
    rel = contour - (-1.0 + 0.0j)
    angles = np.unwrap(np.angle(rel))
    total_turns = (angles[-1] - angles[0]) / (2 * math.pi)
    # Clockwise encirclements are negative winding; report net CW count.
    winding = -total_turns
    rounded = int(round(winding))
    if abs(winding - rounded) > 0.2:
        raise ValidationError(
            f"Nyquist winding number {winding:.3f} is not close to an integer; "
            "increase the sweep range or point count"
        )
    return NyquistSummary(encirclements=rounded, open_loop_rhp_poles=open_loop_rhp_poles)
