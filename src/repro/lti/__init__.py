"""Linear time-invariant (LTI) substrate.

This subpackage provides the s-domain machinery the rest of the library is
built on: rational functions, transfer functions, state-space models, Bode
analysis (crossover frequencies, phase/gain margins) and stability tests.

It is intentionally self-contained: the HTM core (:mod:`repro.core`) embeds
LTI systems as diagonal harmonic transfer matrices, the closed-form aliasing
sums (:mod:`repro.core.aliasing`) need partial-fraction expansions, and the
behavioural simulator (:mod:`repro.simulator`) needs exact matrix-exponential
stepping of state-space models.
"""

from repro.lti.rational import PartialFractionTerm, RationalFunction
from repro.lti.transfer import TransferFunction
from repro.lti.statespace import StateSpace
from repro.lti.bode import (
    BodePoint,
    MarginReport,
    bandwidth_3db,
    delay_margin,
    gain_crossover,
    gain_margin,
    modulus_margin,
    peaking_db,
    phase_crossover,
    phase_margin,
    stability_margins,
)
from repro.lti.stability import (
    NyquistSummary,
    hurwitz_stable,
    nyquist_encirclements,
    routh_table,
)
from repro.lti.timedomain import impulse_response, step_response

__all__ = [
    "PartialFractionTerm",
    "RationalFunction",
    "TransferFunction",
    "StateSpace",
    "BodePoint",
    "MarginReport",
    "bandwidth_3db",
    "delay_margin",
    "gain_crossover",
    "gain_margin",
    "modulus_margin",
    "peaking_db",
    "phase_crossover",
    "phase_margin",
    "stability_margins",
    "NyquistSummary",
    "hurwitz_stable",
    "nyquist_encirclements",
    "routh_table",
    "impulse_response",
    "step_response",
]
