"""State-space models and exact piecewise-constant-input integration.

The behavioural PLL simulator (:mod:`repro.simulator`) integrates the loop
filter between charge-pump events with **zero discretization error** by using
the matrix exponential of an augmented system.  This module provides the
:class:`StateSpace` representation, conversion from transfer functions
(controllable canonical form) and the exact stepping primitive
:meth:`StateSpace.step_held_input`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.linalg import expm

from repro._errors import ValidationError


class StateSpace:
    """Continuous-time LTI system ``x' = A x + B u``, ``y = C x + D u``.

    Single-input single-output throughout this library (``B`` is a column,
    ``C`` a row, ``D`` a scalar), though the matrices are stored generally.
    """

    __slots__ = ("A", "B", "C", "D")

    def __init__(
        self,
        A: Sequence[Sequence[float]] | np.ndarray,
        B: Sequence[Sequence[float]] | np.ndarray,
        C: Sequence[Sequence[float]] | np.ndarray,
        D: float | Sequence[Sequence[float]] | np.ndarray,
    ):
        self.A = np.atleast_2d(np.asarray(A, dtype=float))
        self.B = np.atleast_2d(np.asarray(B, dtype=float))
        self.C = np.atleast_2d(np.asarray(C, dtype=float))
        self.D = np.atleast_2d(np.asarray(D, dtype=float))
        n = self.A.shape[0]
        if self.A.shape != (n, n):
            raise ValidationError(f"A must be square, got shape {self.A.shape}")
        if self.B.shape[0] != n:
            raise ValidationError(f"B must have {n} rows, got shape {self.B.shape}")
        if self.C.shape[1] != n:
            raise ValidationError(f"C must have {n} columns, got shape {self.C.shape}")
        if self.D.shape != (self.C.shape[0], self.B.shape[1]):
            raise ValidationError(
                f"D shape {self.D.shape} inconsistent with C rows {self.C.shape[0]} "
                f"and B columns {self.B.shape[1]}"
            )

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_transfer_function(cls, tf) -> "StateSpace":
        """Controllable-canonical realization of a proper transfer function.

        Raises
        ------
        ValidationError
            If the transfer function is improper (more zeros than poles):
            such systems are not realizable as state space.
        """
        if not tf.is_proper():
            raise ValidationError("cannot realize an improper transfer function in state space")
        den = np.asarray(tf.den, dtype=complex)
        num = np.asarray(tf.num, dtype=complex)
        if np.max(np.abs(den.imag)) > 1e-12 * max(np.max(np.abs(den.real)), 1.0) or np.max(
            np.abs(num.imag)
        ) > 1e-12 * max(np.max(np.abs(num.real)), 1.0):
            raise ValidationError("state-space realization requires real coefficients")
        den = den.real
        num = num.real
        n = den.size - 1
        num_padded = np.zeros(n + 1)
        num_padded[n + 1 - num.size :] = num
        d = num_padded[0]  # feedthrough: leading coefficient after padding
        # Residual numerator after removing the direct path: b - d * a.
        b = num_padded[1:] - d * den[1:]
        if n == 0:
            return cls(np.zeros((1, 1)), np.zeros((1, 1)), np.zeros((1, 1)), [[d]])
        A = np.zeros((n, n))
        A[0, :] = -den[1:]
        if n > 1:
            A[1:, :-1] = np.eye(n - 1)
        B = np.zeros((n, 1))
        B[0, 0] = 1.0
        C = b.reshape(1, n)
        return cls(A, B, C, [[d]])

    # -- basic queries ----------------------------------------------------------

    @property
    def order(self) -> int:
        """Number of state variables."""
        return self.A.shape[0]

    def poles(self) -> np.ndarray:
        """Eigenvalues of ``A``."""
        return np.linalg.eigvals(self.A)

    def transfer_at(self, s: complex) -> complex:
        """Evaluate ``C (sI - A)^{-1} B + D`` at one complex frequency."""
        n = self.order
        resolvent = np.linalg.solve(s * np.eye(n) - self.A, self.B)
        return complex((self.C @ resolvent + self.D)[0, 0])

    def dc_gain(self) -> complex:
        """Gain at ``s = 0`` (may be infinite for integrating systems)."""
        try:
            return self.transfer_at(0.0)
        except np.linalg.LinAlgError:
            return complex(np.inf)

    # -- exact stepping -----------------------------------------------------------

    def step_held_input(
        self, x: np.ndarray, u: float, dt: float
    ) -> tuple[np.ndarray, float]:
        """Advance the state by ``dt`` with the input held constant at ``u``.

        Uses the augmented-matrix exponential trick so the zero-order-hold
        discretization is exact to machine precision::

            exp([[A, B], [0, 0]] dt) = [[Ad, Bd], [0, I]]

        Returns the new state and the output *at the end* of the interval.
        """
        if dt < 0:
            raise ValidationError(f"dt must be non-negative, got {dt}")
        x = np.asarray(x, dtype=float).reshape(self.order)
        if dt == 0.0:
            return x.copy(), self.output(x, u)
        Ad, Bd = self.discretize(dt)
        x_next = Ad @ x + Bd.ravel() * u
        return x_next, self.output(x_next, u)

    def discretize(self, dt: float) -> tuple[np.ndarray, np.ndarray]:
        """Exact zero-order-hold discretization ``(Ad, Bd)`` for step ``dt``."""
        if dt <= 0:
            raise ValidationError(f"dt must be positive, got {dt}")
        n = self.order
        m = self.B.shape[1]
        aug = np.zeros((n + m, n + m))
        aug[:n, :n] = self.A
        aug[:n, n:] = self.B
        phi = expm(aug * dt)
        return phi[:n, :n], phi[:n, n:]

    def output(self, x: np.ndarray, u: float) -> float:
        """Instantaneous output ``y = C x + D u``."""
        x = np.asarray(x, dtype=float).reshape(self.order)
        return float((self.C @ x)[0] + self.D.ravel()[0] * u)

    def simulate_held(
        self,
        times: np.ndarray,
        inputs: np.ndarray,
        x0: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Simulate with an input held constant over each interval.

        ``inputs[i]`` is applied over ``[times[i], times[i+1])``; the returned
        outputs are sampled at each time point (before the next hold value is
        applied).  This is the reference integrator for the event-driven
        simulator tests.
        """
        times = np.asarray(times, dtype=float)
        inputs = np.asarray(inputs, dtype=float)
        if times.ndim != 1 or times.size < 1:
            raise ValidationError("times must be a non-empty 1-D array")
        if inputs.size != times.size:
            raise ValidationError("inputs must match times in length")
        if np.any(np.diff(times) < 0):
            raise ValidationError("times must be non-decreasing")
        x = np.zeros(self.order) if x0 is None else np.asarray(x0, dtype=float).copy()
        states = np.empty((times.size, self.order))
        outputs = np.empty(times.size)
        states[0] = x
        outputs[0] = self.output(x, inputs[0])
        for i in range(times.size - 1):
            dt = times[i + 1] - times[i]
            if dt > 0:
                x, _ = self.step_held_input(x, inputs[i], dt)
            states[i + 1] = x
            outputs[i + 1] = self.output(x, inputs[i + 1])
        return states, outputs

    def __repr__(self) -> str:
        return f"StateSpace(order={self.order})"
