"""Rational functions of the Laplace variable ``s``.

:class:`RationalFunction` is the basic algebraic object of the LTI substrate:
a ratio of two polynomials with complex coefficients, supporting arithmetic,
evaluation on arrays of complex frequencies, pole/zero extraction,
frequency scaling and partial-fraction expansion with repeated poles.

The partial-fraction expansion is the piece the paper's closed-form
"effective open-loop gain" computation rests on: the aliasing sum
``lambda(s) = sum_m A(s + j m w0)`` (paper eq. 37) is evaluated exactly by
expanding ``A`` into terms ``r / (s - p)^j`` and summing each term with a
coth/csch identity (see :mod:`repro.core.aliasing`).  Repeated poles matter
because the paper's loop gain has a *double* pole at DC (two poles at the
origin, Fig. 5).

Coefficient convention: descending powers, as used by :func:`numpy.polyval`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro._errors import ValidationError


def _trim(coeffs: np.ndarray) -> np.ndarray:
    """Strip leading (highest-power) coefficients that are exactly zero."""
    idx = 0
    while idx < coeffs.size - 1 and coeffs[idx] == 0:
        idx += 1
    return coeffs[idx:]


def _as_poly(name: str, coeffs: Sequence[complex] | np.ndarray) -> np.ndarray:
    arr = np.atleast_1d(np.asarray(coeffs, dtype=complex))
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be a 1-D coefficient sequence, got shape {arr.shape}")
    if arr.size == 0:
        raise ValidationError(f"{name} must not be empty")
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} must contain only finite coefficients")
    return _trim(arr)


def _poly_taylor(coeffs: np.ndarray, point: complex, count: int) -> np.ndarray:
    """Return the first ``count`` Taylor coefficients of a polynomial at ``point``.

    Taylor coefficient ``k`` is ``p^(k)(point) / k!``; computed by repeated
    synthetic division, which is numerically benign for the modest degrees
    used here.
    """
    taylor = np.zeros(count, dtype=complex)
    work = coeffs.astype(complex).copy()
    for k in range(count):
        if work.size == 0:
            break
        # Synthetic division of `work` by (s - point): quotient + remainder.
        quotient = np.zeros(max(work.size - 1, 0), dtype=complex)
        acc = work[0]
        for i in range(1, work.size):
            if quotient.size:
                quotient[i - 1] = acc
            acc = work[i] + acc * point
        taylor[k] = acc
        work = quotient
        if work.size == 0:
            break
    return taylor


@dataclass(frozen=True)
class PartialFractionTerm:
    """One term ``residue / (s - pole)**order`` of a partial-fraction expansion."""

    pole: complex
    order: int
    residue: complex

    def __call__(self, s: complex | np.ndarray) -> complex | np.ndarray:
        """Evaluate this single term at ``s``."""
        return self.residue / (np.asarray(s, dtype=complex) - self.pole) ** self.order


class RationalFunction:
    """A ratio of two complex-coefficient polynomials in ``s``.

    Parameters
    ----------
    num, den:
        Coefficient sequences in descending powers of ``s``.  The denominator
        must not be identically zero.

    Notes
    -----
    Instances are immutable; all arithmetic returns new objects.  No implicit
    pole/zero cancellation is performed by arithmetic — call
    :meth:`simplified` explicitly when cancellation is wanted.
    """

    __slots__ = ("_num", "_den", "_pf_cache")

    def __init__(self, num: Sequence[complex], den: Sequence[complex]):
        num_arr = _as_poly("num", num)
        den_arr = _as_poly("den", den)
        if den_arr.size == 1 and den_arr[0] == 0:
            raise ValidationError("denominator must not be identically zero")
        # Normalise so the denominator is monic: keeps magnitudes comparable
        # across arithmetic chains and makes equality checks meaningful.
        lead = den_arr[0]
        object.__setattr__(self, "_num", num_arr / lead)
        object.__setattr__(self, "_den", den_arr / lead)
        object.__setattr__(self, "_pf_cache", {})

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_zpk(
        cls,
        zeros: Iterable[complex],
        poles: Iterable[complex],
        gain: complex = 1.0,
    ) -> "RationalFunction":
        """Build ``gain * prod(s - z) / prod(s - p)`` from zeros/poles/gain."""
        zeros = list(zeros)
        poles = list(poles)
        num = gain * np.poly(zeros) if zeros else np.array([gain], dtype=complex)
        den = np.poly(poles) if poles else np.array([1.0], dtype=complex)
        return cls(np.atleast_1d(num), np.atleast_1d(den))

    @classmethod
    def constant(cls, value: complex) -> "RationalFunction":
        """The constant rational function ``value``."""
        return cls([value], [1.0])

    @classmethod
    def s(cls) -> "RationalFunction":
        """The identity rational function ``s``."""
        return cls([1.0, 0.0], [1.0])

    @classmethod
    def integrator(cls, order: int = 1) -> "RationalFunction":
        """The ideal integrator ``1 / s**order``."""
        if order < 1:
            raise ValidationError(f"integrator order must be >= 1, got {order}")
        den = np.zeros(order + 1, dtype=complex)
        den[0] = 1.0
        return cls([1.0], den)

    # -- basic properties --------------------------------------------------

    @property
    def num(self) -> np.ndarray:
        """Numerator coefficients (descending powers), denominator-monic scaling."""
        return self._num.copy()

    @property
    def den(self) -> np.ndarray:
        """Monic denominator coefficients (descending powers)."""
        return self._den.copy()

    @property
    def num_degree(self) -> int:
        """Degree of the numerator polynomial."""
        return self._num.size - 1

    @property
    def den_degree(self) -> int:
        """Degree of the denominator polynomial."""
        return self._den.size - 1

    @property
    def relative_degree(self) -> int:
        """Denominator degree minus numerator degree (positive = strictly proper)."""
        return self.den_degree - self.num_degree

    def is_proper(self) -> bool:
        """True when the numerator degree does not exceed the denominator degree."""
        return self.num_degree <= self.den_degree

    def is_strictly_proper(self) -> bool:
        """True when the numerator degree is below the denominator degree."""
        return self.num_degree < self.den_degree

    def is_zero(self, tol: float = 0.0) -> bool:
        """True when every numerator coefficient has magnitude <= ``tol``."""
        return bool(np.all(np.abs(self._num) <= tol))

    def poles(self) -> np.ndarray:
        """Roots of the denominator (with multiplicity, unsorted)."""
        if self.den_degree == 0:
            return np.empty(0, dtype=complex)
        return np.roots(self._den)

    def zeros(self) -> np.ndarray:
        """Roots of the numerator (with multiplicity, unsorted)."""
        if self.num_degree == 0:
            return np.empty(0, dtype=complex)
        return np.roots(self._num)

    def dc_gain(self) -> complex:
        """Value at ``s = 0`` (``inf`` for a pole at the origin, 0 allowed)."""
        num0 = self._num[-1]
        den0 = self._den[-1]
        if den0 == 0:
            return complex(np.inf) if num0 != 0 else complex(np.nan)
        return num0 / den0

    # -- evaluation --------------------------------------------------------

    def __call__(self, s: complex | np.ndarray) -> complex | np.ndarray:
        """Evaluate the rational function at complex frequency ``s``.

        Accepts scalars or arrays; returns the same shape.  Evaluation at an
        exact pole yields ``inf``/``nan`` as NumPy division dictates.
        """
        s_arr = np.asarray(s, dtype=complex)
        with np.errstate(divide="ignore", invalid="ignore"):
            value = np.polyval(self._num, s_arr) / np.polyval(self._den, s_arr)
        if np.isscalar(s) or s_arr.ndim == 0:
            return complex(value)
        return value

    def eval_jomega(self, omega: Sequence[float] | np.ndarray) -> np.ndarray:
        """Evaluate on the imaginary axis, ``s = j * omega`` (vectorized)."""
        omega_arr = np.asarray(omega, dtype=float)
        return np.asarray(self(1j * omega_arr), dtype=complex)

    # -- algebra -----------------------------------------------------------

    def _coerce(self, other) -> "RationalFunction":
        if isinstance(other, RationalFunction):
            return other
        if isinstance(other, (int, float, complex, np.integer, np.floating, np.complexfloating)):
            return RationalFunction.constant(complex(other))
        raise TypeError(f"cannot combine RationalFunction with {type(other).__name__}")

    def __add__(self, other) -> "RationalFunction":
        other = self._coerce(other)
        num = np.polyadd(
            np.polymul(self._num, other._den), np.polymul(other._num, self._den)
        )
        den = np.polymul(self._den, other._den)
        return RationalFunction(num, den)

    __radd__ = __add__

    def __neg__(self) -> "RationalFunction":
        return RationalFunction(-self._num, self._den)

    def __sub__(self, other) -> "RationalFunction":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "RationalFunction":
        return self._coerce(other) + (-self)

    def __mul__(self, other) -> "RationalFunction":
        other = self._coerce(other)
        return RationalFunction(
            np.polymul(self._num, other._num), np.polymul(self._den, other._den)
        )

    __rmul__ = __mul__

    def __truediv__(self, other) -> "RationalFunction":
        other = self._coerce(other)
        if other.is_zero():
            raise ZeroDivisionError("division by the zero rational function")
        return RationalFunction(
            np.polymul(self._num, other._den), np.polymul(self._den, other._num)
        )

    def __rtruediv__(self, other) -> "RationalFunction":
        return self._coerce(other) / self

    def __pow__(self, exponent: int) -> "RationalFunction":
        if not isinstance(exponent, (int, np.integer)):
            raise TypeError("RationalFunction exponent must be an integer")
        if exponent == 0:
            return RationalFunction.constant(1.0)
        base = self if exponent > 0 else RationalFunction(self._den, self._num)
        result = RationalFunction.constant(1.0)
        for _ in range(abs(int(exponent))):
            result = result * base
        return result

    def __eq__(self, other) -> bool:
        if not isinstance(other, RationalFunction):
            return NotImplemented
        # Cross-multiplied coefficient comparison avoids representation
        # differences (e.g. un-cancelled common factors still compare equal
        # only if coefficients match exactly after monic normalisation).
        return (
            self._num.shape == other._num.shape
            and self._den.shape == other._den.shape
            and bool(np.allclose(self._num, other._num, rtol=0, atol=0))
            and bool(np.allclose(self._den, other._den, rtol=0, atol=0))
        )

    def __hash__(self):
        return hash((self._num.tobytes(), self._den.tobytes()))

    def close_to(self, other: "RationalFunction", rtol: float = 1e-9, atol: float = 1e-12) -> bool:
        """Numerically compare two rational functions as *functions*.

        Uses cross-multiplication ``n1 * d2 ~= n2 * d1`` so differently
        factored but equal functions compare equal.
        """
        lhs = np.polymul(self._num, other._den)
        rhs = np.polymul(other._num, self._den)
        size = max(lhs.size, rhs.size)
        lhs = np.pad(lhs, (size - lhs.size, 0))
        rhs = np.pad(rhs, (size - rhs.size, 0))
        scale = max(np.max(np.abs(lhs)), np.max(np.abs(rhs)), atol)
        return bool(np.allclose(lhs, rhs, rtol=rtol, atol=atol * scale))

    # -- transformations ----------------------------------------------------

    def scaled_frequency(self, factor: float) -> "RationalFunction":
        """Return ``F(s / factor)``: stretches the frequency axis by ``factor``.

        Used to renormalise loop gains (the paper plots everything against
        ``omega / omega_UG``).
        """
        if factor <= 0 or not math.isfinite(factor):
            raise ValidationError(f"frequency scale factor must be finite positive, got {factor}")
        powers_num = np.arange(self.num_degree, -1, -1)
        powers_den = np.arange(self.den_degree, -1, -1)
        return RationalFunction(
            self._num / factor**powers_num, self._den / factor**powers_den
        )

    def shifted(self, offset: complex) -> "RationalFunction":
        """Return ``F(s + offset)``: translates along the complex axis.

        This is precisely what HTM diagonal embedding does with
        ``offset = j m w0`` (paper eq. 12).
        """
        num = _poly_shift(self._num, offset)
        den = _poly_shift(self._den, offset)
        return RationalFunction(num, den)

    def derivative(self) -> "RationalFunction":
        """Return ``dF/ds`` using the quotient rule."""
        n, d = self._num, self._den
        dn = np.polyder(n) if n.size > 1 else np.zeros(1, dtype=complex)
        dd = np.polyder(d) if d.size > 1 else np.zeros(1, dtype=complex)
        num = np.polysub(np.polymul(dn, d), np.polymul(n, dd))
        den = np.polymul(d, d)
        return RationalFunction(num, den)

    def simplified(self, tol: float = 1e-8) -> "RationalFunction":
        """Cancel numerically-coincident pole/zero pairs.

        Roots are matched greedily when they lie within ``tol * (1 + |root|)``
        of each other.  The result reproduces the same function values but
        with lower degree; useful after long arithmetic chains.
        """
        zeros = list(self.zeros())
        poles = list(self.poles())
        # A vanishingly small leading coefficient makes the companion-matrix
        # roots overflow; cancellation is meaningless there — return as-is.
        if any(not np.isfinite(r) for r in zeros + poles):
            return self
        kept_zeros: list[complex] = []
        for z in zeros:
            match = None
            for i, p in enumerate(poles):
                if abs(z - p) <= tol * (1.0 + abs(z)):
                    match = i
                    break
            if match is None:
                kept_zeros.append(z)
            else:
                poles.pop(match)
        lead_num = self._num[0]
        return RationalFunction.from_zpk(kept_zeros, poles, lead_num)

    # -- partial fractions ---------------------------------------------------

    def pole_multiplicities(self, tol: float = 1e-6) -> list[tuple[complex, int]]:
        """Cluster denominator roots into ``(pole, multiplicity)`` groups.

        Roots within ``tol * (1 + |root|)`` of a cluster centroid are merged;
        the reported pole is the cluster mean, which is more accurate than any
        single root of a multiple pole.
        """
        roots = self.poles()
        clusters: list[list[complex]] = []
        for r in sorted(roots, key=lambda c: (c.real, c.imag)):
            placed = False
            for cluster in clusters:
                centroid = sum(cluster) / len(cluster)
                if abs(r - centroid) <= tol * (1.0 + abs(centroid)):
                    cluster.append(r)
                    placed = True
                    break
            if not placed:
                clusters.append([r])
        return [(sum(c) / len(c), len(c)) for c in clusters]

    def partial_fractions(
        self, tol: float | None = None
    ) -> tuple[np.ndarray, list[PartialFractionTerm]]:
        """Expand into a polynomial part plus first-order-and-higher pole terms.

        Parameters
        ----------
        tol:
            Pole-clustering tolerance.  ``None`` (default) tries a ladder of
            tolerances and accepts the first expansion that reconstructs the
            function to 1e-6 relative accuracy at probe points — necessary
            because an ``m``-fold root of a double-precision polynomial is
            perturbed by ``~eps**(1/m)`` (1e-5 for a triple pole).

        Returns
        -------
        direct:
            Coefficients (descending powers) of the polynomial part —
            ``[0]`` when the function is strictly proper.
        terms:
            One :class:`PartialFractionTerm` per ``(pole, order)`` pair with
            ``order`` running from 1 to the pole multiplicity.

        Notes
        -----
        Residues for a pole ``p`` of multiplicity ``mu`` are the Taylor
        coefficients at ``p`` of the deflated function
        ``g(s) = num(s) / (den(s) / (s-p)^mu)``; the deflated denominator is
        rebuilt from the *other* pole clusters, which is far more stable than
        polynomial long division.
        """
        # Memoized per instance (immutable coefficients): the expansion is
        # expensive (tolerance ladder + probe-point reconstruction) and the
        # aliasing-sum machinery asks for it repeatedly.  Callers must not
        # mutate the returned `direct` array.
        cached = self._pf_cache.get(tol)
        if cached is not None:
            return cached
        if self.is_zero():
            result = (np.zeros(1, dtype=complex), [])
            self._pf_cache[tol] = result
            return result
        if tol is not None:
            result = self._partial_fractions_at_tol(tol)
            self._pf_cache[tol] = result
            return result
        best: tuple[float, tuple[np.ndarray, list[PartialFractionTerm]]] | None = None
        num_scale = float(np.max(np.abs(self._num))) or 1.0
        for candidate in (1e-9, 1e-7, 1e-5, 1e-3):
            try:
                expansion = self._partial_fractions_at_tol(candidate)
            except ValidationError:
                continue
            err = self._reconstruction_error(expansion)
            # Penalise expansions with enormous mutually-cancelling residues:
            # a nearly-multiple root split across two simple terms can still
            # reconstruct well at probe points while being useless downstream.
            residue_scale = max((abs(t.residue) for t in expansion[1]), default=0.0)
            score = err + 1e-14 * residue_scale / num_scale
            if best is None or score < best[0]:
                best = (score, expansion)
        if best is None:
            raise ValidationError("partial-fraction expansion failed at every tolerance")
        self._pf_cache[tol] = best[1]
        return best[1]

    def _reconstruction_error(
        self, expansion: tuple[np.ndarray, list[PartialFractionTerm]]
    ) -> float:
        """Relative reconstruction error of an expansion at probe points."""
        direct, terms = expansion
        poles = self.poles()
        radius = 2.0 * (1.0 + (np.max(np.abs(poles)) if poles.size else 0.0))
        probes = radius * np.exp(1j * np.array([0.37, 1.91, 3.67, 5.23]))
        worst = 0.0
        for s in probes:
            exact = self(s)
            approx = complex(np.polyval(direct, s)) + sum(t(s) for t in terms)
            worst = max(worst, abs(approx - exact) / max(abs(exact), 1e-30))
        return worst

    def _partial_fractions_at_tol(
        self, tol: float
    ) -> tuple[np.ndarray, list[PartialFractionTerm]]:
        num, den = self._num, self._den
        direct = np.zeros(1, dtype=complex)
        if not self.is_strictly_proper():
            direct, rem = np.polydiv(num, den)
            num = _trim(np.atleast_1d(rem))
            if num.size == 1 and num[0] == 0:
                return direct, []
        groups = self.pole_multiplicities(tol=tol)
        terms: list[PartialFractionTerm] = []
        for idx, (pole, mu) in enumerate(groups):
            others: list[complex] = []
            for jdx, (other_pole, other_mu) in enumerate(groups):
                if jdx != idx:
                    others.extend([other_pole] * other_mu)
            deflated = np.poly(others) if others else np.array([1.0], dtype=complex)
            n_taylor = _poly_taylor(num, pole, mu)
            d_taylor = _poly_taylor(np.atleast_1d(deflated), pole, mu)
            if d_taylor[0] == 0:
                raise ValidationError(
                    "pole clustering failed: deflated denominator vanishes at the pole; "
                    "try a larger tol"
                )
            g = np.zeros(mu, dtype=complex)
            for k in range(mu):
                acc = n_taylor[k]
                for m in range(1, k + 1):
                    acc -= d_taylor[m] * g[k - m]
                g[k] = acc / d_taylor[0]
            for k in range(mu):
                terms.append(PartialFractionTerm(pole=pole, order=mu - k, residue=g[k]))
        terms = [t for t in terms if t.residue != 0]
        return direct, terms

    # -- misc ----------------------------------------------------------------

    def __repr__(self) -> str:
        def fmt(poly: np.ndarray) -> str:
            return "[" + ", ".join(f"{c:.6g}" for c in poly) + "]"

        return f"RationalFunction(num={fmt(self._num)}, den={fmt(self._den)})"


def _poly_shift(coeffs: np.ndarray, offset: complex) -> np.ndarray:
    """Coefficients of ``p(s + offset)`` given coefficients of ``p(s)``.

    Computed with the binomial theorem on each monomial; degrees in this
    library are small (< 20) so this is exact enough in double precision.
    """
    degree = coeffs.size - 1
    out = np.zeros_like(coeffs)
    for i, c in enumerate(coeffs):
        power = degree - i  # monomial c * s**power
        for k in range(power + 1):
            out[coeffs.size - 1 - k] += c * math.comb(power, k) * offset ** (power - k)
    return out
