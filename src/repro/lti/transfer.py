"""Transfer functions: rational functions with system semantics.

:class:`TransferFunction` wraps :class:`~repro.lti.rational.RationalFunction`
with the interconnection operations used throughout the PLL analysis —
series, parallel and (negative) feedback — plus frequency-response helpers
and conversion to state space.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro._errors import ValidationError
from repro.lti.rational import RationalFunction


class TransferFunction:
    """A single-input single-output continuous-time LTI system ``H(s)``.

    Parameters
    ----------
    num, den:
        Polynomial coefficients in descending powers of ``s``, or a
        pre-built :class:`RationalFunction` may be supplied via
        :meth:`from_rational`.
    name:
        Optional label carried through interconnections for reporting.
    """

    __slots__ = ("_rf", "name")

    def __init__(self, num: Sequence[complex], den: Sequence[complex], name: str = ""):
        self._rf = RationalFunction(num, den)
        self.name = name

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_rational(cls, rf: RationalFunction, name: str = "") -> "TransferFunction":
        """Wrap an existing rational function without copying coefficients."""
        obj = cls.__new__(cls)
        object.__setattr__(obj, "_rf", rf)
        object.__setattr__(obj, "name", name)
        return obj

    @classmethod
    def from_zpk(
        cls,
        zeros: Iterable[complex],
        poles: Iterable[complex],
        gain: complex = 1.0,
        name: str = "",
    ) -> "TransferFunction":
        """Build from zeros, poles and gain."""
        return cls.from_rational(RationalFunction.from_zpk(zeros, poles, gain), name)

    @classmethod
    def gain(cls, value: complex, name: str = "") -> "TransferFunction":
        """A pure (frequency-independent) gain block."""
        return cls([value], [1.0], name=name)

    @classmethod
    def integrator(cls, gain: complex = 1.0, name: str = "") -> "TransferFunction":
        """The ideal integrator ``gain / s`` (e.g. a time-invariant VCO)."""
        return cls([gain], [1.0, 0.0], name=name)

    @classmethod
    def first_order_lowpass(cls, pole_frequency: float, dc_gain: complex = 1.0) -> "TransferFunction":
        """``dc_gain / (1 + s/pole_frequency)`` with ``pole_frequency`` in rad/s."""
        if pole_frequency <= 0:
            raise ValidationError(f"pole_frequency must be positive, got {pole_frequency}")
        return cls([dc_gain], [1.0 / pole_frequency, 1.0])

    # -- delegation ---------------------------------------------------------

    @property
    def rational(self) -> RationalFunction:
        """The underlying rational function."""
        return self._rf

    @property
    def num(self) -> np.ndarray:
        """Numerator coefficients (descending powers)."""
        return self._rf.num

    @property
    def den(self) -> np.ndarray:
        """Denominator coefficients (descending powers, monic)."""
        return self._rf.den

    def poles(self) -> np.ndarray:
        """System poles."""
        return self._rf.poles()

    def zeros(self) -> np.ndarray:
        """System zeros."""
        return self._rf.zeros()

    def dc_gain(self) -> complex:
        """Gain at ``s = 0``."""
        return self._rf.dc_gain()

    def is_proper(self) -> bool:
        """True when realizable as a state-space system with feedthrough."""
        return self._rf.is_proper()

    def is_stable(self, margin: float = 0.0) -> bool:
        """True when every pole satisfies ``Re(p) < -margin``.

        Poles exactly on the imaginary axis (integrators) count as unstable
        under the default ``margin = 0``, matching the usual BIBO criterion.
        """
        poles = self.poles()
        if poles.size == 0:
            return True
        return bool(np.all(poles.real < -margin))

    def __call__(self, s: complex | np.ndarray) -> complex | np.ndarray:
        """Evaluate ``H(s)``."""
        return self._rf(s)

    def frequency_response(self, omega: Sequence[float] | np.ndarray) -> np.ndarray:
        """Evaluate ``H(j omega)`` for an array of real frequencies (rad/s)."""
        return self._rf.eval_jomega(omega)

    # -- interconnections ----------------------------------------------------

    def series(self, other: "TransferFunction") -> "TransferFunction":
        """Cascade: output of ``self`` drives ``other`` (returns ``other * self``)."""
        return TransferFunction.from_rational(
            self._rf * other._rf, name=_join(self.name, other.name, "*")
        )

    def parallel(self, other: "TransferFunction") -> "TransferFunction":
        """Summing junction: ``self + other`` driven by the same input."""
        return TransferFunction.from_rational(
            self._rf + other._rf, name=_join(self.name, other.name, "+")
        )

    def feedback(self, other: "TransferFunction" | None = None, sign: int = -1) -> "TransferFunction":
        """Close a feedback loop around ``self``.

        With the default negative feedback and unity return path this is the
        textbook ``H / (1 + H)``; a non-trivial return path ``other`` yields
        ``H / (1 - sign * H * other)``.
        """
        if sign not in (-1, 1):
            raise ValidationError(f"feedback sign must be +1 or -1, got {sign}")
        ret = other._rf if other is not None else RationalFunction.constant(1.0)
        closed = self._rf / (RationalFunction.constant(1.0) - sign * self._rf * ret)
        return TransferFunction.from_rational(closed.simplified(), name=self.name)

    # -- operators ------------------------------------------------------------

    def _coerce(self, other) -> "TransferFunction":
        if isinstance(other, TransferFunction):
            return other
        if isinstance(other, RationalFunction):
            return TransferFunction.from_rational(other)
        if isinstance(other, (int, float, complex, np.integer, np.floating, np.complexfloating)):
            return TransferFunction.gain(complex(other))
        raise TypeError(f"cannot combine TransferFunction with {type(other).__name__}")

    def __mul__(self, other) -> "TransferFunction":
        other = self._coerce(other)
        return TransferFunction.from_rational(self._rf * other._rf)

    __rmul__ = __mul__

    def __add__(self, other) -> "TransferFunction":
        other = self._coerce(other)
        return TransferFunction.from_rational(self._rf + other._rf)

    __radd__ = __add__

    def __sub__(self, other) -> "TransferFunction":
        other = self._coerce(other)
        return TransferFunction.from_rational(self._rf - other._rf)

    def __rsub__(self, other) -> "TransferFunction":
        other = self._coerce(other)
        return TransferFunction.from_rational(other._rf - self._rf)

    def __neg__(self) -> "TransferFunction":
        return TransferFunction.from_rational(-self._rf)

    def __truediv__(self, other) -> "TransferFunction":
        other = self._coerce(other)
        return TransferFunction.from_rational(self._rf / other._rf)

    def __rtruediv__(self, other) -> "TransferFunction":
        other = self._coerce(other)
        return TransferFunction.from_rational(other._rf / self._rf)

    def scaled_frequency(self, factor: float) -> "TransferFunction":
        """Return ``H(s / factor)`` — stretch the frequency axis by ``factor``."""
        return TransferFunction.from_rational(self._rf.scaled_frequency(factor), self.name)

    def shifted(self, offset: complex) -> "TransferFunction":
        """Return ``H(s + offset)`` (HTM diagonal embedding uses ``j m w0``)."""
        return TransferFunction.from_rational(self._rf.shifted(offset), self.name)

    def simplified(self, tol: float = 1e-8) -> "TransferFunction":
        """Cancel numerically-coincident pole/zero pairs."""
        return TransferFunction.from_rational(self._rf.simplified(tol), self.name)

    def to_statespace(self):
        """Convert to a controllable-canonical :class:`~repro.lti.statespace.StateSpace`."""
        from repro.lti.statespace import StateSpace

        return StateSpace.from_transfer_function(self)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"TransferFunction{label}({self._rf!r})"


def _join(a: str, b: str, op: str) -> str:
    if a and b:
        return f"({a} {op} {b})"
    return a or b
