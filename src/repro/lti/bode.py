"""Bode-domain analysis: crossover frequencies, phase/gain margins, peaking.

All routines work on a *frequency response*, i.e. any object that can be
evaluated on the imaginary axis.  Accepted forms:

* :class:`~repro.lti.transfer.TransferFunction` /
  :class:`~repro.lti.rational.RationalFunction` (rational systems), or
* any callable ``f(omega_array) -> complex array`` — which is how the
  *non-rational* effective open-loop gain ``lambda(j omega)`` of the paper
  (an infinite aliasing sum) is analysed with exactly the same tooling.

That last point is the paper's selling pitch: "being a frequency-domain
description, it allows us to recover powerful tools and concepts from the
theory of LTI systems, like transfer functions and phase margin, for
analyzing PLL time-varying behavior" (sec. 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from scipy.optimize import brentq

from repro._errors import ConvergenceError, ValidationError

ResponseLike = Callable[[np.ndarray], np.ndarray]


def as_response(system) -> ResponseLike:
    """Normalise a system object into a vectorized ``omega -> H(j omega)`` callable."""
    if hasattr(system, "eval_jomega"):
        return system.eval_jomega
    if hasattr(system, "frequency_response"):
        return system.frequency_response
    if callable(system):
        return lambda omega: np.asarray(system(np.asarray(omega, dtype=float)), dtype=complex)
    raise ValidationError(f"cannot interpret {type(system).__name__} as a frequency response")


@dataclass(frozen=True)
class BodePoint:
    """One point of a Bode characteristic."""

    omega: float
    magnitude_db: float
    phase_deg: float


@dataclass(frozen=True)
class MarginReport:
    """Stability margins of an open-loop frequency response.

    Attributes
    ----------
    gain_crossover_omega:
        Unity-gain frequency ``omega_UG`` (rad/s), ``nan`` if none found.
    phase_margin_deg:
        ``180 + arg H(j omega_UG)`` in degrees, ``nan`` if no crossover.
    phase_crossover_omega:
        Frequency where the phase crosses -180 degrees, ``nan`` if none.
    gain_margin_db:
        ``-20 log10 |H|`` at the phase crossover, ``nan`` if none.
    """

    gain_crossover_omega: float
    phase_margin_deg: float
    phase_crossover_omega: float
    gain_margin_db: float


def bode_points(system, omega: Sequence[float] | np.ndarray) -> list[BodePoint]:
    """Sample a system into :class:`BodePoint` records with unwrapped phase."""
    omega_arr = np.asarray(omega, dtype=float)
    response = as_response(system)(omega_arr)
    mags = 20.0 * np.log10(np.abs(response))
    phases = np.degrees(np.unwrap(np.angle(response)))
    return [BodePoint(float(w), float(m), float(p)) for w, m, p in zip(omega_arr, mags, phases)]


def _log_grid(omega_min: float, omega_max: float, points: int) -> np.ndarray:
    if omega_min <= 0 or omega_max <= omega_min:
        raise ValidationError(
            f"need 0 < omega_min < omega_max, got [{omega_min}, {omega_max}]"
        )
    return np.logspace(math.log10(omega_min), math.log10(omega_max), points)


def _refine_crossing(
    func: Callable[[float], float], w_lo: float, w_hi: float
) -> float:
    """Bisect a sign change of ``func`` between two frequencies (log-spaced)."""
    return float(
        math.exp(brentq(lambda lw: func(math.exp(lw)), math.log(w_lo), math.log(w_hi), xtol=1e-13))
    )


def crossover_from_samples(
    response: ResponseLike,
    grid: np.ndarray,
    mags: np.ndarray,
    omega_min: float,
    omega_max: float,
    which: str = "last",
) -> float:
    """Unity-gain crossover given precomputed ``|H|`` samples on ``grid``.

    This is the scan+refine core of :func:`gain_crossover`, split out so
    batch callers that already evaluated the response on the grid (e.g. one
    stacked ``dense_grid`` call across a parameter axis) can reuse the
    samples instead of re-evaluating.  Given identical samples it returns a
    bit-identical result to :func:`gain_crossover` — same bracket selection,
    same Brent refinement, same error message.
    """
    logmag = np.log(np.where(mags > 0, mags, np.finfo(float).tiny))
    signs = np.sign(logmag)
    idx = np.nonzero(np.diff(signs) != 0)[0]
    if idx.size == 0:
        raise ConvergenceError(
            f"|H| never crosses unity on [{omega_min}, {omega_max}] "
            f"(range [{mags.min():.3g}, {mags.max():.3g}])"
        )
    pick = idx[-1] if which == "last" else idx[0]

    def objective(w: float) -> float:
        return float(np.log(np.abs(response(np.array([w]))[0])))

    return _refine_crossing(objective, grid[pick], grid[pick + 1])


def gain_crossover(
    system,
    omega_min: float = 1e-3,
    omega_max: float = 1e3,
    points: int = 2000,
    which: str = "last",
) -> float:
    """Frequency where ``|H(j omega)|`` crosses unity.

    Scans a logarithmic grid, then refines each bracketing interval with
    Brent's method.  ``which`` selects ``'first'`` or ``'last'`` crossing
    (``'last'`` is the conservative choice for margin analysis of gain
    characteristics with ripple, such as the aliased ``lambda``).

    Raises
    ------
    ConvergenceError
        If the magnitude never crosses unity on the scanned range.
    """
    response = as_response(system)
    grid = _log_grid(omega_min, omega_max, points)
    mags = np.abs(response(grid))
    return crossover_from_samples(response, grid, mags, omega_min, omega_max, which)


def phase_at(system, omega: float) -> float:
    """Phase of ``H(j omega)`` in degrees, principal value in (-180, 180]."""
    value = as_response(system)(np.array([float(omega)]))[0]
    return math.degrees(math.atan2(value.imag, value.real))


def phase_margin(
    system,
    omega_min: float = 1e-3,
    omega_max: float = 1e3,
    points: int = 2000,
    w_ug: float | None = None,
) -> float:
    """Phase margin in degrees: ``180 + arg H(j omega_UG)``.

    The phase is unwrapped along the scan from ``omega_min`` up to the gain
    crossover so that loops whose phase dips below -180 degrees (the fast-PLL
    failure mode the paper quantifies) report a *negative* margin instead of
    a wrapped-around positive one.

    A caller that already knows the gain crossover (e.g. from a preceding
    :func:`gain_crossover` call on the same response) may pass it as
    ``w_ug`` to skip recomputing it; the result is identical by
    construction since ``gain_crossover`` is deterministic.
    """
    if w_ug is None:
        w_ug = gain_crossover(system, omega_min, omega_max, points)
    response = as_response(system)
    grid = _log_grid(omega_min, w_ug, max(points // 2, 64))
    phases = np.unwrap(np.angle(response(grid)))
    return 180.0 + math.degrees(phases[-1])


def phase_crossover(
    system,
    omega_min: float = 1e-3,
    omega_max: float = 1e3,
    points: int = 2000,
) -> float:
    """Frequency where the unwrapped phase crosses -180 degrees.

    Raises :class:`ConvergenceError` when the phase never reaches -180 on the
    scanned range (infinite gain margin).
    """
    response = as_response(system)
    grid = _log_grid(omega_min, omega_max, points)
    phases = np.unwrap(np.angle(response(grid))) + math.pi
    signs = np.sign(phases)
    idx = np.nonzero(np.diff(signs) != 0)[0]
    if idx.size == 0:
        raise ConvergenceError(f"phase never crosses -180 deg on [{omega_min}, {omega_max}]")
    w_lo, w_hi = grid[idx[0]], grid[idx[0] + 1]
    base = phases[idx[0]] - math.pi

    def objective(w: float) -> float:
        value = response(np.array([w]))[0]
        # Local principal-value phase relative to the bracketing sample keeps
        # the unwrap consistent inside the narrow refinement interval.
        raw = math.atan2(value.imag, value.real)
        while raw - base > math.pi:
            raw -= 2 * math.pi
        while raw - base < -math.pi:
            raw += 2 * math.pi
        return raw + math.pi

    return _refine_crossing(objective, w_lo, w_hi)


def gain_margin(
    system,
    omega_min: float = 1e-3,
    omega_max: float = 1e3,
    points: int = 2000,
) -> float:
    """Gain margin in dB at the -180 degree phase crossover."""
    w_pc = phase_crossover(system, omega_min, omega_max, points)
    mag = abs(as_response(system)(np.array([w_pc]))[0])
    return -20.0 * math.log10(mag)


def stability_margins(
    system,
    omega_min: float = 1e-3,
    omega_max: float = 1e3,
    points: int = 2000,
) -> MarginReport:
    """Compute all classical margins in one report; missing ones become NaN."""
    try:
        w_ug = gain_crossover(system, omega_min, omega_max, points)
        pm = phase_margin(system, omega_min, omega_max, points)
    except ConvergenceError:
        w_ug, pm = math.nan, math.nan
    try:
        w_pc = phase_crossover(system, omega_min, omega_max, points)
        gm = gain_margin(system, omega_min, omega_max, points)
    except ConvergenceError:
        w_pc, gm = math.nan, math.nan
    return MarginReport(
        gain_crossover_omega=w_ug,
        phase_margin_deg=pm,
        phase_crossover_omega=w_pc,
        gain_margin_db=gm,
    )


def bandwidth_3db(
    system,
    omega_min: float = 1e-3,
    omega_max: float = 1e3,
    points: int = 2000,
    reference: str = "dc",
) -> float:
    """-3 dB bandwidth of a (closed-loop) lowpass response.

    ``reference='dc'`` measures relative to the response at the lowest
    scanned frequency; ``reference='unity'`` measures relative to 1.  The
    *last* downward crossing is returned so in-band peaking (the Fig. 6
    behaviour) does not truncate the bandwidth estimate.
    """
    response = as_response(system)
    grid = _log_grid(omega_min, omega_max, points)
    mags = np.abs(response(grid))
    if reference == "dc":
        ref = mags[0]
    elif reference == "unity":
        ref = 1.0
    else:
        raise ValidationError(f"reference must be 'dc' or 'unity', got {reference!r}")
    threshold = ref / math.sqrt(2.0)
    above = mags >= threshold
    if not above[0]:
        raise ConvergenceError("response is already below -3 dB at omega_min")
    crossings = np.nonzero(above[:-1] & ~above[1:])[0]
    if crossings.size == 0:
        raise ConvergenceError("response never falls 3 dB below the reference on the scanned range")
    pick = crossings[-1]

    def objective(w: float) -> float:
        return float(abs(response(np.array([w]))[0]) - threshold)

    return _refine_crossing(objective, grid[pick], grid[pick + 1])


def modulus_margin(
    system,
    omega_min: float = 1e-3,
    omega_max: float = 1e3,
    points: int = 4000,
) -> float:
    """Modulus (disk) margin: ``min over omega of |1 + L(j omega)|``.

    The distance of the Nyquist curve from the critical point — a single
    number bounding gain and phase margins simultaneously
    (``GM >= 1/(1-m)``, ``PM >= 2 asin(m/2)``).  For the sampled loop this
    is evaluated directly on the effective gain ``lambda``, whose
    periodicity makes the scan over one alias band ``[~0, w0/2]``
    sufficient.
    """
    response = as_response(system)
    grid = _log_grid(omega_min, omega_max, points)
    distances = np.abs(1.0 + response(grid))
    idx = int(np.argmin(distances))
    # Golden-section style refinement around the coarse minimum.
    lo = grid[max(idx - 1, 0)]
    hi = grid[min(idx + 1, grid.size - 1)]
    fine = np.linspace(lo, hi, 200)
    return float(np.min(np.abs(1.0 + response(fine))))


def delay_margin(
    system,
    omega_min: float = 1e-3,
    omega_max: float = 1e3,
    points: int = 2000,
) -> float:
    """Delay margin: extra loop delay that exhausts the phase margin.

    ``tau = PM_radians / omega_UG``; raises ConvergenceError when no gain
    crossover exists on the scanned range.
    """
    w_ug = gain_crossover(system, omega_min, omega_max, points)
    pm_deg = phase_margin(system, omega_min, omega_max, points)
    return math.radians(pm_deg) / w_ug


def peaking_db(
    system,
    omega_min: float = 1e-3,
    omega_max: float = 1e3,
    points: int = 4000,
) -> float:
    """Peak magnitude above the DC value, in dB (0 when monotonically falling).

    Quantifies the passband-edge peaking the paper observes growing with
    ``omega_UG / omega_0`` in Fig. 6.
    """
    response = as_response(system)
    grid = _log_grid(omega_min, omega_max, points)
    mags = np.abs(response(grid))
    ref = mags[0]
    if ref <= 0:
        raise ValidationError("zero response at omega_min; peaking undefined")
    return max(0.0, 20.0 * math.log10(mags.max() / ref))
