"""Terminal-friendly rendering of the experiment figures.

Offline reproduction means no plotting stack; this subpackage renders the
paper's figures as Unicode/ASCII charts so ``python -m repro.experiments.runner
--plots`` shows the actual curve shapes, not only tables.

* :mod:`repro.reporting.ascii_plot` — generic log/linear line charts with
  multiple series and markers;
* :mod:`repro.reporting.figures` — pre-wired renderers for Fig. 5 (Bode),
  Fig. 6 (closed-loop magnitude + marks) and Fig. 7 (margin sweep).
"""

from repro.reporting.ascii_plot import AsciiPlot, Series
from repro.reporting.figures import render_fig5, render_fig6, render_fig7

__all__ = ["AsciiPlot", "Series", "render_fig5", "render_fig6", "render_fig7"]
