"""Pre-wired ASCII renderers for the paper's figures."""

from __future__ import annotations

import numpy as np

from repro.experiments.fig5 import Fig5Result
from repro.experiments.fig6 import Fig6Result
from repro.experiments.fig7 import Fig7Result
from repro.reporting.ascii_plot import AsciiPlot


def render_fig5(result: Fig5Result, width: int = 72, height: int = 14) -> str:
    """Magnitude and phase charts of the open-loop characteristic."""
    mag = AsciiPlot(
        width=width,
        height=height,
        log_x=True,
        title=f"Fig. 5a |A(jw)| (dB), separation={result.separation:g}",
        x_label="w / wUG",
        y_label="dB",
    ).add(result.omega_normalized, result.magnitude_db, glyph="*")
    phase = AsciiPlot(
        width=width,
        height=height,
        log_x=True,
        title="Fig. 5b  arg A(jw) (deg)",
        x_label="w / wUG",
        y_label="deg",
    ).add(result.omega_normalized, result.phase_deg, glyph="*")
    return mag.render() + "\n\n" + phase.render()


def render_fig6(result: Fig6Result, width: int = 72, height: int = 16) -> str:
    """Closed-loop |H00| curves (lines) with simulation marks (o)."""
    plot = AsciiPlot(
        width=width,
        height=height,
        log_x=True,
        title="Fig. 6  |H00(jw)| (dB): HTM lines, time-marching marks 'o'",
        x_label="w / wUG",
        y_label="dB",
    )
    glyphs = "*x+#"
    for i, curve in enumerate(result.curves):
        plot.add(
            curve.omega_normalized,
            curve.h00_db,
            glyph=glyphs[i % len(glyphs)],
            label=f"wUG/w0={curve.ratio:g}",
        )
    for curve in result.curves:
        plot.add(
            curve.mark_omega_normalized,
            curve.mark_h00_db,
            glyph="o",
            markers_only=True,
        )
    return plot.render()


def render_fig7(result: Fig7Result, width: int = 72, height: int = 12) -> str:
    """Bandwidth-extension and phase-margin sweep charts."""
    upper = AsciiPlot(
        width=width,
        height=height,
        log_x=True,
        title="Fig. 7a  wUG,eff / wUG",
        x_label="wUG / w0",
    ).add(result.ratios, result.bandwidth_extension, glyph="*")
    lower = AsciiPlot(
        width=width,
        height=height,
        log_x=True,
        title="Fig. 7b  effective phase margin (deg); '-' = LTI prediction",
        x_label="wUG / w0",
    )
    lower.add(result.ratios, result.phase_margin_eff_deg, glyph="*", label="effective")
    lower.add(
        result.ratios,
        np.full(result.ratios.size, result.phase_margin_lti_deg),
        glyph="-",
        label="LTI",
    )
    return upper.render() + "\n\n" + lower.render()
