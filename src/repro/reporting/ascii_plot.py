"""Minimal ASCII line charts for terminal reports.

A deliberately small plotting surface: multiple series on shared axes,
optional logarithmic x-axis, per-series glyphs, axis labels and tick
annotations.  Rendering maps data onto a character raster; later series
overwrite earlier ones where they collide, and marker series are drawn last.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


import numpy as np

from repro._errors import ValidationError
from repro._validation import check_order


@dataclass(frozen=True)
class Series:
    """One plottable data series."""

    x: np.ndarray
    y: np.ndarray
    glyph: str = "*"
    label: str = ""
    markers_only: bool = False

    def __post_init__(self):
        x = np.asarray(self.x, dtype=float)
        y = np.asarray(self.y, dtype=float)
        if x.ndim != 1 or y.shape != x.shape or x.size == 0:
            raise ValidationError("series x/y must be equal-length non-empty 1-D arrays")
        if len(self.glyph) != 1:
            raise ValidationError(f"glyph must be a single character, got {self.glyph!r}")
        object.__setattr__(self, "x", x.copy())
        object.__setattr__(self, "y", y.copy())


@dataclass
class AsciiPlot:
    """A character-raster chart.

    Parameters
    ----------
    width, height:
        Raster size in characters (plot area, excluding axes).
    log_x:
        Use a logarithmic x-axis (all x values must then be positive).
    title, x_label, y_label:
        Annotations.
    """

    width: int = 72
    height: int = 18
    log_x: bool = False
    title: str = ""
    x_label: str = ""
    y_label: str = ""
    series: list[Series] = field(default_factory=list)

    def add(self, x, y, glyph: str = "*", label: str = "", markers_only: bool = False):
        """Add a series; returns self for chaining."""
        self.series.append(
            Series(np.asarray(x), np.asarray(y), glyph=glyph, label=label, markers_only=markers_only)
        )
        return self

    def _x_transform(self, x: np.ndarray) -> np.ndarray:
        if not self.log_x:
            return x
        if np.any(x <= 0):
            raise ValidationError("log_x requires strictly positive x values")
        return np.log10(x)

    def render(self) -> str:
        """Render the chart to a multi-line string."""
        check_order("width", self.width, minimum=16)
        check_order("height", self.height, minimum=4)
        if not self.series:
            raise ValidationError("nothing to plot: add at least one series")
        finite_masks = [np.isfinite(s.y) & np.isfinite(s.x) for s in self.series]
        if not any(mask.any() for mask in finite_masks):
            raise ValidationError("all series values are non-finite")
        all_x = np.concatenate(
            [self._x_transform(s.x[m]) for s, m in zip(self.series, finite_masks)]
        )
        all_y = np.concatenate([s.y[m] for s, m in zip(self.series, finite_masks)])
        x_lo, x_hi = float(np.min(all_x)), float(np.max(all_x))
        y_lo, y_hi = float(np.min(all_y)), float(np.max(all_y))
        if x_hi == x_lo:
            x_hi = x_lo + 1.0
        if y_hi == y_lo:
            y_hi = y_lo + 1.0
        pad = 0.05 * (y_hi - y_lo)
        y_lo -= pad
        y_hi += pad

        raster = [[" "] * self.width for _ in range(self.height)]

        def to_col(xv: float) -> int:
            frac = (xv - x_lo) / (x_hi - x_lo)
            return min(self.width - 1, max(0, int(round(frac * (self.width - 1)))))

        def to_row(yv: float) -> int:
            frac = (yv - y_lo) / (y_hi - y_lo)
            return min(
                self.height - 1, max(0, self.height - 1 - int(round(frac * (self.height - 1))))
            )

        ordered = sorted(self.series, key=lambda s: s.markers_only)
        for s in ordered:
            mask = np.isfinite(s.y) & np.isfinite(s.x)
            xs = self._x_transform(s.x[mask])
            ys = s.y[mask]
            if s.markers_only or xs.size < 2:
                for xv, yv in zip(xs, ys):
                    raster[to_row(yv)][to_col(xv)] = s.glyph
                continue
            # Dense interpolation so lines look continuous.
            order = np.argsort(xs)
            xs, ys = xs[order], ys[order]
            cols = np.linspace(x_lo, x_hi, self.width * 2)
            interp = np.interp(cols, xs, ys, left=np.nan, right=np.nan)
            for xv, yv in zip(cols, interp):
                if math.isnan(yv):
                    continue
                raster[to_row(yv)][to_col(xv)] = s.glyph

        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        y_hi_text = f"{y_hi:.4g}"
        y_lo_text = f"{y_lo:.4g}"
        margin = max(len(y_hi_text), len(y_lo_text)) + 1
        for i, row in enumerate(raster):
            if i == 0:
                prefix = y_hi_text.rjust(margin)
            elif i == self.height - 1:
                prefix = y_lo_text.rjust(margin)
            else:
                prefix = " " * margin
            lines.append(f"{prefix}|{''.join(row)}")
        x_lo_label = 10**x_lo if self.log_x else x_lo
        x_hi_label = 10**x_hi if self.log_x else x_hi
        axis = f"{' ' * margin}+{'-' * self.width}"
        lines.append(axis)
        ticks = f"{x_lo_label:.4g}".ljust(self.width // 2) + f"{x_hi_label:.4g}".rjust(
            self.width // 2
        )
        lines.append(" " * (margin + 1) + ticks)
        if self.x_label or self.y_label:
            lines.append(
                " " * (margin + 1)
                + self.x_label
                + (f"   [y: {self.y_label}]" if self.y_label else "")
            )
        legend = [f"{s.glyph} {s.label}" for s in self.series if s.label]
        if legend:
            lines.append(" " * (margin + 1) + "   ".join(legend))
        return "\n".join(lines)
