"""Floquet analysis of the sampled loop's one-cycle return map.

A locked PLL is a periodically-driven nonlinear system whose small-signal
stability is governed by the **Floquet multipliers** — the eigenvalues of
the linearised map taking the loop state across one reference period.  This
module computes that map *numerically from the behavioural engine* (central
differences of the exact event-driven propagation) and so provides a third,
completely independent route to the loop dynamics:

* HTM route: poles of ``1/(1 + lambda(s))``;
* z-domain route: poles of ``G_z/(1 + G_z)``;
* Floquet route: eigenvalues of the measured return map.

The three agree: the multipliers equal the z-domain closed-loop poles (the
z-transform variable *is* the per-cycle propagator ``z = e^{sT}``), which is
asserted in the integration tests.

The Poincaré section is taken at mid-cycle, ``t = (n + 1/2) T``, where the
pump is guaranteed off near lock, making the map smooth in the state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._errors import ValidationError
from repro._validation import check_positive
from repro.pll.architecture import PLL
from repro.simulator.engine import BehavioralPLLSimulator, SimulationConfig


@dataclass(frozen=True)
class FloquetResult:
    """The linearised one-cycle return map and its multipliers.

    Attributes
    ----------
    matrix:
        The monodromy matrix M: ``dz[n+1] = M dz[n]`` with state
        ``z = [filter states..., theta]`` sampled at mid-cycle.
    multipliers:
        Eigenvalues of M, sorted by decreasing magnitude.
    """

    matrix: np.ndarray
    multipliers: np.ndarray

    @property
    def is_stable(self) -> bool:
        """True when every multiplier lies strictly inside the unit circle."""
        return bool(np.all(np.abs(self.multipliers) < 1.0))

    @property
    def spectral_radius(self) -> float:
        """Largest multiplier magnitude — the per-cycle growth factor."""
        return float(np.max(np.abs(self.multipliers))) if self.multipliers.size else 0.0

    def decay_time_constant_cycles(self) -> float:
        """Cycles for the dominant mode to decay by 1/e (inf if marginal)."""
        rho = self.spectral_radius
        if rho >= 1.0:
            return float("inf")
        return -1.0 / np.log(rho)


class _CycleMap:
    """Propagate the reduced state ``[x_filter, theta]`` across one period."""

    def __init__(self, pll: PLL):
        self.sim = BehavioralPLLSimulator(
            pll, config=SimulationConfig(cycles=1, max_phase_error=0.45)
        )
        self.period = pll.period
        self.dim = self.sim._n_filter + 1

    def __call__(self, reduced: np.ndarray, cycle: int = 1) -> np.ndarray:
        """Map state at ``(cycle - 1/2) T`` to state at ``(cycle + 1/2) T``."""
        sim = self.sim
        state = np.zeros(self.dim + 1)  # + frozen delta slot
        state[: self.dim] = reduced
        t_start = (cycle - 0.5) * self.period

        def advance(t_from, t_to, current, st):
            return sim._advance(st, t_to - t_from, current, t_start=t_from)

        state, t_cur, _, _ = sim._process_cycle(state, t_start, cycle, advance)
        # Coast (pump off apart from leakage) to the next section.
        t_end = (cycle + 0.5) * self.period
        leakage = sim.pll.charge_pump.leakage
        if t_end > t_cur:
            state = sim._advance(state, t_end - t_cur, -leakage, t_start=t_cur)
        return state[: self.dim]


def one_cycle_map(pll: PLL, eps: float | None = None) -> np.ndarray:
    """Central-difference linearisation of the one-cycle return map at lock.

    Parameters
    ----------
    eps:
        Perturbation size per state component; defaults to ``1e-7`` in the
        natural units of the loop (theta in seconds scaled by the period,
        filter states scaled by their coupling into theta).
    """
    cycle_map = _CycleMap(pll)
    dim = cycle_map.dim
    period = pll.period
    if eps is None:
        eps = 1e-7
    check_positive("eps", eps)
    # Per-component scales: theta ~ period; filter states ~ the input scale
    # that produces an O(period) phase shift over a cycle.
    scales = np.full(dim, eps)
    scales[-1] = eps * period
    v0 = float(pll.vco.v0.real)
    if v0 > 0:
        scales[:-1] = eps * period / max(v0 * period, 1e-12)
    matrix = np.empty((dim, dim))
    for j in range(dim):
        delta = np.zeros(dim)
        delta[j] = scales[j]
        plus = cycle_map(+delta)
        minus = cycle_map(-delta)
        matrix[:, j] = (plus - minus) / (2.0 * scales[j])
    return matrix


def floquet_multipliers(pll: PLL, eps: float | None = None) -> FloquetResult:
    """Compute the monodromy matrix and its eigenvalues for a locked loop.

    Raises
    ------
    ValidationError
        Propagated from the engine for LPTV VCOs or loops with delay.
    """
    matrix = one_cycle_map(pll, eps=eps)
    eigenvalues = np.linalg.eigvals(matrix)
    order = np.argsort(-np.abs(eigenvalues))
    return FloquetResult(matrix=matrix, multipliers=eigenvalues[order])


def compare_with_zdomain(pll: PLL, eps: float | None = None) -> float:
    """Max distance between Floquet multipliers and z-domain closed poles.

    Utility for tests and reports: matches each multiplier to its nearest
    z-domain closed-loop pole and returns the worst gap.
    """
    from repro.baselines.zdomain import closed_loop_z, sampled_open_loop

    result = floquet_multipliers(pll, eps=eps)
    z_poles = closed_loop_z(sampled_open_loop(pll)).poles()
    if z_poles.size != result.multipliers.size:
        raise ValidationError(
            f"state dimension mismatch: {result.multipliers.size} multipliers vs "
            f"{z_poles.size} z-domain poles"
        )
    worst = 0.0
    remaining = list(z_poles)
    for mu in result.multipliers:
        gaps = [abs(mu - p) for p in remaining]
        idx = int(np.argmin(gaps))
        worst = max(worst, gaps[idx])
        remaining.pop(idx)
    return worst
