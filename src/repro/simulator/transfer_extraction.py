"""Small-signal transfer measurement from transient simulations.

The paper's Fig. 6 marks come from time-marching simulation: modulate the
reference phase with a small sinusoid, wait out the transient, and
demodulate the VCO phase.  This module implements that measurement with two
refinements that make the comparison clean:

* **bin-aligned modulation**: the modulation frequency is snapped to an
  exact DFT bin of the measurement window, so the single-bin demodulation is
  leakage-free.  Because the window spans an integer number of reference
  periods, the harmonic-conversion sidebands at ``omega_m + n w0`` also land
  on exact (distinct) bins — they never contaminate the baseband estimate;
* **sideband read-out**: the same window yields the conversion amplitudes at
  ``omega_m + n w0``, measuring the off-diagonal HTM elements ``H_{n,0}``
  that the LTI baseline cannot even express.

With the reference excursion ``thetaref(t) = eps sin(omega_m t)`` the
positive-frequency input amplitude is ``a+ = -j eps / 2``; the estimate of a
complex component at any (possibly negative) frequency ``nu`` is
``c(nu) = mean(theta_k exp(-j nu t_k))`` and ``H_{n,0} = c(omega_m + n w0)/a+``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro._errors import ValidationError
from repro._validation import check_order, check_positive
from repro.pll.architecture import PLL
from repro.simulator.engine import BehavioralPLLSimulator, SimulationConfig


@dataclass(frozen=True)
class TransferMeasurement:
    """One measured closed-loop transfer point.

    Attributes
    ----------
    omega:
        The (bin-snapped) modulation frequency actually used (rad/s).
    response:
        Measured ``H00(j omega)``.
    sidebands:
        Mapping ``n -> H_{n,0}(j omega)`` for the requested conversion
        orders (empty when none were requested).
    """

    omega: float
    response: complex
    sidebands: dict[int, complex]


def snap_to_bin(omega: float, omega0: float, measure_cycles: int) -> float:
    """Snap ``omega`` to the nearest DFT bin ``k * omega0 / measure_cycles``.

    ``k`` is clamped to ``[1, measure_cycles // 2 - 1]`` so the modulation
    stays strictly inside the first Nyquist band of the *reference* rate.
    """
    check_positive("omega", omega)
    check_positive("omega0", omega0)
    check_order("measure_cycles", measure_cycles, minimum=4)
    bin_width = omega0 / measure_cycles
    k = int(round(omega / bin_width))
    k = max(1, min(k, measure_cycles // 2 - 1))
    return k * bin_width


def _complex_amplitude(times: np.ndarray, values: np.ndarray, nu: float) -> complex:
    """Single-bin estimate of the ``exp(j nu t)`` component amplitude."""
    phasor = np.exp(-1j * nu * times)
    return complex(np.sum(values * phasor) / times.size)


def measure_closed_loop_transfer(
    pll: PLL,
    omega: float,
    amplitude: float | None = None,
    measure_cycles: int = 400,
    discard_cycles: int = 200,
    oversample: int = 32,
    sideband_orders: Sequence[int] = (),
) -> TransferMeasurement:
    """Measure ``H00(j omega)`` (and optional sidebands) by phase modulation.

    Parameters
    ----------
    pll:
        The loop to measure (time-invariant VCO, delay-free).
    omega:
        Requested modulation frequency (rad/s); snapped to a DFT bin of the
        measurement window — read the actual value off the result.
    amplitude:
        Modulation amplitude ``eps`` in seconds; defaults to ``1e-4 * T``
        (small signal, paper assumption ``theta << T``).
    measure_cycles / discard_cycles:
        Reference periods used for demodulation / discarded as transient.
        More discard is needed near the stability boundary where the loop
        rings long.
    oversample:
        Dense recording rate; must keep ``omega + n_max * w0`` below the
        recording Nyquist.
    sideband_orders:
        Conversion orders ``n`` whose ``H_{n,0}`` should be read out too.
    """
    omega0 = pll.omega0
    period = pll.period
    check_order("discard_cycles", discard_cycles, minimum=0)
    omega_m = snap_to_bin(omega, omega0, measure_cycles)
    eps = amplitude if amplitude is not None else 1e-4 * period
    check_positive("amplitude", eps)
    if eps > 0.1 * period:
        raise ValidationError(
            f"modulation amplitude {eps:.3g} s is not small-signal for T={period:.3g} s"
        )
    max_order = max((abs(int(n)) for n in sideband_orders), default=0)
    nyquist = oversample * omega0 / 2.0
    if omega_m + (max_order + 0.5) * omega0 >= nyquist:
        raise ValidationError(
            f"oversample={oversample} cannot resolve conversion order {max_order}; "
            "increase oversample"
        )

    def theta_ref(t: float) -> float:
        return eps * math.sin(omega_m * t)

    config = SimulationConfig(
        cycles=discard_cycles + measure_cycles, oversample=oversample
    )
    sim = BehavioralPLLSimulator(pll, theta_ref=theta_ref, config=config)
    result = sim.run()
    # Keep samples strictly after the discard span; samples land on k*dt with
    # the one at exactly discard_cycles*T belonging to the discarded part.
    window = result.times > discard_cycles * period + 0.5 * period / oversample
    times = result.times[window]
    theta = result.theta[window]
    expected = measure_cycles * oversample
    if times.size != expected:
        raise ValidationError(
            f"internal recording mismatch: got {times.size} samples, expected {expected}"
        )
    a_plus = -0.5j * eps
    response = _complex_amplitude(times, theta, omega_m) / a_plus
    sidebands: dict[int, complex] = {}
    for n in sideband_orders:
        nu = omega_m + int(n) * omega0
        sidebands[int(n)] = _complex_amplitude(times, theta, nu) / a_plus
    return TransferMeasurement(omega=omega_m, response=response, sidebands=sidebands)


def measure_harmonic_elements(
    pll: PLL,
    omega: float,
    orders: Sequence[int],
    **kwargs,
) -> dict[int, complex]:
    """Convenience wrapper returning ``{n: H_{n,0}(j omega)}`` including n=0."""
    wanted = sorted({int(n) for n in orders} | {0})
    meas = measure_closed_loop_transfer(pll, omega, sideband_orders=wanted, **kwargs)
    out = dict(meas.sidebands)
    out[0] = meas.response
    return out
