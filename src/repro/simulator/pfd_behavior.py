"""Tri-state flip-flop PFD state machine.

The circuit of paper Fig. 3: two edge-triggered flip-flops (UP set by a
reference edge, DOWN set by a VCO edge) and an AND-gate reset that clears
both as soon as both are high.  The pump therefore sources current for the
time the reference leads, or sinks for the time the VCO leads — encoding the
phase error in the *width* of the pulses, which is exactly what the HTM
model approximates by weighted Dirac impulses (Fig. 4).

This module is a faithful event-level implementation usable on arbitrary
edge sequences (including missing/extra edges during acquisition), which the
cycle-based engine cross-checks against in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro._errors import ValidationError


class PFDState(Enum):
    """The three stable states of the tri-state detector."""

    NEUTRAL = "neutral"
    UP = "up"
    DOWN = "down"


@dataclass(frozen=True)
class PumpInterval:
    """One interval of constant pump drive: ``state`` over ``[start, stop)``."""

    start: float
    stop: float
    state: PFDState

    def __post_init__(self):
        if self.stop < self.start:
            raise ValidationError(f"interval stop {self.stop} before start {self.start}")

    @property
    def width(self) -> float:
        """Pulse width in seconds."""
        return self.stop - self.start


class TriStatePFD:
    """Event-driven tri-state PFD.

    Feed edges with :meth:`reference_edge` / :meth:`vco_edge` in
    non-decreasing time order; completed pump intervals accumulate in
    :attr:`intervals`.  The instantaneous reset approximation is used (both
    flip-flops clear at the instant the trailing edge arrives), matching the
    idealisation linearised by the HTM model.
    """

    def __init__(self):
        self.state = PFDState.NEUTRAL
        self.intervals: list[PumpInterval] = []
        self._since = 0.0
        self._last_time = -float("inf")

    def _check_time(self, t: float) -> None:
        if t < self._last_time:
            raise ValidationError(
                f"edges must arrive in time order: {t} after {self._last_time}"
            )
        self._last_time = t

    def reference_edge(self, t: float) -> None:
        """Process a reference rising edge at time ``t``."""
        self._check_time(t)
        if self.state is PFDState.NEUTRAL:
            self.state = PFDState.UP
            self._since = t
        elif self.state is PFDState.DOWN:
            # Both flip-flops momentarily high: emit the DOWN pulse and reset.
            self.intervals.append(PumpInterval(self._since, t, PFDState.DOWN))
            self.state = PFDState.NEUTRAL
        # A second reference edge while already UP keeps UP asserted (the
        # detector is frequency-sensitive: it stays UP, pumping the VCO
        # faster until a VCO edge arrives).

    def vco_edge(self, t: float) -> None:
        """Process a VCO (divider-output) rising edge at time ``t``."""
        self._check_time(t)
        if self.state is PFDState.NEUTRAL:
            self.state = PFDState.DOWN
            self._since = t
        elif self.state is PFDState.UP:
            self.intervals.append(PumpInterval(self._since, t, PFDState.UP))
            self.state = PFDState.NEUTRAL

    def process(self, ref_edges, vco_edges) -> list[PumpInterval]:
        """Run full edge sequences through the detector and return intervals.

        Simultaneous edges are processed reference-first, producing a
        zero-width pulse (the locked condition).
        """
        ref = list(ref_edges)
        vco = list(vco_edges)
        i = j = 0
        while i < len(ref) or j < len(vco):
            take_ref = j >= len(vco) or (i < len(ref) and ref[i] <= vco[j])
            if take_ref:
                self.reference_edge(ref[i])
                i += 1
            else:
                self.vco_edge(vco[j])
                j += 1
        return list(self.intervals)

    def net_charge(self, pump_current: float) -> float:
        """Net charge delivered so far for a symmetric pump (coulombs)."""
        total = 0.0
        for interval in self.intervals:
            sign = 1.0 if interval.state is PFDState.UP else -1.0
            total += sign * pump_current * interval.width
        return total
