"""Periodic steady-state (PSS) analysis of the locked loop (extension).

A locked PLL with deterministic non-idealities (charge-pump leakage) settles
into a T-periodic orbit.  Instead of simulating hundreds of cycles until the
transient dies, this module solves for the orbit directly as the fixed point
of the one-cycle return map ``z* = F(z*)`` with a Newton iteration whose
Jacobian is the (lock-point) monodromy matrix — the shooting method of
periodic-steady-state circuit analysis, built from the same engine.

From the orbit, one clean cycle is integrated densely, yielding the exact
periodic ripple and hence exact spur harmonics — cross-validated against
both the first-order analytic model (:mod:`repro.pll.spurs`) and the
settle-and-measure route.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._errors import ConvergenceError
from repro._validation import check_order, check_positive
from repro.pll.architecture import PLL
from repro.simulator.engine import BehavioralPLLSimulator, SimulationConfig
from repro.simulator.floquet import _CycleMap, one_cycle_map


@dataclass(frozen=True)
class PeriodicSteadyState:
    """The solved periodic orbit of a locked loop.

    Attributes
    ----------
    state:
        Fixed-point reduced state ``[filter states..., theta]`` at the
        mid-cycle section.
    residual:
        ``max |F(z*) - z*|`` of the accepted fixed point.
    times, theta, control:
        One dense cycle of the orbit (absolute times within the cycle used
        for the solve).
    """

    state: np.ndarray
    residual: float
    times: np.ndarray
    theta: np.ndarray
    control: np.ndarray

    def phase_harmonic(self, k: int, omega0: float) -> complex:
        """Complex amplitude of ``e^{j k w0 t}`` in the steady-state phase."""
        phasor = np.exp(-1j * k * omega0 * self.times)
        return complex(np.mean(self.theta * phasor))

    def static_phase_offset(self) -> float:
        """Mean phase over the orbit (seconds)."""
        return float(np.mean(self.theta))


def solve_periodic_steady_state(
    pll: PLL,
    max_iterations: int = 30,
    tol: float = 1e-14,
    oversample: int = 64,
) -> PeriodicSteadyState:
    """Shooting-method solve of the locked loop's periodic orbit.

    Newton iteration ``z <- z + (I - M)^{-1} (F(z) - z)`` with ``M`` the
    lock-point monodromy matrix; converges in a handful of iterations for
    any stable loop (``I - M`` nonsingular when no multiplier sits at 1).

    Raises
    ------
    ConvergenceError
        If the iteration fails — an unstable loop, or one whose orbit drifts
        outside the engine's slip window.
    """
    check_order("max_iterations", max_iterations, minimum=1)
    check_positive("tol", tol)
    cycle_map = _CycleMap(pll)
    monodromy = one_cycle_map(pll)
    dim = cycle_map.dim
    eye = np.eye(dim)
    try:
        correction = np.linalg.inv(eye - monodromy)
    except np.linalg.LinAlgError as exc:
        raise ConvergenceError(
            "I - M is singular: the loop has a marginal Floquet multiplier"
        ) from exc
    scale = pll.period
    z = np.zeros(dim)
    residual = float("inf")
    for _ in range(max_iterations):
        fz = cycle_map(z, cycle=1)
        residual = float(np.max(np.abs(fz - z)))
        if residual < tol * scale:
            break
        z = z + correction @ (fz - z)
    else:
        raise ConvergenceError(
            f"PSS shooting did not converge: residual {residual:.3g} after "
            f"{max_iterations} iterations"
        )
    # Record one dense cycle from the fixed point.
    times, theta, control = _record_cycle(pll, z, oversample)
    return PeriodicSteadyState(
        state=z, residual=residual, times=times, theta=theta, control=control
    )


def _record_cycle(pll: PLL, z: np.ndarray, oversample: int):
    """Integrate one cycle from the fixed point with dense recording."""
    sim = BehavioralPLLSimulator(pll, config=SimulationConfig(cycles=1, oversample=oversample))
    period = pll.period
    dim = z.size
    state = np.zeros(dim + 1)
    state[:dim] = z
    t_start = 0.5 * period
    leakage = pll.charge_pump.leakage
    samples_t: list[float] = []
    samples_theta: list[float] = []
    samples_u: list[float] = []
    dt = period / oversample
    next_sample = t_start + dt

    def advance(t_from, t_to, current, st):
        nonlocal next_sample
        t_pos = t_from
        while next_sample <= t_to + 1e-15 * period:
            st = sim._advance(st, next_sample - t_pos, current, t_start=t_pos)
            t_pos = next_sample
            samples_t.append(next_sample)
            samples_theta.append(sim.theta_of(st))
            samples_u.append(sim.control_of(st, current))
            next_sample += dt
        return sim._advance(st, t_to - t_pos, current, t_start=t_pos)

    state, t_cur, _, _ = sim._process_cycle(state, t_start, 1, advance)
    t_end = t_start + period
    if t_end > t_cur:
        state = advance(t_cur, t_end, -leakage, state)
    return (
        np.asarray(samples_t),
        np.asarray(samples_theta),
        np.asarray(samples_u),
    )
