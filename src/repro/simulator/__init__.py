"""Event-driven behavioural PLL simulator (the paper's verification bench).

The paper validates its HTM model against "time-marching simulations in
Matlab/Simulink" whose PFD is implemented "using flip-flops and therefore
encodes the phase error through the width of the pulses it produces".  This
package is that testbench in pure Python:

* :mod:`~repro.simulator.pfd_behavior` — the tri-state flip-flop PFD state
  machine producing real finite-width UP/DOWN pulses;
* :mod:`~repro.simulator.events` — edge-time solvers (reference edges under
  phase modulation, VCO edges by Newton iteration on the exactly-integrated
  phase);
* :mod:`~repro.simulator.engine` — cycle-by-cycle simulation with
  **zero-discretization-error** integration: the loop filter + VCO phase
  form an augmented LTI system driven by piecewise-constant pump current,
  advanced by matrix exponentials;
* :mod:`~repro.simulator.transfer_extraction` — small-signal transfer
  measurement: sinusoidal reference-phase modulation, leakage-free
  single-bin DFT demodulation, returning ``H00(j omega)`` and the harmonic
  conversion elements ``H_{n,0}`` for direct comparison with the HTM model.
"""

from repro.simulator.pfd_behavior import PFDState, TriStatePFD, PumpInterval
from repro.simulator.engine import (
    BehavioralPLLSimulator,
    SimulationConfig,
    TransientResult,
)
from repro.simulator.transfer_extraction import (
    TransferMeasurement,
    measure_closed_loop_transfer,
    measure_harmonic_elements,
)
from repro.simulator.floquet import (
    FloquetResult,
    compare_with_zdomain,
    floquet_multipliers,
    one_cycle_map,
)
from repro.simulator.steady_state import (
    PeriodicSteadyState,
    solve_periodic_steady_state,
)

__all__ = [
    "FloquetResult",
    "compare_with_zdomain",
    "floquet_multipliers",
    "one_cycle_map",
    "PeriodicSteadyState",
    "solve_periodic_steady_state",
    "PFDState",
    "TriStatePFD",
    "PumpInterval",
    "BehavioralPLLSimulator",
    "SimulationConfig",
    "TransientResult",
    "TransferMeasurement",
    "measure_closed_loop_transfer",
    "measure_harmonic_elements",
]
