"""Edge-time solvers for the event-driven simulator.

Two root-finding problems arise each reference cycle:

* **reference edges**: with the reference modelled as
  ``V_ref(t) = x_ref(t + thetaref(t))`` (paper eq. 4), the n-th rising edge
  satisfies ``t + thetaref(t) = n T``.  For the small-signal excursions the
  paper assumes (``thetaref << T``) a fixed-point iteration converges in a
  few steps;
* **VCO edges**: ``t + theta(t) = n T`` where ``theta`` is the integrated
  loop state.  Solved by a guarded Newton iteration; each evaluation of
  ``theta(t)`` is an exact matrix-exponential step, so the edge time is
  accurate to root-solver tolerance, not integration step size.
"""

from __future__ import annotations

from typing import Callable

from repro._errors import ConvergenceError, ValidationError


def solve_reference_edge(
    theta_ref: Callable[[float], float],
    target: float,
    max_iter: int = 50,
    tol: float = 1e-14,
) -> float:
    """Solve ``t + theta_ref(t) = target`` by damped fixed-point iteration.

    ``theta_ref`` must be a small, slowly-varying excursion (|d theta/dt| < 1,
    which the small-signal assumption theta << T guarantees in practice).
    """
    t = target - theta_ref(target)
    for _ in range(max_iter):
        residual = t + theta_ref(t) - target
        if abs(residual) <= tol * max(abs(target), 1.0):
            return t
        t -= residual
    raise ConvergenceError(
        f"reference edge solve did not converge toward target {target!r}; "
        "is the phase modulation small-signal (|theta| << T)?"
    )


def solve_phase_crossing(
    theta_at: Callable[[float], float],
    theta_rate_at: Callable[[float], float],
    target: float,
    t_lo: float,
    t_hi: float,
    max_iter: int = 60,
    tol: float = 1e-13,
) -> float | None:
    """Solve ``t + theta(t) = target`` on ``[t_lo, t_hi]``; None if no crossing.

    ``theta_at``/``theta_rate_at`` evaluate the exactly-integrated phase and
    its derivative at arbitrary times inside the interval.  Uses Newton with
    bisection fallback (the derivative ``1 + theta'`` is positive near lock,
    but the guard keeps pathological cases safe).

    Returns ``None`` when the crossing lies beyond ``t_hi`` — the caller then
    extends the integration segment first.
    """
    if t_hi < t_lo:
        raise ValidationError(f"empty bracket [{t_lo}, {t_hi}]")

    def g(t: float) -> float:
        return t + theta_at(t) - target

    g_lo = g(t_lo)
    if g_lo > tol * max(abs(target), 1.0):
        raise ValidationError(
            "crossing already passed at segment start: the previous segment "
            "should have caught this edge"
        )
    g_hi = g(t_hi)
    if g_hi < 0.0:
        return None
    lo, hi = t_lo, t_hi
    t = min(max(target - theta_at(t_lo), lo), hi)
    scale = max(abs(target), 1.0)
    for _ in range(max_iter):
        gt = g(t)
        if abs(gt) <= tol * scale:
            return t
        if gt > 0:
            hi = t
        else:
            lo = t
        slope = 1.0 + theta_rate_at(t)
        if slope > 0.1:
            t_next = t - gt / slope
        else:
            t_next = 0.5 * (lo + hi)
        if not lo <= t_next <= hi:
            t_next = 0.5 * (lo + hi)
        if abs(t_next - t) <= 1e-16 * scale:
            return t_next
        t = t_next
    raise ConvergenceError(
        f"phase-crossing solve did not converge to target {target!r} in "
        f"[{t_lo}, {t_hi}]"
    )
