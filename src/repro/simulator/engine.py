"""Cycle-by-cycle behavioural PLL simulation with exact segment integration.

The continuous part of the loop — loop-filter impedance driven by the pump
current plus the VCO phase integrator — is one augmented LTI system::

    x' = A x + B i(t)                     (filter states, u = C x + D i)
    theta' = v0 (C x + D i) + delta       (VCO phase in seconds)
    delta' = 0                            (constant fractional freq. offset)

Between events the pump current ``i`` is constant (``+I_up``, ``-I_down`` or
0), so each segment is advanced by a matrix exponential with **zero
discretization error**; all approximation lives in the root solves for edge
times (1e-13 relative) — far below the 2% agreement the paper reports
between its HTM model and this kind of simulation.

Each reference cycle ``n``:

1. solve the reference edge ``t_r + thetaref(t_r) = nT``;
2. look for the VCO edge ``t + theta(t) = nT`` with the pump off;
3. whichever edge comes first starts the pump (UP for a leading reference,
   DOWN for a leading VCO); the other edge ends the pulse — the flip-flop
   tri-state behaviour of :mod:`repro.simulator.pfd_behavior`;
4. dense uniform samples of ``theta`` and the control voltage are recorded
   along the way for spectral post-processing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np
from scipy.linalg import expm

from repro._errors import LockError, ValidationError
from repro._validation import check_order, check_positive
from repro.pll.architecture import PLL
from repro.simulator.events import solve_phase_crossing, solve_reference_edge
from repro.simulator.pfd_behavior import PFDState, PumpInterval


@dataclass(frozen=True)
class SimulationConfig:
    """Engine settings.

    Attributes
    ----------
    cycles:
        Number of reference periods to simulate.
    oversample:
        Dense recording rate: samples per reference period.
    frequency_offset:
        Initial fractional VCO frequency error ``delta`` (dimensionless);
        non-zero values exercise lock acquisition.
    max_phase_error:
        Cycle-slip guard, as a fraction of the period; exceeding it raises
        :class:`~repro._errors.LockError`.
    """

    cycles: int = 200
    oversample: int = 16
    frequency_offset: float = 0.0
    max_phase_error: float = 0.45

    def __post_init__(self):
        check_order("cycles", self.cycles, minimum=1)
        check_order("oversample", self.oversample, minimum=1)
        if not 0.0 < self.max_phase_error <= 0.5:
            raise ValidationError(
                f"max_phase_error must lie in (0, 0.5], got {self.max_phase_error}"
            )


@dataclass
class TransientResult:
    """Recorded trajectory of one simulation run."""

    times: np.ndarray
    theta: np.ndarray
    control: np.ndarray
    ref_edges: np.ndarray
    vco_edges: np.ndarray
    phase_errors: np.ndarray
    pump_intervals: list[PumpInterval] = field(default_factory=list)

    @property
    def sample_period(self) -> float:
        """Spacing of the dense recording grid."""
        return float(self.times[1] - self.times[0]) if self.times.size > 1 else 0.0

    def final_phase_error(self) -> float:
        """Last recorded per-cycle phase error (seconds)."""
        return float(self.phase_errors[-1])


class BehavioralPLLSimulator:
    """Event-driven simulator of a charge-pump PLL with a tri-state PFD.

    Parameters
    ----------
    pll:
        The PLL description.  Time-invariant VCOs integrate via cached
        matrix exponentials; LPTV ISFs use the closed-form eigenbasis
        segment formulas of :meth:`_advance_lptv` (linearised ``v(t)``, the
        paper's eq. 24 approximation) — both exact per segment.
    theta_ref:
        Reference phase excursion in seconds as a function of time; ``None``
        means an unmodulated reference.
    config:
        Engine settings.
    """

    def __init__(
        self,
        pll: PLL,
        theta_ref: Callable[[float], float] | None = None,
        config: SimulationConfig | None = None,
        frequency_offset_fn: Callable[[int], float] | None = None,
    ):
        if pll.has_delay:
            raise ValidationError("the behavioural engine models a delay-free loop")
        self.pll = pll
        self.theta_ref = theta_ref or (lambda t: 0.0)
        self.config = config or SimulationConfig()
        # Optional per-cycle fractional VCO frequency disturbance: cycle n
        # runs with delta = config.frequency_offset + frequency_offset_fn(n).
        # This injects VCO-referred noise/modulation for sensitivity tests.
        self.frequency_offset_fn = frequency_offset_fn
        self.period = pll.period
        self._lptv = not pll.vco.is_time_invariant()
        v0 = pll.vco.v0
        if abs(v0.imag) > 1e-12 * max(abs(v0.real), 1.0):
            raise ValidationError("VCO average sensitivity v0 must be real for simulation")
        self._v0 = float(v0.real)
        check_positive("v0", self._v0)
        ss = pll.filter_impedance.to_statespace()
        n = ss.order
        self._n_filter = n
        # Augmented state z = [x_filter, theta, delta]; input is the pump current.
        a_aug = np.zeros((n + 2, n + 2))
        a_aug[:n, :n] = ss.A
        a_aug[n, :n] = self._v0 * ss.C[0]
        a_aug[n, n + 1] = 1.0
        b_aug = np.zeros(n + 2)
        b_aug[:n] = ss.B[:, 0]
        b_aug[n] = self._v0 * ss.D[0, 0]
        self._a_aug = a_aug
        self._b_aug = b_aug
        self._c_filter = ss.C[0]
        self._d_filter = float(ss.D[0, 0])
        self._step_cache: dict[tuple[float, float], tuple[np.ndarray, np.ndarray]] = {}
        if self._lptv:
            self._init_lptv(ss)

    def _init_lptv(self, ss) -> None:
        """Eigendecompose the filter for the analytic LPTV segment formulas.

        The LPTV phase equation ``theta' = v(t) u(t) + delta`` (paper eq. 24)
        separates: the filter states never depend on theta, so they propagate
        exactly in the filter's eigenbasis and the phase increment becomes a
        finite sum of exponential integrals (see :meth:`_advance_lptv`).
        Requires a diagonalizable filter with distinct eigenvalues — true for
        every passive topology in :mod:`repro.blocks.loopfilter`.
        """
        eigvals, vecs = np.linalg.eig(ss.A.astype(complex))
        scale = max(float(np.max(np.abs(eigvals))), 1.0)
        gaps = np.abs(eigvals[:, None] - eigvals[None, :]) + np.eye(eigvals.size) * scale
        if float(np.min(gaps)) < 1e-9 * scale:
            raise ValidationError(
                "LPTV simulation needs a filter with distinct eigenvalues "
                "(defective/multiple modes not supported)"
            )
        self._lam = eigvals
        self._beta = np.linalg.solve(vecs, ss.B[:, 0].astype(complex))
        self._gamma = ss.C[0].astype(complex) @ vecs
        self._modal = vecs
        self._modal_inv = np.linalg.inv(vecs)
        isf = self.pll.vco.isf
        self._isf_k = np.arange(-isf.order, isf.order + 1)
        self._isf_c = np.array([isf.coefficient(int(k)) for k in self._isf_k])
        self._omega0 = self.pll.omega0

    # -- exact stepping -----------------------------------------------------------

    def _discrete(self, dt: float, current: float) -> tuple[np.ndarray, np.ndarray]:
        key = (dt, current)
        hit = self._step_cache.get(key)
        if hit is not None:
            return hit
        n = self._a_aug.shape[0]
        aug = np.zeros((n + 1, n + 1))
        aug[:n, :n] = self._a_aug
        aug[:n, n] = self._b_aug * current
        phi = expm(aug * dt)
        pair = (phi[:n, :n], phi[:n, n])
        if len(self._step_cache) < 4096:
            self._step_cache[key] = pair
        return pair

    def _advance(
        self, state: np.ndarray, dt: float, current: float, t_start: float = 0.0
    ) -> np.ndarray:
        if dt == 0.0:
            return state
        if self._lptv:
            return self._advance_lptv(state, dt, current, t_start)
        ad, bd = self._discrete(dt, current)
        return ad @ state + bd

    @staticmethod
    def _phi(mu: complex, dt: float) -> complex:
        """``integral_0^dt e^{mu tau} d tau`` with the mu -> 0 limit."""
        if abs(mu) * dt < 1e-10:
            return dt * (1.0 + mu * dt / 2.0)
        return (np.exp(mu * dt) - 1.0) / mu

    @staticmethod
    def _phi_ramp(nu: complex, dt: float) -> complex:
        """``integral_0^dt tau e^{nu tau} d tau`` with the nu -> 0 limit."""
        if abs(nu) * dt < 1e-10:
            return dt**2 / 2.0 * (1.0 + 2.0 * nu * dt / 3.0)
        e = np.exp(nu * dt)
        return dt * e / nu - (e - 1.0) / nu**2

    def _advance_lptv(
        self, state: np.ndarray, dt: float, current: float, t_start: float
    ) -> np.ndarray:
        """Closed-form segment propagation for a time-varying ISF.

        Filter (eigenbasis): ``z_j(tau) = e^{l_j tau} z_j(0) + i b_j phi_j(tau)``.
        Phase:  ``theta += delta dt + sum_k v_k e^{j k w0 t0} *
        integral_0^dt e^{j k w0 tau} u(tau) d tau`` where ``u`` is an affine
        combination of exponentials/ramps — every integral is elementary.
        """
        n = self._n_filter
        x0 = state[:n].astype(complex)
        z0 = self._modal_inv @ x0
        lam = self._lam
        # Filter propagation.
        exp_l = np.exp(lam * dt)
        phi_l = np.array([self._phi(l, dt) for l in lam])
        z1 = exp_l * z0 + current * self._beta * phi_l
        x1 = self._modal @ z1
        # Phase increment.
        increment = 0.0 + 0.0j
        for vk, k in zip(self._isf_c, self._isf_k):
            if vk == 0:
                continue
            nu = 1j * k * self._omega0
            carrier = np.exp(nu * t_start)
            acc = self._d_filter * current * self._phi(nu, dt)
            for j in range(n):
                mu = lam[j] + nu
                acc += self._gamma[j] * z0[j] * self._phi(mu, dt)
                if abs(lam[j]) * dt < 1e-10:
                    # Integrator mode: phi_j(tau) ~ tau (+ O(lam tau^2)).
                    ramp = self._phi_ramp(nu, dt)
                    acc += self._gamma[j] * current * self._beta[j] * ramp
                else:
                    inner = (self._phi(mu, dt) - self._phi(nu, dt)) / lam[j]
                    acc += self._gamma[j] * current * self._beta[j] * inner
            increment += vk * carrier * acc
        out = state.copy()
        out[:n] = x1.real
        out[n] = state[n] + float(state[-1]) * dt + increment.real
        return out

    def theta_of(self, state: np.ndarray) -> float:
        """VCO phase (seconds) component of an augmented state."""
        return float(state[self._n_filter])

    def control_of(self, state: np.ndarray, current: float) -> float:
        """Control voltage ``u = C x + D i`` for a given pump current."""
        return float(self._c_filter @ state[: self._n_filter] + self._d_filter * current)

    def theta_rate_of(self, state: np.ndarray, current: float, t: float = 0.0) -> float:
        """Instantaneous ``d theta/dt = v(t) u + delta`` (``v0 u`` when LTI)."""
        u = self.control_of(state, current)
        if self._lptv:
            v_t = float(np.real(self.pll.vco.isf(t)))
            return v_t * u + float(state[-1])
        return self._v0 * u + float(state[-1])

    # -- one reference cycle of PFD/pump event logic -----------------------------------

    def _process_cycle(self, state, t_cur: float, n: int, advance):
        """Advance through reference cycle ``n``: edges, pulse, integration.

        ``advance(t_from, t_to, current, state) -> state`` performs the
        segment integration (the caller may record samples inside).  Returns
        ``(state, t_cur, t_ref, t_vco)``.

        Raises
        ------
        LockError
            On cycle slip or when an expected edge never arrives.
        """
        cfg = self.config
        period = self.period
        up_current = self.pll.charge_pump.up_current
        down_current = self.pll.charge_pump.down_current
        leakage = self.pll.charge_pump.leakage
        target = n * period
        t_ref = solve_reference_edge(self.theta_ref, target)

        def theta_eval(t: float, st=state, t0=t_cur, i=-leakage):
            return self.theta_of(self._advance(st, t - t0, i, t_start=t0))

        def rate_eval(t: float, st=state, t0=t_cur, i=-leakage):
            return self.theta_rate_of(self._advance(st, t - t0, i, t_start=t0), i, t=t)

        try:
            t_vco = solve_phase_crossing(theta_eval, rate_eval, target, t_cur, t_ref)
        except ValidationError as exc:
            raise LockError(f"cycle {n}: {exc}") from exc
        if t_vco is not None:
            # VCO leads: DOWN pulse from the VCO edge to the reference edge.
            state = advance(t_cur, t_vco, -leakage, state)
            state = advance(t_vco, t_ref, -down_current - leakage, state)
            t_cur = t_ref
        else:
            # Reference leads: UP pulse from the reference edge to the VCO edge.
            state = advance(t_cur, t_ref, -leakage, state)
            i_up = up_current - leakage
            horizon = t_ref + (0.5 + cfg.max_phase_error) * period

            def theta_on(t: float, st=state, t0=t_ref, i=i_up):
                return self.theta_of(self._advance(st, t - t0, i, t_start=t0))

            def rate_on(t: float, st=state, t0=t_ref, i=i_up):
                return self.theta_rate_of(self._advance(st, t - t0, i, t_start=t0), i, t=t)

            t_vco = solve_phase_crossing(theta_on, rate_on, target, t_ref, horizon)
            if t_vco is None:
                raise LockError(
                    f"cycle {n}: VCO edge did not arrive within the slip window; "
                    "loop has lost lock"
                )
            state = advance(t_ref, t_vco, i_up, state)
            t_cur = t_vco

        error = t_vco - t_ref
        if abs(error) > cfg.max_phase_error * period:
            raise LockError(
                f"cycle {n}: phase error {error:.3e} s exceeds the slip limit "
                f"{cfg.max_phase_error * period:.3e} s"
            )
        return state, t_cur, t_ref, t_vco

    # -- simulation ------------------------------------------------------------------

    def run(self) -> TransientResult:
        """Simulate ``config.cycles`` reference periods from the locked state.

        Raises
        ------
        LockError
            On a cycle slip (phase error beyond ``max_phase_error * T``) or
            when a pulse fails to terminate within one period.
        """
        cfg = self.config
        period = self.period
        dt = period / cfg.oversample
        total_samples = cfg.cycles * cfg.oversample
        times = np.empty(total_samples)
        theta_rec = np.empty(total_samples)
        control_rec = np.empty(total_samples)
        ref_edges = np.empty(cfg.cycles)
        vco_edges = np.empty(cfg.cycles)
        phase_errors = np.empty(cfg.cycles)
        intervals: list[PumpInterval] = []

        state = np.zeros(self._n_filter + 2)
        state[-1] = cfg.frequency_offset
        t_cur = 0.0
        sample_idx = 0
        next_sample = dt

        def advance_recording(t_from: float, t_to: float, current: float, st: np.ndarray):
            nonlocal sample_idx, next_sample
            t_pos = t_from
            while sample_idx < total_samples and next_sample <= t_to + 1e-15 * period:
                st = self._advance(st, next_sample - t_pos, current, t_start=t_pos)
                t_pos = next_sample
                times[sample_idx] = next_sample
                theta_rec[sample_idx] = self.theta_of(st)
                control_rec[sample_idx] = self.control_of(st, current)
                sample_idx += 1
                next_sample += dt
            return self._advance(st, t_to - t_pos, current, t_start=t_pos)

        leakage = self.pll.charge_pump.leakage

        for n in range(1, cfg.cycles + 1):
            if self.frequency_offset_fn is not None:
                state[-1] = cfg.frequency_offset + float(self.frequency_offset_fn(n))
            state, t_cur, t_ref, t_vco = self._process_cycle(
                state, t_cur, n, advance_recording
            )
            ref_edges[n - 1] = t_ref
            vco_edges[n - 1] = t_vco
            phase_errors[n - 1] = t_vco - t_ref  # = thetaref - theta at sampling
            if t_vco > t_ref:
                intervals.append(PumpInterval(t_ref, t_vco, PFDState.UP))
            elif t_ref > t_vco:
                intervals.append(PumpInterval(t_vco, t_ref, PFDState.DOWN))

        # Coast with the pump off to the end of the recording grid.
        end_time = cfg.cycles * period
        if t_cur < end_time or sample_idx < total_samples:
            state = advance_recording(t_cur, max(end_time, t_cur), -leakage, state)

        return TransientResult(
            times=times[:sample_idx],
            theta=theta_rec[:sample_idx],
            control=control_rec[:sample_idx],
            ref_edges=ref_edges,
            vco_edges=vco_edges,
            phase_errors=phase_errors,
            pump_intervals=intervals,
        )
