"""Time-varying transient responses from the closed-loop HTM (extension).

The HTM is a frequency-domain object; this module pulls *time-domain*
waveforms out of it by inverse Fourier synthesis over the closed-loop band
transfers, producing the response of the **periodically time-varying** loop
— including the reference-rate ripple that an LTI model cannot represent —
without running the event-driven simulator.

For a reference phase step ``thetaref(t) = step * u(t)`` the output phase is

    theta(t) = step * [ 1 - sum_n I_n(t) ],
    I_n(t)   = (1/2pi) PV-int S_{n,0}(j w) / (j w) * e^{j (w + n w0) t} dw

where ``S = (I + G)^{-1}`` is the sensitivity HTM (eq. 32).  The integrands
are regular at ``w = 0`` — ``S_{0,0} ~ w^2`` for the type-2 loop and the
conversion elements vanish at DC — so a half-bin-offset frequency grid
evaluates the principal value cleanly.

The result is validated against the behavioural simulator in the tests: the
synthesised waveform tracks the simulated one *through the per-cycle ripple*,
not just on cycle averages.
"""

from __future__ import annotations

import numpy as np

from repro._errors import ValidationError
from repro._validation import as_float_array, check_order, check_positive
from repro.pll.architecture import PLL
from repro.pll.closedloop import ClosedLoopHTM


def reference_step_response(
    pll: PLL,
    times,
    step: float = 1.0,
    step_time: float | None = None,
    bands: int = 2,
    grid_points: int = 8192,
    omega_max: float | None = None,
    **closed_loop_kwargs,
) -> np.ndarray:
    """Synthesise the time-varying response to a reference phase step.

    Parameters
    ----------
    times:
        Evaluation times (seconds), ``t >= 0``.
    step:
        Step amplitude in seconds (small-signal: ``step << T``).
    step_time:
        Instant the step is applied.  Defaults to ``T/2`` — strictly
        *between* sampling instants.  A step landing exactly on a sampling
        instant is ill-defined in the impulse-train model (the product
        ``delta(t) u(t)`` has no unique value), so values within 1% of a
        multiple of T are rejected.
    bands:
        Conversion bands ``n = -bands..bands`` included; ``bands = 0`` gives
        the ripple-free (baseband-only) response.
    grid_points:
        Frequency samples per band integral (half-bin offset, symmetric).
    omega_max:
        Integration band edge (rad/s); default ``40 * w0`` covers the step's
        spectral content for loops up to the stability limit.

    Returns
    -------
    ndarray of ``theta(t)`` values (seconds), real.
    """
    t_arr = as_float_array("times", times)
    if np.any(t_arr < 0):
        raise ValidationError("step response is defined for t >= 0")
    check_order("bands", bands, minimum=0)
    check_order("grid_points", grid_points, minimum=64)
    omega0 = pll.omega0
    period = pll.period
    t0 = step_time if step_time is not None else 0.5 * period
    check_positive("step_time", t0)
    cycle_frac = (t0 / period) % 1.0
    if min(cycle_frac, 1.0 - cycle_frac) < 0.01:
        raise ValidationError(
            f"step_time {t0!r} coincides with a sampling instant (within 1% of a "
            "period); the impulse-train model is ill-defined there — offset it"
        )
    band_edge = omega_max if omega_max is not None else 40.0 * omega0
    check_positive("omega_max", band_edge)
    closed = ClosedLoopHTM(pll, **closed_loop_kwargs)

    d_omega = 2.0 * band_edge / grid_points
    # Half-bin offset keeps w = 0 off the grid (the PV point).
    omega = (np.arange(grid_points) - grid_points / 2 + 0.5) * d_omega
    s = 1j * omega
    lam = np.asarray(closed.effective_gain(s), dtype=complex)
    total = np.zeros(t_arr.shape, dtype=complex)
    shift = np.exp(-1j * omega * t0)
    for n in range(-bands, bands + 1):
        vn = np.asarray(closed.vtilde_element(s, n), dtype=complex)
        h_n0 = vn / (1.0 + lam)
        s_n0 = (1.0 if n == 0 else 0.0) - h_n0
        integrand = shift * s_n0 / s  # regular at w -> 0
        # I_n(t) = (d_omega / 2pi) sum_k integrand_k e^{j (w_k + n w0) t}
        phases = np.exp(1j * np.outer(t_arr, omega + n * omega0))
        total += (d_omega / (2.0 * np.pi)) * (phases @ integrand)
    heaviside = 0.5 + 0.5 * np.sign(t_arr - t0)
    response = step * (heaviside - total)
    if np.max(np.abs(response.imag)) > 1e-6 * max(np.max(np.abs(response.real)), 1e-30):
        raise ValidationError(
            "synthesised response has a non-negligible imaginary part; "
            "increase bands/grid_points"
        )
    return response.real


def lti_step_response(pll: PLL, times, step: float = 1.0) -> np.ndarray:
    """The classical LTI step response ``step * L^{-1}{A/(1+A)/s}`` for contrast."""
    from repro.baselines.lti_approx import ClassicalLTIAnalysis

    t_arr = as_float_array("times", times)
    return step * np.asarray(
        ClassicalLTIAnalysis(pll).phase_step_response(t_arr), dtype=float
    )


def ripple_amplitude(
    pll: PLL,
    times,
    step: float = 1.0,
    bands: int = 2,
    **kwargs,
) -> float:
    """Peak reference-rate ripple on the step response (time-varying part).

    The difference between the full synthesis and the baseband-only one —
    zero in any LTI model, and the visible sawtooth the simulator shows.
    """
    full = reference_step_response(pll, times, step=step, bands=bands, **kwargs)
    smooth = reference_step_response(pll, times, step=step, bands=0, **kwargs)
    return float(np.max(np.abs(full - smooth)))
