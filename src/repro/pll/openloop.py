"""Open-loop gain construction (paper eqs. 27 and 35).

Two views of the same loop:

* :func:`lti_open_loop` — the classical continuous-time LTI approximation
  ``A(s) = (w0/2pi) (v0/s) H_LF(s)`` (eq. 35), a rational function;
* :func:`open_loop_operator` — the full LPTV operator
  ``G = H_VCO @ H_LF @ H_PFD`` (eq. 27), whose truncated HTM feeds the dense
  reference path and the ablation benches.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro._errors import ValidationError
from repro.core.operators import HarmonicOperator, LTIOperator, SeriesOperator
from repro.lti.transfer import TransferFunction
from repro.pll.architecture import PLL


def lti_open_loop(pll: PLL, pade_order: int = 0) -> TransferFunction:
    """The classical LTI open-loop gain ``A(s)`` of eq. (35).

    The factor ``w0/2pi`` in front arises from the sampling-PFD impulse
    weight (eq. 19); the VCO contributes ``v0/s``.

    Parameters
    ----------
    pade_order:
        When the loop has a transport delay, a Padé approximation of this
        order is folded in (the exact exponential is irrational).  The
        default 0 raises instead of silently approximating.

    Raises
    ------
    ValidationError
        For a sample-and-hold PFD: the hold transfer is irrational, so use
        :func:`open_loop_callable` instead.
    """
    from repro.blocks.pfd import SampleHoldPFD

    if isinstance(pll.pfd, SampleHoldPFD):
        raise ValidationError(
            "sample-and-hold PFD has an irrational (ZOH) transfer; use "
            "open_loop_callable for A(s)"
        )
    vco_tf = pll.vco.lti_transfer()
    gain = pll.pfd.gain
    a = gain * vco_tf * pll.h_lf
    if pll.has_delay:
        if pade_order < 1:
            raise ValidationError(
                "loop has a transport delay; pass pade_order >= 1 for a rational "
                "A(s) or use open_loop_callable for the exact response"
            )
        a = a * pll.delay.pade(pade_order)
    return TransferFunction.from_rational(a.rational, name="A")


def open_loop_callable(pll: PLL) -> Callable[[complex | np.ndarray], complex | np.ndarray]:
    """Exact scalar open-loop gain ``A(s)`` as a callable.

    Includes irrational loop elements a rational
    :class:`TransferFunction` cannot represent: transport delay and the
    zero-order hold of a sample-and-hold PFD.
    """
    from repro.blocks.pfd import SampleHoldPFD

    vco_tf = pll.vco.lti_transfer()
    h_lf = pll.h_lf
    gain = pll.pfd.gain
    delay = pll.delay
    hold = pll.pfd.hold_transfer if isinstance(pll.pfd, SampleHoldPFD) else None

    def a_of_s(s):
        value = gain * np.asarray(vco_tf(s), dtype=complex) * np.asarray(h_lf(s), dtype=complex)
        if hold is not None:
            value = value * np.asarray(hold(s), dtype=complex)
        if delay is not None:
            value = value * delay.transfer(s)
        return value

    return a_of_s


def open_loop_operator(pll: PLL) -> HarmonicOperator:
    """The full LPTV open-loop operator ``G = H_VCO @ H_LF @ H_PFD`` (eq. 27).

    The loop delay (if any) is inserted between filter and VCO; since both
    are diagonal the placement is immaterial.
    """
    lf_op = LTIOperator(pll.h_lf, pll.omega0)
    chain: HarmonicOperator = SeriesOperator(lf_op, pll.pfd.operator())
    if pll.has_delay:
        chain = SeriesOperator(pll.delay.operator(), chain)
    return SeriesOperator(pll.vco.operator(), chain)
