"""Closed-loop HTM via the rank-one Sherman–Morrison–Woodbury closure.

This module implements paper sec. 4.  Because the sampling PFD's HTM is rank
one, the open-loop HTM factors as ``G(s) = V(s) l^T`` (eq. 30) with

    V_n(s) = (w0/2pi) * sum_k v_k H_LF(s + j(n-k) w0) / (s + j n w0)   (eq. 29)

and the closed loop collapses to (eq. 34)

    theta(s) = V(s) l^T thetaref(s) / (1 + lambda(s)),
    lambda(s) = l^T V(s) = sum_n V_n(s).

``lambda`` — the **effective open-loop gain** — is evaluated two ways:

* ``method='closed'``: exactly, by recognising ``lambda`` as a finite sum of
  aliasing sums ``sum_m B_k(s + j m w0)`` of rational functions
  ``B_k(sig) = (w0/2pi) v_k H_LF(sig) / (sig + j k w0)`` and using the coth
  closed forms of :mod:`repro.core.aliasing`.  For a time-invariant VCO this
  reduces to the paper's ``lambda(s) = sum_m A(s + j m w0)`` (eq. 37).
* ``method='truncated'``: by symmetric truncation of ``sum_n V_n(s)`` —
  required when the loop contains a transport delay or a non-zero sampling
  offset (irrational summands), and used by ablation A1.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._errors import ValidationError
from repro._validation import check_order
from repro.core.aliasing import AliasedSum
from repro.core.grid import FrequencyGrid, as_omega_grid, as_s_grid
from repro.core.htm import HTM
from repro.core.operators import FeedbackOperator
from repro.lti.rational import RationalFunction
from repro.obs import health
from repro.obs import spans as obs
from repro.pll.architecture import PLL
from repro.pll.openloop import open_loop_operator


class ClosedLoopHTM:
    """Closed-loop small-signal model ``theta(s) = H(s) thetaref(s)``.

    Parameters
    ----------
    pll:
        The PLL description.
    method:
        ``'closed'`` (default) for the exact coth-based aliasing sums, or
        ``'truncated'`` for symmetric finite sums.  Loops with transport
        delay or sampling offset force ``'truncated'``.
    harmonics:
        Truncation half-width M for ``method='truncated'``.
    backend:
        Compute backend (name or instance) for structured grid evaluations
        (:meth:`structured_reference_grid`); ``None`` uses the scoped /
        ``REPRO_BACKEND`` / numpy resolution of
        :func:`repro.core.backend.resolve_backend`.
    """

    def __init__(
        self,
        pll: PLL,
        method: str = "closed",
        harmonics: int = 64,
        backend: str | None = None,
    ):
        if method not in ("closed", "truncated"):
            raise ValidationError(f"method must be 'closed' or 'truncated', got {method!r}")
        from repro.blocks.pfd import SampleHoldPFD

        self._hold = (
            pll.pfd.hold_transfer if isinstance(pll.pfd, SampleHoldPFD) else None
        )
        needs_truncated = (
            pll.has_delay or pll.pfd.sampling_offset != 0.0 or self._hold is not None
        )
        if method == "closed" and needs_truncated:
            raise ValidationError(
                "closed-form aliasing sums require a delay-free impulse-sampling "
                "loop with zero sampling offset; use method='truncated'"
            )
        self.pll = pll
        self.method = method
        self.backend = backend
        self.harmonics = check_order("harmonics", harmonics, minimum=1)
        self._gain = pll.pfd.gain  # w0 / 2pi
        self._h_lf = pll.h_lf
        self._isf = pll.vco.isf
        self._delay = pll.delay
        self._offset = pll.pfd.sampling_offset
        self._alias_sums: list[AliasedSum] = []
        if method == "closed":
            self._alias_sums = self._build_alias_sums()

    # -- construction helpers ---------------------------------------------------

    def _build_alias_sums(self) -> list[AliasedSum]:
        """One AliasedSum per non-zero ISF harmonic ``v_k``."""
        omega0 = self.pll.omega0
        sums = []
        for k in range(-self._isf.order, self._isf.order + 1):
            vk = self._isf.coefficient(k)
            if vk == 0:
                continue
            shift_pole = RationalFunction([1.0], [1.0, 1j * k * omega0])
            b_k = (self._gain * vk) * self._h_lf.rational * shift_pole
            sums.append(AliasedSum.of(b_k, omega0))
        return sums

    def _band_transfer(self, s: np.ndarray) -> np.ndarray:
        """``hold(s) * H_LF(s) * delay(s)`` — the scalar chain after the sampler."""
        value = np.asarray(self._h_lf(s), dtype=complex)
        if self._hold is not None:
            value = value * np.asarray(self._hold(s), dtype=complex)
        if self._delay is not None:
            value = value * self._delay.transfer(s)
        return value

    # -- the rank-one column V (eq. 29) -------------------------------------------

    def vtilde_element(self, s: complex | np.ndarray, n: int) -> complex | np.ndarray:
        """Column element ``V_n(s)`` (vectorized over ``s``).

        Includes the sampling-offset phase rotation when present.
        """
        omega0 = self.pll.omega0
        s_arr = np.atleast_1d(np.asarray(s, dtype=complex))
        total = np.zeros(s_arr.shape, dtype=complex)
        for k in range(-self._isf.order, self._isf.order + 1):
            vk = self._isf.coefficient(k)
            if vk == 0:
                continue
            total += vk * self._band_transfer(s_arr + 1j * (n - k) * omega0)
        total *= self._gain / (s_arr + 1j * n * omega0)
        if self._offset != 0.0:
            total *= np.exp(-1j * n * omega0 * self._offset)
        if np.ndim(s) == 0:
            return complex(total[0])
        return total

    def vtilde(self, s: complex, order: int) -> np.ndarray:
        """The truncated column vector ``[V_{-K}(s) .. V_{K}(s)]``."""
        order = check_order("order", order, minimum=0)
        return self.vtilde_grid(np.array([s], dtype=complex), order)[0]

    def vtilde_grid(
        self, s: FrequencyGrid | np.ndarray, order: int
    ) -> np.ndarray:
        """Batched column vectors: shape ``(len(s), 2*order+1)``.

        Vectorizes eq. (29) over the frequency grid *and* the output
        harmonic index simultaneously — the batched analogue of calling
        :meth:`vtilde_element` for each ``n``.  ``s`` may be a
        :class:`~repro.core.grid.FrequencyGrid` (evaluated on ``j omega``)
        or a raw complex array.
        """
        s_arr = as_s_grid("s", s)
        order = check_order("order", order, minimum=0)
        if obs.enabled():
            with obs.span(
                "pll.closedloop.vtilde_grid",
                points=int(s_arr.size),
                order=int(order),
            ):
                return self._vtilde_grid_impl(s_arr, order)
        return self._vtilde_grid_impl(s_arr, order)

    def _vtilde_grid_impl(self, s_arr: np.ndarray, order: int) -> np.ndarray:
        omega0 = self.pll.omega0
        ns = np.arange(-order, order + 1)
        ks = np.array(
            [
                k
                for k in range(-self._isf.order, self._isf.order + 1)
                if self._isf.coefficient(k) != 0
            ],
            dtype=int,
        )
        if ks.size == 0:
            return np.zeros((s_arr.size, ns.size), dtype=complex)
        vks = np.array([self._isf.coefficient(int(k)) for k in ks], dtype=complex)
        # (L, N, nk): s + j (n - k) w0 for every grid point / harmonic / ISF term.
        shifts = ns[None, :, None] - ks[None, None, :]
        band = self._band_transfer(s_arr[:, None, None] + 1j * shifts * omega0)
        total = band @ vks  # sum over the ISF harmonics
        total *= self._gain / (s_arr[:, None] + 1j * ns[None, :] * omega0)
        if self._offset != 0.0:
            total *= np.exp(-1j * ns * omega0 * self._offset)[None, :]
        return total

    def row_vector(self, order: int) -> np.ndarray:
        """The rank-one row factor ``l^T`` (phase-rotated by a sampling offset)."""
        return self.pll.pfd.row_vector(order)

    # -- effective open-loop gain (eq. 33 / 37) --------------------------------------

    def effective_gain(self, s: complex | np.ndarray) -> complex | np.ndarray:
        """``lambda(s)`` — the effective open-loop gain.

        Exact (closed form) or truncated depending on the configured method.
        """
        if obs.enabled():
            # The scalar lambda(s) evaluation IS the rank-one SMW solve's
            # cost: every closed-loop transfer divides by 1 + lambda.
            with obs.span(
                "pll.closedloop.effective_gain",
                method=self.method,
                points=int(np.size(s)),
            ):
                lam = self._effective_gain_impl(s)
                self._gain_health(lam)
                return lam
        return self._effective_gain_impl(s)

    def _gain_health(self, lam: complex | np.ndarray) -> None:
        """Obs-enabled sentinels on an effective-gain evaluation.

        Flags ``|1 + lambda(s)|`` dips below the near-singular tolerance —
        every closed-loop transfer divides by that quantity, so such points
        are numerically on a closed-loop pole — and non-finite gain values.
        """
        lam_arr = np.atleast_1d(np.asarray(lam, dtype=complex))
        if not health.check_finite(
            "health.closedloop.nonfinite",
            lam_arr,
            message="non-finite effective gain lambda(s)",
            method=self.method,
        ):
            lam_arr = lam_arr[np.isfinite(lam_arr)]
            if lam_arr.size == 0:
                return
        margin = float(np.min(np.abs(1.0 + lam_arr)))
        if margin < health.LAMBDA_SINGULAR_TOL:
            obs.health_event(
                "health.closedloop.lambda_singular",
                margin,
                health.LAMBDA_SINGULAR_TOL,
                severity="warning",
                direction="below",
                message="|1 + lambda| near zero: grid point on a closed-loop pole",
                method=self.method,
            )

    def _effective_gain_impl(
        self, s: complex | np.ndarray
    ) -> complex | np.ndarray:
        if self.method == "closed":
            s_arr = np.atleast_1d(np.asarray(s, dtype=complex))
            total = np.zeros(s_arr.shape, dtype=complex)
            for alias in self._alias_sums:
                total += np.asarray(alias(s_arr), dtype=complex)
            if np.ndim(s) == 0:
                return complex(total[0])
            return total
        return self._effective_gain_truncated(s)

    def _effective_gain_truncated(self, s: complex | np.ndarray) -> complex | np.ndarray:
        """Symmetric truncation ``sum_{n=-M}^{M} row_n V_n(s)`` (outside-in)."""
        s_arr = np.atleast_1d(np.asarray(s, dtype=complex))
        omega0 = self.pll.omega0
        total = np.zeros(s_arr.shape, dtype=complex)
        for n in range(self.harmonics, 0, -1):
            for sign in (n, -n):
                term = np.asarray(self.vtilde_element(s_arr, sign), dtype=complex)
                if self._offset != 0.0:
                    # Row factor exp(+j n w0 offset) cancels the column phase.
                    term = term * np.exp(1j * sign * omega0 * self._offset)
                total += term
        total += np.asarray(self.vtilde_element(s_arr, 0), dtype=complex)
        if np.ndim(s) == 0:
            return complex(total[0])
        return total

    def effective_gain_response(
        self, omega: FrequencyGrid | Sequence[float] | np.ndarray
    ) -> np.ndarray:
        """``lambda(j omega)`` on a real frequency grid (margin tooling input).

        Accepts a :class:`~repro.core.grid.FrequencyGrid` or a raw array.
        """
        omega_arr = as_omega_grid("omega", omega)
        return np.asarray(self.effective_gain(1j * omega_arr), dtype=complex)

    # -- closed-loop transfers (eq. 34 / 38) --------------------------------------------

    def element(self, s: complex | np.ndarray, n: int, m: int) -> complex | np.ndarray:
        """Closed-loop HTM element ``H_{n,m}(s) = V_n(s) row_m / (1 + lambda(s))``.

        Note the element is independent of ``m`` up to the offset phase: the
        sampler aliases every input band onto the error sequence with equal
        weight (the rank-one structure of eq. 36).
        """
        lam = self.effective_gain(s)
        vn = self.vtilde_element(s, n)
        row_m = 1.0
        if self._offset != 0.0:
            row_m = np.exp(1j * m * self.pll.omega0 * self._offset)
        return vn * row_m / (1.0 + lam)

    def h00(self, s: complex | np.ndarray) -> complex | np.ndarray:
        """Baseband-to-baseband closed-loop transfer (eq. 38)."""
        return self.element(s, 0, 0)

    def frequency_response(
        self, omega: FrequencyGrid | Sequence[float] | np.ndarray
    ) -> np.ndarray:
        """``H00(j omega)`` on a real frequency grid.

        Accepts a :class:`~repro.core.grid.FrequencyGrid` or a raw array.
        """
        omega_arr = as_omega_grid("omega", omega)
        return np.asarray(self.h00(1j * omega_arr), dtype=complex)

    # Alias so Bode/margin tooling accepts a ClosedLoopHTM directly.
    eval_jomega = frequency_response

    def sensitivity_element(self, s: complex | np.ndarray, n: int, m: int) -> complex | np.ndarray:
        """Element of ``(I + G)^{-1} = I - V l^T / (1 + lambda)`` (eq. 32).

        The ``(n, m)`` entry is ``delta_{nm} - H_{n,m}``; the baseband entry
        is the error (sensitivity) transfer that shapes VCO-referred noise.
        """
        delta = 1.0 if n == m else 0.0
        return delta - self.element(s, n, m)

    def closed_loop_row(self, s: complex, order: int) -> np.ndarray:
        """Column of band transfers ``H_{n,0}(s)`` for ``n = -order..order``.

        Shows where reference-band signal content re-emerges across output
        bands (the Fig. 2 picture for the closed loop).
        """
        lam = self.effective_gain(s)
        return self.vtilde(s, order) / (1.0 + lam)

    # -- brute-force reference (eq. 28 directly) -------------------------------------------

    def dense_reference(self, s: complex, order: int) -> HTM:
        """Dense ``(I + G)^{-1} G`` at truncation ``order`` — the SMW cross-check.

        This is the expensive path the paper's rank-one closed form avoids;
        kept as the validation oracle (ablation A2).
        """
        return self._reference_operator().htm(s, order)

    def dense_reference_grid(
        self, s: FrequencyGrid | np.ndarray, order: int
    ) -> np.ndarray:
        """Batched dense closure: ``(len(s), 2*order+1, 2*order+1)`` stack.

        The grid-parallel form of :meth:`dense_reference`, evaluated through
        the vectorized operator stack (and the grid memoization layer).  The
        returned stack is read-only; ``.copy()`` before mutating.
        """
        return self._reference_operator().dense_grid(s, order)

    def structured_reference_grid(self, s: FrequencyGrid | np.ndarray, order: int):
        """Structure-tagged closed-loop grid — the fast reference path.

        Evaluates the same eq.-(28) operator as :meth:`dense_reference_grid`
        through :meth:`~repro.core.operators.HarmonicOperator.evaluate`:
        the rank-one sampling loop composes symbolically and closes via the
        SMW scalar denominator (O(N) per point) instead of the stacked dense
        solve.  Returns a :class:`~repro.core.structured.StructuredGrid`;
        call ``.to_dense()`` or ``.element_grid(n, m)`` to get numbers.

        Uses the instance's ``backend`` (constructor argument) to pick the
        terminal-closure kernels.
        """
        return self._reference_operator().evaluate(s, order, backend=self.backend)

    def _reference_operator(self) -> FeedbackOperator:
        """The (cached) brute-force closed-loop operator of eq. (28)."""
        op = getattr(self, "_reference_op", None)
        if op is None:
            op = FeedbackOperator(open_loop_operator(self.pll))
            self._reference_op = op
        return op

    def __repr__(self) -> str:
        return (
            f"ClosedLoopHTM(method={self.method!r}, harmonics={self.harmonics}, "
            f"pll={self.pll.describe()})"
        )
