"""Loop design helper producing the paper's "typical characteristic" (Fig. 5).

The experiments use an open-loop gain with three poles (two at DC) and one
zero::

    A(s) = K (1 + s/w_z) / (s^2 (1 + s/w_p))

with the zero and pole placed geometrically symmetric about the target
unity-gain frequency (``w_z = w_UG / sep``, ``w_p = w_UG * sep``) so the
phase margin peaks at ``w_UG``; the gain ``K`` normalises
``|A(j w_UG)| = 1``.  :func:`design_typical_loop` realises this shape as an
actual charge-pump PLL (series R-C1 shunt C2 filter, eq. 21 topology) so the
same object drives the HTM analysis *and* the behavioural simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro._errors import DesignError
from repro._validation import check_positive
from repro.blocks.chargepump import ChargePump
from repro.blocks.loopfilter import SeriesRCShuntCFilter
from repro.blocks.pfd import SamplingPFD
from repro.blocks.vco import VCO
from repro.lti.transfer import TransferFunction
from repro.pll.architecture import PLL


@dataclass(frozen=True)
class TypicalLoopDesign:
    """Resolved parameters of a designed loop (for reporting/tests)."""

    omega0: float
    omega_ug: float
    separation: float
    zero_frequency: float
    pole_frequency: float
    gain_k: float
    phase_margin_deg: float


def typical_open_loop_shape(
    omega_ug: float, separation: float = 4.0
) -> TransferFunction:
    """The normalised Fig. 5 shape ``A(s) = K (1+s/wz) / (s^2 (1+s/wp))``.

    ``K`` is chosen so ``|A(j w_UG)| = 1`` exactly.  Useful when only the
    loop shape matters (symbolic work, unit tests); for a realizable PLL use
    :func:`design_typical_loop`.
    """
    omega_ug = check_positive("omega_ug", omega_ug)
    separation = check_positive("separation", separation)
    if separation <= 1.0:
        raise DesignError(f"separation must exceed 1 (zero below pole), got {separation}")
    wz = omega_ug / separation
    wp = omega_ug * separation
    k = _unity_gain_constant(omega_ug, wz, wp)
    num = [k / wz, k]
    den = [1.0 / wp, 1.0, 0.0, 0.0]
    return TransferFunction(num, den, name="A")


def _unity_gain_constant(omega_ug: float, wz: float, wp: float) -> float:
    """Solve ``K`` from ``|A(j w_UG)| = 1`` for the 2-pole-at-DC + zero shape."""
    mag_zero = math.hypot(1.0, omega_ug / wz)
    mag_pole = math.hypot(1.0, omega_ug / wp)
    return omega_ug**2 * mag_pole / mag_zero


def shape_phase_margin_deg(separation: float) -> float:
    """Analytic LTI phase margin of the symmetric shape: atan(sep) - atan(1/sep).

    Independent of ``w_UG`` — which is exactly why the LTI prediction appears
    as a horizontal line in the paper's Fig. 7.
    """
    if separation <= 1.0:
        raise DesignError(f"separation must exceed 1, got {separation}")
    return math.degrees(math.atan(separation) - math.atan(1.0 / separation))


def design_typical_loop(
    omega0: float,
    omega_ug: float,
    separation: float = 4.0,
    charge_pump_current: float = 1e-3,
    vco_sensitivity: float = 1.0,
    vco_f0: float | None = None,
) -> PLL:
    """Design a realizable charge-pump PLL hitting the Fig. 5 characteristic.

    Parameters
    ----------
    omega0:
        Reference angular frequency (rad/s).
    omega_ug:
        Target LTI unity-gain frequency of ``A(s)`` (rad/s).  The paper's
        experiments sweep ``omega_ug / omega0`` from deep-LTI (0.01) to
        fast-loop (0.5).
    separation:
        Geometric zero/pole spacing about ``omega_ug``; sets the LTI phase
        margin ``atan(sep) - atan(1/sep)``.
    charge_pump_current:
        Pump current ``I_cp`` (amperes).
    vco_sensitivity:
        Constant ISF value ``v0`` (phase-in-seconds per volt-second).
    vco_f0:
        VCO free-running frequency in Hz; defaults to the reference
        frequency (divider folded into the VCO, as the paper assumes).

    Returns
    -------
    PLL
        With a :class:`SeriesRCShuntCFilter` solved so that
        ``A(s) = (w0/2pi)(v0/s) I_cp Z(s)`` matches the target shape exactly.
    """
    omega0 = check_positive("omega0", omega0)
    omega_ug = check_positive("omega_ug", omega_ug)
    separation = check_positive("separation", separation)
    if separation <= 1.0:
        raise DesignError(f"separation must exceed 1, got {separation}")
    check_positive("charge_pump_current", charge_pump_current)
    check_positive("vco_sensitivity", vco_sensitivity)
    wz = omega_ug / separation
    wp = omega_ug * separation
    k = _unity_gain_constant(omega_ug, wz, wp)
    # A(s) = (w0/2pi) v0 Icp Z(s) / s and Z(s) = (1+s/wz)/(s Ctot (1+s/wp))
    # gives K = (w0/2pi) v0 Icp / Ctot.
    gain_front = (omega0 / (2 * math.pi)) * vco_sensitivity * charge_pump_current
    total_capacitance = gain_front / k
    filt = SeriesRCShuntCFilter.from_pole_zero(wz, wp, total_capacitance)
    f0 = vco_f0 if vco_f0 is not None else omega0 / (2 * math.pi)
    return PLL(
        pfd=SamplingPFD(omega0),
        charge_pump=ChargePump(charge_pump_current),
        filter_impedance=filt.impedance(),
        vco=VCO.time_invariant(vco_sensitivity, omega0, f0=f0),
    )


def design_for_effective_margin(
    omega0: float,
    omega_ug: float,
    target_margin_deg: float,
    separation_bounds: tuple[float, float] = (1.5, 40.0),
    tol_deg: float = 0.05,
    **loop_kwargs,
) -> PLL:
    """Inverse design: pick the separation that hits a target *effective* margin.

    Classical design reads the margin off the separation alone
    (``atan(sep) - atan(1/sep)``); with a sampling PFD the achieved margin
    is lower and ratio-dependent, so the separation must be solved against
    the effective gain.  Bisects on the separation (the effective margin is
    monotone in it over the bracket).

    Raises
    ------
    DesignError
        If the target cannot be met within the separation bounds — e.g. a
        loop so fast that no zero/pole placement recovers the margin.
    """
    from repro.pll.margins import compare_margins

    lo, hi = separation_bounds
    if not 1.0 < lo < hi:
        raise DesignError(f"separation bounds must satisfy 1 < lo < hi, got {separation_bounds}")

    def margin_at(separation: float) -> float:
        pll = design_typical_loop(
            omega0=omega0, omega_ug=omega_ug, separation=separation, **loop_kwargs
        )
        try:
            return compare_margins(pll).phase_margin_eff_deg
        except Exception:
            return -180.0  # no crossover below the alias fold: hopeless

    m_lo, m_hi = margin_at(lo), margin_at(hi)
    if target_margin_deg > max(m_lo, m_hi):
        raise DesignError(
            f"target effective margin {target_margin_deg:.1f} deg unreachable: "
            f"achievable range [{min(m_lo, m_hi):.1f}, {max(m_lo, m_hi):.1f}] deg "
            f"at omega_ug/omega0 = {omega_ug / omega0:.3g}"
        )
    while hi - lo > 1e-4 * hi:
        mid = math.sqrt(lo * hi)
        if margin_at(mid) < target_margin_deg:
            lo = mid
        else:
            hi = mid
        if abs(margin_at(hi) - target_margin_deg) < tol_deg:
            break
    return design_typical_loop(
        omega0=omega0, omega_ug=omega_ug, separation=hi, **loop_kwargs
    )


def describe_design(pll: PLL, omega_ug: float, separation: float) -> TypicalLoopDesign:
    """Resolve the designed parameters into a report record."""
    wz = omega_ug / separation
    wp = omega_ug * separation
    return TypicalLoopDesign(
        omega0=pll.omega0,
        omega_ug=omega_ug,
        separation=separation,
        zero_frequency=wz,
        pole_frequency=wp,
        gain_k=_unity_gain_constant(omega_ug, wz, wp),
        phase_margin_deg=shape_phase_margin_deg(separation),
    )
