"""Reference-spur analysis from charge-pump non-idealities (extension).

In a locked charge-pump PLL, leakage current discharges the loop filter
between comparisons; the loop compensates with a steady UP pulse every
cycle.  The resulting T-periodic ripple on the control line
frequency-modulates the VCO, producing *reference spurs* at multiples of
the reference frequency — the classic deterministic impairment of this
architecture (Gardner 1980; the paper's ref. [3]).

First-order analytic model (small ripple, loop reaction neglected):

* steady-state pulse width: ``w = I_leak * T / I_up`` — also the static
  phase offset in seconds;
* ripple current: the UP pulse train minus its mean; harmonic ``k`` has
  amplitude ``I_up * (w/T) * sinc(k w/T) * e^{-j pi k w/T}``;
* phase ripple at ``k w0``: ``theta_k = v0 * Z_LF(j k w0) * i_k / (j k w0)``
  (phase-in-seconds convention);
* spur level in dBc on a carrier at ``f_c``:
  ``20 log10(|2 pi f_c theta_k| / 2)`` (narrowband FM).

:func:`measure_reference_spurs` extracts the same harmonics from the
behavioural simulator's steady-state trajectory, validating the model (and
exposing where the first-order picture breaks for large leakage).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro._errors import ValidationError
from repro._validation import check_order, check_positive
from repro.pll.architecture import PLL


@dataclass(frozen=True)
class SpurPrediction:
    """First-order reference-spur prediction.

    Attributes
    ----------
    pulse_width:
        Steady-state compensating UP pulse width (seconds); equals the
        static phase offset.
    harmonics:
        Mapping ``k -> theta_k`` — complex phase-ripple amplitude (seconds)
        at ``k * w0`` for ``k = 1..K``.
    """

    pulse_width: float
    harmonics: dict[int, complex]

    @property
    def static_phase_offset(self) -> float:
        """The DC phase error the leakage forces (seconds)."""
        return self.pulse_width

    def spur_dbc(self, k: int, carrier_frequency_hz: float) -> float:
        """Single-sideband spur level at ``k * f_ref`` in dBc (narrowband FM)."""
        check_positive("carrier_frequency_hz", carrier_frequency_hz)
        theta_k = self.harmonics.get(int(k))
        if theta_k is None:
            raise ValidationError(f"harmonic {k} not computed; available: {sorted(self.harmonics)}")
        beta = 2 * math.pi * carrier_frequency_hz * abs(theta_k)
        if beta == 0.0:
            return -math.inf
        return 20.0 * math.log10(beta / 2.0)


def predict_reference_spurs(pll: PLL, harmonics: int = 5) -> SpurPrediction:
    """Analytic first-order spur prediction for a leaky charge pump.

    Raises
    ------
    ValidationError
        If the pump has no leakage (no deterministic ripple to predict) or
        the compensating pulse would exceed half a period (gross leakage —
        outside the small-ripple model and likely out of lock).
    """
    check_order("harmonics", harmonics, minimum=1)
    cp = pll.charge_pump
    if cp.leakage <= 0.0:
        raise ValidationError("spur prediction requires a positive leakage current")
    period = pll.period
    width = cp.leakage * period / cp.up_current
    if width > 0.5 * period:
        raise ValidationError(
            f"compensating pulse width {width:.3g} s exceeds half a period; "
            "leakage too large for the small-ripple model"
        )
    duty = width / period
    v0 = float(pll.vco.v0.real)
    z_lf = pll.filter_impedance
    omega0 = pll.omega0
    levels: dict[int, complex] = {}
    for k in range(1, harmonics + 1):
        i_k = cp.up_current * duty * np.sinc(k * duty) * np.exp(-1j * math.pi * k * duty)
        theta_k = v0 * complex(z_lf(1j * k * omega0)) * i_k / (1j * k * omega0)
        levels[k] = theta_k
    return SpurPrediction(pulse_width=width, harmonics=levels)


@dataclass(frozen=True)
class SpurMeasurement:
    """Spur harmonics extracted from a behavioural steady-state run."""

    static_phase_offset: float
    harmonics: dict[int, complex]


def measure_reference_spurs(
    pll: PLL,
    harmonics: int = 5,
    settle_cycles: int = 400,
    measure_cycles: int = 64,
    oversample: int = 32,
) -> SpurMeasurement:
    """Measure the steady-state phase ripple harmonics with the simulator.

    The loop is run to steady state, then ``measure_cycles`` periods of the
    dense ``theta`` recording are demodulated at each harmonic of the
    reference (bin-aligned, so leakage-free).
    """
    from repro.simulator.engine import BehavioralPLLSimulator, SimulationConfig

    check_order("harmonics", harmonics, minimum=1)
    check_order("measure_cycles", measure_cycles, minimum=4)
    if (harmonics + 0.5) * pll.omega0 >= oversample * pll.omega0 / 2:
        raise ValidationError(f"oversample={oversample} too low for harmonic {harmonics}")
    config = SimulationConfig(cycles=settle_cycles + measure_cycles, oversample=oversample)
    result = BehavioralPLLSimulator(pll, config=config).run()
    period = pll.period
    window = result.times > settle_cycles * period + 0.5 * period / oversample
    times = result.times[window]
    theta = result.theta[window]
    levels: dict[int, complex] = {}
    for k in range(1, harmonics + 1):
        nu = k * pll.omega0
        levels[k] = complex(np.sum(theta * np.exp(-1j * nu * times)) / times.size)
    # Static offset: mean sampled phase error over the tail.
    offset = float(np.mean(result.phase_errors[-measure_cycles:]))
    return SpurMeasurement(static_phase_offset=offset, harmonics=levels)
