"""The PLL architecture container (paper Fig. 1 / Fig. 3).

A :class:`PLL` bundles the sampling PFD, charge pump, loop-filter impedance,
VCO and optional loop delay, and exposes the derived transfer pieces the
analysis layers consume.  It is a description object — all heavy math lives
in :mod:`repro.pll.openloop` / :mod:`repro.pll.closedloop`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._errors import ValidationError
from repro.blocks.chargepump import ChargePump
from repro.blocks.delay import LoopDelay
from repro.blocks.pfd import SampleHoldPFD, SamplingPFD
from repro.blocks.vco import VCO
from repro.lti.transfer import TransferFunction


@dataclass(frozen=True)
class PLL:
    """A charge-pump PLL with a sampling PFD.

    Parameters
    ----------
    pfd:
        The sampling phase-frequency detector (impulse-train
        :class:`SamplingPFD` or zero-order-hold :class:`SampleHoldPFD`);
        fixes the reference frequency ``omega0``.
    charge_pump:
        Pump current model.
    filter_impedance:
        Loop-filter impedance ``Z_LF(s)`` seen by the pump (ohms).
    vco:
        Controlled-oscillator model (ISF based).
    delay:
        Optional feedback transport delay.
    """

    pfd: SamplingPFD | SampleHoldPFD
    charge_pump: ChargePump
    filter_impedance: TransferFunction
    vco: VCO
    delay: LoopDelay | None = field(default=None)

    def __post_init__(self):
        if abs(self.pfd.omega0 - self.vco.omega0) > 1e-9 * self.pfd.omega0:
            raise ValidationError(
                f"PFD reference ({self.pfd.omega0:.6g} rad/s) and VCO ISF fundamental "
                f"({self.vco.omega0:.6g} rad/s) must agree"
            )
        if self.delay is not None and abs(self.delay.omega0 - self.pfd.omega0) > 1e-9 * self.pfd.omega0:
            raise ValidationError("loop delay fundamental must match the PFD reference")

    @property
    def omega0(self) -> float:
        """Reference angular frequency (rad/s)."""
        return self.pfd.omega0

    @property
    def period(self) -> float:
        """Reference period ``T`` (seconds)."""
        return self.pfd.period

    @property
    def h_lf(self) -> TransferFunction:
        """Loop-filter block transfer ``H_LF(s) = I_cp Z_LF(s)`` (eq. 21)."""
        return self.charge_pump.loop_filter_transfer(self.filter_impedance)

    @property
    def has_delay(self) -> bool:
        """True when a non-zero feedback delay is present."""
        return self.delay is not None and self.delay.tau > 0.0

    def describe(self) -> str:
        """One-line human-readable summary."""
        parts = [
            f"omega0={self.omega0:.6g} rad/s",
            f"Icp={self.charge_pump.current:.6g} A",
            f"VCO {'LTI' if self.vco.is_time_invariant() else 'LPTV'} v0={self.vco.v0:.6g}",
        ]
        if self.has_delay:
            parts.append(f"delay={self.delay.tau:.3g} s")
        return "PLL(" + ", ".join(parts) + ")"
