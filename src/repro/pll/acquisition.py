"""Lock-acquisition analysis with the behavioural simulator (extension).

The HTM model is a *small-signal* description around lock; acquisition —
pulling in from a frequency error — is the large-signal regime where the
tri-state PFD's frequency-detection behaviour matters.  This module measures
acquisition with the event-driven engine and relates the results to the
classical estimates:

* during a frequency ramp the pump slews the filter's integrating
  capacitor at ``I_cp / C_tot`` volts/s, giving a slew-limited estimate of
  the pull-in time for large offsets;
* once the frequency error is inside the loop bandwidth, settling is
  exponential with the small-signal time constant (the dominant closed-loop
  pole this library computes three different ways).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro._errors import LockError, ValidationError
from repro._validation import check_order, check_positive
from repro.pll.architecture import PLL
from repro.simulator.engine import BehavioralPLLSimulator, SimulationConfig


@dataclass(frozen=True)
class AcquisitionResult:
    """Outcome of one acquisition run.

    Attributes
    ----------
    locked:
        Whether the lock criterion was met within the simulated span.
    lock_time:
        First time (seconds) after which the phase error stays below the
        threshold for the required confirmation span; ``nan`` if never.
    lock_cycle:
        Reference cycle index of ``lock_time``.
    peak_error:
        Largest per-cycle phase error seen (seconds).
    """

    locked: bool
    lock_time: float
    lock_cycle: int
    peak_error: float


def measure_acquisition(
    pll: PLL,
    frequency_offset: float,
    threshold_fraction: float = 1e-3,
    confirm_cycles: int = 20,
    max_cycles: int = 2000,
    oversample: int = 4,
) -> AcquisitionResult:
    """Run the engine from a fractional frequency offset and time the lock.

    Parameters
    ----------
    frequency_offset:
        Initial fractional VCO frequency error ``delta f / f0``.
    threshold_fraction:
        Lock declared when ``|phase error| < threshold_fraction * T``.
    confirm_cycles:
        The error must stay below threshold for this many consecutive
        cycles (rejects zero crossings of a still-ringing error).
    """
    check_order("confirm_cycles", confirm_cycles, minimum=1)
    check_order("max_cycles", max_cycles, minimum=confirm_cycles)
    check_positive("threshold_fraction", threshold_fraction)
    config = SimulationConfig(
        cycles=max_cycles, oversample=oversample, frequency_offset=frequency_offset
    )
    try:
        result = BehavioralPLLSimulator(pll, config=config).run()
    except LockError:
        return AcquisitionResult(
            locked=False, lock_time=float("nan"), lock_cycle=-1, peak_error=float("nan")
        )
    errors = np.abs(result.phase_errors)
    threshold = threshold_fraction * pll.period
    below = errors < threshold
    lock_cycle = -1
    run_length = 0
    for i, ok in enumerate(below):
        run_length = run_length + 1 if ok else 0
        if run_length >= confirm_cycles:
            lock_cycle = i - confirm_cycles + 1
            break
    if lock_cycle < 0 or not bool(below[lock_cycle:].all()):
        return AcquisitionResult(
            locked=False,
            lock_time=float("nan"),
            lock_cycle=-1,
            peak_error=float(errors.max()),
        )
    return AcquisitionResult(
        locked=True,
        lock_time=float(result.ref_edges[lock_cycle]),
        lock_cycle=int(lock_cycle),
        peak_error=float(errors.max()),
    )


def slew_limited_estimate(pll: PLL, frequency_offset: float) -> float:
    """Slew-limited pull-in time estimate for large offsets (seconds).

    The frequency error is removed by charging the filter's total
    capacitance with the pump current: ``t ~ |delta u| * C_tot / I_cp``
    where ``delta u = delta / v0`` is the control change needed (the
    PFD's frequency detection keeps the pump on nearly continuously).
    A crude but classical upper-bound-flavoured estimate.
    """
    v0 = float(pll.vco.v0.real)
    check_positive("v0", v0)
    delta_u = abs(frequency_offset) / v0
    # Total capacitance from the impedance's DC slope: Z -> 1/(s C_tot).
    s = 1e-9j
    c_tot = float(abs(1.0 / (s * pll.filter_impedance(s))))
    return delta_u * c_tot / pll.charge_pump.current


def settling_time_estimate(pll: PLL, settle_fraction: float = 1e-3) -> float:
    """Small-signal settling time from the dominant closed-loop pole.

    ``t = ln(1/settle_fraction) * tau`` with ``tau`` from the rightmost
    Floquet exponent — the time-varying-correct time constant.
    """
    if not 0 < settle_fraction < 1:
        raise ValidationError("settle_fraction must lie in (0, 1)")
    from repro.pll.poles import dominant_pole

    pole = dominant_pole(pll)
    tau = pole.damping_time_constant
    if not math.isfinite(tau):
        raise ValidationError("loop is not small-signal stable; no settling time")
    return math.log(1.0 / settle_fraction) * tau


def acquisition_sweep(
    pll: PLL,
    offsets,
    **kwargs,
) -> list[AcquisitionResult]:
    """Measure acquisition across a list of fractional frequency offsets."""
    return [measure_acquisition(pll, float(d), **kwargs) for d in np.asarray(offsets)]
