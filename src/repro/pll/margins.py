"""Effective stability margins of the time-varying loop (paper Fig. 7).

Classical analysis reads bandwidth and phase margin off ``A(j omega)``.  The
paper's point is that the *effective* open-loop gain
``lambda(s) = sum_m A(s + j m w0)`` is what the closed loop actually divides
by (eq. 38), so margins must be measured on ``lambda``:

* the effective unity-gain frequency ``w_UG,eff`` grows above ``w_UG`` as
  ``w_UG / w0`` increases (closed-loop bandwidth extends);
* the effective phase margin collapses — "for w_UG/w0 = 0.1 this phase
  margin is already 9% worse than predicted by LTI analysis" (sec. 5).

:func:`compare_margins` measures both on one loop; :func:`margin_sweep`
produces the Fig. 7 series over a range of ``w_UG / w0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro._errors import ValidationError
from repro.core.grid import FrequencyGrid
from repro.lti.bode import (
    _log_grid,
    crossover_from_samples,
    gain_crossover,
    phase_margin,
)
from repro.pll.architecture import PLL
from repro.pll.closedloop import ClosedLoopHTM


@dataclass(frozen=True)
class EffectiveMargins:
    """LTI versus effective (time-varying) loop margins.

    Attributes
    ----------
    omega_ug_lti / phase_margin_lti_deg:
        Unity-gain frequency and phase margin of the classical ``A(s)``.
    omega_ug_eff / phase_margin_eff_deg:
        Same quantities measured on the effective gain ``lambda(s)``.
    """

    omega_ug_lti: float
    phase_margin_lti_deg: float
    omega_ug_eff: float
    phase_margin_eff_deg: float

    @property
    def bandwidth_extension(self) -> float:
        """``w_UG,eff / w_UG`` — the upper Fig. 7 quantity."""
        return self.omega_ug_eff / self.omega_ug_lti

    @property
    def margin_degradation(self) -> float:
        """Fractional phase-margin loss relative to the LTI prediction."""
        return 1.0 - self.phase_margin_eff_deg / self.phase_margin_lti_deg

    def summary(self) -> str:
        """Human-readable comparison line."""
        return (
            f"LTI: wUG={self.omega_ug_lti:.4g} PM={self.phase_margin_lti_deg:.2f} deg | "
            f"effective: wUG={self.omega_ug_eff:.4g} PM={self.phase_margin_eff_deg:.2f} deg "
            f"({100 * self.margin_degradation:.1f}% worse)"
        )


def effective_open_loop(pll: PLL, **closed_loop_kwargs) -> Callable[[np.ndarray], np.ndarray]:
    """The effective gain ``lambda(j omega)`` as a margin-tool-ready callable.

    Loops the coth closed form cannot express (sample-and-hold PFD, delay,
    sampling offset) automatically fall back to the truncated sum.
    """
    if "method" not in closed_loop_kwargs:
        from repro.blocks.pfd import SampleHoldPFD

        needs_truncated = (
            pll.has_delay
            or pll.pfd.sampling_offset != 0.0
            or isinstance(pll.pfd, SampleHoldPFD)
        )
        if needs_truncated:
            closed_loop_kwargs["method"] = "truncated"
            closed_loop_kwargs.setdefault("harmonics", 400)
    closed = ClosedLoopHTM(pll, **closed_loop_kwargs)
    return closed.effective_gain_response


def compare_margins(
    pll: PLL,
    omega_min_factor: float = 1e-3,
    omega_max_factor: float | None = None,
    points: int = 4000,
    grid: FrequencyGrid | None = None,
    backend: str | None = None,
    **closed_loop_kwargs,
) -> EffectiveMargins:
    """Measure LTI and effective margins of one loop design.

    The scan range is expressed relative to the reference frequency: from
    ``omega_min_factor * w0`` up to ``omega_max_factor * w0`` (default just
    below the ``w0/2`` alias symmetry point, beyond which lambda repeats).
    Passing a :class:`~repro.core.grid.FrequencyGrid` instead pins the scan
    to that grid's bounds and point count, overriding the factor arguments.
    ``backend`` selects the compute backend for any structured grid
    evaluation underneath (forwarded to :class:`ClosedLoopHTM`).
    """
    if backend is not None:
        closed_loop_kwargs.setdefault("backend", backend)
    omega0 = pll.omega0
    if grid is not None:
        w_lo = float(grid.omega[0])
        w_hi = float(grid.omega[-1])
        points = len(grid)
        if not 0 < w_lo < w_hi:
            raise ValidationError("margin scan grid must be positive and increasing")
    else:
        if omega_max_factor is None:
            omega_max_factor = 0.499
        if not 0 < omega_min_factor < omega_max_factor:
            raise ValidationError("need 0 < omega_min_factor < omega_max_factor")
        w_lo = omega_min_factor * omega0
        w_hi = omega_max_factor * omega0
    # The exact callable covers irrational loop elements (ZOH hold, delay)
    # that the rational A(s) cannot represent.
    from repro.pll.openloop import open_loop_callable

    a_fn = open_loop_callable(pll)

    def a(omega):
        return np.asarray(a_fn(1j * np.asarray(omega, dtype=float)), dtype=complex)

    lam = effective_open_loop(pll, **closed_loop_kwargs)
    # A(s) rolls off monotonically, so a wide scan is safe for the LTI pair.
    w_ug_lti = gain_crossover(a, w_lo, w_hi, points)
    pm_lti = phase_margin(a, w_lo, w_hi, points)
    w_ug_eff = gain_crossover(lam, w_lo, w_hi, points)
    pm_eff = phase_margin(lam, w_lo, w_hi, points)
    return EffectiveMargins(
        omega_ug_lti=w_ug_lti,
        phase_margin_lti_deg=pm_lti,
        omega_ug_eff=w_ug_eff,
        phase_margin_eff_deg=pm_eff,
    )


def compare_margins_batch(
    plls: Sequence[PLL],
    omega_min_factor: float = 1e-3,
    omega_max_factor: float | None = None,
    points: int = 4000,
    backend: str | None = None,
    **closed_loop_kwargs,
) -> list[EffectiveMargins | Exception]:
    """Batched :func:`compare_margins` over a stacked design axis.

    Evaluates every design's ``A(j omega)`` and ``lambda(j omega)`` exactly
    once on the shared scan grid, stacks the samples into a ``(K, N)``
    array, and runs the magnitude scan across the whole stack in one
    vectorized pass; the crossover bracket/refinement and the phase grid
    stay per-design.  Because elementwise ufuncs and the shared
    :func:`~repro.lti.bode.crossover_from_samples` core operate row-by-row
    on identical samples, each result is **bitwise identical** to the
    scalar :func:`compare_margins` call for the same design — the scalar
    path stays the correctness oracle.  The win is eliminating the
    duplicate response evaluations the scalar path performs (each of
    ``gain_crossover`` and ``phase_margin`` re-scans the full grid).

    One failing design never poisons the batch: its slot carries the
    exception (``ConvergenceError``, ``ValidationError``, ...) that the
    scalar call would have raised, and the other slots complete.
    """
    if backend is not None:
        closed_loop_kwargs.setdefault("backend", backend)
    results: list[EffectiveMargins | Exception] = [None] * len(plls)  # type: ignore[list-item]
    if omega_max_factor is None:
        omega_max_factor = 0.499
    if not 0 < omega_min_factor < omega_max_factor:
        raise ValidationError("need 0 < omega_min_factor < omega_max_factor")

    from repro.pll.openloop import open_loop_callable

    # Group designs sharing a scan window so their samples can stack.
    groups: dict[tuple[float, float], list[int]] = {}
    for i, pll in enumerate(plls):
        w_lo = omega_min_factor * pll.omega0
        w_hi = omega_max_factor * pll.omega0
        groups.setdefault((w_lo, w_hi), []).append(i)

    for (w_lo, w_hi), indices in groups.items():
        grid = _log_grid(w_lo, w_hi, points)
        samples_a: list[np.ndarray] = []
        samples_lam: list[np.ndarray] = []
        live: list[tuple[int, Callable, Callable]] = []
        for i in indices:
            try:
                a_fn = open_loop_callable(plls[i])

                def a(omega, _fn=a_fn):
                    return np.asarray(_fn(1j * np.asarray(omega, dtype=float)), dtype=complex)

                lam = effective_open_loop(plls[i], **closed_loop_kwargs)
                samples_a.append(np.asarray(a(grid), dtype=complex))
                samples_lam.append(np.asarray(lam(grid), dtype=complex))
                live.append((i, a, lam))
            except Exception as exc:  # captured per-slot, scalar-equivalent
                results[i] = exc
        if not live:
            continue
        # One vectorized magnitude pass across the stacked design axis.
        mags_a = np.abs(np.stack(samples_a))
        mags_lam = np.abs(np.stack(samples_lam))
        for row, (i, a, lam) in enumerate(live):
            try:
                w_ug_lti = crossover_from_samples(a, grid, mags_a[row], w_lo, w_hi)
                pm_lti = phase_margin(a, w_lo, w_hi, points, w_ug=w_ug_lti)
                w_ug_eff = crossover_from_samples(lam, grid, mags_lam[row], w_lo, w_hi)
                pm_eff = phase_margin(lam, w_lo, w_hi, points, w_ug=w_ug_eff)
            except Exception as exc:
                results[i] = exc
                continue
            results[i] = EffectiveMargins(
                omega_ug_lti=w_ug_lti,
                phase_margin_lti_deg=pm_lti,
                omega_ug_eff=w_ug_eff,
                phase_margin_eff_deg=pm_eff,
            )
    return results


def margin_sweep(
    ratios: Sequence[float] | np.ndarray,
    designer: Callable[[float], PLL],
    points: int = 3000,
    backend: str | None = None,
    **closed_loop_kwargs,
) -> list[EffectiveMargins]:
    """Sweep ``w_UG / w0`` and collect margins — the Fig. 7 data series.

    Parameters
    ----------
    ratios:
        Target ``w_UG / w0`` values (each must lie in (0, 0.5)).
    designer:
        Callable mapping a ratio to a :class:`PLL` (typically
        :func:`repro.pll.design.design_typical_loop` with everything else
        fixed).
    backend:
        Compute backend forwarded to every :func:`compare_margins` call.
    """
    if backend is not None:
        closed_loop_kwargs.setdefault("backend", backend)
    out = []
    for ratio in np.asarray(ratios, dtype=float):
        if not 0.0 < ratio < 0.5:
            raise ValidationError(
                f"w_UG/w0 ratio must lie in (0, 0.5) below the alias fold, got {ratio}"
            )
        pll = designer(float(ratio))
        out.append(compare_margins(pll, points=points, **closed_loop_kwargs))
    return out
