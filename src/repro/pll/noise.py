"""HTM-based phase-noise and jitter analysis (extension).

The paper's experiments stop at deterministic transfers, but the framework
directly supports noise shaping — the motivating application of its
references [1] (oscillator phase noise) and the natural "optional feature"
of the method.  Two injection points are modelled:

* **Reference noise** enters at ``thetaref``.  The closed-loop row
  ``H_{0,m}`` is *independent of m* (rank-one aliasing), so noise riding on
  every reference harmonic folds into the output baseband with the same
  weight ``|H00|`` — sampling aliases wideband reference noise.
* **VCO-referred noise** enters at the oscillator phase output and reaches
  the PLL output through the sensitivity ``S = (I + G)^{-1}`` (eq. 32):
  highpass-shaped, the classical result, but with ``lambda`` in place of
  ``A``.

PSDs are one-sided, in seconds^2/Hz of the phase-in-seconds convention,
on a baseband grid ``|omega| < omega0/2``.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro._errors import ValidationError
from repro._validation import check_order, check_positive
from repro.core.grid import FrequencyGrid, as_omega_grid
from repro.pll.architecture import PLL
from repro.pll.closedloop import ClosedLoopHTM


class NoiseAnalysis:
    """Output phase-noise composition of a locked PLL.

    ``backend`` selects the compute backend for structured grid evaluations
    underneath (forwarded to :class:`~repro.pll.closedloop.ClosedLoopHTM`).
    """

    def __init__(self, pll: PLL, backend: str | None = None, **closed_loop_kwargs):
        if backend is not None:
            closed_loop_kwargs.setdefault("backend", backend)
        self.pll = pll
        self.closed_loop = ClosedLoopHTM(pll, **closed_loop_kwargs)

    # -- transfers ------------------------------------------------------------

    def reference_transfer(
        self, omega: FrequencyGrid | Sequence[float] | np.ndarray
    ) -> np.ndarray:
        """Baseband reference-to-output transfer ``H00(j omega)`` (lowpass)."""
        omega_arr = as_omega_grid("omega", omega)
        return self.closed_loop.frequency_response(omega_arr)

    def vco_transfer(
        self, omega: FrequencyGrid | Sequence[float] | np.ndarray
    ) -> np.ndarray:
        """Baseband VCO-to-output sensitivity ``1 - H00(j omega)`` (highpass)."""
        omega_arr = as_omega_grid("omega", omega)
        return np.asarray(
            self.closed_loop.sensitivity_element(1j * omega_arr, 0, 0), dtype=complex
        )

    def folded_reference_gain(
        self, omega: FrequencyGrid | Sequence[float] | np.ndarray, bands: int
    ) -> np.ndarray:
        """Total power gain for reference noise folded from ``2*bands+1`` bands.

        ``sum_{|m| <= bands} |H_{0,m}(j omega)|^2``.  Because the rank-one
        row makes all ``|H_{0,m}|`` equal, this is ``(2*bands+1) |H00|^2`` —
        the closed-form statement of the sampler's noise-folding penalty.
        """
        omega_arr = as_omega_grid("omega", omega)
        bands = check_order("bands", bands, minimum=0)
        h00 = np.abs(self.closed_loop.frequency_response(omega_arr)) ** 2
        return (2 * bands + 1) * h00

    # -- PSD composition ---------------------------------------------------------

    def output_psd(
        self,
        omega: FrequencyGrid | Sequence[float] | np.ndarray,
        reference_psd: Callable[[np.ndarray], np.ndarray] | None = None,
        vco_psd: Callable[[np.ndarray], np.ndarray] | None = None,
        folded_bands: int = 0,
    ) -> np.ndarray:
        """Output phase PSD from uncorrelated reference and VCO noise sources.

        Parameters
        ----------
        reference_psd, vco_psd:
            Callables mapping ``omega`` (rad/s) to one-sided PSD values; a
            missing source contributes zero.
        folded_bands:
            Number of reference harmonic bands (per side) whose noise is
            assumed white-identical and folds through the sampler.
        """
        omega_arr = as_omega_grid("omega", omega)
        total = np.zeros(omega_arr.size)
        if reference_psd is not None:
            gain = self.folded_reference_gain(omega_arr, folded_bands)
            total += gain * np.asarray(reference_psd(omega_arr), dtype=float)
        if vco_psd is not None:
            gain = np.abs(self.vco_transfer(omega_arr)) ** 2
            total += gain * np.asarray(vco_psd(omega_arr), dtype=float)
        return total

    def rms_jitter(
        self,
        omega: FrequencyGrid | Sequence[float] | np.ndarray,
        psd: Sequence[float] | np.ndarray,
    ) -> float:
        """RMS timing jitter (seconds) from a sampled one-sided phase PSD.

        Integrates ``sigma^2 = (1/2pi) * integral S(omega) d omega`` with the
        trapezoid rule on the supplied grid.
        """
        omega_arr = as_omega_grid("omega", omega)
        psd_arr = np.asarray(psd, dtype=float)
        if psd_arr.shape != omega_arr.shape:
            raise ValidationError("psd and omega grids must match")
        if np.any(psd_arr < 0):
            raise ValidationError("PSD values must be non-negative")
        if np.any(np.diff(omega_arr) <= 0):
            raise ValidationError("omega grid must be strictly increasing")
        variance = np.trapezoid(psd_arr, omega_arr) / (2 * np.pi)
        return float(np.sqrt(variance))


def seconds_psd_to_dbc_hz(
    psd_seconds2_per_hz: float | np.ndarray, carrier_frequency_hz: float
) -> float | np.ndarray:
    """Convert a phase PSD from seconds^2/Hz to the usual L(f) in dBc/Hz.

    Phase in radians is ``phi = 2 pi f_c theta``; the single-sideband noise
    convention is ``L(f) = S_phi(f) / 2`` for small angles.
    """
    check_positive("carrier_frequency_hz", carrier_frequency_hz)
    psd = np.asarray(psd_seconds2_per_hz, dtype=float)
    if np.any(psd < 0):
        raise ValidationError("PSD values must be non-negative")
    rad2 = (2 * np.pi * carrier_frequency_hz) ** 2 * psd
    with np.errstate(divide="ignore"):
        out = 10.0 * np.log10(rad2 / 2.0)
    if np.ndim(psd_seconds2_per_hz) == 0:
        return float(out)
    return out


def dbc_hz_to_seconds_psd(
    dbc_hz: float | np.ndarray, carrier_frequency_hz: float
) -> float | np.ndarray:
    """Inverse of :func:`seconds_psd_to_dbc_hz`."""
    if carrier_frequency_hz <= 0:
        raise ValidationError("carrier frequency must be positive")
    level = np.asarray(dbc_hz, dtype=float)
    rad2 = 2.0 * 10.0 ** (level / 10.0)
    out = rad2 / (2 * np.pi * carrier_frequency_hz) ** 2
    if np.ndim(dbc_hz) == 0:
        return float(out)
    return out


def flat_psd(level: float) -> Callable[[np.ndarray], np.ndarray]:
    """White-noise PSD factory: constant ``level`` at every frequency."""
    if level < 0:
        raise ValidationError(f"PSD level must be non-negative, got {level}")

    def psd(omega: np.ndarray) -> np.ndarray:
        return np.full(np.asarray(omega, dtype=float).shape, float(level))

    return psd


def one_over_f2_psd(level_at: float, omega_ref: float) -> Callable[[np.ndarray], np.ndarray]:
    """Oscillator-like ``1/omega^2`` PSD with value ``level_at`` at ``omega_ref``."""
    if level_at < 0 or omega_ref <= 0:
        raise ValidationError("need level_at >= 0 and omega_ref > 0")

    def psd(omega: np.ndarray) -> np.ndarray:
        omega_arr = np.asarray(omega, dtype=float)
        with np.errstate(divide="ignore"):
            return level_at * (omega_ref / np.abs(omega_arr)) ** 2

    return psd
