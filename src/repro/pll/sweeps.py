"""Generic design-space sweeps with structured results.

The examples and experiments repeatedly sweep a loop parameter and collect
margins/poles/bandwidth; this module consolidates the pattern into one
utility with named metrics, NaN-safe collection (a metric that fails for a
design — e.g. no unity crossing — records NaN instead of aborting the whole
sweep) and CSV export.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping, Sequence

import numpy as np

from repro._errors import ValidationError
from repro.core.grid import FrequencyGrid
from repro.pll.architecture import PLL


@dataclass(frozen=True)
class SweepResult:
    """Structured result of a one-parameter sweep.

    Attributes
    ----------
    parameter_name:
        Label of the swept quantity.
    values:
        The swept parameter values.
    metrics:
        ``name -> array`` of collected metric values (NaN where a metric
        failed for a design).
    """

    parameter_name: str
    values: np.ndarray
    metrics: dict[str, np.ndarray]

    def metric(self, name: str) -> np.ndarray:
        """One metric's values across the sweep."""
        try:
            return self.metrics[name].copy()
        except KeyError:
            raise ValidationError(
                f"unknown metric {name!r}; available: {sorted(self.metrics)}"
            ) from None

    def to_csv(self, path: str | Path) -> Path:
        """Write the sweep as a CSV table."""
        out = Path(path)
        with out.open("w", newline="") as handle:
            writer = csv.writer(handle)
            names = sorted(self.metrics)
            writer.writerow([self.parameter_name] + names)
            for i, value in enumerate(self.values):
                writer.writerow(
                    [f"{value:.10g}"] + [f"{self.metrics[n][i]:.10g}" for n in names]
                )
        return out


def sweep(
    parameter_name: str,
    values: Sequence[float],
    designer: Callable[[float], PLL],
    metrics: Mapping[str, Callable[[PLL], float]],
) -> SweepResult:
    """Evaluate named metrics over designs produced by ``designer``.

    A metric callable that raises any :class:`Exception` records NaN for
    that design; sweep-level errors (empty inputs) still raise.
    """
    values_arr = np.asarray(values, dtype=float)
    if values_arr.ndim != 1 or values_arr.size == 0:
        raise ValidationError("values must be a non-empty 1-D sequence")
    if not metrics:
        raise ValidationError("at least one metric is required")
    collected = {name: np.full(values_arr.size, np.nan) for name in metrics}
    for i, value in enumerate(values_arr):
        pll = designer(float(value))
        for name, fn in metrics.items():
            try:
                collected[name][i] = float(fn(pll))
            except Exception:
                pass  # recorded as NaN
    return SweepResult(
        parameter_name=parameter_name, values=values_arr, metrics=collected
    )


def closed_loop_response_surface(
    parameter_name: str,
    values: Sequence[float],
    designer: Callable[[float], PLL],
    grid: FrequencyGrid,
    **closed_loop_kwargs,
) -> tuple[np.ndarray, np.ndarray]:
    """Baseband ``H00(j omega)`` over a (design, frequency) product grid.

    For each design produced by ``designer`` the whole frequency row is
    evaluated in one batched :meth:`~repro.pll.closedloop.ClosedLoopHTM.
    frequency_response` call, so the cost is one grid evaluation per design
    rather than ``len(grid)`` scalar closures.

    Returns
    -------
    (values, surface):
        ``values`` is the swept parameter array; ``surface`` is complex with
        shape ``(len(values), len(grid))``.
    """
    from repro.pll.closedloop import ClosedLoopHTM

    if not isinstance(grid, FrequencyGrid):
        raise ValidationError(
            f"{parameter_name} surface requires a FrequencyGrid, got "
            f"{type(grid).__name__}"
        )
    values_arr = np.asarray(values, dtype=float)
    if values_arr.ndim != 1 or values_arr.size == 0:
        raise ValidationError("values must be a non-empty 1-D sequence")
    surface = np.zeros((values_arr.size, len(grid)), dtype=complex)
    for i, value in enumerate(values_arr):
        closed = ClosedLoopHTM(designer(float(value)), **closed_loop_kwargs)
        surface[i] = closed.frequency_response(grid)
    return values_arr, surface


def standard_metrics() -> dict[str, Callable[[PLL], float]]:
    """The commonly wanted metric set.

    ``pm_lti`` / ``pm_eff`` (degrees), ``bandwidth_extension``,
    ``dominant_pole_real`` (rad/s; positive = unstable), ``modulus_margin``.
    """
    from repro.lti.bode import modulus_margin
    from repro.pll.margins import compare_margins, effective_open_loop
    from repro.pll.poles import dominant_pole

    def pm_lti(pll: PLL) -> float:
        return compare_margins(pll).phase_margin_lti_deg

    def pm_eff(pll: PLL) -> float:
        return compare_margins(pll).phase_margin_eff_deg

    def bandwidth_extension(pll: PLL) -> float:
        return compare_margins(pll).bandwidth_extension

    def dominant_pole_real(pll: PLL) -> float:
        return dominant_pole(pll).s.real

    def modulus(pll: PLL) -> float:
        lam = effective_open_loop(pll)
        return modulus_margin(lam, 1e-3 * pll.omega0, 0.499 * pll.omega0)

    return {
        "pm_lti": pm_lti,
        "pm_eff": pm_eff,
        "bandwidth_extension": bandwidth_extension,
        "dominant_pole_real": dominant_pole_real,
        "modulus_margin": modulus,
    }
