"""Generic design-space sweeps with structured results.

The examples and experiments repeatedly sweep a loop parameter and collect
margins/poles/bandwidth; this module consolidates the pattern into one
utility with named metrics, NaN-safe collection (a metric that fails for a
design — e.g. no unity crossing — records NaN instead of aborting the whole
sweep) and CSV export.

Sweeps execute through the :mod:`repro.campaign` engine: each sweep is a
one-axis campaign, so the same call optionally gets a process pool, a
crash-safe JSONL result store and run telemetry (``workers=`` /
``store_path=`` / ``timeout=``), and :meth:`SweepResult.from_records`
round-trips store output back into the structured result object.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from repro._errors import ValidationError
from repro.core.grid import FrequencyGrid
from repro.pll.architecture import PLL


@dataclass(frozen=True)
class SweepResult:
    """Structured result of a one-parameter sweep.

    Attributes
    ----------
    parameter_name:
        Label of the swept quantity.
    values:
        The swept parameter values.
    metrics:
        ``name -> array`` of collected metric values (NaN where a metric
        failed for a design).
    campaign / point_ids:
        Campaign metadata when the sweep ran through the campaign engine:
        the campaign name and the deterministic per-point ids (aligned
        with ``values``).  ``None`` for results built directly.
    """

    parameter_name: str
    values: np.ndarray
    metrics: dict[str, np.ndarray]
    campaign: str | None = None
    point_ids: tuple[str, ...] | None = None

    def metric(self, name: str) -> np.ndarray:
        """One metric's values across the sweep."""
        try:
            return self.metrics[name].copy()
        except KeyError:
            raise ValidationError(
                f"unknown metric {name!r}; available: {sorted(self.metrics)}"
            ) from None

    @classmethod
    def from_records(
        cls,
        parameter_name: str,
        records: Iterable[Mapping[str, Any]],
        campaign: str | None = None,
    ) -> "SweepResult":
        """Rebuild a sweep result from campaign point records.

        ``records`` are terminal point records as produced by the campaign
        engine / stored in the JSONL result store (``params`` must carry
        ``parameter_name``).  Failed points contribute NaN for every
        metric, mirroring the in-process NaN-safety rule.
        """
        records = list(records)
        if not records:
            raise ValidationError("at least one point record is required")
        values = []
        ids = []
        names: list[str] = []
        for record in records:
            try:
                values.append(float(record["params"][parameter_name]))
            except (KeyError, TypeError):
                raise ValidationError(
                    f"record {record.get('id')!r} has no parameter "
                    f"{parameter_name!r}"
                ) from None
            ids.append(str(record.get("id", "")))
            for name in record.get("metrics") or {}:
                if name not in names:
                    names.append(name)
        if not names:
            raise ValidationError("no record carries any metrics")
        collected = {name: np.full(len(records), np.nan) for name in names}
        for i, record in enumerate(records):
            for name, value in (record.get("metrics") or {}).items():
                collected[name][i] = float(value)
        return cls(
            parameter_name=parameter_name,
            values=np.asarray(values, dtype=float),
            metrics=collected,
            campaign=campaign,
            point_ids=tuple(ids),
        )

    def to_csv(
        self, path: str | Path, include_metadata: bool | None = None
    ) -> Path:
        """Write the sweep as a CSV table.

        ``include_metadata=None`` (default) adds ``campaign`` / ``point_id``
        columns exactly when the result carries campaign metadata; pass
        ``False`` for the bare historical table or ``True`` to force the
        columns (empty strings when absent).
        """
        out = Path(path)
        if include_metadata is None:
            include_metadata = self.point_ids is not None
        with out.open("w", newline="") as handle:
            writer = csv.writer(handle)
            names = sorted(self.metrics)
            meta_header = ["campaign", "point_id"] if include_metadata else []
            writer.writerow(meta_header + [self.parameter_name] + names)
            for i, value in enumerate(self.values):
                meta = (
                    [
                        self.campaign or "",
                        self.point_ids[i] if self.point_ids else "",
                    ]
                    if include_metadata
                    else []
                )
                writer.writerow(
                    meta
                    + [f"{value:.10g}"]
                    + [f"{self.metrics[n][i]:.10g}" for n in names]
                )
        return out


def _metrics_task(
    parameter_name: str,
    designer: Callable[[float], PLL],
    metrics: Mapping[str, Callable[[PLL], float]],
    backend: str | None = None,
) -> Callable[[dict[str, Any]], dict[str, float]]:
    """Adapt (designer, metrics) into a campaign task with NaN-safety.

    ``backend`` (or a per-point ``backend`` parameter) installs a scoped
    compute-backend default around the whole point evaluation, so every
    structured grid evaluation inside the metric callables picks it up
    without explicit threading.
    """
    from repro.core.backend import backend_scope

    def task(params: dict[str, Any]) -> dict[str, float]:
        with backend_scope(params.get("backend", backend)):
            pll = designer(float(params[parameter_name]))
            out: dict[str, float] = {}
            for name, fn in metrics.items():
                try:
                    out[name] = float(fn(pll))
                except Exception:
                    out[name] = float("nan")
        return out

    return task


def sweep(
    parameter_name: str,
    values: Sequence[float],
    designer: Callable[[float], PLL],
    metrics: Mapping[str, Callable[[PLL], float]],
    *,
    workers: int = 1,
    store_path: str | Path | None = None,
    backend: str | None = None,
    **campaign_kwargs: Any,
) -> SweepResult:
    """Evaluate named metrics over designs produced by ``designer``.

    A metric callable that raises any :class:`Exception` records NaN for
    that design; sweep-level errors (empty inputs) still raise.  A design
    whose *construction* fails records NaN for every metric of that point
    (the campaign engine captures the error instead of aborting the sweep).

    The evaluation runs as a :mod:`repro.campaign` campaign: pass
    ``workers=4`` for a process pool (requires picklable ``designer`` and
    ``metrics`` — module-level functions), ``store_path=`` for a resumable
    JSONL result store, and any other :class:`repro.campaign.
    ExecutionPolicy` field (``timeout=``, ``retries=``...) as keyword
    arguments.  ``backend`` installs a scoped compute-backend default
    around every point evaluation (each pool worker re-installs it).
    """
    from repro.campaign import CampaignSpec, ListSpace, run_campaign

    values_arr = np.asarray(values, dtype=float)
    if values_arr.ndim != 1 or values_arr.size == 0:
        raise ValidationError("values must be a non-empty 1-D sequence")
    if not metrics:
        raise ValidationError("at least one metric is required")
    spec = CampaignSpec.create(
        name=f"sweep:{parameter_name}",
        space=ListSpace.of([{parameter_name: float(v)} for v in values_arr]),
        task=_metrics_task(parameter_name, designer, metrics, backend=backend),
    )
    result = run_campaign(
        spec, store_path, workers=workers, **campaign_kwargs
    )
    # The declared metric set is authoritative: a point whose design failed
    # has no metrics dict and stays NaN across the board.
    collected = {name: np.full(values_arr.size, np.nan) for name in metrics}
    for i, record in enumerate(result.records):
        for name, value in (record.get("metrics") or {}).items():
            if name in collected:
                collected[name][i] = float(value)
    return SweepResult(
        parameter_name=parameter_name,
        values=values_arr,
        metrics=collected,
        campaign=spec.name,
        point_ids=tuple(r["id"] for r in result.records),
    )


def closed_loop_response_surface(
    parameter_name: str,
    values: Sequence[float],
    designer: Callable[[float], PLL],
    grid: FrequencyGrid,
    backend: str | None = None,
    **closed_loop_kwargs,
) -> tuple[np.ndarray, np.ndarray]:
    """Baseband ``H00(j omega)`` over a (design, frequency) product grid.

    For each design produced by ``designer`` the whole frequency row is
    evaluated in one batched :meth:`~repro.pll.closedloop.ClosedLoopHTM.
    frequency_response` call, so the cost is one grid evaluation per design
    rather than ``len(grid)`` scalar closures.  ``backend`` is forwarded to
    each :class:`ClosedLoopHTM`.

    Returns
    -------
    (values, surface):
        ``values`` is the swept parameter array; ``surface`` is complex with
        shape ``(len(values), len(grid))``.
    """
    from repro.pll.closedloop import ClosedLoopHTM

    if backend is not None:
        closed_loop_kwargs.setdefault("backend", backend)

    if not isinstance(grid, FrequencyGrid):
        raise ValidationError(
            f"{parameter_name} surface requires a FrequencyGrid, got "
            f"{type(grid).__name__}"
        )
    values_arr = np.asarray(values, dtype=float)
    if values_arr.ndim != 1 or values_arr.size == 0:
        raise ValidationError("values must be a non-empty 1-D sequence")
    surface = np.zeros((values_arr.size, len(grid)), dtype=complex)
    for i, value in enumerate(values_arr):
        closed = ClosedLoopHTM(designer(float(value)), **closed_loop_kwargs)
        surface[i] = closed.frequency_response(grid)
    return values_arr, surface


def standard_metrics() -> dict[str, Callable[[PLL], float]]:
    """The commonly wanted metric set.

    ``pm_lti`` / ``pm_eff`` (degrees), ``bandwidth_extension``,
    ``dominant_pole_real`` (rad/s; positive = unstable), ``modulus_margin``.
    """
    from repro.lti.bode import modulus_margin
    from repro.pll.margins import compare_margins, effective_open_loop
    from repro.pll.poles import dominant_pole

    def pm_lti(pll: PLL) -> float:
        return compare_margins(pll).phase_margin_lti_deg

    def pm_eff(pll: PLL) -> float:
        return compare_margins(pll).phase_margin_eff_deg

    def bandwidth_extension(pll: PLL) -> float:
        return compare_margins(pll).bandwidth_extension

    def dominant_pole_real(pll: PLL) -> float:
        return dominant_pole(pll).s.real

    def modulus(pll: PLL) -> float:
        lam = effective_open_loop(pll)
        return modulus_margin(lam, 1e-3 * pll.omega0, 0.499 * pll.omega0)

    return {
        "pm_lti": pm_lti,
        "pm_eff": pm_eff,
        "bandwidth_extension": bandwidth_extension,
        "dominant_pole_real": dominant_pole_real,
        "modulus_margin": modulus,
    }
