"""Closed-loop PLL analysis (paper secs. 4–5).

Ties the building-block HTMs together into the loop equation
``theta = (I + G)^{-1} G thetaref`` (eq. 28) and exploits the rank-one
structure of the sampling PFD to collapse it to the scalar closed form of
eq. (34).  The quantities of interest:

* ``A(s)`` — the classical LTI open-loop gain (eq. 35);
* ``lambda(s) = sum_m A(s + j m w0)`` — the *effective* open-loop gain
  (eq. 37), the paper's central object;
* ``H00(s) = A(s) / (1 + lambda(s))`` — baseband closed-loop transfer
  (eq. 38), and the full rank-one matrix ``V l^T / (1 + lambda)``;
* effective unity-gain frequency and phase margin of ``lambda`` versus the
  LTI predictions (Fig. 7).
"""

from repro.pll.architecture import PLL
from repro.pll.openloop import lti_open_loop, open_loop_callable, open_loop_operator
from repro.pll.closedloop import ClosedLoopHTM
from repro.pll.margins import (
    EffectiveMargins,
    compare_margins,
    effective_open_loop,
    margin_sweep,
)
from repro.pll.design import (
    design_for_effective_margin,
    design_typical_loop,
    typical_open_loop_shape,
)
from repro.pll.noise import NoiseAnalysis
from repro.pll.sweeps import (
    SweepResult,
    closed_loop_response_surface,
    standard_metrics,
    sweep,
)
from repro.pll.spurs import (
    SpurMeasurement,
    SpurPrediction,
    measure_reference_spurs,
    predict_reference_spurs,
)
from repro.pll.transient import (
    lti_step_response,
    reference_step_response,
    ripple_amplitude,
)
from repro.pll.poles import (
    ClosedLoopPole,
    dominant_pole,
    find_closed_loop_poles,
    refine_pole,
)

__all__ = [
    "PLL",
    "lti_open_loop",
    "open_loop_callable",
    "open_loop_operator",
    "ClosedLoopHTM",
    "EffectiveMargins",
    "compare_margins",
    "effective_open_loop",
    "margin_sweep",
    "design_for_effective_margin",
    "design_typical_loop",
    "typical_open_loop_shape",
    "NoiseAnalysis",
    "SweepResult",
    "closed_loop_response_surface",
    "standard_metrics",
    "sweep",
    "SpurMeasurement",
    "SpurPrediction",
    "measure_reference_spurs",
    "predict_reference_spurs",
    "lti_step_response",
    "reference_step_response",
    "ripple_amplitude",
    "ClosedLoopPole",
    "dominant_pole",
    "find_closed_loop_poles",
    "refine_pole",
]
