"""Closed-loop poles of the time-varying loop in the s-domain (extension).

The closed loop ``theta = V l^T thetaref / (1 + lambda)`` has its dynamics
in the zeros of the **characteristic function** ``1 + lambda(s)``.  Because
``lambda`` is j-omega0-periodic, its zeros repeat in vertical strips: the
fundamental-strip roots are the loop's **Floquet exponents** ``s_k``, and
``z_k = e^{s_k T}`` are exactly the z-domain closed-loop poles / Floquet
multipliers computed elsewhere in this library — a three-way identity the
integration tests assert.

Roots are found by Newton iteration with the *exact* derivative
``lambda'(s)`` (term-wise ``dS_j/dx = -j S_{j+1}``, see
:meth:`repro.core.aliasing.AliasedSum.derivative`), seeded from the
z-domain pole logarithms.
"""

from __future__ import annotations

import cmath
from dataclasses import dataclass

from repro._errors import ConvergenceError, ValidationError
from repro._validation import check_order, check_positive
from repro.pll.architecture import PLL
from repro.pll.closedloop import ClosedLoopHTM


@dataclass(frozen=True)
class ClosedLoopPole:
    """One fundamental-strip root of ``1 + lambda(s) = 0``.

    Attributes
    ----------
    s:
        The Floquet exponent (rad/s complex frequency).
    multiplier:
        ``e^{sT}`` — the per-cycle growth factor.
    residual:
        ``|1 + lambda(s)|`` at the accepted root.
    """

    s: complex
    multiplier: complex
    residual: float

    @property
    def is_stable(self) -> bool:
        """True when the exponent lies in the open left half plane."""
        return self.s.real < 0.0

    @property
    def damping_time_constant(self) -> float:
        """``-1 / Re(s)`` in seconds (inf for unstable/marginal poles)."""
        if self.s.real >= 0:
            return float("inf")
        return -1.0 / self.s.real

    @property
    def quality_factor(self) -> float:
        """``|s| / (2 |Re s|)`` — the usual pole Q (inf for marginal)."""
        if self.s.real == 0:
            return float("inf")
        return abs(self.s) / (2.0 * abs(self.s.real))


def _newton_root(
    func, dfunc, seed: complex, tol: float, max_iter: int
) -> tuple[complex, float]:
    s = complex(seed)
    for _ in range(max_iter):
        value = func(s)
        if abs(value) < tol:
            return s, abs(value)
        slope = dfunc(s)
        if slope == 0:
            raise ConvergenceError(f"Newton stalled at s = {s}: zero derivative")
        step = value / slope
        # Damp wild steps: the coth landscape has poles between the roots.
        if abs(step) > 1.0:
            step *= 1.0 / abs(step)
        s = s - step
    value = func(s)
    if abs(value) < 100 * tol:
        return s, abs(value)
    raise ConvergenceError(
        f"Newton did not converge from seed {seed}: residual {abs(value):.3g}"
    )


def find_closed_loop_poles(
    pll: PLL,
    tol: float = 1e-10,
    max_iter: int = 80,
) -> list[ClosedLoopPole]:
    """Locate all fundamental-strip roots of ``1 + lambda(s) = 0``.

    Seeds come from the z-domain closed-loop poles (``s = log(z)/T``), so
    the count always matches the loop order; Newton with the analytic
    ``lambda'`` then polishes each to ``tol``.

    Requires the closed-form path (delay-free, zero sampling offset, any
    ISF handled by the per-harmonic aliasing sums).
    """
    check_positive("tol", tol)
    check_order("max_iter", max_iter, minimum=1)
    closed = ClosedLoopHTM(pll, method="closed")
    alias_sums = closed._alias_sums
    derivatives = [a.derivative() for a in alias_sums]

    def lam(s: complex) -> complex:
        return sum(a(s) for a in alias_sums)

    def dlam(s: complex) -> complex:
        return sum(d(s) for d in derivatives)

    def func(s: complex) -> complex:
        return 1.0 + lam(s)

    from repro.baselines.zdomain import closed_loop_z, sampled_open_loop

    try:
        z_poles = closed_loop_z(sampled_open_loop(pll)).poles()
    except ValidationError:
        raise ValidationError(
            "pole search currently seeds from the z-domain model; "
            "loops it cannot express (LPTV VCO) need explicit seeds via "
            "refine_pole"
        ) from None
    period = pll.period
    omega0 = pll.omega0
    poles: list[ClosedLoopPole] = []
    for z in z_poles:
        if z == 0:
            # A z-plane pole at the origin is a pure one-cycle delay mode
            # (s -> -infinity); it has no finite s-domain counterpart.
            continue
        seed = cmath.log(z) / period
        s_root, residual = _newton_root(func, dlam, seed, tol, max_iter)
        # Fold into the fundamental strip Im(s) in (-w0/2, w0/2].
        im = (s_root.imag + omega0 / 2) % omega0 - omega0 / 2
        s_root = complex(s_root.real, im)
        poles.append(
            ClosedLoopPole(
                s=s_root, multiplier=cmath.exp(s_root * period), residual=residual
            )
        )
    poles.sort(key=lambda p: -p.s.real)
    return poles


def refine_pole(
    pll: PLL, seed: complex, tol: float = 1e-10, max_iter: int = 80
) -> ClosedLoopPole:
    """Polish a single root of ``1 + lambda(s)`` from a user-supplied seed."""
    closed = ClosedLoopHTM(pll, method="closed")
    alias_sums = closed._alias_sums
    derivatives = [a.derivative() for a in alias_sums]
    s_root, residual = _newton_root(
        lambda s: 1.0 + sum(a(s) for a in alias_sums),
        lambda s: sum(d(s) for d in derivatives),
        seed,
        tol,
        max_iter,
    )
    return ClosedLoopPole(
        s=s_root, multiplier=cmath.exp(s_root * pll.period), residual=residual
    )


def dominant_pole(pll: PLL, **kwargs) -> ClosedLoopPole:
    """The rightmost (slowest / least stable) fundamental-strip pole."""
    poles = find_closed_loop_poles(pll, **kwargs)
    if not poles:
        raise ConvergenceError("no closed-loop poles found")
    return poles[0]
