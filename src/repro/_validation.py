"""Small argument-validation helpers used across the package.

These helpers raise :class:`repro._errors.ValidationError` with consistent,
descriptive messages.  They intentionally return the validated (possibly
converted) value so they can be used inline::

    self.omega0 = check_positive("omega0", omega0)
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro._errors import ValidationError


def check_positive(name: str, value: float) -> float:
    """Return ``value`` as a float, requiring it to be finite and > 0."""
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise ValidationError(f"{name} must be a finite positive number, got {value!r}")
    return value


def check_nonnegative(name: str, value: float) -> float:
    """Return ``value`` as a float, requiring it to be finite and >= 0."""
    value = float(value)
    if not np.isfinite(value) or value < 0.0:
        raise ValidationError(f"{name} must be a finite non-negative number, got {value!r}")
    return value


def check_finite(name: str, value: float) -> float:
    """Return ``value`` as a float, requiring it to be finite."""
    value = float(value)
    if not np.isfinite(value):
        raise ValidationError(f"{name} must be finite, got {value!r}")
    return value


def check_order(name: str, value: int, minimum: int = 0) -> int:
    """Return ``value`` as an int, requiring ``value >= minimum``.

    Used for truncation orders, polynomial degrees and harmonic counts.
    """
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value < minimum:
        raise ValidationError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Return ``value`` as a float in the open interval (0, 1)."""
    value = float(value)
    if not np.isfinite(value) or not 0.0 < value < 1.0:
        raise ValidationError(f"{name} must lie strictly between 0 and 1, got {value!r}")
    return value


def as_complex_array(name: str, values: Sequence[complex] | np.ndarray) -> np.ndarray:
    """Return ``values`` as a 1-D complex ndarray, rejecting empty input."""
    arr = np.atleast_1d(np.asarray(values, dtype=complex))
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValidationError(f"{name} must not be empty")
    return arr


def as_float_array(name: str, values: Sequence[float] | np.ndarray) -> np.ndarray:
    """Return ``values`` as a 1-D float ndarray, rejecting empty input."""
    arr = np.atleast_1d(np.asarray(values, dtype=float))
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValidationError(f"{name} must not be empty")
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} must contain only finite values")
    return arr


def check_odd_dimension(name: str, value: int) -> int:
    """Return ``value`` as an int, requiring it to be odd and >= 1.

    HTM truncations always have dimension ``2K + 1`` (harmonics ``-K..K``),
    so every dense HTM matrix must be square with odd size.
    """
    value = check_order(name, value, minimum=1)
    if value % 2 == 0:
        raise ValidationError(f"{name} must be odd (HTMs span harmonics -K..K), got {value}")
    return value
