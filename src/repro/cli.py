"""Command-line loop-analysis report.

Usage::

    python -m repro --ratio 0.15 [--separation 4] [--omega0 6.2832]
                    [--icp 1e-3] [--leakage 0] [--plots] [--symbolic]

Designs the typical loop at the requested ``omega_UG / omega_0`` and prints
a full report: LTI metrics, effective (time-varying) metrics, z-domain
stability, Floquet multipliers, and optionally the symbolic closed forms
and an ASCII Bode chart — the complete workflow of the library in one
command.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro._errors import ReproError


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="HTM-based PLL loop analysis report"
    )
    parser.add_argument(
        "--ratio", type=float, default=0.1, help="omega_UG / omega_0 (default 0.1)"
    )
    parser.add_argument(
        "--separation", type=float, default=4.0, help="zero/pole separation (default 4)"
    )
    parser.add_argument(
        "--omega0", type=float, default=2 * np.pi, help="reference frequency rad/s"
    )
    parser.add_argument("--icp", type=float, default=1e-3, help="charge-pump current A")
    parser.add_argument("--leakage", type=float, default=0.0, help="pump leakage A")
    parser.add_argument("--plots", action="store_true", help="ASCII Bode chart of A and lambda")
    parser.add_argument("--symbolic", action="store_true", help="print symbolic closed forms")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns an exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _report(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _report(args) -> int:
    from repro.baselines.zdomain import closed_loop_z, sampled_open_loop
    from repro.blocks.chargepump import ChargePump
    from repro.pll.architecture import PLL
    from repro.pll.closedloop import ClosedLoopHTM
    from repro.pll.design import design_typical_loop, shape_phase_margin_deg
    from repro.pll.margins import compare_margins
    from repro.simulator.floquet import floquet_multipliers

    omega0 = args.omega0
    base = design_typical_loop(
        omega0=omega0,
        omega_ug=args.ratio * omega0,
        separation=args.separation,
        charge_pump_current=args.icp,
    )
    pll = base
    if args.leakage > 0:
        pll = PLL(
            pfd=base.pfd,
            charge_pump=ChargePump(args.icp, leakage=args.leakage),
            filter_impedance=base.filter_impedance,
            vco=base.vco,
        )

    print(pll.describe())
    print(f"target: wUG/w0 = {args.ratio:g}, separation {args.separation:g} "
          f"(LTI PM {shape_phase_margin_deg(args.separation):.2f} deg)")
    print("-" * 64)

    try:
        margins = compare_margins(pll)
        print(margins.summary())
    except ReproError as exc:
        print(f"effective margins: not measurable ({exc})")

    cz = closed_loop_z(sampled_open_loop(base))
    poles = np.sort_complex(cz.poles())
    print(f"z-domain closed-loop poles: {np.round(poles, 4)}")
    print(f"z-domain stable: {cz.is_stable()}")

    flo = floquet_multipliers(base)
    print(f"Floquet multipliers:        {np.round(np.sort_complex(flo.multipliers), 4)}")
    print(
        f"Floquet stable: {flo.is_stable} "
        f"(spectral radius {flo.spectral_radius:.4f})"
    )

    from repro.pll.poles import find_closed_loop_poles

    s_poles = find_closed_loop_poles(base)
    print("s-domain Floquet exponents (roots of 1 + lambda(s)):")
    for pole in s_poles:
        print(
            f"  s = {pole.s:.4f}  |e^sT| = {abs(pole.multiplier):.4f}"
            + ("  [UNSTABLE]" if not pole.is_stable else "")
        )

    if args.leakage > 0:
        from repro.pll.spurs import predict_reference_spurs

        pred = predict_reference_spurs(pll, harmonics=3)
        print("-" * 64)
        print(f"leakage {args.leakage:g} A -> static phase offset "
              f"{pred.static_phase_offset:.3e} s")
        for k in (1, 2, 3):
            print(f"  reference spur k={k}: {pred.spur_dbc(k, pll.vco.f0):.1f} dBc")

    if args.symbolic:
        from repro.symbolic import effective_gain_expression, open_loop_expression

        print("-" * 64)
        print("A(s)      =", open_loop_expression(base).render())
        print("lambda(s) =", effective_gain_expression(base).render())

    if args.plots:
        from repro.reporting.ascii_plot import AsciiPlot

        closed = ClosedLoopHTM(base)
        from repro.pll.openloop import lti_open_loop

        a = lti_open_loop(base)
        grid = np.logspace(-2, np.log10(0.49), 120) * omega0
        plot = AsciiPlot(
            width=70,
            height=14,
            log_x=True,
            title="|A| (a) vs |lambda| (L), dB",
            x_label="omega (rad/s)",
        )
        plot.add(grid, 20 * np.log10(np.abs(a.frequency_response(grid))), glyph="a", label="LTI A")
        plot.add(
            grid,
            20 * np.log10(np.abs(closed.effective_gain_response(grid))),
            glyph="L",
            label="effective lambda",
        )
        print("-" * 64)
        print(plot.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
