"""Command-line interface: loop-analysis report and campaign runner.

Loop report (the default command)::

    python -m repro --ratio 0.15 [--separation 4] [--omega0 6.2832]
                    [--icp 1e-3] [--leakage 0] [--plots] [--symbolic]

Designs the typical loop at the requested ``omega_UG / omega_0`` and prints
a full report: LTI metrics, effective (time-varying) metrics, z-domain
stability, Floquet multipliers, and optionally the symbolic closed forms
and an ASCII Bode chart — the complete workflow of the library in one
command.

Campaign engine (:mod:`repro.campaign`)::

    python -m repro campaign run SPEC.json [--out RESULTS.jsonl]
                    [--workers N] [--timeout S] [--retries N] ...
    python -m repro campaign resume RESULTS.jsonl [--workers N] [--retry-failed]
    python -m repro campaign status RESULTS.jsonl
    python -m repro campaign watch RESULTS.jsonl [--interval S] [--once]
    python -m repro campaign tasks

Multi-host execution (shared-filesystem lease scheduler)::

    python -m repro campaign init SPEC.json --out RESULTS.jsonl
    python -m repro campaign worker RESULTS.jsonl   # on any host, any number

``init`` creates the store and freezes the lease batch plan; each
``worker`` invocation joins the campaign elastically — claiming batch
leases, stealing expired ones from dead workers, and leaving when the
point set is covered (or after ``--max-idle`` seconds with nothing
claimable).  See ``docs/CAMPAIGNS.md`` ("Multi-host execution").

``SPEC.json`` holds a serialized :class:`repro.campaign.CampaignSpec`::

    {"name": "margins-map", "task": "margins",
     "defaults": {"omega0": 6.283185307179586},
     "space": {"kind": "grid",
               "axes": {"ratio": [0.05, 0.1, 0.2],
                        "separation": [2.0, 4.0, 8.0]}}}

``run`` executes every point (process pool for ``--workers > 1``) into an
append-only JSONL store; kill it at any moment and ``resume`` completes
only the missing points.  ``status`` prints progress without touching the
campaign.

Observability reports (:mod:`repro.obs`)::

    REPRO_OBS=1 python -m repro campaign run SPEC.json ...
    python -m repro obs summary RESULTS.jsonl
    python -m repro obs top RESULTS.jsonl -n 10 [--by wall|cpu|count]
    python -m repro obs health RESULTS.jsonl [-n 10] [--severity warning]
                    [--fail-on warning|error]
    python -m repro obs export RESULTS.jsonl [MORE ...]
                    [--json | --csv | --trace out.json] [--out obs.json]
    python -m repro obs trace RESULTS.jsonl [--serve-log serve.trace.jsonl]
                    [--trace-id HEX32] [--out trace.json]
    python -m repro obs profile RESULTS.jsonl [--serve-profile FILE ...]
                    [--out collapsed.txt] [--html flame.html] [--top N] [--json]
    python -m repro obs slo RESULTS.jsonl [--spec slo.json]
                    [--fail-on breach] [--json]

``SOURCE`` is a campaign result store (the merged span/counter snapshot is
read from its summary record) or a raw obs snapshot JSON, e.g. one written
through ``REPRO_OBS_EXPORT=path``; several sources merge into one view.
``obs health`` reports the numerical health events the core probes emitted
(see ``docs/OBSERVABILITY.md``) and, with ``--fail-on``, exits nonzero when
events at or above that severity occurred — the CI gate.  ``--trace``
writes Chrome Trace Event Format for ``chrome://tracing`` / Perfetto.
``obs trace`` is the *distributed* collector: it merges the per-worker span
shards under ``<store>.trace/`` (plus serve logs) into one Chrome trace
with per-host/per-worker lanes and a critical-path summary.  ``obs
profile`` is its statistical-profiling sibling: it merges the per-worker
sample shards under ``<store>.profile/`` (plus serve captures) into
collapsed-stack text or a d3-flamegraph HTML page.  ``obs slo`` evaluates
declarative SLOs (multi-window burn rates) over a store's stream samples;
``--fail-on breach`` makes it a CI gate.

Benchmark baselines (:mod:`repro.obs.baseline`)::

    python -m repro bench compare CURRENT.jsonl [...] \
                    --baseline BENCH_baseline.json [--tolerance 25%]
                    [--min-seconds 0.01] [--report report.json]

Diffs bench ``--json-out`` JSONL against the committed baseline and exits
nonzero when a gated metric (``*_seconds`` lower-better, ``*speedup*``
higher-better) degrades beyond the tolerance.

Analysis service (:mod:`repro.serve`)::

    python -m repro serve [--host H] [--port P] [--workers N]
                    [--max-inflight N] [--cache-bytes B] [--cache-ttl S]
                    [--cache-shards N] [--batch-window S]
                    [--spill-threshold N] [--jobs-dir DIR] [--manifest FILE]
                    [--trace-log FILE] [--no-job-autostart]
                    [--job-lease-batch N]
    python -m repro jobs DIR_OR_STORE [--id JOB_ID]

``serve`` runs the HTTP/JSON analysis server (endpoints and wire contract
in ``docs/SERVING.md``); ``jobs`` inspects the background-job stores a
server spilled heavy stability maps into — a jobs directory lists every
job, a single store (or ``--id``) prints its full poll status.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro._errors import ReproError, ValidationError


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="HTM-based PLL loop analysis report"
    )
    parser.add_argument(
        "--ratio", type=float, default=0.1, help="omega_UG / omega_0 (default 0.1)"
    )
    parser.add_argument(
        "--separation", type=float, default=4.0, help="zero/pole separation (default 4)"
    )
    parser.add_argument(
        "--omega0", type=float, default=2 * np.pi, help="reference frequency rad/s"
    )
    parser.add_argument("--icp", type=float, default=1e-3, help="charge-pump current A")
    parser.add_argument("--leakage", type=float, default=0.0, help="pump leakage A")
    parser.add_argument("--plots", action="store_true", help="ASCII Bode chart of A and lambda")
    parser.add_argument("--symbolic", action="store_true", help="print symbolic closed forms")

    commands = parser.add_subparsers(dest="command")
    campaign = commands.add_parser(
        "campaign", help="parameter-space campaign engine (run/resume/status)"
    )
    actions = campaign.add_subparsers(dest="campaign_command", required=True)

    def policy_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--workers", type=int, default=1, help="process count (1 = serial)")
        sub.add_argument("--timeout", type=float, default=None, help="per-point timeout (s)")
        sub.add_argument("--retries", type=int, default=0, help="extra attempts per failed point")
        sub.add_argument("--backoff", type=float, default=0.0, help="retry backoff factor (s)")
        sub.add_argument("--chunk-size", type=int, default=4, help="in-flight futures per worker")
        sub.add_argument(
            "--checkpoint-every", type=int, default=25, help="points between fsynced checkpoints"
        )
        sub.add_argument("--quiet", action="store_true", help="suppress per-point progress")
        sub.add_argument(
            "--heartbeat-interval",
            type=float,
            default=5.0,
            help="seconds between worker heartbeat writes (default 5)",
        )
        sub.add_argument(
            "--no-heartbeats",
            action="store_true",
            help="disable heartbeats and the stall/straggler monitor",
        )
        sub.add_argument(
            "--stall-factor",
            type=float,
            default=3.0,
            help="stall threshold in heartbeat intervals (default 3)",
        )
        sub.add_argument(
            "--straggler-factor",
            type=float,
            default=4.0,
            help="straggler threshold vs the median point time (default 4)",
        )
        sub.add_argument(
            "--stall-action",
            choices=("flag", "retry"),
            default="flag",
            help="on stall: flag only, or speculatively re-dispatch (default flag)",
        )
        sub.add_argument(
            "--stream",
            action="store_true",
            help="stream metrics to <store>.stream.jsonl (or REPRO_OBS_STREAM=1)",
        )
        sub.add_argument(
            "--stream-path", default=None, help="explicit streaming-metrics JSONL path"
        )
        sub.add_argument(
            "--stream-interval",
            type=float,
            default=1.0,
            help="seconds between streaming samples (default 1)",
        )
        sub.add_argument(
            "--memory-budget-mb",
            type=float,
            default=None,
            help="per-point peak-RSS budget; points above it are flagged",
        )
        sub.add_argument(
            "--scheduler",
            choices=("auto", "serial", "pool", "lease"),
            default="auto",
            help="execution scheduler (default auto: pool when it pays off)",
        )
        sub.add_argument(
            "--batch-size",
            type=int,
            default=0,
            help="points per dispatch/lease batch (0 = auto)",
        )
        sub.add_argument(
            "--no-vectorize",
            action="store_true",
            help="disable vectorized batch adapters (scalar per-point path)",
        )
        sub.add_argument(
            "--lease-ttl",
            type=float,
            default=30.0,
            help="lease expiry horizon in seconds (lease scheduler)",
        )
        sub.add_argument(
            "--profile",
            action="store_true",
            help="sample worker stacks into <store>.profile/ shards "
            "(or REPRO_OBS_PROFILE=1); merge with `repro obs profile`",
        )

    run_cmd = actions.add_parser("run", help="run a campaign spec file")
    run_cmd.add_argument("spec", help="path to the campaign spec JSON")
    run_cmd.add_argument(
        "--out", default=None, help="result store path (default <spec>.results.jsonl)"
    )
    run_cmd.add_argument(
        "--overwrite", action="store_true", help="replace an existing result store"
    )
    policy_flags(run_cmd)

    resume_cmd = actions.add_parser("resume", help="complete a partially-run campaign")
    resume_cmd.add_argument("results", help="path to the JSONL result store")
    resume_cmd.add_argument(
        "--retry-failed", action="store_true", help="re-run terminally failed points too"
    )
    policy_flags(resume_cmd)

    init_cmd = actions.add_parser(
        "init", help="create a store + lease plan for multi-host workers"
    )
    init_cmd.add_argument("spec", help="path to the campaign spec JSON")
    init_cmd.add_argument(
        "--out", default=None, help="result store path (default <spec>.results.jsonl)"
    )
    init_cmd.add_argument(
        "--overwrite", action="store_true", help="replace an existing result store"
    )
    init_cmd.add_argument(
        "--batch-size", type=int, default=0, help="points per lease batch (0 = auto)"
    )

    worker_cmd = actions.add_parser(
        "worker", help="join a campaign as one elastic lease worker"
    )
    worker_cmd.add_argument("results", help="path to the shared JSONL result store")
    worker_cmd.add_argument(
        "--max-idle",
        type=float,
        default=None,
        help="leave after this many seconds with nothing claimable",
    )
    worker_cmd.add_argument(
        "--poll-interval",
        type=float,
        default=None,
        help="seconds between claim attempts when idle (default ttl/5)",
    )
    policy_flags(worker_cmd)

    status_cmd = actions.add_parser("status", help="print campaign progress")
    status_cmd.add_argument("results", help="path to the JSONL result store")

    watch_cmd = actions.add_parser(
        "watch", help="live dashboard over a (running) campaign store"
    )
    watch_cmd.add_argument("results", help="path to the JSONL result store")
    watch_cmd.add_argument(
        "--interval", type=float, default=2.0, help="refresh period in seconds"
    )
    watch_cmd.add_argument(
        "--once", action="store_true", help="render one frame and exit"
    )

    actions.add_parser("tasks", help="list registered task adapters")

    obs_cmd = commands.add_parser(
        "obs", help="observability reports: spans, counters, profiles"
    )
    obs_actions = obs_cmd.add_subparsers(dest="obs_command", required=True)

    def obs_source(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "source",
            nargs="+",
            help="campaign results JSONL (run with REPRO_OBS=1) or obs "
            "snapshot JSON file(s); multiple sources are merged",
        )

    summary_cmd = obs_actions.add_parser(
        "summary", help="per-stage span/counter/histogram report"
    )
    obs_source(summary_cmd)
    summary_cmd.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON object instead of text",
    )

    export_cmd = obs_actions.add_parser(
        "export", help="dump the merged obs snapshot"
    )
    obs_source(export_cmd)
    export_fmt = export_cmd.add_mutually_exclusive_group()
    export_fmt.add_argument(
        "--json", action="store_true", help="emit canonical JSON (the default)"
    )
    export_fmt.add_argument(
        "--csv", action="store_true", help="emit flat CSV (one row per bucket)"
    )
    export_fmt.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write Chrome Trace Event Format (chrome://tracing / Perfetto)",
    )
    export_cmd.add_argument(
        "--out", default=None, help="write to a file instead of stdout"
    )

    top_cmd = obs_actions.add_parser("top", help="hottest span buckets")
    obs_source(top_cmd)
    top_cmd.add_argument(
        "-n", "--count", type=int, default=10, help="buckets to list (default 10)"
    )
    top_cmd.add_argument(
        "--by",
        choices=("wall", "cpu", "count"),
        default="wall",
        help="ranking key (default wall)",
    )
    top_cmd.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON object instead of text",
    )

    trace_cmd = obs_actions.add_parser(
        "trace",
        help="merge distributed trace shards into one Chrome trace "
        "+ critical-path summary",
    )
    trace_cmd.add_argument(
        "store",
        help="campaign/job store JSONL; its <store>.trace/ shards, "
        "heartbeats, and stream samples are merged",
    )
    trace_cmd.add_argument(
        "--serve-log",
        action="append",
        default=[],
        metavar="FILE",
        help="also merge a serve-process span log (repeatable)",
    )
    trace_cmd.add_argument(
        "--trace-id",
        default=None,
        help="keep only events of this trace (default: all traces)",
    )
    trace_cmd.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the Chrome trace JSON to FILE (default <store>.trace.json)",
    )

    profile_cmd = obs_actions.add_parser(
        "profile",
        help="merge statistical-profiler shards into collapsed stacks "
        "or a flamegraph",
    )
    profile_cmd.add_argument(
        "store",
        help="campaign/job store JSONL (its <store>.profile/ shards are "
        "merged) or a single profile JSON file",
    )
    profile_cmd.add_argument(
        "--serve-profile",
        action="append",
        default=[],
        metavar="FILE",
        help="also merge a serve-process profile shard (repeatable)",
    )
    profile_cmd.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write collapsed stacks ('frame;frame count' lines) to FILE",
    )
    profile_cmd.add_argument(
        "--html",
        default=None,
        metavar="FILE",
        help="write a self-contained d3-flamegraph HTML page to FILE",
    )
    profile_cmd.add_argument(
        "--top",
        type=int,
        default=0,
        metavar="N",
        help="print the N hottest frames instead of collapsed stacks",
    )
    profile_cmd.add_argument(
        "--json", action="store_true", help="emit the merged profile as JSON"
    )

    slo_cmd = obs_actions.add_parser(
        "slo", help="evaluate SLO burn rates over a store (and CI gate)"
    )
    slo_cmd.add_argument(
        "source",
        help="campaign/job result store JSONL (burn rates are computed "
        "over its stream samples, else its terminal status)",
    )
    slo_cmd.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help="SLO definitions JSON (default: the built-in campaign SLOs)",
    )
    slo_cmd.add_argument(
        "--fail-on",
        choices=("breach",),
        default=None,
        help="exit 1 when any SLO is burning through its budget",
    )
    slo_cmd.add_argument(
        "--json", action="store_true", help="emit the evaluation as JSON"
    )

    health_cmd = obs_actions.add_parser(
        "health", help="numerical-health event report (and CI gate)"
    )
    obs_source(health_cmd)
    health_cmd.add_argument(
        "-n", "--worst", type=int, default=10, help="event buckets to list (default 10)"
    )
    health_cmd.add_argument(
        "--severity",
        choices=("info", "warning", "error"),
        default="info",
        help="hide events below this severity (default info)",
    )
    health_cmd.add_argument(
        "--fail-on",
        choices=("warning", "error"),
        default=None,
        help="exit 1 when events at or above this severity occurred",
    )

    bench_cmd = commands.add_parser(
        "bench", help="benchmark baseline tooling (compare)"
    )
    bench_actions = bench_cmd.add_subparsers(dest="bench_command", required=True)
    compare_cmd = bench_actions.add_parser(
        "compare", help="diff bench --json-out JSONL against a committed baseline"
    )
    compare_cmd.add_argument(
        "current", nargs="+", help="bench JSONL file(s) of the current run"
    )
    compare_cmd.add_argument(
        "--baseline", required=True, help="committed baseline JSONL (BENCH_*.json)"
    )
    compare_cmd.add_argument(
        "--tolerance",
        default="25%",
        help="allowed relative degradation, e.g. 25%% or 0.25 (default 25%%)",
    )
    compare_cmd.add_argument(
        "--min-seconds",
        type=float,
        default=0.01,
        help="noise floor: skip timings under this on both sides (default 0.01)",
    )
    compare_cmd.add_argument(
        "--report", default=None, help="also write the comparison as JSON to FILE"
    )

    serve_cmd = commands.add_parser(
        "serve", help="HTTP/JSON analysis server (micro-batching, caching)"
    )
    serve_cmd.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_cmd.add_argument(
        "--port", type=int, default=8080, help="bind port (0 = any free port)"
    )
    serve_cmd.add_argument(
        "--workers", type=int, default=4, help="compute thread-pool width"
    )
    serve_cmd.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help="admission bound; past it requests get 429 + Retry-After",
    )
    serve_cmd.add_argument(
        "--cache-shards", type=int, default=4, help="result-cache shard count"
    )
    serve_cmd.add_argument(
        "--cache-entries", type=int, default=256, help="cache entries per shard"
    )
    serve_cmd.add_argument(
        "--cache-bytes",
        type=int,
        default=None,
        help="total result-cache byte budget (default unbounded)",
    )
    serve_cmd.add_argument(
        "--cache-ttl",
        type=float,
        default=None,
        help="result-cache entry TTL in seconds (default no expiry)",
    )
    serve_cmd.add_argument(
        "--batch-window",
        type=float,
        default=0.005,
        help="micro-batching window in seconds (default 0.005)",
    )
    serve_cmd.add_argument(
        "--spill-threshold",
        type=int,
        default=64,
        help="stability-map cells beyond which the request becomes a job",
    )
    serve_cmd.add_argument(
        "--jobs-dir",
        default=None,
        help="directory for background-job stores (omitting disables jobs)",
    )
    serve_cmd.add_argument(
        "--manifest",
        default=None,
        help="server manifest path (default <jobs-dir>/server.manifest.json)",
    )
    serve_cmd.add_argument(
        "--trace-log",
        default=None,
        metavar="FILE",
        help="record span events (distributed tracing) to this JSONL file",
    )
    serve_cmd.add_argument(
        "--profile",
        action="store_true",
        help="run the statistical sampling profiler for the server's lifetime",
    )
    serve_cmd.add_argument(
        "--profile-hz",
        type=int,
        default=97,
        help="sampling rate for --profile and /v1/profilez (default 97)",
    )
    serve_cmd.add_argument(
        "--profile-log",
        default=None,
        metavar="PATH",
        help="flush the always-on profile to PATH (.json file or directory)",
    )
    serve_cmd.add_argument(
        "--slo-spec",
        default=None,
        metavar="FILE",
        help="SLO definitions JSON for /v1/sloz (default: serve SLOs)",
    )
    serve_cmd.add_argument(
        "--slo-interval",
        type=float,
        default=10.0,
        help="seconds between SLO burn-rate samples (default 10)",
    )
    serve_cmd.add_argument(
        "--no-job-autostart",
        action="store_true",
        help="prepare spilled jobs (store + manifest + lease plan) but leave "
        "execution to external `repro campaign worker` processes",
    )
    serve_cmd.add_argument(
        "--job-lease-batch",
        type=int,
        default=None,
        help="lease batch size frozen into prepared job plans",
    )

    jobs_cmd = commands.add_parser(
        "jobs", help="inspect the analysis server's background-job stores"
    )
    jobs_cmd.add_argument(
        "store", help="jobs directory (lists jobs) or one job store JSONL"
    )
    jobs_cmd.add_argument(
        "--id", default=None, help="job id to inspect within a jobs directory"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns an exit code."""
    args = build_parser().parse_args(argv)
    try:
        if getattr(args, "command", None) == "campaign":
            return _campaign(args)
        if getattr(args, "command", None) == "obs":
            return _obs(args)
        if getattr(args, "command", None) == "bench":
            return _bench(args)
        if getattr(args, "command", None) == "serve":
            return _serve(args)
        if getattr(args, "command", None) == "jobs":
            return _jobs(args)
        return _report(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout closed early (e.g. piped into `head`) — not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


# -- obs subcommand ----------------------------------------------------------------


def _obs(args) -> int:
    from repro import obs

    if args.obs_command == "trace":
        return _obs_trace(args)
    if args.obs_command == "profile":
        return _obs_profile(args)
    if args.obs_command == "slo":
        return _obs_slo(args)
    # Multiple sources (shard exports, per-host snapshots) merge into one
    # registry view — same associative merge the campaign coordinator uses.
    snapshot = obs.load_snapshot(args.source[0])
    for extra in args.source[1:]:
        snapshot = obs.merge_snapshots(snapshot, obs.load_snapshot(extra))
    if args.obs_command == "summary":
        if args.json:
            from repro.obs.report import summary_json

            print(json.dumps(summary_json(snapshot), sort_keys=True))
        else:
            print(obs.format_summary(snapshot))
        return 0
    if args.obs_command == "top":
        if args.json:
            from repro.obs.report import top_json

            print(json.dumps(top_json(snapshot, n=args.count, by=args.by), sort_keys=True))
        else:
            print(obs.format_top(snapshot, n=args.count, by=args.by))
        return 0
    if args.obs_command == "health":
        from repro.obs.health import format_health, max_severity, severity_rank

        print(format_health(snapshot, n=args.worst, min_severity=args.severity))
        if args.fail_on is not None:
            worst = max_severity(snapshot)
            if worst is not None and severity_rank(worst) >= severity_rank(
                args.fail_on
            ):
                print(
                    f"health gate: {worst} events present "
                    f"(--fail-on {args.fail_on})",
                    file=sys.stderr,
                )
                return 1
        return 0
    # export: --trace / --csv / --json (default)
    if args.trace is not None:
        Path(args.trace).write_text(obs.to_chrome_trace(snapshot) + "\n")
        print(f"wrote {args.trace}")
        return 0
    rendered = obs.to_csv(snapshot) if args.csv else obs.to_json(snapshot) + "\n"
    if args.out:
        Path(args.out).write_text(rendered)
        print(f"wrote {args.out}")
    else:
        print(rendered, end="")
    return 0


def _obs_trace(args) -> int:
    """Collector: merge a store's trace shards (+ serve logs) into one trace."""
    from repro.obs import trace as obs_trace

    store = Path(args.store)
    if not store.exists():
        raise ValidationError(f"no store at {store}")
    for log in args.serve_log:
        if not Path(log).exists():
            raise ValidationError(f"no serve log at {log}")
    document = obs_trace.build_chrome_trace(
        store, serve_logs=args.serve_log, trace_id=args.trace_id
    )
    if not document["traceEvents"]:
        print(
            f"no trace events for {store} — run with REPRO_OBS=1 "
            "(and a trace context) to record spans",
            file=sys.stderr,
        )
        return 1
    out = Path(args.out) if args.out else store.with_suffix(".trace.json")
    out.write_text(json.dumps(document, sort_keys=True) + "\n")
    hosts = document["otherData"]["hosts"]
    print(
        f"merged {len(document['traceEvents'])} events from "
        f"{len(hosts)} host(s) ({', '.join(hosts)}); "
        f"{len(document['traceIds'])} trace id(s)"
    )
    print(obs_trace.format_critical_path(document["criticalPath"]))
    print(f"wrote {out}")
    return 0


def _obs_profile(args) -> int:
    """Collector: merge a store's profile shards (+ serve captures)."""
    from repro.obs import profile as obs_profile

    store = Path(args.store)
    profiles = list(obs_profile.load_store_profiles(store))
    single = obs_profile.read_profile(store)
    if single is not None:
        profiles.append(single)
    for log in args.serve_profile:
        prof = obs_profile.read_profile(log)
        if prof is None:
            raise ValidationError(f"no profile at {log}")
        profiles.append(prof)
    if not profiles:
        print(
            f"no profile shards for {store} — run with --profile "
            "(or REPRO_OBS_PROFILE=1) to record samples",
            file=sys.stderr,
        )
        return 1
    merged = obs_profile.merge_profiles(profiles)
    if args.json:
        print(json.dumps(merged, sort_keys=True))
        return 0
    wrote = False
    if args.out:
        Path(args.out).write_text(obs_profile.to_collapsed(merged))
        print(f"wrote {args.out}")
        wrote = True
    if args.html:
        Path(args.html).write_text(
            obs_profile.to_flamegraph_html(
                merged, title=f"repro profile: {store.name}"
            )
        )
        print(f"wrote {args.html}")
        wrote = True
    if wrote or args.top:
        workers = merged.get("workers") or []
        print(
            f"{merged['samples']} sample(s) at {merged['hz']} Hz from "
            f"{len(workers)} worker(s) ({merged['clock']} clock), "
            f"{merged['dropped']} dropped"
        )
        for entry in obs_profile.top_frames(merged, n=args.top or 5):
            print(
                f"  {entry['frame']}: {entry['fraction']:.0%} self "
                f"({entry['self']} sample(s))"
            )
        return 0
    print(obs_profile.to_collapsed(merged), end="")
    return 0


def _obs_slo(args) -> int:
    """Evaluate SLO burn rates over a store; optionally gate CI on breach."""
    from repro.obs import slo as obs_slo

    source = Path(args.source)
    if not source.exists():
        raise ValidationError(f"no store at {source}")
    definitions = obs_slo.load_slo_spec(args.spec) if args.spec else None
    result = obs_slo.evaluate_store(source, definitions)
    if args.json:
        print(json.dumps(result, sort_keys=True))
    else:
        print(obs_slo.format_slo_report(result))
    if args.fail_on == "breach" and result["breach"]:
        print("slo gate: budget burn breach (--fail-on breach)", file=sys.stderr)
        return 1
    return 0


# -- bench subcommand --------------------------------------------------------------


def _bench(args) -> int:
    from repro.obs.baseline import (
        compare_benchmarks,
        load_bench_lines,
        parse_tolerance,
    )

    baseline = load_bench_lines([args.baseline])
    current = load_bench_lines(args.current)
    comparison = compare_benchmarks(
        baseline,
        current,
        tolerance=parse_tolerance(args.tolerance),
        min_seconds=args.min_seconds,
        baseline_label=args.baseline,
    )
    print(comparison.summary())
    if args.report:
        Path(args.report).write_text(comparison.to_json() + "\n")
        print(f"report: {args.report}")
    return 0 if comparison.ok else 1


# -- serve / jobs subcommands ------------------------------------------------------


def _serve(args) -> int:
    import asyncio

    from repro.serve import AnalysisServer, ServerConfig

    if not 0 <= args.port <= 65535:
        raise ValidationError(f"port must be in [0, 65535], got {args.port}")
    if args.workers < 1:
        raise ValidationError(f"--workers must be >= 1, got {args.workers}")
    if args.max_inflight < 1:
        raise ValidationError(
            f"--max-inflight must be >= 1, got {args.max_inflight}"
        )
    if args.cache_bytes is not None and args.cache_bytes < 1:
        raise ValidationError(
            f"--cache-bytes must be positive, got {args.cache_bytes}"
        )
    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_inflight=args.max_inflight,
        cache_shards=args.cache_shards,
        cache_entries=args.cache_entries,
        cache_bytes=args.cache_bytes,
        cache_ttl=args.cache_ttl,
        batch_window=args.batch_window,
        spill_threshold=args.spill_threshold,
        jobs_dir=args.jobs_dir,
        manifest_path=args.manifest,
        trace_log=args.trace_log,
        job_autostart=not args.no_job_autostart,
        job_lease_batch=args.job_lease_batch,
        profile=args.profile,
        profile_hz=args.profile_hz,
        profile_log=args.profile_log,
        slo_spec=args.slo_spec,
        slo_interval=args.slo_interval,
    )
    server = AnalysisServer(config)

    async def _run() -> None:
        await server.start()
        print(
            f"repro serve: http://{config.host}:{server.port} "
            f"({config.workers} workers, {config.max_inflight} in-flight max, "
            f"jobs {'at ' + config.jobs_dir if config.jobs_dir else 'disabled'})"
        )
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("repro serve: stopped")
    except OSError as exc:  # bind failure: port in use, bad address, ...
        raise ValidationError(
            f"cannot bind {args.host}:{args.port}: {exc}"
        ) from None
    return 0


def _jobs(args) -> int:
    from repro.campaign.watch import poll_store

    path = Path(args.store)
    if not path.exists():
        raise ValidationError(f"no jobs directory or store at {path}")
    if args.id is not None:
        if not path.is_dir():
            raise ValidationError(
                f"--id needs a jobs directory, but {path} is a file"
            )
        path = path / f"{args.id}.jsonl"
        if not path.exists():
            raise ValidationError(f"no job {args.id!r} in {path.parent}")

    if path.is_dir():
        stores = [
            p
            for p in sorted(path.glob("*.jsonl"))
            if not p.name.endswith(".stream.jsonl")
        ]
        if not stores:
            print(f"no jobs in {path}")
            return 0
        for store in stores:
            try:
                status = poll_store(store)
            except ReproError as exc:
                print(f"{store.stem}: unreadable ({exc})")
                continue
            state = "complete" if status["complete"] else "running/partial"
            print(
                f"{store.stem}: {state} — {status['done']} ok, "
                f"{status['failed']} failed, {status['pending']} pending "
                f"of {status['points']} [{status['task']}]"
            )
        return 0

    print(json.dumps(poll_store(path), indent=2, sort_keys=True, default=str))
    return 0


# -- campaign subcommand -----------------------------------------------------------


def _policy_from_args(args) -> "ExecutionPolicy":
    from repro.campaign import ExecutionPolicy

    return ExecutionPolicy(
        workers=args.workers,
        chunk_size=args.chunk_size,
        timeout=args.timeout,
        retries=args.retries,
        backoff=args.backoff,
        checkpoint_every=args.checkpoint_every,
        heartbeat_interval=(
            None if args.no_heartbeats else args.heartbeat_interval
        ),
        stall_factor=args.stall_factor,
        straggler_factor=args.straggler_factor,
        stall_action=args.stall_action,
        stream_interval=args.stream_interval,
        memory_budget_mb=args.memory_budget_mb,
        scheduler=args.scheduler,
        batch_size=args.batch_size,
        vectorize=not args.no_vectorize,
        lease_ttl=args.lease_ttl,
        profile=args.profile,
    )


def _stream_path_from_args(args, store_path) -> "Path | None":
    if args.stream_path:
        return Path(args.stream_path)
    if args.stream:
        from repro.obs.stream import stream_path

        return stream_path(store_path)
    return None  # REPRO_OBS_STREAM=1 still turns streaming on downstream


def _progress_printer(quiet: bool):
    if quiet:
        return None

    def progress(record, telemetry) -> None:
        total = telemetry.total_points
        mark = "ok" if record["status"] == "ok" else "FAILED"
        print(
            f"[{telemetry.processed + telemetry.skipped}/{total}] "
            f"{record['id']} {mark} ({record['elapsed']:.2f} s)"
        )

    return progress


def _campaign(args) -> int:
    from repro.campaign import (
        available_tasks,
        campaign_status,
        resume_campaign,
        run_campaign,
    )

    if args.campaign_command == "tasks":
        for name, doc in available_tasks().items():
            print(f"{name:>18}  {doc}")
        return 0

    if args.campaign_command == "watch":
        from repro.campaign.watch import watch

        return watch(args.results, interval=args.interval, once=args.once)

    if args.campaign_command == "init":
        from repro.campaign import CampaignSpec
        from repro.campaign.lease import DEFAULT_LEASE_BATCH, ensure_plan, lease_dir
        from repro.campaign.store import ResultStore

        spec_path = Path(args.spec)
        try:
            spec_data = json.loads(spec_path.read_text())
        except FileNotFoundError:
            raise ValidationError(f"no campaign spec at {spec_path}") from None
        except json.JSONDecodeError as exc:
            raise ValidationError(f"{spec_path} is not valid JSON: {exc}") from None
        spec = CampaignSpec.from_json(spec_data)
        out = (
            Path(args.out)
            if args.out
            else spec_path.with_suffix(".results.jsonl")
        )
        ResultStore.create(out, spec, overwrite=args.overwrite)
        plan = ensure_plan(
            lease_dir(out), spec, args.batch_size or DEFAULT_LEASE_BATCH
        )
        from repro.campaign import ExecutionPolicy
        from repro.obs import manifest as obs_manifest

        obs_manifest.write_manifest(
            obs_manifest.manifest_path(out),
            obs_manifest.build_manifest(
                spec,
                ExecutionPolicy(scheduler="lease", batch_size=args.batch_size),
            ),
        )
        print(
            f"initialized {out}: {plan['points']} point(s) in "
            f"{len(plan['batches'])} lease batch(es)"
        )
        print(f"launch workers with: repro campaign worker {out}")
        return 0

    if args.campaign_command == "worker":
        from repro.campaign.lease import run_worker

        report = run_worker(
            args.results,
            policy=_policy_from_args(args),
            max_idle=args.max_idle,
            poll_interval=args.poll_interval,
            progress=_progress_printer(args.quiet),
            stream_to=_stream_path_from_args(args, args.results),
        )
        print(report.telemetry.summary())
        print(
            f"worker {report.worker}: {report.batches_done} batch(es), "
            f"{report.points_done} ok, {report.points_failed} failed, "
            f"{report.reclaims} reclaim(s), {report.duplicates} duplicate(s)"
            + (" · wrote final summary" if report.finalized else "")
        )
        return 0 if report.points_failed == 0 else 1

    if args.campaign_command == "status":
        status = campaign_status(args.results)
        print(f"campaign: {status['name']} (task {status['task']})")
        print(
            f"points:   {status['done']} ok, {status['failed']} failed, "
            f"{status['pending']} pending of {status['points']}"
            + (
                f" (merged across {status['shards']} worker shard(s))"
                if status.get("shards")
                else ""
            )
        )
        print(f"complete: {status['complete']}")
        summary = status.get("summary")
        if summary:
            cache = summary.get("cache") or {}
            print(
                f"last run: {summary.get('mode')} x{summary.get('workers')} "
                f"in {summary.get('wall_seconds', 0.0):.2f} s, cache "
                f"{cache.get('hits', 0)}h/{cache.get('misses', 0)}m over "
                f"{cache.get('worker_processes', 0)} worker(s)"
            )
        manifest = status.get("manifest")
        if manifest:
            print(
                f"manifest: spec {manifest.get('spec_hash')} · "
                f"run #{manifest.get('runs', 1)} · "
                f"repro {manifest.get('package_version')} · "
                f"python {manifest.get('python')}"
                + (
                    f" · git {manifest['git_sha']}"
                    if manifest.get("git_sha")
                    else ""
                )
            )
        return 0 if status["complete"] else 1

    if args.campaign_command == "run":
        from repro.campaign import CampaignSpec

        spec_path = Path(args.spec)
        try:
            spec_data = json.loads(spec_path.read_text())
        except FileNotFoundError:
            raise ValidationError(f"no campaign spec at {spec_path}") from None
        except json.JSONDecodeError as exc:
            raise ValidationError(f"{spec_path} is not valid JSON: {exc}") from None
        spec = CampaignSpec.from_json(spec_data)
        out = (
            Path(args.out)
            if args.out
            else spec_path.with_suffix(".results.jsonl")
        )
        result = run_campaign(
            spec,
            out,
            policy=_policy_from_args(args),
            progress=_progress_printer(args.quiet),
            overwrite=args.overwrite,
            stream_path=_stream_path_from_args(args, out),
        )
    else:  # resume
        result = resume_campaign(
            args.results,
            policy=_policy_from_args(args),
            progress=_progress_printer(args.quiet),
            retry_failed=args.retry_failed,
            stream_path=_stream_path_from_args(args, args.results),
        )

    print(result.telemetry.summary())
    if result.store_path is not None:
        print(f"results: {result.store_path}")
        if result.telemetry.obs_snapshot() is not None:
            print(f"obs: spans recorded — `repro obs summary {result.store_path}`")
            if result.telemetry.health_counts():
                print(
                    f"health: events recorded — "
                    f"`repro obs health {result.store_path}`"
                )
    return 0 if not result.failed_records else 1


def _report(args) -> int:
    from repro.baselines.zdomain import closed_loop_z, sampled_open_loop
    from repro.blocks.chargepump import ChargePump
    from repro.pll.architecture import PLL
    from repro.pll.closedloop import ClosedLoopHTM
    from repro.pll.design import design_typical_loop, shape_phase_margin_deg
    from repro.pll.margins import compare_margins
    from repro.simulator.floquet import floquet_multipliers

    omega0 = args.omega0
    base = design_typical_loop(
        omega0=omega0,
        omega_ug=args.ratio * omega0,
        separation=args.separation,
        charge_pump_current=args.icp,
    )
    pll = base
    if args.leakage > 0:
        pll = PLL(
            pfd=base.pfd,
            charge_pump=ChargePump(args.icp, leakage=args.leakage),
            filter_impedance=base.filter_impedance,
            vco=base.vco,
        )

    print(pll.describe())
    print(f"target: wUG/w0 = {args.ratio:g}, separation {args.separation:g} "
          f"(LTI PM {shape_phase_margin_deg(args.separation):.2f} deg)")
    print("-" * 64)

    try:
        margins = compare_margins(pll)
        print(margins.summary())
    except ReproError as exc:
        print(f"effective margins: not measurable ({exc})")

    cz = closed_loop_z(sampled_open_loop(base))
    poles = np.sort_complex(cz.poles())
    print(f"z-domain closed-loop poles: {np.round(poles, 4)}")
    print(f"z-domain stable: {cz.is_stable()}")

    flo = floquet_multipliers(base)
    print(f"Floquet multipliers:        {np.round(np.sort_complex(flo.multipliers), 4)}")
    print(
        f"Floquet stable: {flo.is_stable} "
        f"(spectral radius {flo.spectral_radius:.4f})"
    )

    from repro.pll.poles import find_closed_loop_poles

    s_poles = find_closed_loop_poles(base)
    print("s-domain Floquet exponents (roots of 1 + lambda(s)):")
    for pole in s_poles:
        print(
            f"  s = {pole.s:.4f}  |e^sT| = {abs(pole.multiplier):.4f}"
            + ("  [UNSTABLE]" if not pole.is_stable else "")
        )

    if args.leakage > 0:
        from repro.pll.spurs import predict_reference_spurs

        pred = predict_reference_spurs(pll, harmonics=3)
        print("-" * 64)
        print(f"leakage {args.leakage:g} A -> static phase offset "
              f"{pred.static_phase_offset:.3e} s")
        for k in (1, 2, 3):
            print(f"  reference spur k={k}: {pred.spur_dbc(k, pll.vco.f0):.1f} dBc")

    if args.symbolic:
        from repro.symbolic import effective_gain_expression, open_loop_expression

        print("-" * 64)
        print("A(s)      =", open_loop_expression(base).render())
        print("lambda(s) =", effective_gain_expression(base).render())

    if args.plots:
        from repro.reporting.ascii_plot import AsciiPlot

        closed = ClosedLoopHTM(base)
        from repro.pll.openloop import lti_open_loop

        a = lti_open_loop(base)
        grid = np.logspace(-2, np.log10(0.49), 120) * omega0
        plot = AsciiPlot(
            width=70,
            height=14,
            log_x=True,
            title="|A| (a) vs |lambda| (L), dB",
            x_label="omega (rad/s)",
        )
        plot.add(grid, 20 * np.log10(np.abs(a.frequency_response(grid))), glyph="a", label="LTI A")
        plot.add(
            grid,
            20 * np.log10(np.abs(closed.effective_gain_response(grid))),
            glyph="L",
            label="effective lambda",
        )
        print("-" * 64)
        print(plot.render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
