"""Scheduler interface: how a campaign's pending points become records.

PR 2's executor hard-wired two execution paths (serial and process pool)
into ``_execute``.  Multi-host execution adds a third — the
shared-filesystem lease scheduler — and this module is the seam between
them: a :class:`Scheduler` drives a :class:`~repro.campaign.executor.
_Coordinator` (which owns retries, dedup, checkpoints and telemetry —
identical across schedulers) over the pending queue.

``ExecutionPolicy.scheduler`` selects one:

* ``"serial"`` — in-process, one point at a time.  The correctness
  oracle; also the automatic fallback for unpicklable tasks.
* ``"pool"`` — the PR 2/PR 6 ``ProcessPoolExecutor`` path with batched
  dispatch and liveness monitoring.
* ``"lease"`` — the multi-host path: the calling process becomes one
  lease worker against the shared store, and any number of additional
  ``repro campaign worker`` processes (on any host sharing the
  filesystem) join, steal and leave elastically.  Resolved in
  ``_execute`` before a coordinator exists, so it is not dispatched
  through this module's ``run`` (the worker owns its own telemetry,
  shard store, heartbeat and stream lifecycles — see
  :mod:`repro.campaign.lease`).
* ``"auto"`` — ``pool`` when it pays off (more than one worker *and*
  more than one pending point *and* a picklable task), else ``serial``.
"""

from __future__ import annotations

import pickle
from collections import deque
from typing import TYPE_CHECKING, Any

from repro._errors import ValidationError
from repro.campaign.spec import CampaignSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.campaign.executor import ExecutionPolicy, _Coordinator

__all__ = [
    "PoolScheduler",
    "Scheduler",
    "SerialScheduler",
    "resolve_scheduler",
]


class Scheduler:
    """Drives pending points to terminal records through a coordinator."""

    #: Telemetry mode tag (``telemetry.mode``).
    name: str = "?"

    def run(
        self, coordinator: "_Coordinator", pending: "deque[tuple[int, str, dict, int]]"
    ) -> None:
        raise NotImplementedError


class SerialScheduler(Scheduler):
    """One point at a time in the calling process (the correctness oracle)."""

    name = "serial"

    def run(self, coordinator, pending) -> None:
        coordinator.run_serial(pending)


class PoolScheduler(Scheduler):
    """Batched ``ProcessPoolExecutor`` dispatch with serial fallback."""

    name = "pool"

    def run(self, coordinator, pending) -> None:
        coordinator.run_pool(pending)


def _is_picklable(obj: Any) -> bool:
    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False


def resolve_scheduler(
    spec: CampaignSpec,
    policy: "ExecutionPolicy",
    pending_count: int,
) -> tuple[Scheduler, list[str]]:
    """Pick the in-process scheduler for a run; returns (scheduler, notes).

    The lease scheduler never reaches here — ``_execute`` branches to the
    worker loop before building a coordinator; calling this with
    ``scheduler="lease"`` is a programming error.
    """
    if policy.scheduler == "lease":
        raise ValidationError(
            "lease scheduling is handled by repro.campaign.lease.run_worker"
        )
    notes: list[str] = []
    if policy.scheduler == "serial":
        return SerialScheduler(), notes
    want_pool = policy.scheduler == "pool" or (
        policy.workers > 1 and pending_count > 1
    )
    if want_pool and not isinstance(spec.task, str) and not _is_picklable(spec.task):
        notes.append(
            f"task {spec.task_name!r} is not picklable; using the serial path"
        )
        want_pool = False
    if want_pool:
        return PoolScheduler(), notes
    return SerialScheduler(), notes
