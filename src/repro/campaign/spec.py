"""Declarative parameter spaces and campaign specifications.

A *campaign* evaluates one task adapter (a callable mapping a parameter
dict to a dict of scalar metrics) over every point of a declarative
parameter space.  Spaces compose the three standard product structures:

* :class:`GridSpace` — cartesian product of named axes (row-major, last
  axis fastest), the Fig. 5-7 "map" shape;
* :class:`ZipSpace` — parallel iteration over equal-length axes, the
  "series of designed points" shape;
* :class:`ListSpace` — an explicit list of parameter dicts;
* ``space_a * space_b`` — cartesian product of two spaces with disjoint
  parameter names.

Every point has a **deterministic identity**: :func:`point_id` hashes the
canonical JSON encoding of the parameter dict, so the same point gets the
same id in every process, on every run, regardless of enumeration order or
``PYTHONHASHSEED``.  Point ids are what checkpoint/resume keys on — see
:mod:`repro.campaign.store`.

Values must be JSON-representable scalars (bool/int/float/str); numpy
scalars are coerced on construction so specs round-trip through JSON
exactly.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence

import numpy as np

from repro._errors import ValidationError

__all__ = [
    "CampaignSpec",
    "GridSpace",
    "ListSpace",
    "ParameterSpace",
    "ProductSpace",
    "ZipSpace",
    "canonical_params",
    "point_id",
]

_ID_DIGEST_SIZE = 8  # 16 hex chars


def _coerce_scalar(name: str, value: Any) -> Any:
    """Coerce a parameter value to a canonical JSON scalar."""
    if isinstance(value, bool):  # before int: bool is an int subclass
        return value
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        out = float(value)
        if not np.isfinite(out):
            raise ValidationError(f"parameter {name!r} must be finite, got {out}")
        return out
    if isinstance(value, str):
        return value
    raise ValidationError(
        f"parameter {name!r} must be a bool/int/float/str scalar, "
        f"got {type(value).__name__}"
    )


def canonical_params(params: Mapping[str, Any]) -> dict[str, Any]:
    """Sorted-key dict of coerced scalar values — the hashed/stored form."""
    if not params:
        raise ValidationError("a campaign point needs at least one parameter")
    return {
        name: _coerce_scalar(name, params[name]) for name in sorted(params)
    }


def point_id(params: Mapping[str, Any]) -> str:
    """Deterministic content hash of a parameter dict (16 hex chars).

    Stable across processes and sessions: keys are sorted and floats use
    their shortest round-trip ``repr`` via the canonical JSON encoding.
    """
    canon = canonical_params(params)
    encoded = json.dumps(canon, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(
        encoded.encode(), digest_size=_ID_DIGEST_SIZE
    ).hexdigest()


class ParameterSpace:
    """Abstract declarative set of parameter dicts.

    Concrete spaces implement :meth:`points` (deterministic enumeration
    order), ``__len__`` and :meth:`to_json`.
    """

    kind: str = ""

    def points(self) -> Iterator[dict[str, Any]]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return self.points()

    def __mul__(self, other: "ParameterSpace") -> "ProductSpace":
        if not isinstance(other, ParameterSpace):
            return NotImplemented
        return ProductSpace(self, other)

    def parameter_names(self) -> tuple[str, ...]:
        """Names every point of this space defines."""
        raise NotImplementedError

    def to_json(self) -> dict[str, Any]:
        """JSON-representable description (round-trips via :meth:`from_json`)."""
        raise NotImplementedError

    @staticmethod
    def from_json(data: Mapping[str, Any]) -> "ParameterSpace":
        """Rebuild a space from :meth:`to_json` output."""
        try:
            kind = data["kind"]
        except (KeyError, TypeError):
            raise ValidationError("space JSON needs a 'kind' field") from None
        try:
            factory = _SPACE_KINDS[kind]
        except KeyError:
            raise ValidationError(
                f"unknown space kind {kind!r}; known: {sorted(_SPACE_KINDS)}"
            ) from None
        return factory(data)


def _coerce_axes(
    axes: Mapping[str, Sequence[Any]],
) -> tuple[tuple[str, tuple[Any, ...]], ...]:
    if not axes:
        raise ValidationError("at least one axis is required")
    out = []
    for name, values in axes.items():
        values_t = tuple(_coerce_scalar(name, v) for v in values)
        if not values_t:
            raise ValidationError(f"axis {name!r} must not be empty")
        out.append((str(name), values_t))
    return tuple(out)


@dataclass(frozen=True)
class GridSpace(ParameterSpace):
    """Cartesian product of named axes (insertion order, last axis fastest)."""

    axes: tuple[tuple[str, tuple[Any, ...]], ...]
    kind: str = field(default="grid", init=False, repr=False)

    @classmethod
    def of(cls, **axes: Sequence[Any]) -> "GridSpace":
        """``GridSpace.of(ratio=[...], separation=[...])``."""
        return cls(_coerce_axes(axes))

    def parameter_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.axes)

    def points(self) -> Iterator[dict[str, Any]]:
        names = self.parameter_names()
        for combo in itertools.product(*(values for _, values in self.axes)):
            yield dict(zip(names, combo))

    def __len__(self) -> int:
        n = 1
        for _, values in self.axes:
            n *= len(values)
        return n

    def to_json(self) -> dict[str, Any]:
        return {"kind": "grid", "axes": {name: list(v) for name, v in self.axes}}


@dataclass(frozen=True)
class ZipSpace(ParameterSpace):
    """Parallel (zipped) iteration over equal-length axes."""

    axes: tuple[tuple[str, tuple[Any, ...]], ...]
    kind: str = field(default="zip", init=False, repr=False)

    def __post_init__(self):
        lengths = {len(values) for _, values in self.axes}
        if len(lengths) > 1:
            raise ValidationError(
                f"zip axes must share one length, got {sorted(lengths)}"
            )

    @classmethod
    def of(cls, **axes: Sequence[Any]) -> "ZipSpace":
        """``ZipSpace.of(ratio=[...], separation=[...])`` (equal lengths)."""
        return cls(_coerce_axes(axes))

    def parameter_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.axes)

    def points(self) -> Iterator[dict[str, Any]]:
        names = self.parameter_names()
        for combo in zip(*(values for _, values in self.axes)):
            yield dict(zip(names, combo))

    def __len__(self) -> int:
        return len(self.axes[0][1])

    def to_json(self) -> dict[str, Any]:
        return {"kind": "zip", "axes": {name: list(v) for name, v in self.axes}}


@dataclass(frozen=True)
class ListSpace(ParameterSpace):
    """An explicit list of parameter dicts (duplicates allowed)."""

    entries: tuple[tuple[tuple[str, Any], ...], ...]
    kind: str = field(default="list", init=False, repr=False)

    @classmethod
    def of(cls, points: Sequence[Mapping[str, Any]]) -> "ListSpace":
        """``ListSpace.of([{"ratio": 0.1}, {"ratio": 0.2}])``."""
        points = list(points)
        if not points:
            raise ValidationError("ListSpace needs at least one point")
        entries = tuple(
            tuple(sorted(canonical_params(p).items())) for p in points
        )
        return cls(entries)

    def parameter_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.entries[0])

    def points(self) -> Iterator[dict[str, Any]]:
        for entry in self.entries:
            yield dict(entry)

    def __len__(self) -> int:
        return len(self.entries)

    def to_json(self) -> dict[str, Any]:
        return {"kind": "list", "points": [dict(e) for e in self.entries]}


@dataclass(frozen=True)
class ProductSpace(ParameterSpace):
    """Cartesian product of two spaces with disjoint parameter names."""

    left: ParameterSpace
    right: ParameterSpace
    kind: str = field(default="product", init=False, repr=False)

    def __post_init__(self):
        overlap = set(self.left.parameter_names()) & set(
            self.right.parameter_names()
        )
        if overlap:
            raise ValidationError(
                f"product spaces must use disjoint parameter names, "
                f"both sides define {sorted(overlap)}"
            )

    def parameter_names(self) -> tuple[str, ...]:
        return self.left.parameter_names() + self.right.parameter_names()

    def points(self) -> Iterator[dict[str, Any]]:
        for a in self.left.points():
            for b in self.right.points():
                yield {**a, **b}

    def __len__(self) -> int:
        return len(self.left) * len(self.right)

    def to_json(self) -> dict[str, Any]:
        return {
            "kind": "product",
            "left": self.left.to_json(),
            "right": self.right.to_json(),
        }


_SPACE_KINDS: dict[str, Callable[[Mapping[str, Any]], ParameterSpace]] = {
    "grid": lambda d: GridSpace.of(**d["axes"]),
    "zip": lambda d: ZipSpace.of(**d["axes"]),
    "list": lambda d: ListSpace.of(d["points"]),
    "product": lambda d: ProductSpace(
        ParameterSpace.from_json(d["left"]), ParameterSpace.from_json(d["right"])
    ),
}


@dataclass(frozen=True)
class CampaignSpec:
    """A named campaign: a parameter space bound to a task adapter.

    Attributes
    ----------
    name:
        Human-readable campaign label (recorded in the store header).
    space:
        The :class:`ParameterSpace` to enumerate.
    task:
        Either a registry name (see :mod:`repro.campaign.tasks`) — required
        for JSON round-trips and CLI ``resume`` — or a direct callable
        ``params -> {metric: float}`` for library use.
    defaults:
        Fixed parameters merged *under* every point (a point overrides a
        default of the same name).  Point ids hash the merged dict.
    """

    name: str
    space: ParameterSpace
    task: str | Callable[[dict[str, Any]], dict[str, float]]
    defaults: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def create(
        cls,
        name: str,
        space: ParameterSpace,
        task: str | Callable[[dict[str, Any]], dict[str, float]],
        defaults: Mapping[str, Any] | None = None,
    ) -> "CampaignSpec":
        """Validating constructor (defaults given as a plain mapping)."""
        if not name:
            raise ValidationError("campaign name must be non-empty")
        if not isinstance(space, ParameterSpace):
            raise ValidationError(
                f"space must be a ParameterSpace, got {type(space).__name__}"
            )
        if not (isinstance(task, str) or callable(task)):
            raise ValidationError("task must be a registry name or a callable")
        canon = (
            tuple(sorted(canonical_params(defaults).items())) if defaults else ()
        )
        return cls(name=str(name), space=space, task=task, defaults=canon)

    @property
    def task_name(self) -> str:
        """The registry name, or the callable's ``__name__`` for display."""
        if isinstance(self.task, str):
            return self.task
        return getattr(self.task, "__name__", repr(self.task))

    def __len__(self) -> int:
        return len(self.space)

    def points(self) -> Iterator[tuple[str, dict[str, Any]]]:
        """Yield ``(point_id, merged_params)`` in deterministic order.

        Duplicate points (identical merged params appearing more than once
        in the space) get an occurrence-suffixed id ``<hash>-<k>`` so ids
        stay unique within the campaign while remaining deterministic.
        """
        defaults = dict(self.defaults)
        seen: dict[str, int] = {}
        for raw in self.space.points():
            merged = canonical_params({**defaults, **raw})
            base = point_id(merged)
            count = seen.get(base, 0)
            seen[base] = count + 1
            yield (base if count == 0 else f"{base}-{count}", merged)

    def to_json(self) -> dict[str, Any]:
        """JSON description (requires a registry-named task)."""
        if not isinstance(self.task, str):
            raise ValidationError(
                "only registry-named tasks serialize; got the callable "
                f"{self.task_name!r} — register it with "
                "repro.campaign.tasks.register_task"
            )
        return {
            "name": self.name,
            "task": self.task,
            "defaults": dict(self.defaults),
            "space": self.space.to_json(),
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        """Rebuild a spec from :meth:`to_json` output (or a spec file)."""
        try:
            name = data["name"]
            task = data["task"]
            space_data = data["space"]
        except (KeyError, TypeError):
            raise ValidationError(
                "campaign spec JSON needs 'name', 'task' and 'space' fields"
            ) from None
        if not isinstance(task, str):
            raise ValidationError("spec JSON 'task' must be a registry name")
        return cls.create(
            name=name,
            space=ParameterSpace.from_json(space_data),
            task=task,
            defaults=data.get("defaults") or None,
        )
