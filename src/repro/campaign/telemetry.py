"""Per-campaign run telemetry: counters, timing, worker cache visibility.

The executor feeds every terminal point record through
:meth:`CampaignTelemetry.record`; the telemetry object aggregates

* progress counters — points done / failed / retried / skipped (resume);
* wall time and summed per-point busy time, giving a worker-utilization
  estimate ``busy / (wall * workers)``;
* per-worker :class:`~repro.core.memo.GridEvalCache` deltas.  The grid
  cache is **per process**: each pool worker warms its own cold cache, so
  a 4-worker campaign pays up to 4x the cold-miss cost of a serial run.
  Telemetry surfaces this instead of hiding it — ``worker_caches`` lists
  each worker pid with its hit/miss totals, and ``cache`` aggregates them.

A progress callback ``(record, telemetry) -> None`` can be attached to a
run for live reporting; the CLI uses it for its checkpoint lines.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.obs import spans as _obs_spans
from repro.obs.health import max_severity, severity_counts
from repro.obs.registry import ObsRegistry, merge_snapshots

__all__ = ["CampaignTelemetry", "ProgressCallback", "WorkerCacheStats"]

ProgressCallback = Callable[[dict[str, Any], "CampaignTelemetry"], None]


@dataclass
class WorkerCacheStats:
    """Grid-cache counters accumulated from one worker process."""

    pid: int
    points: int = 0
    busy_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_bytes: int = 0  # peak byte-size estimate of this worker's cache
    rss_peak: int = 0  # peak RSS (bytes) seen in this worker's point records

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "pid": self.pid,
            "points": self.points,
            "busy_seconds": self.busy_seconds,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_bytes": self.cache_bytes,
            "rss_peak": self.rss_peak,
            "hit_rate": self.hit_rate,
        }


@dataclass
class CampaignTelemetry:
    """Mutable run counters for one campaign execution."""

    total_points: int
    workers: int = 1
    mode: str = "serial"  # "serial" | "pool" | "lease-worker" (+fallback tags)
    done: int = 0
    failed: int = 0
    retried: int = 0
    skipped: int = 0  # already complete at resume time
    timeouts: int = 0  # terminal failures whose error was a PointTimeout
    # -- live telemetry (heartbeat monitor / emitters; see executor) -----------
    stalls: int = 0  # stall flags raised by the liveness monitor
    stragglers: int = 0  # points flagged as elapsed > k * median
    straggler_ids: list[str] = field(default_factory=list)
    stall_duplicates: int = 0  # speculative re-runs whose result lost the race
    progress_errors: int = 0  # progress-callback exceptions (swallowed)
    stream_errors: int = 0  # stream-emitter exceptions (swallowed)
    heartbeat_errors: int = 0  # heartbeat-emitter exceptions (swallowed)
    timeout_degraded: int = 0  # points whose timeout could not be armed
    # -- lease scheduler (multi-host; see repro.campaign.lease) ----------------
    lease_claims: int = 0  # batch leases this worker claimed
    lease_reclaims: int = 0  # expired leases this worker took over
    lease_duplicates: int = 0  # batches finished after another worker marked done
    lease_lost: int = 0  # own-lease renewals that found the lease taken
    memory_over_budget: int = 0  # points whose peak RSS exceeded the budget
    rss_peak_bytes: int = 0  # worst per-point peak RSS seen across workers
    notes: list[str] = field(default_factory=list)
    _started: float = field(default_factory=time.perf_counter, repr=False)
    _wall: float | None = field(default=None, repr=False)
    _workers_seen: dict[int, WorkerCacheStats] = field(
        default_factory=dict, repr=False
    )
    # Merged per-point observability deltas (None until one arrives).
    _obs: dict[str, Any] | None = field(default=None, repr=False)

    # -- recording ---------------------------------------------------------------

    def record(self, record: Mapping[str, Any]) -> None:
        """Fold one terminal point record into the counters."""
        status = record.get("status")
        if status == "ok":
            self.done += 1
        elif status == "failed":
            self.failed += 1
            if (record.get("error") or {}).get("type") == "PointTimeout":
                self.timeouts += 1
        attempts = int(record.get("attempts", 1))
        if attempts > 1:
            self.retried += attempts - 1
        pid = int(record.get("worker", 0))
        stats = self._workers_seen.setdefault(pid, WorkerCacheStats(pid=pid))
        stats.points += 1
        stats.busy_seconds += float(record.get("elapsed", 0.0))
        cache = record.get("cache") or {}
        stats.cache_hits += int(cache.get("hits", 0))
        stats.cache_misses += int(cache.get("misses", 0))
        stats.cache_bytes = max(stats.cache_bytes, int(cache.get("bytes", 0)))
        mem = record.get("mem") or {}
        if mem:
            peak = int(mem.get("rss_peak", 0))
            stats.rss_peak = max(stats.rss_peak, peak)
            self.rss_peak_bytes = max(self.rss_peak_bytes, peak)
            if mem.get("over_budget"):
                self.memory_over_budget += 1
        if record.get("timeout_degraded"):
            self.timeout_degraded += 1
        obs_delta = record.get("obs")
        if obs_delta:
            self._obs = merge_snapshots(self._obs, obs_delta)

    def health_event(
        self,
        name: str,
        value: float,
        threshold: float,
        *,
        severity: str = "warning",
        direction: str = "above",
        message: str = "",
    ) -> None:
        """Fold a coordinator-side health event into the run's obs snapshot.

        Worker events travel inside point-record deltas; events observed
        *about* workers (stalls, stragglers, manifest drift) originate on
        the coordinator and are merged here so ``repro obs health`` sees
        one unified stream.  Like every probe, a no-op while observability
        is disabled.
        """
        if not _obs_spans.enabled():
            return
        registry = ObsRegistry()
        registry.record_event(
            name, severity, float(value), float(threshold), {},
            direction=direction, message=message,
        )
        self._obs = merge_snapshots(self._obs, registry.snapshot())

    def note(self, message: str) -> None:
        """Attach a free-form run note (e.g. serial-fallback reason)."""
        self.notes.append(message)

    def finish(self) -> "CampaignTelemetry":
        """Freeze the wall clock; later reads keep this duration."""
        if self._wall is None:
            self._wall = time.perf_counter() - self._started
        return self

    # -- derived quantities ------------------------------------------------------

    @property
    def wall_seconds(self) -> float:
        if self._wall is not None:
            return self._wall
        return time.perf_counter() - self._started

    @property
    def processed(self) -> int:
        return self.done + self.failed

    @property
    def busy_seconds(self) -> float:
        return sum(w.busy_seconds for w in self._workers_seen.values())

    @property
    def utilization(self) -> float:
        """Summed busy time over the worker-seconds the run had available."""
        denom = self.wall_seconds * max(self.workers, 1)
        return self.busy_seconds / denom if denom > 0 else 0.0

    @property
    def cache_hits(self) -> int:
        return sum(w.cache_hits for w in self._workers_seen.values())

    @property
    def cache_misses(self) -> int:
        return sum(w.cache_misses for w in self._workers_seen.values())

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def cache_bytes(self) -> int:
        """Summed per-worker peak cache footprints (byte-size estimate)."""
        return sum(w.cache_bytes for w in self._workers_seen.values())

    @property
    def worker_caches(self) -> list[WorkerCacheStats]:
        """Per-worker cache stats — one cold warm-up per entry."""
        return sorted(self._workers_seen.values(), key=lambda w: w.pid)

    def health_counts(self) -> dict[str, int]:
        """Numerical-health event counts per severity (empty when clean)."""
        return severity_counts(self._obs)

    def obs_snapshot(self) -> dict[str, Any] | None:
        """Merged observability snapshot of the run, or ``None``.

        Present when the run recorded spans (``REPRO_OBS=1`` /
        ``repro.obs.enable()``): every worker's per-point deltas merged,
        plus coordinator-level retry/timeout counters.  This is what the
        store's ``summary`` record carries and what ``repro obs summary``
        reports.
        """
        if self._obs is None:
            return None
        registry = ObsRegistry()
        registry.merge(self._obs)
        registry.add("campaign.points_processed", float(self.processed), {})
        if self.retried:
            registry.add("campaign.retries", float(self.retried), {})
        if self.timeouts:
            registry.add("campaign.timeouts", float(self.timeouts), {})
        if self.stalls:
            registry.add("campaign.stalls", float(self.stalls), {})
        if self.stragglers:
            registry.add("campaign.stragglers", float(self.stragglers), {})
        if self.timeout_degraded:
            registry.add(
                "campaign.timeout_unavailable", float(self.timeout_degraded), {}
            )
        if self.progress_errors:
            registry.add(
                "campaign.progress_errors", float(self.progress_errors), {}
            )
        return registry.snapshot()

    # -- reporting ---------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Picklable/JSON-able snapshot of every counter."""
        out = {
            "total_points": self.total_points,
            "workers": self.workers,
            "mode": self.mode,
            "done": self.done,
            "failed": self.failed,
            "retried": self.retried,
            "skipped": self.skipped,
            "timeouts": self.timeouts,
            "wall_seconds": self.wall_seconds,
            "busy_seconds": self.busy_seconds,
            "utilization": self.utilization,
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_rate": self.cache_hit_rate,
                "bytes": self.cache_bytes,
                "worker_processes": len(self._workers_seen),
            },
            "worker_caches": [w.to_dict() for w in self.worker_caches],
            "live": {
                "stalls": self.stalls,
                "stragglers": self.stragglers,
                "straggler_ids": list(self.straggler_ids),
                "stall_duplicates": self.stall_duplicates,
                "progress_errors": self.progress_errors,
                "stream_errors": self.stream_errors,
                "heartbeat_errors": self.heartbeat_errors,
                "timeout_degraded": self.timeout_degraded,
            },
            "lease": {
                "claims": self.lease_claims,
                "reclaims": self.lease_reclaims,
                "duplicates": self.lease_duplicates,
                "lost": self.lease_lost,
            },
            "memory": {
                "rss_peak_bytes": self.rss_peak_bytes,
                "over_budget": self.memory_over_budget,
            },
            "notes": list(self.notes),
        }
        obs_snapshot = self.obs_snapshot()
        if obs_snapshot is not None:
            out["obs"] = obs_snapshot
            counts = self.health_counts()
            if counts:
                out["health"] = {
                    "counts": counts,
                    "max_severity": max_severity(self._obs),
                }
        return out

    def summary(self) -> str:
        """Human-readable one-paragraph run report."""
        lines = [
            f"campaign: {self.processed}/{self.total_points} points "
            f"({self.done} ok, {self.failed} failed, {self.retried} retries, "
            f"{self.skipped} skipped) in {self.wall_seconds:.2f} s "
            f"[{self.mode}, {self.workers} worker(s), "
            f"{100 * self.utilization:.0f}% utilization]",
            f"grid cache: {self.cache_hits} hits / {self.cache_misses} misses "
            f"({100 * self.cache_hit_rate:.0f}% hit rate, "
            f"~{self.cache_bytes / 1e6:.1f} MB) across "
            f"{len(self._workers_seen)} worker process(es)"
            + (
                " — each pool worker warms its own cold cache"
                if len(self._workers_seen) > 1
                else ""
            ),
        ]
        if self.stalls or self.stragglers:
            live_parts = []
            if self.stalls:
                live_parts.append(f"{self.stalls} stall(s)")
            if self.stragglers:
                ids = ", ".join(self.straggler_ids[:4])
                extra = "..." if len(self.straggler_ids) > 4 else ""
                live_parts.append(f"{self.stragglers} straggler(s) [{ids}{extra}]")
            lines.append("live: " + ", ".join(live_parts))
        if self.lease_claims or self.lease_reclaims:
            lines.append(
                f"leases: {self.lease_claims} claimed, "
                f"{self.lease_reclaims} reclaimed, "
                f"{self.lease_duplicates} duplicate batch(es), "
                f"{self.lease_lost} lost renewal(s)"
            )
        if self.memory_over_budget:
            lines.append(
                f"memory: {self.memory_over_budget} point(s) over budget "
                f"(peak RSS {self.rss_peak_bytes / 1e6:.0f} MB)"
            )
        counts = self.health_counts()
        if counts.get("warning") or counts.get("error"):
            parts = [
                f"{counts[sev]} {sev}(s)"
                for sev in ("error", "warning")
                if counts.get(sev)
            ]
            lines.append(
                f"health: {', '.join(parts)} — inspect with `repro obs health <store>`"
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)
