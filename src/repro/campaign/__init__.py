"""repro.campaign — parallel, fault-tolerant design-space exploration.

Turns any per-design-point analysis into a scalable campaign: declare a
parameter space, bind it to a task adapter, and run it across a process
pool with per-point timeouts, bounded retries, an append-only JSONL
result store with crash-safe resume, and run telemetry.

Quick start::

    from repro.campaign import CampaignSpec, GridSpace, run_campaign

    spec = CampaignSpec.create(
        name="margins-map",
        space=GridSpace.of(ratio=[0.05, 0.1, 0.2], separation=[2.0, 4.0, 8.0]),
        task="margins",                       # registry name (tasks module)
    )
    result = run_campaign(spec, "margins.jsonl", workers=4,
                          timeout=30.0, retries=1)
    print(result.telemetry.summary())
    pm = result.metric("phase_margin_eff_deg")   # NaN where a point failed

Kill the process mid-run and finish later with::

    from repro.campaign import resume_campaign
    resume_campaign("margins.jsonl", workers=4)

or from the shell: ``python -m repro campaign resume margins.jsonl``.

Package layout: :mod:`~repro.campaign.spec` (parameter spaces, point
ids), :mod:`~repro.campaign.tasks` (adapter registry),
:mod:`~repro.campaign.executor` (pool/serial runner),
:mod:`~repro.campaign.store` (JSONL persistence),
:mod:`~repro.campaign.telemetry` (counters and cache visibility).
"""

from repro.campaign.executor import (
    CampaignResult,
    ExecutionPolicy,
    PointTimeout,
    campaign_status,
    resume_campaign,
    run_campaign,
)
from repro.campaign.spec import (
    CampaignSpec,
    GridSpace,
    ListSpace,
    ParameterSpace,
    ProductSpace,
    ZipSpace,
    point_id,
)
from repro.campaign.store import ResultStore, StoreCorruptError
from repro.campaign.tasks import available_tasks, get_task, register_task
from repro.campaign.telemetry import CampaignTelemetry
from repro.campaign.watch import poll_store
from repro.campaign.watch import render as render_watch
from repro.campaign.watch import watch as watch_campaign

__all__ = [
    "CampaignResult",
    "CampaignSpec",
    "CampaignTelemetry",
    "ExecutionPolicy",
    "GridSpace",
    "ListSpace",
    "ParameterSpace",
    "PointTimeout",
    "ProductSpace",
    "ResultStore",
    "StoreCorruptError",
    "ZipSpace",
    "available_tasks",
    "campaign_status",
    "get_task",
    "point_id",
    "poll_store",
    "register_task",
    "render_watch",
    "resume_campaign",
    "run_campaign",
    "watch_campaign",
]
