"""repro.campaign — parallel, fault-tolerant design-space exploration.

Turns any per-design-point analysis into a scalable campaign: declare a
parameter space, bind it to a task adapter, and run it across a process
pool with per-point timeouts, bounded retries, an append-only JSONL
result store with crash-safe resume, and run telemetry.

Quick start::

    from repro.campaign import CampaignSpec, GridSpace, run_campaign

    spec = CampaignSpec.create(
        name="margins-map",
        space=GridSpace.of(ratio=[0.05, 0.1, 0.2], separation=[2.0, 4.0, 8.0]),
        task="margins",                       # registry name (tasks module)
    )
    result = run_campaign(spec, "margins.jsonl", workers=4,
                          timeout=30.0, retries=1)
    print(result.telemetry.summary())
    pm = result.metric("phase_margin_eff_deg")   # NaN where a point failed

Kill the process mid-run and finish later with::

    from repro.campaign import resume_campaign
    resume_campaign("margins.jsonl", workers=4)

or from the shell: ``python -m repro campaign resume margins.jsonl``.

Scale past one machine with the shared-filesystem lease scheduler: any
number of independently launched workers (``repro campaign worker``, or
:func:`run_worker`) join one store, claim batch leases, steal expired
ones from dead workers, and leave elastically — see
:mod:`~repro.campaign.lease` and docs/CAMPAIGNS.md.

Package layout: :mod:`~repro.campaign.spec` (parameter spaces, point
ids), :mod:`~repro.campaign.tasks` (adapter registry),
:mod:`~repro.campaign.executor` (point execution, retries, batching),
:mod:`~repro.campaign.scheduler` (serial/pool scheduler seam),
:mod:`~repro.campaign.lease` (multi-host lease protocol),
:mod:`~repro.campaign.vectorized` (stacked batch adapters),
:mod:`~repro.campaign.store` (JSONL persistence + shard merge),
:mod:`~repro.campaign.telemetry` (counters and cache visibility).
"""

from repro.campaign.executor import (
    CampaignResult,
    ExecutionPolicy,
    PointTimeout,
    campaign_status,
    resume_campaign,
    run_campaign,
    run_point_batch,
)
from repro.campaign.lease import WorkerReport, run_worker
from repro.campaign.scheduler import (
    PoolScheduler,
    Scheduler,
    SerialScheduler,
    resolve_scheduler,
)
from repro.campaign.spec import (
    CampaignSpec,
    GridSpace,
    ListSpace,
    ParameterSpace,
    ProductSpace,
    ZipSpace,
    point_id,
)
from repro.campaign.store import ResultStore, StoreCorruptError
from repro.campaign.tasks import (
    available_tasks,
    get_batch_task,
    get_task,
    register_batch_task,
    register_task,
)
from repro.campaign.telemetry import CampaignTelemetry
from repro.campaign.watch import poll_store
from repro.campaign.watch import render as render_watch
from repro.campaign.watch import watch as watch_campaign

__all__ = [
    "CampaignResult",
    "CampaignSpec",
    "CampaignTelemetry",
    "ExecutionPolicy",
    "GridSpace",
    "ListSpace",
    "ParameterSpace",
    "PointTimeout",
    "PoolScheduler",
    "ProductSpace",
    "ResultStore",
    "Scheduler",
    "SerialScheduler",
    "StoreCorruptError",
    "WorkerReport",
    "ZipSpace",
    "available_tasks",
    "campaign_status",
    "get_batch_task",
    "get_task",
    "point_id",
    "poll_store",
    "register_batch_task",
    "register_task",
    "render_watch",
    "resolve_scheduler",
    "resume_campaign",
    "run_campaign",
    "run_point_batch",
    "run_worker",
    "watch_campaign",
]
