"""Shared-filesystem lease protocol: elastic multi-host campaign workers.

The durability substrate built in PRs 2–5 — append-only JSONL stores,
deterministic blake2b point ids, worker heartbeats, run manifests, and
first-terminal-record-wins dedup — already forms a coordination-light
work-stealing base.  This module adds the missing piece: a *lease*
protocol over a shared filesystem (NFS, a bind-mounted volume, or just
``/tmp`` for same-host workers), so independently launched worker
processes can join a campaign, steal abandoned work, and leave at any
time, with no coordinator process and no network protocol.

Layout (everything lives next to the store, like heartbeats/streams)::

    <store>                      # header + summary (never point records)
    <store>.shards/<worker>.jsonl   # one single-writer record shard per worker
    <store>.leases/plan.json        # frozen batch partition of the point set
    <store>.leases/<batch>.lease    # live claim on one batch
    <store>.leases/<batch>.done     # terminal marker: batch fully recorded
    <store>.leases/campaign.finalized  # summary-writer election marker

Protocol invariants
-------------------
* **Batches are deterministic.**  Points are partitioned in spec order
  into fixed batches; a batch's id is the blake2b hash of its point ids.
  The partition is frozen into ``plan.json`` by whichever worker gets
  there first (atomic ``O_CREAT|O_EXCL``), so workers launched with
  different flags agree on the work units.
* **Claims are atomic.**  A lease is claimed by exclusive file creation —
  the one filesystem primitive that is atomic essentially everywhere.
  Exactly one concurrent claimer wins.
* **Leases expire.**  A lease carries its owner's worker id and a
  timestamp renewed every ``ttl/3`` by a daemon thread.  A lease older
  than its ttl means the owner died (SIGKILL, host loss) or wedged; any
  worker may then *reclaim* it.  Reclaim is made exactly-once by renaming
  the lease file to a reclaimer-private name first: only one rename can
  succeed, and a renewal racing the rename simply recreates the owner's
  lease (the reclaimer re-reads what it renamed, sees it was fresh after
  all, and backs off).
* **Records dedup, not leases.**  Losing a lease race costs wasted work,
  never correctness: every point record lands in the worker's private
  shard, and readers merge shards with first-``ok``-wins semantics
  (:meth:`~repro.campaign.store.ResultStore.merged_point_records`).  A
  reclaimer re-reads the merged record set *after* claiming, so points
  the dead worker already recorded are not recomputed.
* **One summary writer.**  When the merged record set covers every point,
  workers race to create the ``campaign.finalized`` marker; the single
  winner appends the summary line to the main store.  The main store
  therefore has exactly two writers over its lifetime — the creator
  (header) and the finalize winner (summary) — which never overlap.

Every time-dependent primitive takes an explicit ``now`` so the protocol
is unit-testable with a frozen clock.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro._errors import ValidationError
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore
from repro.campaign.telemetry import CampaignTelemetry, ProgressCallback
from repro.obs import heartbeat as obs_heartbeat
from repro.obs import manifest as obs_manifest
from repro.obs import profile as obs_profile
from repro.obs import resources as obs_resources
from repro.obs import spans as obs
from repro.obs import stream as obs_stream
from repro.obs import trace as obs_trace

__all__ = [
    "DEFAULT_LEASE_BATCH",
    "WorkerReport",
    "batch_id",
    "done_batch_ids",
    "ensure_plan",
    "lease_dir",
    "lease_state",
    "mark_done",
    "partition_points",
    "read_lease",
    "release",
    "renew",
    "run_worker",
    "try_claim",
    "try_finalize",
    "try_reclaim",
]

#: Points per lease batch when ``ExecutionPolicy.batch_size`` is 0 (auto).
#: Larger than the pool default cap because a lease round-trip (claim +
#: renewals + done marker) costs several filesystem operations.
DEFAULT_LEASE_BATCH = 16

FINALIZE_MARKER = "campaign.finalized"


def lease_dir(store_path: str | Path) -> Path:
    """The lease directory for a result store path."""
    return Path(str(store_path) + ".leases")


# ---------------------------------------------------------------------------
# Batch partition / plan
# ---------------------------------------------------------------------------


def batch_id(point_ids: list[str]) -> str:
    """Deterministic batch identity: blake2b over the member point ids."""
    digest = hashlib.blake2b("\n".join(point_ids).encode(), digest_size=8)
    return digest.hexdigest()


def partition_points(
    points: "list[tuple[str, dict[str, Any]]]", batch_size: int
) -> list[dict[str, Any]]:
    """Partition spec points (in spec order) into fixed lease batches."""
    if batch_size < 1:
        raise ValidationError("lease batch_size must be >= 1")
    batches = []
    for start in range(0, len(points), batch_size):
        ids = [pid for pid, _params in points[start : start + batch_size]]
        batches.append({"id": batch_id(ids), "points": ids})
    return batches


def ensure_plan(
    directory: Path,
    spec: CampaignSpec,
    batch_size: int,
    trace: "obs_trace.TraceContext | None" = None,
) -> dict[str, Any]:
    """Load the frozen batch plan, creating it atomically if absent.

    The first worker to arrive freezes the partition (exclusive create);
    everyone else — including workers launched with a different
    ``batch_size`` — loads and uses the frozen one, so all workers agree
    on the lease units.

    ``trace`` is the originating request/campaign context; freezing it into
    the plan means every lease worker that later joins — on any host —
    inherits the same ``trace_id`` without any side channel.
    """
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "plan.json"
    if not path.exists():
        points = list(spec.points())
        plan = {
            "kind": "lease-plan",
            "batch_size": int(batch_size),
            "points": len(points),
            "batches": partition_points(points, batch_size),
        }
        if trace is not None:
            plan["trace"] = trace.to_dict()
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            pass  # another worker froze it first
        else:
            with os.fdopen(fd, "w") as handle:
                json.dump(plan, handle, sort_keys=True)
            return plan
    with path.open("r") as handle:
        plan = json.load(handle)
    if plan.get("kind") != "lease-plan" or "batches" not in plan:
        raise ValidationError(f"{path} is not a lease plan")
    return plan


# ---------------------------------------------------------------------------
# Lease primitives (all take explicit `now` for frozen-clock tests)
# ---------------------------------------------------------------------------


def _lease_path(directory: Path, bid: str) -> Path:
    return Path(directory) / f"{bid}.lease"


def _done_path(directory: Path, bid: str) -> Path:
    return Path(directory) / f"{bid}.done"


def _lease_record(bid: str, worker: str, ttl: float, now: float) -> dict[str, Any]:
    return {
        "kind": "lease",
        "batch": bid,
        "worker": worker,
        "host": obs_heartbeat.host_name(),
        "pid": os.getpid(),
        "time": float(now),
        "ttl": float(ttl),
    }


def try_claim(
    directory: Path, bid: str, worker: str, ttl: float, now: float | None = None
) -> bool:
    """Claim a free batch by exclusive lease-file creation.

    Returns ``False`` when someone else holds (or just claimed) it.
    """
    now = time.time() if now is None else now
    path = _lease_path(directory, bid)
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    with os.fdopen(fd, "w") as handle:
        json.dump(_lease_record(bid, worker, ttl, now), handle, sort_keys=True)
    return True


def read_lease(directory: Path, bid: str) -> dict[str, Any] | None:
    """The current lease record, ``None`` if free, ``{}`` if unreadable."""
    path = _lease_path(directory, bid)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return None
    except (OSError, ValueError):
        return {}
    return data if isinstance(data, dict) else {}


def renew(
    directory: Path, bid: str, worker: str, ttl: float, now: float | None = None
) -> bool:
    """Refresh this worker's lease timestamp (atomic replace).

    Recreates the lease if the file is momentarily missing — that happens
    only inside a reclaimer's rename window, and recreating makes the
    reclaimer (which re-reads the renamed copy) back off.  Returns
    ``False`` when the lease is now owned by someone else: the batch was
    genuinely reclaimed and this worker's in-flight work will be deduped
    by the record merge.
    """
    now = time.time() if now is None else now
    current = read_lease(directory, bid)
    if current is not None and current.get("worker") not in (None, worker):
        return False
    path = _lease_path(directory, bid)
    tmp = Path(directory) / f".{bid}.{worker}.renew"
    try:
        tmp.write_text(
            json.dumps(_lease_record(bid, worker, ttl, now), sort_keys=True),
            encoding="utf-8",
        )
        os.replace(tmp, path)
    except OSError:
        return False
    return True


def lease_state(
    directory: Path, bid: str, ttl: float, now: float | None = None
) -> str:
    """Classify a batch: ``"done"``, ``"free"``, ``"leased"`` or ``"expired"``.

    An unreadable lease file (torn write on a non-atomic filesystem) is
    conservatively ``"leased"``; the ttl recorded *in* the lease takes
    precedence over the caller's, so workers running with different
    ``lease_ttl`` flags honour the owner's promise.
    """
    now = time.time() if now is None else now
    if _done_path(directory, bid).exists():
        return "done"
    lease = read_lease(directory, bid)
    if lease is None:
        return "free"
    if not lease:
        return "leased"
    horizon = float(lease.get("ttl", ttl))
    age = now - float(lease.get("time", now))
    return "expired" if age > horizon else "leased"


def try_reclaim(
    directory: Path, bid: str, worker: str, ttl: float, now: float | None = None
) -> bool:
    """Take over an expired lease, exactly-once among concurrent reclaimers.

    Rename-first makes the takeover race-free: ``os.rename`` to a
    reclaimer-private name succeeds for exactly one process.  The winner
    re-reads what it renamed — if the owner renewed in the window between
    the staleness check and the rename, the copy is fresh, the reclaimer
    backs off (the owner's racing renewal recreated the lease file), and
    nothing is lost.  Otherwise the stale copy is discarded and the batch
    claimed normally.
    """
    now = time.time() if now is None else now
    current = read_lease(directory, bid)
    if current is None:
        return False  # released (or renamed by another reclaimer) already
    if current and now - float(current.get("time", now)) <= float(
        current.get("ttl", ttl)
    ):
        return False  # fresh: claimed/renewed since the caller's state check
    path = _lease_path(directory, bid)
    stale = Path(directory) / f".{bid}.stale.{worker}"
    try:
        os.rename(path, stale)
    except OSError:
        return False  # someone else is reclaiming, or the owner released
    try:
        data = json.loads(stale.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        data = {}
    horizon = float(data.get("ttl", ttl)) if data else ttl
    age = now - float(data.get("time", 0.0)) if data else float("inf")
    try:
        stale.unlink()
    except OSError:
        pass
    if age <= horizon:
        return False  # owner renewed mid-race; its renewal recreated the lease
    return try_claim(directory, bid, worker, ttl, now)


def release(directory: Path, bid: str, worker: str) -> None:
    """Drop this worker's lease (after the done marker is written)."""
    lease = read_lease(directory, bid)
    if lease and lease.get("worker") == worker:
        try:
            _lease_path(directory, bid).unlink()
        except OSError:
            pass


def mark_done(directory: Path, bid: str, worker: str) -> bool:
    """Write the batch's terminal marker; ``False`` if already marked.

    The loser of this race finished a batch someone else also finished —
    counted as a lease duplicate in telemetry; its records are deduped by
    the store merge.
    """
    try:
        fd = os.open(
            _done_path(directory, bid), os.O_CREAT | os.O_EXCL | os.O_WRONLY
        )
    except FileExistsError:
        return False
    with os.fdopen(fd, "w") as handle:
        json.dump({"batch": bid, "worker": worker, "time": time.time()}, handle)
    return True


def done_batch_ids(directory: Path) -> set[str]:
    """Batch ids with terminal markers."""
    directory = Path(directory)
    try:
        return {p.name[: -len(".done")] for p in directory.glob("*.done")}
    except OSError:
        return set()


def try_finalize(directory: Path, worker: str) -> bool:
    """Win (or lose) the summary-writer election for a complete campaign."""
    try:
        fd = os.open(
            Path(directory) / FINALIZE_MARKER,
            os.O_CREAT | os.O_EXCL | os.O_WRONLY,
        )
    except FileExistsError:
        return False
    with os.fdopen(fd, "w") as handle:
        json.dump({"worker": worker, "time": time.time()}, handle)
    return True


class _LeaseRenewer:
    """Daemon thread renewing the currently-held batch lease every ttl/3."""

    def __init__(self, directory: Path, worker: str, ttl: float):
        self.directory = Path(directory)
        self.worker = worker
        self.ttl = float(ttl)
        self.lost = 0
        self._held: str | None = None
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-lease-renewer", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def hold(self, bid: str) -> None:
        with self._lock:
            self._held = bid

    def drop(self) -> None:
        with self._lock:
            self._held = None

    def _run(self) -> None:
        while not self._stop.wait(self.ttl / 3.0):
            with self._lock:
                bid = self._held
            if bid is None:
                continue
            try:
                ok = renew(self.directory, bid, self.worker, self.ttl)
            except Exception:
                ok = False
            if not ok:
                self.lost += 1

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=self.ttl)


# ---------------------------------------------------------------------------
# Worker loop
# ---------------------------------------------------------------------------


@dataclass
class WorkerReport:
    """What one elastic worker did before leaving the campaign."""

    worker: str
    batches_done: int = 0
    points_done: int = 0
    points_failed: int = 0
    reclaims: int = 0
    duplicates: int = 0
    finalized: bool = False
    complete: bool = False  # campaign complete when this worker left
    telemetry: CampaignTelemetry = field(
        default_factory=lambda: CampaignTelemetry(total_points=0)
    )

    def to_dict(self) -> dict[str, Any]:
        return {
            "worker": self.worker,
            "batches_done": self.batches_done,
            "points_done": self.points_done,
            "points_failed": self.points_failed,
            "reclaims": self.reclaims,
            "duplicates": self.duplicates,
            "finalized": self.finalized,
            "complete": self.complete,
        }


def _worker_stream_sample(
    telemetry: CampaignTelemetry, worker: str, trace_id: str | None = None
):
    """Per-worker streaming sampler (samples carry the worker id)."""

    def sample() -> dict[str, Any]:
        out = {
            "worker": worker,
            "total": telemetry.total_points,
            "done": telemetry.done,
            "failed": telemetry.failed,
            "retried": telemetry.retried,
            "skipped": telemetry.skipped,
            "wall_seconds": telemetry.wall_seconds,
            "cache_hits": telemetry.cache_hits,
            "cache_misses": telemetry.cache_misses,
            "lease_claims": telemetry.lease_claims,
            "lease_reclaims": telemetry.lease_reclaims,
            "rss_bytes": obs_resources.current_rss_bytes(),
        }
        if trace_id is not None:
            out["trace_id"] = trace_id
        return out

    return sample


def run_worker(
    store_path: str | Path,
    *,
    policy: "Any | None" = None,
    spec: CampaignSpec | None = None,
    task: Any | None = None,
    worker: str | None = None,
    max_idle: float | None = None,
    poll_interval: float | None = None,
    progress: ProgressCallback | None = None,
    stream_to: str | Path | None = None,
    trace: "obs_trace.TraceContext | None" = None,
    **policy_overrides: Any,
) -> WorkerReport:
    """Join a campaign as one elastic lease worker; return when done.

    The worker loops: refresh the merged completed-point set, claim (or
    reclaim) the first available batch, evaluate its pending points
    in-process (vectorized when the task has a batch adapter, scalar
    retries/timeouts as everywhere else), write records to its private
    shard, mark the batch done, release the lease.  When no batch is
    claimable it idles on ``poll_interval`` until the campaign completes,
    another worker's lease expires, or ``max_idle`` seconds pass without
    any claim (elastic scale-down).

    On campaign completion the workers race a finalize election; the
    single winner appends the summary line to the main store.

    Trace context is resolved explicit ``trace`` -> frozen plan ->
    store manifest; when one is found it becomes this process's campaign
    context (so point records and health events are trace-tagged) and,
    with observability enabled, span events (``lease.claim``,
    ``lease.reclaim``, ``lease.idle``, ``lease.batch``, ``lease.worker``)
    are appended to this worker's shard under ``<store>.trace/``.
    """
    from collections import deque

    from repro.campaign.executor import _Coordinator, _make_policy

    policy = _make_policy(policy, policy_overrides)
    store = ResultStore.open(store_path)
    if spec is None:
        if task is None:
            spec = store.spec()
        else:
            from repro.campaign.spec import ParameterSpace

            data = store.spec_data()
            spec = CampaignSpec.create(
                name=data["name"],
                space=ParameterSpace.from_json(data["space"]),
                task=task,
                defaults=data.get("defaults") or None,
            )
    worker = worker or obs_heartbeat.worker_id()
    ttl = float(policy.lease_ttl)
    if poll_interval is None:
        poll_interval = max(0.05, min(1.0, ttl / 5.0))
    ldir = lease_dir(store.path)
    batch_size = policy.batch_size or DEFAULT_LEASE_BATCH
    plan = ensure_plan(ldir, spec, batch_size, trace=trace)

    # Trace resolution: explicit arg -> frozen plan -> store manifest.
    trace_ctx = trace
    if trace_ctx is None:
        trace_ctx = obs_trace.TraceContext.from_dict(plan.get("trace"))
    if trace_ctx is None:
        manifest = obs_manifest.load_manifest(obs_manifest.manifest_path(store.path))
        if manifest:
            trace_ctx = obs_trace.TraceContext.from_dict(manifest.get("trace"))
    prev_campaign_ctx = obs_trace.campaign_context()
    own_sink = False
    if trace_ctx is not None:
        obs_trace.set_campaign(trace_ctx)
        if obs.enabled() and not obs_trace.sink_configured():
            obs_trace.configure_sink(
                obs_trace.trace_dir(store.path), worker=worker
            )
            own_sink = True
    worker_ctx = trace_ctx.child() if trace_ctx is not None else None
    traced = worker_ctx is not None and obs_trace.sink_configured()

    all_points = list(spec.points())
    params_by_id = dict(all_points)
    index_by_id = {pid: i for i, (pid, _p) in enumerate(all_points)}

    completed = store.merged_completed_ids()
    telemetry = CampaignTelemetry(
        total_points=len(all_points),
        workers=1,
        mode="lease-worker",
        skipped=len(completed),
    )
    report = WorkerReport(worker=worker, telemetry=telemetry)
    shard = ResultStore.open_shard(store.path, worker, spec)
    coordinator = _Coordinator(spec.task, policy, telemetry, shard, progress)

    if policy.heartbeat_interval is not None:
        obs_heartbeat.ensure_emitter(
            obs_heartbeat.heartbeat_dir(store.path), policy.heartbeat_interval
        )
    stream_emitter: obs_stream.StreamEmitter | None = None
    if stream_to is not None or obs_stream.stream_requested():
        stream_file = (
            Path(stream_to)
            if stream_to is not None
            else obs_stream.stream_path(store.path)
        )
        stream_emitter = obs_stream.StreamEmitter(
            stream_file,
            _worker_stream_sample(
                telemetry,
                worker,
                trace_id=trace_ctx.trace_id if trace_ctx is not None else None,
            ),
            policy.stream_interval,
        )
        stream_emitter.start()
    obs_resources.configure(policy.memory_budget_mb)
    obs_resources.ensure_tracemalloc()
    # Sampling profiler: same ownership discipline as the trace sink —
    # an already-running profiler (serve process joining its own job) is
    # left alone; otherwise this worker samples itself and flushes its
    # shard to <store>.profile/<worker>.json after every batch.
    own_profiler = False
    own_profile_sink = False
    if (
        (policy.profile or obs_profile.profile_requested())
        and obs_profile.active() is None
    ):
        obs_profile.start()
        own_profiler = True
        if not obs_profile.sink_configured():
            obs_profile.configure_sink(
                obs_profile.profile_dir(store.path), worker=worker
            )
            own_profile_sink = True
    renewer = _LeaseRenewer(ldir, worker, ttl)
    renewer.start()

    def claim_one() -> dict[str, Any] | None:
        """Claim or reclaim the first available batch, else ``None``."""
        done_ids = done_batch_ids(ldir)
        for batch in plan["batches"]:
            bid = batch["id"]
            if bid in done_ids:
                continue
            if all(p in completed for p in batch["points"]):
                continue  # fully recorded; whoever ran it will mark it done
            state = lease_state(ldir, bid, ttl)
            if state in ("done", "leased"):
                continue
            claim_start = time.time() if traced else 0.0
            if state == "free":
                if not try_claim(ldir, bid, worker, ttl):
                    continue
                if traced:
                    obs_trace.record_event(
                        "lease.claim",
                        worker_ctx.child(),
                        claim_start,
                        time.time(),
                        batch=bid,
                    )
            else:  # expired
                if not try_reclaim(ldir, bid, worker, ttl):
                    continue
                if traced:
                    obs_trace.record_event(
                        "lease.reclaim",
                        worker_ctx.child(),
                        claim_start,
                        time.time(),
                        batch=bid,
                    )
                telemetry.lease_reclaims += 1
                report.reclaims += 1
                telemetry.note(f"reclaimed expired lease on batch {bid}")
            telemetry.lease_claims += 1
            return batch
        return None

    idle_since: float | None = None
    idle_wall: float | None = None
    run_start = time.time() if traced else 0.0
    try:
        while True:
            completed = store.merged_completed_ids()
            if len(completed) >= len(all_points):
                report.complete = True
                break
            batch = claim_one()
            if batch is None:
                now = time.monotonic()
                if idle_since is None:
                    idle_since = now
                    idle_wall = time.time() if traced else None
                elif max_idle is not None and now - idle_since > max_idle:
                    break  # elastic scale-down: nothing claimable for a while
                time.sleep(poll_interval)
                continue
            if traced and idle_wall is not None:
                obs_trace.record_event(
                    "lease.idle", worker_ctx.child(), idle_wall, time.time()
                )
            idle_since = None
            idle_wall = None
            bid = batch["id"]
            renewer.hold(bid)
            batch_start = time.time() if traced else 0.0
            pending = 0
            try:
                # Re-read the merged set *after* claiming: points a dead
                # worker already recorded must not be recomputed.
                completed = store.merged_completed_ids()
                entries = deque(
                    (index_by_id[pid], pid, dict(params_by_id[pid]), 1)
                    for pid in batch["points"]
                    if pid not in completed
                )
                pending = len(entries)
                coordinator.run_batch(entries)
                obs_profile.maybe_flush()
            finally:
                renewer.drop()
            if traced:
                obs_trace.record_event(
                    "lease.batch",
                    worker_ctx.child(),
                    batch_start,
                    time.time(),
                    batch=bid,
                    points=pending,
                )
            if mark_done(ldir, bid, worker):
                report.batches_done += 1
            else:
                telemetry.lease_duplicates += 1
                report.duplicates += 1
            release(ldir, bid, worker)
    finally:
        renewer.stop()
        telemetry.lease_lost += renewer.lost
        telemetry.heartbeat_errors += obs_heartbeat.stop_emitter()
        if stream_emitter is not None:
            stream_emitter.stop()
            telemetry.stream_errors += stream_emitter.errors
        if own_profiler:
            obs_profile.stop()  # flushes the final shard when a sink is set
            if own_profile_sink:
                obs_profile.close_sink()
        shard.close()
        if traced:
            now = time.time()
            if idle_wall is not None:
                obs_trace.record_event(
                    "lease.idle", worker_ctx.child(), idle_wall, now
                )
            obs_trace.record_event(
                "lease.worker",
                worker_ctx,
                run_start,
                now,
                batches=report.batches_done,
                reclaims=report.reclaims,
                complete=report.complete,
            )
        obs_trace.set_campaign(prev_campaign_ctx)
        if own_sink:
            obs_trace.close_sink()

    report.points_done = telemetry.done
    report.points_failed = telemetry.failed
    telemetry.finish()
    if report.complete and try_finalize(ldir, worker):
        report.finalized = True
        merged = store.merged_point_records()
        summary = telemetry.to_dict()
        summary["merged"] = {
            "done": sum(1 for r in merged if r["status"] == "ok"),
            "failed": sum(1 for r in merged if r["status"] == "failed"),
            "shards": len(store.shard_paths()),
            "finalized_by": worker,
        }
        # Election makes this the store's only post-header writer.
        writer = ResultStore.open(store.path)
        writer.append_summary(summary)
        writer.close()
    return report
