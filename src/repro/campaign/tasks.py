"""Built-in task adapters: existing analyses as one-line campaigns.

A *task adapter* is a picklable callable ``params -> {metric: float}``.
Registry-named adapters (via :func:`register_task`) are what makes a
campaign spec serializable — the JSONL store records the name, and
``repro campaign resume`` re-resolves it in a fresh process.

Common loop parameters (all adapters, merged from spec defaults + point):

``omega0``
    Reference angular frequency, rad/s (default ``2*pi``).
``ratio``
    Target ``omega_UG / omega0`` (alternatively pass ``omega_ug``).
``separation``
    Zero/pole separation of the Fig. 5 shape (default 4.0).
``charge_pump_current`` / ``vco_sensitivity``
    Forwarded to :func:`repro.pll.design.design_typical_loop`.

Adapters record NaN for a metric that fails on an individual design (no
unity crossing, say) — matching :func:`repro.pll.sweeps.sweep` — while a
failure of the *design itself* raises, which the executor captures as a
failed point with bounded retries.

A ``backend`` point parameter (merged from spec defaults + point, like any
other) installs a scoped compute-backend default around the whole point
evaluation — every structured grid evaluation inside the adapter picks it
up, and the chosen backend is recorded in the campaign run manifest.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Mapping

import numpy as np

from repro._errors import ValidationError
from repro.pll.architecture import PLL

__all__ = [
    "BatchTaskAdapter",
    "TaskAdapter",
    "available_tasks",
    "design_from_params",
    "get_batch_task",
    "get_task",
    "register_batch_task",
    "register_task",
    "registered_name",
]

TaskAdapter = Callable[[dict[str, Any]], dict[str, float]]

#: A batch adapter evaluates many points in one call.  It receives the list
#: of merged parameter dicts and returns one entry per point *in order*:
#: either the metric mapping or the exception the scalar adapter would have
#: raised for that point.  It must never raise for a single point's failure
#: — a raised exception means the whole batch is unusable and the executor
#: falls back to the scalar path for every point in it.
BatchTaskAdapter = Callable[[list[dict[str, Any]]], "list[dict[str, float] | Exception]"]

_REGISTRY: dict[str, TaskAdapter] = {}
_BATCH_REGISTRY: dict[str, BatchTaskAdapter] = {}


def register_task(name: str) -> Callable[[TaskAdapter], TaskAdapter]:
    """Decorator: register a task adapter under ``name``."""

    def deco(fn: TaskAdapter) -> TaskAdapter:
        if name in _REGISTRY:
            raise ValidationError(f"task {name!r} is already registered")
        _REGISTRY[name] = fn
        return fn

    return deco


def register_batch_task(name: str) -> Callable[[BatchTaskAdapter], BatchTaskAdapter]:
    """Decorator: register a vectorized batch adapter for task ``name``.

    The scalar adapter of the same name stays the correctness oracle: the
    batch adapter must be bitwise-identical to calling it per point, and
    the executor verifies nothing — tests do (``tests/unit/test_vectorized``).
    """

    def deco(fn: BatchTaskAdapter) -> BatchTaskAdapter:
        if name in _BATCH_REGISTRY:
            raise ValidationError(f"batch task {name!r} is already registered")
        _BATCH_REGISTRY[name] = fn
        return fn

    return deco


def get_batch_task(name: str | None) -> BatchTaskAdapter | None:
    """The vectorized batch adapter for a task name, or ``None``."""
    if name is None:
        return None
    # Importing the module registers the built-in batch adapters lazily so
    # scalar-only users never pay for it.
    from repro.campaign import vectorized  # noqa: F401

    return _BATCH_REGISTRY.get(name)


def get_task(name: str) -> TaskAdapter:
    """Resolve a registry name to its adapter."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValidationError(
            f"unknown task {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def registered_name(task: TaskAdapter) -> str | None:
    """Reverse lookup: the registry name of an adapter, if registered."""
    for name, fn in _REGISTRY.items():
        if fn is task:
            return name
    return None


def available_tasks() -> dict[str, str]:
    """``name -> first docstring line`` of every registered adapter."""
    return {
        name: (fn.__doc__ or "").strip().splitlines()[0]
        for name, fn in sorted(_REGISTRY.items())
    }


# -- shared parameter handling -----------------------------------------------------


def design_from_params(params: Mapping[str, Any]) -> PLL:
    """Design the typical loop described by a campaign parameter dict."""
    from repro.pll.design import design_typical_loop

    omega0 = float(params.get("omega0", 2 * math.pi))
    if "omega_ug" in params:
        omega_ug = float(params["omega_ug"])
    elif "ratio" in params:
        omega_ug = float(params["ratio"]) * omega0
    else:
        raise ValidationError(
            "task parameters need 'ratio' (omega_UG/omega0) or 'omega_ug'"
        )
    kwargs: dict[str, Any] = {}
    for key in ("charge_pump_current", "vco_sensitivity", "vco_f0"):
        if key in params:
            kwargs[key] = float(params[key])
    return design_typical_loop(
        omega0=omega0,
        omega_ug=omega_ug,
        separation=float(params.get("separation", 4.0)),
        **kwargs,
    )


def _task_backend(params: Mapping[str, Any]):
    """Scoped compute-backend default from an optional ``backend`` parameter.

    ``backend_scope(None)`` is a passthrough, so adapters can wrap their
    whole body unconditionally.
    """
    from repro.core.backend import backend_scope

    value = params.get("backend")
    return backend_scope(None if value is None else str(value))


def _nan_safe(metrics: Mapping[str, Callable[[PLL], float]], pll: PLL) -> dict[str, float]:
    out: dict[str, float] = {}
    for name, fn in metrics.items():
        try:
            out[name] = float(fn(pll))
        except Exception:
            out[name] = float("nan")
    return out


# -- built-in adapters -------------------------------------------------------------


@register_task("standard_metrics")
def standard_metrics_task(params: dict[str, Any]) -> dict[str, float]:
    """The `repro.pll.sweeps.standard_metrics` set on one designed loop."""
    from repro.pll.sweeps import standard_metrics

    with _task_backend(params):
        return _nan_safe(standard_metrics(), design_from_params(params))


@register_task("margins")
def margins_task(params: dict[str, Any]) -> dict[str, float]:
    """LTI vs effective margins (paper Fig. 7 quantities) on one loop."""
    from repro.pll.margins import compare_margins

    with _task_backend(params):
        pll = design_from_params(params)
        margins = compare_margins(pll, points=int(params.get("points", 4000)))
    return {
        "omega_ug_lti": margins.omega_ug_lti,
        "phase_margin_lti_deg": margins.phase_margin_lti_deg,
        "omega_ug_eff": margins.omega_ug_eff,
        "phase_margin_eff_deg": margins.phase_margin_eff_deg,
        "bandwidth_extension": margins.bandwidth_extension,
        "margin_degradation": margins.margin_degradation,
    }


@register_task("stability_cell")
def stability_cell_task(params: dict[str, Any]) -> dict[str, float]:
    """One (separation, ratio) cell of a stability map: z-poles + margins."""
    from repro.baselines.zdomain import closed_loop_z, sampled_open_loop
    from repro.pll.design import shape_phase_margin_deg
    from repro.pll.margins import compare_margins

    with _task_backend(params):
        pll = design_from_params(params)
        closed = closed_loop_z(sampled_open_loop(pll))
        poles = closed.poles()
        radius = float(np.max(np.abs(poles))) if poles.size else 0.0
        out = {
            "z_stable": 1.0 if closed.is_stable() else 0.0,
            "z_pole_radius": radius,
            "lti_phase_margin_deg": shape_phase_margin_deg(
                float(params.get("separation", 4.0))
            ),
        }
        out.update(
            _nan_safe(
                {
                    "phase_margin_eff_deg": lambda p: compare_margins(
                        p, points=int(params.get("points", 2000))
                    ).phase_margin_eff_deg,
                },
                pll,
            )
        )
    return out


@register_task("stability_limit")
def stability_limit_task(params: dict[str, Any]) -> dict[str, float]:
    """Max stable omega_UG/omega0 at one separation (z-domain bisection)."""
    from repro.baselines.zdomain import stability_limit_ratio
    from repro.pll.design import design_typical_loop, shape_phase_margin_deg

    separation = float(params["separation"])
    omega0 = float(params.get("omega0", 2 * math.pi))
    tol = float(params.get("tol", 1e-3))

    def designer(ratio: float) -> PLL:
        return design_typical_loop(
            omega0=omega0, omega_ug=ratio * omega0, separation=separation
        )

    with _task_backend(params):
        return {
            "stability_limit": stability_limit_ratio(designer, tol=tol),
            "lti_phase_margin_deg": shape_phase_margin_deg(separation),
        }


@register_task("band_map")
def band_map_task(params: dict[str, Any]) -> dict[str, float]:
    """Band-conversion summary of the truncated closed-loop HTM.

    Evaluates the dense closed-loop operator over a baseband grid (through
    the batched ``dense_grid`` path, so campaign telemetry shows the
    per-worker grid-cache traffic) and reports the baseband transfer peak
    plus the strongest band-conversion gain.
    """
    from repro.core.grid import FrequencyGrid
    from repro.core.operators import FeedbackOperator
    from repro.core.sweep import band_transfer_map
    from repro.pll.openloop import open_loop_operator

    with _task_backend(params):
        pll = design_from_params(params)
        order = int(params.get("order", 4))
        points = int(params.get("points", 32))
        grid = FrequencyGrid.baseband(pll.omega0, points=points)
        mags = band_transfer_map(
            FeedbackOperator(open_loop_operator(pll)), grid, order
        )
    center = order
    diag = mags[:, center, center]
    off = mags.copy()
    off[:, center, center] = 0.0
    return {
        "baseband_peak": float(np.max(diag)),
        "baseband_peak_db": float(20.0 * np.log10(np.max(diag))),
        "max_conversion_gain": float(np.max(off)),
    }


@register_task("design_summary")
def design_summary_task(params: dict[str, Any]) -> dict[str, float]:
    """Cheap per-design summary (loop constants only) — CI/smoke workhorse.

    Designs the loop and reports its headline constants without any grid
    evaluation, so thousand-point campaigns finish in seconds.  An optional
    ``min_seconds`` parameter sleeps to simulate heavier points — used by
    the distributed smoke test to hold leases long enough to SIGKILL a
    worker mid-batch.
    """
    import time as _time

    min_seconds = float(params.get("min_seconds", 0.0))
    with _task_backend(params):
        pll = design_from_params(params)
        out = {
            "omega0": float(pll.omega0),
            "period": float(pll.period),
            "ratio": float(params.get("ratio", float("nan"))),
            "separation": float(params.get("separation", 4.0)),
        }
    if min_seconds > 0:
        _time.sleep(min_seconds)
    return out


@register_task("noise_summary")
def noise_summary_task(params: dict[str, Any]) -> dict[str, float]:
    """Closed-loop noise figures of merit on one designed loop.

    White reference noise of PSD ``reference_level`` (default 1.0) folded
    from ``folded_bands`` bands (default 8) and a ``1/omega^2`` VCO noise
    anchored at the loop bandwidth; reports RMS jitter and the peak
    baseband transfer magnitude (peaking).
    """
    from repro.core.grid import FrequencyGrid
    from repro.pll.noise import NoiseAnalysis, flat_psd, one_over_f2_psd

    with _task_backend(params):
        pll = design_from_params(params)
        points = int(params.get("points", 200))
        analysis = NoiseAnalysis(pll)
        grid = FrequencyGrid.baseband(pll.omega0, points=points)
        ref_level = float(params.get("reference_level", 1.0))
        folded_bands = int(params.get("folded_bands", 8))
        vco_level = float(params.get("vco_level", ref_level))
        psd = analysis.output_psd(
            grid,
            reference_psd=flat_psd(ref_level),
            vco_psd=one_over_f2_psd(vco_level, pll.omega0),
            folded_bands=folded_bands,
        )
        h00 = np.abs(analysis.reference_transfer(grid))
        return {
            "rms_jitter": analysis.rms_jitter(grid, psd),
            "peak_transfer": float(np.max(h00)),
            "peaking_db": float(20.0 * np.log10(np.max(h00))),
            "folded_gain_dc": float(
                analysis.folded_reference_gain(grid, folded_bands)[0]
            ),
        }
