"""Vectorized batch adapters: N campaign points through one stacked evaluation.

PR 6 batched pool *dispatch* (several points per future), which removed the
per-point envelope overhead; these adapters remove the per-point *math*
overhead by evaluating a whole batch through stacked array operations
instead of N scalar closures.  Each batch adapter here is registered (via
:func:`repro.campaign.tasks.register_batch_task`) under the same name as a
scalar adapter, and the executor uses it transparently when
``ExecutionPolicy.vectorize`` is on.

The contract is strict — the scalar adapter is the correctness oracle:

* Output is **bitwise identical** to calling the scalar adapter per point.
  That is achievable because numpy elementwise ufuncs and per-row
  reductions on a stacked ``(K, ...)`` array produce exactly the same bits
  as the same operation on each row alone; anything that is not (sums in a
  different association order, say) must stay per-point.
* One point's failure is carried as its slot's exception — exactly the
  exception the scalar adapter would have raised — and never poisons the
  rest of the batch.
* A raised exception from the adapter itself marks the whole batch
  unusable; the executor then falls back to the scalar path per point, so
  a batch bug degrades performance, never correctness.

Points are grouped internally by the parameters that shape the evaluation
(grid bounds, point counts, order, backend); a batch mixing shapes simply
produces several smaller stacks.
"""

from __future__ import annotations

import math
from typing import Any, Callable

import numpy as np

from repro.campaign.tasks import (
    _task_backend,
    design_from_params,
    register_batch_task,
)

__all__ = ["band_map_batch", "margins_batch", "stability_cell_batch"]


def _grouped(
    batch: list[dict[str, Any]],
    key_fn: Callable[[dict[str, Any]], tuple],
) -> "dict[tuple, list[int]]":
    groups: dict[tuple, list[int]] = {}
    for i, params in enumerate(batch):
        try:
            key = key_fn(params)
        except Exception:
            key = ("__malformed__", i)
        groups.setdefault(key, []).append(i)
    return groups


def _margins_metrics(margins) -> dict[str, float]:
    return {
        "omega_ug_lti": margins.omega_ug_lti,
        "phase_margin_lti_deg": margins.phase_margin_lti_deg,
        "omega_ug_eff": margins.omega_ug_eff,
        "phase_margin_eff_deg": margins.phase_margin_eff_deg,
        "bandwidth_extension": margins.bandwidth_extension,
        "margin_degradation": margins.margin_degradation,
    }


@register_batch_task("margins")
def margins_batch(batch: list[dict[str, Any]]) -> list[dict[str, float] | Exception]:
    """Vectorized `margins`: stacked magnitude scan, shared response samples.

    Uses :func:`repro.pll.margins.compare_margins_batch`, which evaluates
    each design's ``A`` and ``lambda`` once (the scalar path evaluates each
    twice) and runs the unity-crossing scan across the stacked design axis.
    """
    from repro.pll.margins import compare_margins_batch

    results: list[dict[str, float] | Exception] = [None] * len(batch)  # type: ignore[list-item]
    groups = _grouped(
        batch,
        lambda p: (
            float(p.get("omega0", 2 * math.pi)),
            int(p.get("points", 4000)),
            p.get("backend"),
        ),
    )
    for indices in groups.values():
        points = int(batch[indices[0]].get("points", 4000))
        plls = []
        live: list[int] = []
        for i in indices:
            try:
                with _task_backend(batch[i]):
                    plls.append(design_from_params(batch[i]))
                live.append(i)
            except Exception as exc:
                results[i] = exc
        if not plls:
            continue
        with _task_backend(batch[live[0]]):
            outcomes = compare_margins_batch(plls, points=points)
        for i, outcome in zip(live, outcomes):
            results[i] = (
                outcome if isinstance(outcome, Exception) else _margins_metrics(outcome)
            )
    return results


@register_batch_task("band_map")
def band_map_batch(batch: list[dict[str, Any]]) -> list[dict[str, float] | Exception]:
    """Vectorized `band_map`: shared grid, stacked band-map reductions.

    Designs sharing ``(omega0, points, order)`` reuse one
    :class:`~repro.core.grid.FrequencyGrid`; their band-transfer maps are
    stacked into one ``(K, N, B, B)`` array whose per-design peak
    reductions run in a single vectorized pass (per-row max over a stacked
    array is bitwise identical to the scalar per-design max).
    """
    from repro.core.grid import FrequencyGrid
    from repro.core.operators import FeedbackOperator
    from repro.core.sweep import band_transfer_map
    from repro.pll.openloop import open_loop_operator

    results: list[dict[str, float] | Exception] = [None] * len(batch)  # type: ignore[list-item]
    groups = _grouped(
        batch,
        lambda p: (
            float(p.get("omega0", 2 * math.pi)),
            int(p.get("points", 32)),
            int(p.get("order", 4)),
        ),
    )
    for indices in groups.values():
        order = int(batch[indices[0]].get("order", 4))
        points = int(batch[indices[0]].get("points", 32))
        grid = None
        maps = []
        live: list[int] = []
        for i in indices:
            try:
                with _task_backend(batch[i]):
                    pll = design_from_params(batch[i])
                    if grid is None:
                        grid = FrequencyGrid.baseband(pll.omega0, points=points)
                    maps.append(
                        band_transfer_map(
                            FeedbackOperator(open_loop_operator(pll)), grid, order
                        )
                    )
                live.append(i)
            except Exception as exc:
                results[i] = exc
        if not maps:
            continue
        stack = np.stack(maps)  # (K, N, B, B)
        center = order
        diag = stack[:, :, center, center]  # (K, N)
        off = stack.copy()
        off[:, :, center, center] = 0.0
        diag_peak = np.max(diag, axis=1)  # per-design reductions, one pass
        off_peak = np.max(off, axis=(1, 2, 3))
        for row, i in enumerate(live):
            results[i] = {
                "baseband_peak": float(diag_peak[row]),
                "baseband_peak_db": float(20.0 * np.log10(diag_peak[row])),
                "max_conversion_gain": float(off_peak[row]),
            }
    return results


@register_batch_task("stability_cell")
def stability_cell_batch(batch: list[dict[str, Any]]) -> list[dict[str, float] | Exception]:
    """Vectorized `stability_cell`: per-point z-domain + grouped margin scans.

    The z-domain pole analysis is cheap and stays per-point; the expensive
    effective-margin scan runs through the grouped
    :func:`~repro.pll.margins.compare_margins_batch` path.  A design whose
    margin scan fails records ``nan`` for ``phase_margin_eff_deg`` exactly
    like the scalar adapter's ``_nan_safe`` wrapper.
    """
    from repro.baselines.zdomain import closed_loop_z, sampled_open_loop
    from repro.pll.design import shape_phase_margin_deg
    from repro.pll.margins import compare_margins_batch

    results: list[dict[str, float] | Exception] = [None] * len(batch)  # type: ignore[list-item]
    groups = _grouped(
        batch,
        lambda p: (
            float(p.get("omega0", 2 * math.pi)),
            int(p.get("points", 2000)),
            p.get("backend"),
        ),
    )
    for indices in groups.values():
        points = int(batch[indices[0]].get("points", 2000))
        plls = []
        partial: list[dict[str, float]] = []
        live: list[int] = []
        for i in indices:
            try:
                with _task_backend(batch[i]):
                    pll = design_from_params(batch[i])
                    closed = closed_loop_z(sampled_open_loop(pll))
                    poles = closed.poles()
                    radius = float(np.max(np.abs(poles))) if poles.size else 0.0
                    partial.append(
                        {
                            "z_stable": 1.0 if closed.is_stable() else 0.0,
                            "z_pole_radius": radius,
                            "lti_phase_margin_deg": shape_phase_margin_deg(
                                float(batch[i].get("separation", 4.0))
                            ),
                        }
                    )
                    plls.append(pll)
                live.append(i)
            except Exception as exc:
                results[i] = exc
        if not plls:
            continue
        with _task_backend(batch[live[0]]):
            outcomes = compare_margins_batch(plls, points=points)
        for row, i in enumerate(live):
            out = dict(partial[row])
            outcome = outcomes[row]
            # _nan_safe semantics: a failed margin scan is a nan metric,
            # never a failed point.
            out["phase_margin_eff_deg"] = (
                float("nan")
                if isinstance(outcome, Exception)
                else outcome.phase_margin_eff_deg
            )
            results[i] = out
    return results
