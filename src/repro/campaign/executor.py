"""Fault-tolerant campaign execution: process pool, retries, resume.

The executor turns a :class:`~repro.campaign.spec.CampaignSpec` into a
stream of terminal point records.  Guarantees:

* **One bad point cannot kill a map.**  Task exceptions are captured into
  a ``failed`` record (type, message, traceback) after bounded retries
  with linear backoff; a singular closed-loop solve at one grid cell
  leaves the other 9 999 cells intact.
* **Per-point timeout.**  On Unix the task runs under ``SIGALRM``
  (``signal.setitimer``) inside the worker process, so a hung bisection
  is interrupted *in place* and the worker survives to take the next
  point.  The timeout exception derives from ``BaseException`` so broad
  ``except Exception`` blocks inside adapters cannot swallow it.
* **Serial/pool equivalence.**  The pool path and the serial fallback run
  the *same* per-point function on the same inputs; results round-trip
  through pickle (pool) without any float rewriting, so the two paths are
  bitwise identical.  Serial is used for ``workers <= 1``, for
  unpicklable task callables, and as an automatic fallback when the pool
  cannot be created or breaks mid-run (each fallback is recorded as a
  telemetry note).
* **Crash-safe resume.**  With a result store attached, every terminal
  record is appended (flushed) before the next point is scheduled;
  :func:`resume_campaign` skips any point whose record made it to disk.

Dispatch is chunked two ways: at most ``workers * chunk_size`` futures
are in flight (bounding coordinator memory on 10k-point campaigns), and
each future carries a *batch* of up to ``batch_size`` points so one
pickle round-trip and one scheduling decision are amortized over many
fast points — per-point futures made the pool path slower than serial on
sub-100ms tasks.  Records stay per-point throughout: retries, timeouts,
duplicates, and telemetry all operate on individual points regardless of
how they were transported.
"""

from __future__ import annotations

import os
import pickle
import signal
import statistics
import threading
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro._errors import ValidationError
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore
from repro.campaign.tasks import TaskAdapter, get_task, registered_name
from repro.campaign.telemetry import CampaignTelemetry, ProgressCallback
from repro.obs import heartbeat as obs_heartbeat
from repro.obs import manifest as obs_manifest
from repro.obs import profile as obs_profile
from repro.obs import resources as obs_resources
from repro.obs import spans as obs
from repro.obs import stream as obs_stream
from repro.obs import trace as obs_trace

__all__ = [
    "CampaignResult",
    "ExecutionPolicy",
    "PointTimeout",
    "campaign_status",
    "resume_campaign",
    "run_campaign",
    "run_point_batch",
]


class PointTimeout(BaseException):
    """A point exceeded its per-point timeout.

    Derives from :class:`BaseException` so NaN-tolerant adapters that
    catch ``Exception`` around individual metrics cannot absorb it.
    """


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a campaign is executed.

    Attributes
    ----------
    workers:
        Process count; ``<= 1`` selects the serial path.
    chunk_size:
        In-flight futures per worker (dispatch window).
    batch_size:
        Points per pool future; ``0`` (default) picks an automatic size
        aiming for ~4 batches per worker, capped at 16.  Batching
        amortizes pickle/scheduling overhead on fast points; the serial
        path ignores it.
    timeout:
        Per-point wall-clock limit in seconds (``None`` = unlimited).
    retries:
        Extra attempts after a failure (0 = fail on first error).
    backoff:
        Linear backoff: sleep ``backoff * attempt`` seconds before retry.
    checkpoint_every:
        Terminal records between fsynced store checkpoints.
    heartbeat_interval:
        Seconds between worker heartbeat writes (``None`` disables
        heartbeats and the liveness monitor; requires a store).
    stall_factor:
        A worker is *stalled* when its beat is silent — or its current
        point has been running — longer than
        ``stall_factor * heartbeat_interval``.
    straggler_factor:
        A point is a *straggler* when its elapsed exceeds
        ``straggler_factor`` times the median of completed points (with at
        least 3 samples, and never under one heartbeat interval).
    stall_action:
        ``"flag"`` records stall health events only; ``"retry"``
        additionally re-dispatches the stalled point speculatively (first
        terminal record wins, the loser is counted as a duplicate).
    stream_interval:
        Seconds between streaming-metrics samples (when streaming is on).
    memory_budget_mb:
        Per-point peak-RSS budget; points above it are flagged
        ``over_budget`` with a ``campaign.memory_budget`` health event.
    scheduler:
        Execution scheduler: ``"auto"`` (pool when it pays off, else
        serial), ``"serial"``, ``"pool"``, or ``"lease"`` — the
        shared-filesystem multi-host scheduler (requires a store; other
        workers can join via ``repro campaign worker``).
    vectorize:
        Evaluate point batches through the task's registered vectorized
        batch adapter when one exists (stacked-axis evaluation, bitwise
        identical to the scalar path); ``False`` forces the scalar path.
    lease_ttl:
        Lease time-to-live in seconds for the lease scheduler.  A worker
        renews its batch lease every ``lease_ttl / 3``; a lease older than
        this is considered abandoned and reclaimed by another worker.
    profile:
        Run the statistical sampling profiler (:mod:`repro.obs.profile`)
        for the duration of the campaign — coordinator, pool workers and
        lease workers alike.  With a store attached each process writes
        its sample shard to ``<store>.profile/<worker>.json`` (merge with
        ``repro obs profile STORE``).  ``REPRO_OBS_PROFILE=1`` in the
        environment requests the same thing.
    """

    workers: int = 1
    chunk_size: int = 4
    batch_size: int = 0
    timeout: float | None = None
    retries: int = 0
    backoff: float = 0.0
    checkpoint_every: int = 25
    heartbeat_interval: float | None = 5.0
    stall_factor: float = 3.0
    straggler_factor: float = 4.0
    stall_action: str = "flag"
    stream_interval: float = 1.0
    memory_budget_mb: float | None = None
    scheduler: str = "auto"
    vectorize: bool = True
    lease_ttl: float = 30.0
    profile: bool = False

    def __post_init__(self):
        if self.scheduler not in ("auto", "serial", "pool", "lease"):
            raise ValidationError(
                "scheduler must be 'auto', 'serial', 'pool' or 'lease'"
            )
        if self.lease_ttl <= 0:
            raise ValidationError("lease_ttl must be positive")
        if self.chunk_size < 1:
            raise ValidationError("chunk_size must be >= 1")
        if self.batch_size < 0:
            raise ValidationError("batch_size must be >= 0 (0 = auto)")
        if self.retries < 0:
            raise ValidationError("retries must be >= 0")
        if self.backoff < 0:
            raise ValidationError("backoff must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise ValidationError("timeout must be positive (or None)")
        if self.checkpoint_every < 1:
            raise ValidationError("checkpoint_every must be >= 1")
        if self.heartbeat_interval is not None and self.heartbeat_interval <= 0:
            raise ValidationError("heartbeat_interval must be positive (or None)")
        if self.stall_factor < 1:
            raise ValidationError("stall_factor must be >= 1")
        if self.straggler_factor <= 1:
            raise ValidationError("straggler_factor must be > 1")
        if self.stall_action not in ("flag", "retry"):
            raise ValidationError("stall_action must be 'flag' or 'retry'")
        if self.stream_interval <= 0:
            raise ValidationError("stream_interval must be positive")
        if self.memory_budget_mb is not None and self.memory_budget_mb <= 0:
            raise ValidationError("memory_budget_mb must be positive (or None)")


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of one (possibly resumed) campaign execution."""

    spec: CampaignSpec
    records: tuple[dict[str, Any], ...]  # spec enumeration order
    telemetry: CampaignTelemetry
    store_path: Path | None = None

    @property
    def ok_records(self) -> list[dict[str, Any]]:
        return [r for r in self.records if r["status"] == "ok"]

    @property
    def failed_records(self) -> list[dict[str, Any]]:
        return [r for r in self.records if r["status"] == "failed"]

    def metric(self, name: str) -> np.ndarray:
        """One metric across all points in spec order (NaN where failed)."""
        out = np.full(len(self.records), np.nan)
        for i, record in enumerate(self.records):
            metrics = record.get("metrics") or {}
            if name in metrics:
                out[i] = float(metrics[name])
        return out

    def parameter(self, name: str) -> np.ndarray:
        """One parameter across all points in spec order."""
        return np.array(
            [float(r["params"][name]) for r in self.records], dtype=float
        )


# -- per-point execution (runs in workers and in the serial path) ------------------


def _alarm_guard(timeout: float | None):
    """Context manager arming SIGALRM for one point, when possible.

    Signals only work in a process's main thread and on platforms with
    ``SIGALRM``; elsewhere the timeout degrades to "no limit".  The
    degradation is *visible*: the guard's ``degraded`` flag makes
    :func:`_run_point` emit a ``campaign.timeout_unavailable`` counter and
    a warning health event, and mark the record ``timeout_degraded``.
    """

    class _Guard:
        degraded = False

        def __enter__(self):
            self.armed = (
                timeout is not None
                and hasattr(signal, "SIGALRM")
                and threading.current_thread() is threading.main_thread()
            )
            self.degraded = timeout is not None and not self.armed
            if self.armed:
                def _raise(signum, frame):
                    raise PointTimeout(
                        f"point exceeded the {timeout:g} s per-point timeout"
                    )

                self.previous = signal.signal(signal.SIGALRM, _raise)
                signal.setitimer(signal.ITIMER_REAL, timeout)
            return self

        def __exit__(self, *exc):
            if self.armed:
                signal.setitimer(signal.ITIMER_REAL, 0.0)
                signal.signal(signal.SIGALRM, self.previous)
            return False

    return _Guard()


def _resolve_task(task: str | TaskAdapter) -> TaskAdapter:
    return get_task(task) if isinstance(task, str) else task


def _task_label(task: str | TaskAdapter) -> str:
    """Stable span tag for a task: registry name, else callable name."""
    if isinstance(task, str):
        return task
    return (
        registered_name(task)
        or getattr(task, "__name__", None)
        or type(task).__name__
    )


def _run_point(
    task: str | TaskAdapter,
    pid: str,
    params: Mapping[str, Any],
    timeout: float | None,
    attempt: int,
) -> dict[str, Any]:
    """Execute one point and build its record (never raises)."""
    from repro.core import memo

    before = memo.cache_snapshot()
    # Per-point observability delta, mirroring the cache-delta pattern:
    # snapshot before/after and ship only the difference (picklable).
    obs_before = obs.snapshot() if obs.enabled() else None
    obs_heartbeat.point_started(pid)
    mem_state = obs_resources.point_probe_begin()
    started = time.perf_counter()
    record: dict[str, Any] = {
        "kind": "point",
        "id": pid,
        "params": dict(params),
        "attempts": attempt,
        "worker": os.getpid(),
    }
    guard = _alarm_guard(timeout)
    with obs.span("campaign.point", task=_task_label(task)) as point_span:
        try:
            fn = _resolve_task(task)
            with guard:
                metrics = fn(dict(params))
            if not isinstance(metrics, Mapping):
                raise ValidationError(
                    f"task must return a metric mapping, got {type(metrics).__name__}"
                )
            record["status"] = "ok"
            record["metrics"] = {str(k): float(v) for k, v in metrics.items()}
        except (Exception, PointTimeout) as exc:
            record["status"] = "failed"
            record["error"] = {
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(limit=20),
            }
        point_span.tag(status=record["status"])
    record["elapsed"] = time.perf_counter() - started
    record["mem"] = obs_resources.point_probe_end(mem_state)
    obs_heartbeat.point_finished()
    campaign_ctx = obs_trace.campaign_context()
    if campaign_ctx is not None:
        # Child span per point: the record joins the request's trace, and a
        # span event (absolute wall clock) lands in this worker's shard.
        point_ctx = campaign_ctx.child()
        record["trace"] = point_ctx.to_dict()
        wall_end = time.time()
        obs_trace.record_event(
            "campaign.point",
            point_ctx,
            wall_end - record["elapsed"],
            wall_end,
            point=pid,
            status=record["status"],
        )
    if guard.degraded:
        record["timeout_degraded"] = True
        obs.add("campaign.timeout_unavailable")
        obs.health_event(
            "campaign.timeout_unavailable",
            float(timeout or 0.0),
            0.0,
            severity="warning",
            message=(
                "per-point timeout could not be armed (no SIGALRM or not "
                "the main thread); the point ran with no limit"
            ),
        )
    after = memo.cache_snapshot()
    record["cache"] = {
        "hits": after["hits"] - before["hits"],
        "misses": after["misses"] - before["misses"],
        # Absolute worker-cache footprint estimate at record time (gauge).
        "bytes": int(after.get("bytes", 0)),
    }
    if obs_before is not None:
        record["obs"] = obs.delta(obs_before)
    return record


def _slot_error(exc: BaseException) -> dict[str, Any]:
    """Error payload for an exception captured (not raised) by a batch adapter."""
    tb = traceback.format_exception(type(exc), exc, exc.__traceback__, limit=20)
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": "".join(tb),
    }


def run_point_batch(
    payloads: list[tuple], vectorize: bool = True
) -> list[dict[str, Any]]:
    """Evaluate a batch of points, vectorized when the task supports it.

    ``payloads`` are ``(task, point_id, params, timeout, attempt)`` tuples
    (the :func:`_run_point` signature).  When ``vectorize`` is on and the
    task has a registered batch adapter, the whole batch runs through one
    stacked evaluation under a combined alarm budget of ``timeout * K``;
    per-point records are still emitted (status, metrics/error, attempts)
    with the batch's elapsed time divided evenly and the cache/obs/memory
    deltas attributed to the first record (they are batch-level
    quantities).  Records gain ``vectorized: true`` and ``batch_points``
    so the provenance of every number is visible in the store.

    Any failure of the batch *machinery* — the adapter raising, a timeout,
    a malformed result — falls back to the scalar per-point path
    (``campaign.vectorize_fallback`` counter), so a vectorization bug can
    cost time but never correctness.  A single point's captured exception
    is terminal for that slot only, exactly as the scalar adapter's raise
    would have been.
    """
    from repro.campaign.tasks import get_batch_task

    if len(payloads) < 2 or not vectorize:
        return [_run_point(*payload) for payload in payloads]
    task = payloads[0][0]
    name = task if isinstance(task, str) else registered_name(task)
    batch_fn = get_batch_task(name)
    if batch_fn is None:
        return [_run_point(*payload) for payload in payloads]

    from repro.core import memo

    timeout = payloads[0][3]
    budget = None if timeout is None else float(timeout) * len(payloads)
    before = memo.cache_snapshot()
    obs_before = obs.snapshot() if obs.enabled() else None
    mem_state = obs_resources.point_probe_begin()
    obs_heartbeat.point_started(payloads[0][1])
    started = time.perf_counter()
    guard = _alarm_guard(budget)
    outcomes: list[Any] | None = None
    with obs.span(
        "campaign.point_batch", task=_task_label(task), points=len(payloads)
    ):
        try:
            with guard:
                outcomes = list(batch_fn([dict(p[2]) for p in payloads]))
            if len(outcomes) != len(payloads):
                raise ValidationError(
                    f"batch adapter returned {len(outcomes)} result(s) "
                    f"for {len(payloads)} point(s)"
                )
        except (Exception, PointTimeout):
            outcomes = None
    elapsed = time.perf_counter() - started
    if outcomes is None:
        # Batch machinery failed: scalar fallback for every point (each
        # _run_point re-arms its own per-point timeout and heartbeat).
        obs.add("campaign.vectorize_fallback")
        return [_run_point(*payload) for payload in payloads]

    mem = obs_resources.point_probe_end(mem_state)
    after = memo.cache_snapshot()
    cache_delta = {
        "hits": after["hits"] - before["hits"],
        "misses": after["misses"] - before["misses"],
        "bytes": int(after.get("bytes", 0)),
    }
    obs_delta = obs.delta(obs_before) if obs_before is not None else None
    per_point = elapsed / len(payloads)
    records: list[dict[str, Any]] = []
    for slot, (payload, outcome) in enumerate(zip(payloads, outcomes)):
        _task, pid, params, _timeout, attempt = payload
        record: dict[str, Any] = {
            "kind": "point",
            "id": pid,
            "params": dict(params),
            "attempts": attempt,
            "worker": os.getpid(),
            "elapsed": per_point,
            "vectorized": True,
            "batch_points": len(payloads),
        }
        if isinstance(outcome, BaseException):
            record["status"] = "failed"
            record["error"] = _slot_error(outcome)
        elif isinstance(outcome, Mapping):
            record["status"] = "ok"
            record["metrics"] = {str(k): float(v) for k, v in outcome.items()}
        else:
            record["status"] = "failed"
            record["error"] = _slot_error(
                ValidationError(
                    "task must return a metric mapping, got "
                    f"{type(outcome).__name__}"
                )
            )
        if slot == 0:
            record["mem"] = mem
            record["cache"] = cache_delta
            if obs_delta is not None:
                record["obs"] = obs_delta
        else:
            record["mem"] = {}
            record["cache"] = {
                "hits": 0,
                "misses": 0,
                "bytes": cache_delta["bytes"],
            }
        records.append(record)
        obs_heartbeat.point_finished()
    campaign_ctx = obs_trace.campaign_context()
    if campaign_ctx is not None:
        wall_end = time.time()
        batch_ctx = campaign_ctx.child()
        obs_trace.record_event(
            "campaign.point_batch",
            batch_ctx,
            wall_end - elapsed,
            wall_end,
            points=len(payloads),
            task=_task_label(task),
        )
        for record in records:
            record["trace"] = batch_ctx.child().to_dict()
    return records


def _pool_entry_batch(
    payloads: list[tuple], vectorize: bool = False
) -> list[dict[str, Any]]:
    """Module-level (picklable) batched pool entry point.

    One future carries a batch of points: the worker evaluates them
    back-to-back (sharing its warm grid cache) and ships all records in
    one pickle round-trip.  Per-point semantics are untouched —
    ``_run_point`` never raises, arms its own timeout, and emits its own
    heartbeat/telemetry, so a batch is purely a transport envelope.  With
    ``vectorize`` the batch additionally runs through the task's
    registered vectorized adapter when one exists (see
    :func:`run_point_batch`).
    """
    records = run_point_batch(payloads, vectorize=vectorize)
    # Pool workers have no clean shutdown hook, so the profiler shard is
    # flushed opportunistically (rate-limited) after each batch instead.
    obs_profile.maybe_flush()
    return records


def _auto_batch_size(pending: int, workers: int) -> int:
    """Default points-per-future: amortize dispatch without starving workers.

    Aims for roughly four batches per worker over the pending set, so
    retries and stragglers can still interleave with fresh work, capped
    at 16 points so one slow batch never wedges a worker for long.
    """
    return max(1, min(16, pending // max(workers, 1) // 4))


def _pool_init(
    cache_config: Mapping[str, Any],
    obs_enabled: bool = False,
    heartbeat_config: tuple[str, float] | None = None,
    memory_budget_mb: float | None = None,
    trace_config: tuple[dict | None, str | None] | None = None,
    profile_config: tuple[int, str | None] | None = None,
) -> None:
    """Per-worker initializer: idempotently mirror the parent cache config.

    Each worker owns a private, initially cold :data:`repro.core.memo.
    grid_cache`; ``configure`` is idempotent so re-running the initializer
    (or forking an already-configured parent) is harmless.  The cold-warm
    cost is surfaced through per-record cache deltas in the telemetry.

    The parent's observability switch is mirrored too, so ``spawn``-started
    workers record spans exactly when the coordinator does (under ``fork``
    the flag is inherited and this is a no-op).  When live telemetry is on
    the worker also starts its heartbeat emitter thread and configures the
    per-point memory budget / tracemalloc profiling.
    """
    from repro.core import memo

    raw_bytes = cache_config.get("max_bytes")
    raw_ttl = cache_config.get("ttl_seconds")
    memo.configure(
        enabled=bool(cache_config.get("enabled", True)),
        maxsize=int(cache_config.get("maxsize", 256)),
        max_bytes=None if raw_bytes is None else int(raw_bytes),
        ttl_seconds=None if raw_ttl is None else float(raw_ttl),
    )
    if obs_enabled:
        obs.enable()
    else:
        obs.disable()
    obs_resources.configure(memory_budget_mb)
    obs_resources.ensure_tracemalloc()
    if trace_config is not None:
        # The task envelope carries the campaign's trace context: workers
        # inherit it so every record and span event joins the same trace.
        ctx_data, sink_dir = trace_config
        ctx = obs_trace.TraceContext.from_dict(ctx_data)
        obs_trace.set_campaign(ctx)
        if sink_dir and ctx is not None:
            obs_trace.configure_sink(sink_dir)
    if heartbeat_config is not None:
        directory, interval = heartbeat_config
        obs_heartbeat.ensure_emitter(directory, float(interval))
    if profile_config is not None:
        # itimers are not inherited across fork, so each pool worker arms
        # its own sampler; the task function runs in the worker's main
        # thread, so SIGPROF-based CPU sampling works here.
        hz, sink_dir = profile_config
        obs_profile.start(hz=hz)
        if sink_dir:
            obs_profile.configure_sink(sink_dir)


def _is_picklable(obj: Any) -> bool:
    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False


# -- liveness monitor --------------------------------------------------------------


class _LivenessMonitor:
    """Stall/straggler classification over heartbeats and point records.

    Two complementary signals:

    * **live** (:meth:`check`, pool path): heartbeats read every poll —
      a worker silent for ``stall_factor * interval`` (dead/frozen
      process) *or* one whose current point has been running that long
      (wedged task) is flagged stalled while it is still stuck;
    * **retroactive** (:meth:`observe_record`, both paths): every
      terminal record is classified against the stall threshold and the
      straggler criterion (elapsed > ``straggler_factor`` x median of
      completed points, >= 3 samples, floored at one heartbeat interval so
      microsecond jitter on fast maps never flags).

    Each anomaly is flagged once: telemetry counters + note + a
    coordinator-side health event (``campaign.worker_stalled`` /
    ``campaign.point_straggler``).  With ``stall_action="retry"`` the
    point ids returned by :meth:`check` are re-dispatched speculatively.
    """

    def __init__(
        self,
        policy: ExecutionPolicy,
        telemetry: CampaignTelemetry,
        directory: Path,
    ):
        self.telemetry = telemetry
        self.directory = Path(directory)
        self.interval = float(policy.heartbeat_interval or 5.0)
        self.stall_after = float(policy.stall_factor) * self.interval
        self.straggler_factor = float(policy.straggler_factor)
        self.escalate = policy.stall_action == "retry"
        self._elapsed: list[float] = []
        self._stall_flagged: set[str] = set()
        self._straggler_flagged: set[str] = set()

    def _median(self) -> float | None:
        if len(self._elapsed) < 3:
            return None
        return statistics.median(self._elapsed)

    def _flag_stall(
        self, key: str, point_id: str | None, worker: int | str, elapsed: float,
        reason: str,
    ) -> bool:
        if key in self._stall_flagged:
            return False
        self._stall_flagged.add(key)
        self.telemetry.stalls += 1
        self.telemetry.note(f"stall: worker {worker} {reason}")
        self.telemetry.health_event(
            "campaign.worker_stalled",
            elapsed,
            self.stall_after,
            severity="warning",
            message=f"worker {worker} {reason}",
        )
        return point_id is not None

    def _flag_straggler(self, point_id: str, elapsed: float, median: float) -> None:
        if point_id in self._straggler_flagged:
            return
        self._straggler_flagged.add(point_id)
        self.telemetry.stragglers += 1
        self.telemetry.straggler_ids.append(point_id)
        self.telemetry.health_event(
            "campaign.point_straggler",
            elapsed,
            self.straggler_factor * median,
            severity="info",
            message=(
                f"point {point_id} at {elapsed:.2f} s vs "
                f"{median:.2f} s median"
            ),
        )

    def check(self, now: float | None = None) -> list[str]:
        """Scan live heartbeats; returns newly-stalled point ids."""
        now = time.time() if now is None else now
        stalled: list[str] = []
        for beat in obs_heartbeat.read_heartbeats(self.directory):
            if beat.get("phase") == "stopped":
                continue
            # Keyed by hostname+pid so workers on different hosts sharing
            # one store can never alias each other's stall state.
            worker = obs_heartbeat.beat_worker(beat)
            point_id = beat.get("point_id")
            age = obs_heartbeat.beat_age(beat, now)
            point_elapsed = (
                float(beat.get("point_elapsed", 0.0)) + age
                if point_id is not None
                else 0.0
            )
            if age > self.stall_after:
                if self._flag_stall(
                    f"worker:{worker}", point_id, worker, age,
                    f"silent for {age:.1f} s (no heartbeat)",
                ):
                    stalled.append(point_id)
            elif point_id is not None and point_elapsed > self.stall_after:
                if self._flag_stall(
                    point_id, point_id, worker, point_elapsed,
                    f"stuck on point {point_id} for {point_elapsed:.1f} s",
                ):
                    stalled.append(point_id)
            if point_id is not None:
                median = self._median()
                if (
                    median is not None
                    and point_elapsed > self.straggler_factor * median
                    and point_elapsed >= self.interval
                ):
                    self._flag_straggler(point_id, point_elapsed, median)
        return stalled

    def observe_record(self, record: Mapping[str, Any]) -> None:
        """Classify a terminal record, then fold it into the median."""
        point_id = str(record["id"])
        elapsed = float(record.get("elapsed", 0.0))
        if elapsed > self.stall_after:
            self._flag_stall(
                point_id, point_id, int(record.get("worker", 0)), elapsed,
                f"point {point_id} ran {elapsed:.1f} s "
                f"(stall threshold {self.stall_after:.1f} s)",
            )
        median = self._median()
        if (
            median is not None
            and elapsed > self.straggler_factor * median
            and elapsed >= self.interval
        ):
            self._flag_straggler(point_id, elapsed, median)
        if record.get("status") == "ok":
            self._elapsed.append(elapsed)


# -- coordinator -------------------------------------------------------------------


class _Coordinator:
    """Drives pending points through retries to terminal records."""

    def __init__(
        self,
        task: str | TaskAdapter,
        policy: ExecutionPolicy,
        telemetry: CampaignTelemetry,
        store: ResultStore | None,
        progress: ProgressCallback | None,
        monitor: "_LivenessMonitor | None" = None,
    ):
        self.task = task
        self.policy = policy
        self.telemetry = telemetry
        self.store = store
        self.progress = progress
        self.monitor = monitor
        self.finalized: dict[str, dict[str, Any]] = {}
        self._since_checkpoint = 0

    # one queue entry: (index, point_id, params, attempt)

    def _is_duplicate(self, record: Mapping[str, Any]) -> bool:
        """Speculative re-runs race the original; first terminal record wins."""
        if record["id"] in self.finalized:
            self.telemetry.stall_duplicates += 1
            return True
        return False

    def _finalize(self, record: dict[str, Any]) -> None:
        if self._is_duplicate(record):
            return
        self.finalized[record["id"]] = record
        if self.monitor is not None:
            self.monitor.observe_record(record)
        self.telemetry.record(record)
        if self.store is not None:
            self.store.append_point(record)
            self._since_checkpoint += 1
            if self._since_checkpoint >= self.policy.checkpoint_every:
                self._checkpoint()
        if self.progress is not None:
            # A broken reporter must never kill the run it reports on.
            try:
                self.progress(record, self.telemetry)
            except Exception as exc:
                self.telemetry.progress_errors += 1
                if self.telemetry.progress_errors == 1:
                    self.telemetry.note(
                        f"progress callback raised {type(exc).__name__}: {exc} "
                        "(suppressed; further errors counted only)"
                    )

    def _checkpoint(self) -> None:
        if self.store is not None and self._since_checkpoint:
            self.store.append_checkpoint(
                {
                    "done": self.telemetry.done,
                    "failed": self.telemetry.failed,
                    "elapsed": self.telemetry.wall_seconds,
                }
            )
            self._since_checkpoint = 0

    def _should_retry(self, record: dict[str, Any], attempt: int) -> bool:
        return record["status"] == "failed" and attempt <= self.policy.retries

    def _backoff(self, attempt: int) -> None:
        if self.policy.backoff > 0:
            time.sleep(self.policy.backoff * attempt)

    # -- serial path -------------------------------------------------------------

    def run_serial(self, queue: "deque[tuple[int, str, dict, int]]") -> None:
        while queue:
            index, pid, params, attempt = queue.popleft()
            record = _run_point(
                self.task, pid, params, self.policy.timeout, attempt
            )
            if self._should_retry(record, attempt):
                self._backoff(attempt)
                queue.appendleft((index, pid, params, attempt + 1))
                continue
            self._finalize(record)
        self._checkpoint()

    # -- batched serial path (lease workers) -------------------------------------

    def run_batch(self, queue: "deque[tuple[int, str, dict, int]]") -> None:
        """Evaluate one claimed batch in-process, vectorized when possible.

        The lease scheduler's per-batch execution: the whole queue goes
        through :func:`run_point_batch` (one stacked evaluation when the
        task has a batch adapter), and any point needing a retry is
        re-run through the scalar serial path — identical retry, backoff
        and timeout semantics to the other schedulers.
        """
        entries = list(queue)
        queue.clear()
        if not entries:
            return
        payloads = [
            (self.task, pid, params, self.policy.timeout, attempt)
            for _index, pid, params, attempt in entries
        ]
        records = run_point_batch(payloads, vectorize=self.policy.vectorize)
        retry: deque = deque()
        for entry, record in zip(entries, records):
            index, pid, params, attempt = entry
            if self._is_duplicate(record):
                continue
            if self._should_retry(record, attempt):
                self._backoff(attempt)
                retry.append((index, pid, params, attempt + 1))
            else:
                self._finalize(record)
        if retry:
            self.run_serial(retry)
        else:
            self._checkpoint()

    # -- pool path ---------------------------------------------------------------

    def run_pool(self, queue: "deque[tuple[int, str, dict, int]]") -> None:
        """Chunked pool dispatch; falls back to serial if the pool breaks."""
        from repro.core import memo

        policy = self.policy
        monitor = self.monitor
        cache_config = memo.cache_snapshot()
        heartbeat_config = (
            (str(monitor.directory), monitor.interval)
            if monitor is not None
            else None
        )
        # With a monitor attached the wait() below times out every
        # heartbeat interval so heartbeats are scanned even while no
        # future completes — that is exactly when a stall is happening.
        poll = monitor.interval if monitor is not None else None
        max_inflight = policy.workers * policy.chunk_size
        batch_size = policy.batch_size or _auto_batch_size(
            len(queue), policy.workers
        )
        inflight: dict[Any, list[tuple[int, str, dict, int]]] = {}
        entry_by_id: dict[str, tuple[int, str, dict, int]] = {}
        escalated: set[str] = set()
        trace_ctx = obs_trace.campaign_context()
        trace_config = None
        if trace_ctx is not None:
            sink_dir = (
                str(obs_trace.trace_dir(self.store.path))
                if self.store is not None and obs_trace.sink_configured()
                else None
            )
            trace_config = (trace_ctx.to_dict(), sink_dir)
        profile_config = None
        if policy.profile or obs_profile.profile_requested():
            profile_sink = (
                str(obs_profile.profile_dir(self.store.path))
                if self.store is not None
                else None
            )
            profile_config = (obs_profile.requested_hz(), profile_sink)
        try:
            with ProcessPoolExecutor(
                max_workers=policy.workers,
                initializer=_pool_init,
                initargs=(
                    cache_config,
                    obs.enabled(),
                    heartbeat_config,
                    policy.memory_budget_mb,
                    trace_config,
                    profile_config,
                ),
            ) as pool:
                while queue or inflight:
                    while queue and len(inflight) < max_inflight:
                        batch = [
                            queue.popleft()
                            for _ in range(min(batch_size, len(queue)))
                        ]
                        future = pool.submit(
                            _pool_entry_batch,
                            [
                                (self.task, pid, params, policy.timeout, attempt)
                                for _index, pid, params, attempt in batch
                            ],
                            policy.vectorize,
                        )
                        inflight[future] = batch
                        for entry in batch:
                            entry_by_id[entry[1]] = entry
                    ready, _ = wait(
                        inflight, timeout=poll, return_when=FIRST_COMPLETED
                    )
                    for future in ready:
                        batch = inflight.pop(future)
                        try:
                            records = list(future.result())
                        except BrokenProcessPool:
                            # Requeue before escalating so the fallback's
                            # inflight sweep sees this batch too.
                            inflight[future] = batch
                            raise
                        except Exception as exc:  # worker-side transport error
                            records = [
                                _transport_failure(pid, params, attempt, exc)
                                for _index, pid, params, attempt in batch
                            ]
                        if len(records) != len(batch):
                            exc = ValidationError(
                                f"batched worker returned {len(records)} "
                                f"record(s) for {len(batch)} point(s)"
                            )
                            records = [
                                _transport_failure(pid, params, attempt, exc)
                                for _index, pid, params, attempt in batch
                            ]
                        for entry, record in zip(batch, records):
                            index, pid, params, attempt = entry
                            if self._is_duplicate(record):
                                continue
                            if self._should_retry(record, attempt):
                                self._backoff(attempt)
                                queue.append((index, pid, params, attempt + 1))
                            else:
                                self._finalize(record)
                    if monitor is not None:
                        stalled = monitor.check()
                        if monitor.escalate:
                            for point_id in stalled:
                                if (
                                    point_id in escalated
                                    or point_id in self.finalized
                                ):
                                    continue
                                entry = entry_by_id.get(point_id)
                                if entry is None:
                                    continue
                                escalated.add(point_id)
                                queue.append(entry)
                                self.telemetry.note(
                                    "stall escalation: speculatively "
                                    f"re-dispatched point {point_id}"
                                )
        except (BrokenProcessPool, OSError) as exc:
            # Pool died (OOM-killed worker, fork failure, ...): finish the
            # remaining points serially rather than losing the campaign.
            for batch in inflight.values():
                queue.extend(batch)
            seen: set[str] = set()
            pending: deque = deque()
            for entry in sorted(queue):
                if entry[1] in self.finalized or entry[1] in seen:
                    continue
                seen.add(entry[1])
                pending.append(entry)
            queue.clear()
            self.telemetry.note(
                f"process pool failed ({type(exc).__name__}: {exc}); "
                f"finished {len(pending)} remaining point(s) serially"
            )
            self.telemetry.mode = "pool+serial-fallback"
            self.run_serial(pending)
            return
        self._checkpoint()


def _transport_failure(
    pid: str, params: Mapping[str, Any], attempt: int, exc: Exception
) -> dict[str, Any]:
    """Record for a point whose worker-side result never arrived."""
    return {
        "kind": "point",
        "id": pid,
        "params": dict(params),
        "status": "failed",
        "attempts": attempt,
        "worker": 0,
        "elapsed": 0.0,
        "cache": {"hits": 0, "misses": 0, "bytes": 0},
        "error": {
            "type": type(exc).__name__,
            "message": str(exc),
            "traceback": traceback.format_exc(limit=20),
        },
    }


def _stream_sample(
    telemetry: CampaignTelemetry, monitor: "_LivenessMonitor | None"
):
    """Build the coordinator-side sampler the stream emitter calls."""

    def sample() -> dict[str, Any]:
        out: dict[str, Any] = {
            "total": telemetry.total_points,
            "done": telemetry.done,
            "failed": telemetry.failed,
            "retried": telemetry.retried,
            "skipped": telemetry.skipped,
            "wall_seconds": telemetry.wall_seconds,
            "cache_hits": telemetry.cache_hits,
            "cache_misses": telemetry.cache_misses,
            "stalls": telemetry.stalls,
            "stragglers": telemetry.stragglers,
            "rss_bytes": obs_resources.current_rss_bytes(),
        }
        counts = telemetry.health_counts()
        if counts:
            out["health"] = counts
        if monitor is not None:
            beats = obs_heartbeat.read_heartbeats(monitor.directory)
            out["workers_live"] = sum(
                1 for b in beats if b.get("phase") != "stopped"
            )
        ctx = obs_trace.campaign_context()
        if ctx is not None:
            out["trace_id"] = ctx.trace_id
        return out

    return sample


def _execute(
    spec: CampaignSpec,
    store: ResultStore | None,
    policy: ExecutionPolicy,
    progress: ProgressCallback | None,
    completed: Mapping[str, dict[str, Any]],
    *,
    resumed: bool = False,
    stream_to: str | Path | None = None,
    trace: obs_trace.TraceContext | None = None,
) -> CampaignResult:
    all_points = list(spec.points())
    pending = deque(
        (index, pid, params, 1)
        for index, (pid, params) in enumerate(all_points)
        if pid not in completed
    )
    telemetry = CampaignTelemetry(
        total_points=len(all_points),
        workers=max(int(policy.workers), 1),
        skipped=len(all_points) - len(pending),
    )

    # Distributed trace context: explicit (a serve job spill), inherited
    # from the store manifest (resume, lease workers), or minted fresh when
    # observability is on — so every record/stream sample/health event this
    # run produces is tagged with one trace_id.
    trace_ctx = trace
    if trace_ctx is None and store is not None:
        existing = obs_manifest.load_manifest(
            obs_manifest.manifest_path(store.path)
        )
        if existing is not None:
            trace_ctx = obs_trace.TraceContext.from_dict(existing.get("trace"))
    if trace_ctx is None and obs.enabled():
        trace_ctx = obs_trace.new_context()

    # Run manifest: written on every run/resume, checked against the
    # previous manifest on resume (drift -> notes + warning health events).
    if store is not None:
        mpath = obs_manifest.manifest_path(store.path)
        current = obs_manifest.build_manifest(spec, policy)
        previous = obs_manifest.load_manifest(mpath) if resumed else None
        if previous is not None:
            for mismatch in obs_manifest.check_manifest(previous, current):
                telemetry.note(f"manifest mismatch on resume — {mismatch}")
                telemetry.health_event(
                    "campaign.manifest_mismatch",
                    1.0,
                    0.0,
                    severity="warning",
                    message=mismatch,
                )
            current["created"] = previous.get("created", current["created"])
            current["runs"] = int(previous.get("runs", 0)) + 1
        if trace_ctx is not None:
            current["trace"] = trace_ctx.to_dict()
        obs_manifest.write_manifest(mpath, current)

    if policy.scheduler == "lease":
        # Multi-host path: this process becomes one lease worker against
        # the shared store (others join via `repro campaign worker`).  The
        # worker owns its telemetry, heartbeat, stream and shard store;
        # records are merged back from the store + shards at the end.
        if store is None:
            raise ValidationError(
                "the lease scheduler requires a result store (store_path=...)"
            )
        from repro.campaign import lease as lease_mod

        store.close()
        report = lease_mod.run_worker(
            store.path,
            policy=policy,
            spec=spec,
            progress=progress,
            stream_to=stream_to,
            trace=trace_ctx,
        )
        merged = {r["id"]: r for r in store.merged_point_records()}
        ordered = [merged[pid] for pid, _params in all_points if pid in merged]
        return CampaignResult(
            spec=spec,
            records=tuple(ordered),
            telemetry=report.telemetry,
            store_path=store.path,
        )

    heartbeat_dir: Path | None = None
    monitor: _LivenessMonitor | None = None
    if store is not None and policy.heartbeat_interval is not None:
        heartbeat_dir = obs_heartbeat.heartbeat_dir(store.path)
        heartbeat_dir.mkdir(parents=True, exist_ok=True)
        for stale in heartbeat_dir.glob("*.json"):  # beats of a killed run
            try:
                stale.unlink()
            except OSError:
                pass
        monitor = _LivenessMonitor(policy, telemetry, heartbeat_dir)

    stream_emitter: obs_stream.StreamEmitter | None = None
    if store is not None and (
        stream_to is not None or obs_stream.stream_requested()
    ):
        stream_file = (
            Path(stream_to)
            if stream_to is not None
            else obs_stream.stream_path(store.path)
        )
        stream_emitter = obs_stream.StreamEmitter(
            stream_file,
            _stream_sample(telemetry, monitor),
            policy.stream_interval,
        )

    coordinator = _Coordinator(
        spec.task, policy, telemetry, store, progress, monitor
    )

    from repro.campaign.scheduler import resolve_scheduler

    scheduler, notes = resolve_scheduler(spec, policy, len(pending))
    for note in notes:
        telemetry.note(note)
    obs_resources.configure(policy.memory_budget_mb)
    # Install the campaign trace context (and, when a store exists, a
    # per-worker span-event sink) for the duration of the run.  An already
    # configured sink — the serve process logging to its own trace file —
    # is kept: its single log then carries the campaign's events too.
    prev_campaign_ctx = obs_trace.campaign_context()
    own_sink = False
    run_start = 0.0
    if trace_ctx is not None:
        obs_trace.set_campaign(trace_ctx)
        run_start = time.time()
        if (
            store is not None
            and obs.enabled()
            and not obs_trace.sink_configured()
        ):
            obs_trace.configure_sink(obs_trace.trace_dir(store.path))
            own_sink = True
    # Sampling profiler, same ownership discipline as the trace sink: a
    # profiler already running (a serve process profiling itself while a
    # spilled campaign runs inline) is left alone and simply attributes
    # the campaign's samples too.
    own_profiler = False
    own_profile_sink = False
    if (
        (policy.profile or obs_profile.profile_requested())
        and obs_profile.active() is None
    ):
        obs_profile.start()
        own_profiler = True
        if store is not None and not obs_profile.sink_configured():
            obs_profile.configure_sink(obs_profile.profile_dir(store.path))
            own_profile_sink = True
    try:
        if stream_emitter is not None:
            stream_emitter.start()
        telemetry.mode = scheduler.name
        if scheduler.name == "serial":
            telemetry.workers = 1
            obs_resources.ensure_tracemalloc()
            if heartbeat_dir is not None:
                obs_heartbeat.ensure_emitter(
                    heartbeat_dir, policy.heartbeat_interval
                )
        scheduler.run(coordinator, pending)
    finally:
        telemetry.heartbeat_errors += obs_heartbeat.stop_emitter()
        if stream_emitter is not None:
            stream_emitter.stop()
            telemetry.stream_errors += stream_emitter.errors
        if own_profiler:
            obs_profile.stop()  # flushes the final shard when a sink is set
            if own_profile_sink:
                obs_profile.close_sink()
        if trace_ctx is not None:
            obs_trace.record_event(
                "campaign.run",
                trace_ctx,
                run_start,
                time.time(),
                points=len(all_points),
                resumed=resumed,
            )
            obs_trace.set_campaign(prev_campaign_ctx)
            if own_sink:
                obs_trace.close_sink()

    telemetry.finish()
    if store is not None:
        store.append_summary(telemetry.to_dict())
        store.close()
    if heartbeat_dir is not None:
        # The run reached its summary; beats only matter for live or
        # killed runs, so leave nothing behind (a SIGKILL never gets here
        # and its beats survive for `repro campaign watch`).
        for path in heartbeat_dir.glob("*"):
            try:
                path.unlink()
            except OSError:
                pass
        try:
            heartbeat_dir.rmdir()
        except OSError:
            pass

    ordered = []
    for pid, _params in all_points:
        if pid in coordinator.finalized:
            ordered.append(coordinator.finalized[pid])
        elif pid in completed:
            ordered.append(completed[pid])
    return CampaignResult(
        spec=spec,
        records=tuple(ordered),
        telemetry=telemetry,
        store_path=store.path if store is not None else None,
    )


# -- public entry points -----------------------------------------------------------


def _make_policy(
    policy: ExecutionPolicy | None, overrides: Mapping[str, Any]
) -> ExecutionPolicy:
    base = policy if policy is not None else ExecutionPolicy()
    return replace(base, **dict(overrides)) if overrides else base


def run_campaign(
    spec: CampaignSpec,
    store_path: str | Path | None = None,
    *,
    policy: ExecutionPolicy | None = None,
    progress: ProgressCallback | None = None,
    overwrite: bool = False,
    stream_path: str | Path | None = None,
    trace: obs_trace.TraceContext | None = None,
    **policy_overrides: Any,
) -> CampaignResult:
    """Run every point of ``spec``; optionally persist to a JSONL store.

    ``policy_overrides`` (``workers=``, ``timeout=``, ``retries=``, ...)
    are shorthand for building an :class:`ExecutionPolicy`.  Passing
    ``stream_path=`` (or setting ``REPRO_OBS_STREAM=1``, which streams to
    ``<store>.stream.jsonl``) turns on the streaming-metrics emitter; both
    require a store.  ``trace=`` threads an upstream distributed trace
    context (e.g. the serve request that spilled this campaign) into the
    manifest and every record; with observability enabled a fresh context
    is minted when none is given.
    """
    policy = _make_policy(policy, policy_overrides)
    store = (
        ResultStore.create(store_path, spec, overwrite=overwrite)
        if store_path is not None
        else None
    )
    return _execute(
        spec,
        store,
        policy,
        progress,
        completed={},
        stream_to=stream_path,
        trace=trace,
    )


def resume_campaign(
    store_path: str | Path,
    *,
    task: str | TaskAdapter | None = None,
    spec: CampaignSpec | None = None,
    policy: ExecutionPolicy | None = None,
    progress: ProgressCallback | None = None,
    retry_failed: bool = False,
    stream_path: str | Path | None = None,
    trace: obs_trace.TraceContext | None = None,
    **policy_overrides: Any,
) -> CampaignResult:
    """Complete a partially-run campaign, skipping finished points.

    The spec is rebuilt from the store header (registry-named tasks); a
    campaign run with a raw callable needs ``task=`` (and ``spec=`` if the
    header could not serialize the space).  ``retry_failed=True`` re-runs
    points whose terminal status was ``failed``.
    """
    policy = _make_policy(policy, policy_overrides)
    store = ResultStore.open(store_path)
    if spec is None:
        if task is None:
            spec = store.spec()
        else:
            from repro.campaign.spec import ParameterSpace

            data = store.spec_data()
            spec = CampaignSpec.create(
                name=data["name"],
                space=ParameterSpace.from_json(data["space"]),
                task=task,
                defaults=data.get("defaults") or None,
            )
    elif task is not None:
        spec = CampaignSpec.create(
            name=spec.name, space=spec.space, task=task,
            defaults=dict(spec.defaults),
        )
    completed_records = {
        r["id"]: r
        for r in store.merged_point_records()
        if r["status"] == "ok" or (not retry_failed and r["status"] == "failed")
    }
    return _execute(
        spec,
        store,
        policy,
        progress,
        completed=completed_records,
        resumed=True,
        stream_to=stream_path,
        trace=trace,
    )


def campaign_status(store_path: str | Path) -> dict[str, Any]:
    """Progress snapshot of a result store (see :meth:`ResultStore.status`).

    When the run wrote a manifest (``<store>.manifest.json``) it is
    attached under ``"manifest"``.  Counts merge worker shard stores when
    any exist (lease-scheduler campaigns).
    """
    status = ResultStore.open(store_path).merged_status()
    manifest = obs_manifest.load_manifest(obs_manifest.manifest_path(store_path))
    if manifest is not None:
        status["manifest"] = manifest
    return status
