"""Fault-tolerant campaign execution: process pool, retries, resume.

The executor turns a :class:`~repro.campaign.spec.CampaignSpec` into a
stream of terminal point records.  Guarantees:

* **One bad point cannot kill a map.**  Task exceptions are captured into
  a ``failed`` record (type, message, traceback) after bounded retries
  with linear backoff; a singular closed-loop solve at one grid cell
  leaves the other 9 999 cells intact.
* **Per-point timeout.**  On Unix the task runs under ``SIGALRM``
  (``signal.setitimer``) inside the worker process, so a hung bisection
  is interrupted *in place* and the worker survives to take the next
  point.  The timeout exception derives from ``BaseException`` so broad
  ``except Exception`` blocks inside adapters cannot swallow it.
* **Serial/pool equivalence.**  The pool path and the serial fallback run
  the *same* per-point function on the same inputs; results round-trip
  through pickle (pool) without any float rewriting, so the two paths are
  bitwise identical.  Serial is used for ``workers <= 1``, for
  unpicklable task callables, and as an automatic fallback when the pool
  cannot be created or breaks mid-run (each fallback is recorded as a
  telemetry note).
* **Crash-safe resume.**  With a result store attached, every terminal
  record is appended (flushed) before the next point is scheduled;
  :func:`resume_campaign` skips any point whose record made it to disk.

Dispatch is chunked: at most ``workers * chunk_size`` futures are in
flight, bounding coordinator memory on 10k-point campaigns.
"""

from __future__ import annotations

import os
import pickle
import signal
import threading
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro._errors import ValidationError
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore
from repro.campaign.tasks import TaskAdapter, get_task, registered_name
from repro.campaign.telemetry import CampaignTelemetry, ProgressCallback
from repro.obs import spans as obs

__all__ = [
    "CampaignResult",
    "ExecutionPolicy",
    "PointTimeout",
    "campaign_status",
    "resume_campaign",
    "run_campaign",
]


class PointTimeout(BaseException):
    """A point exceeded its per-point timeout.

    Derives from :class:`BaseException` so NaN-tolerant adapters that
    catch ``Exception`` around individual metrics cannot absorb it.
    """


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a campaign is executed.

    Attributes
    ----------
    workers:
        Process count; ``<= 1`` selects the serial path.
    chunk_size:
        In-flight futures per worker (dispatch window).
    timeout:
        Per-point wall-clock limit in seconds (``None`` = unlimited).
    retries:
        Extra attempts after a failure (0 = fail on first error).
    backoff:
        Linear backoff: sleep ``backoff * attempt`` seconds before retry.
    checkpoint_every:
        Terminal records between fsynced store checkpoints.
    """

    workers: int = 1
    chunk_size: int = 4
    timeout: float | None = None
    retries: int = 0
    backoff: float = 0.0
    checkpoint_every: int = 25

    def __post_init__(self):
        if self.chunk_size < 1:
            raise ValidationError("chunk_size must be >= 1")
        if self.retries < 0:
            raise ValidationError("retries must be >= 0")
        if self.backoff < 0:
            raise ValidationError("backoff must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise ValidationError("timeout must be positive (or None)")
        if self.checkpoint_every < 1:
            raise ValidationError("checkpoint_every must be >= 1")


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of one (possibly resumed) campaign execution."""

    spec: CampaignSpec
    records: tuple[dict[str, Any], ...]  # spec enumeration order
    telemetry: CampaignTelemetry
    store_path: Path | None = None

    @property
    def ok_records(self) -> list[dict[str, Any]]:
        return [r for r in self.records if r["status"] == "ok"]

    @property
    def failed_records(self) -> list[dict[str, Any]]:
        return [r for r in self.records if r["status"] == "failed"]

    def metric(self, name: str) -> np.ndarray:
        """One metric across all points in spec order (NaN where failed)."""
        out = np.full(len(self.records), np.nan)
        for i, record in enumerate(self.records):
            metrics = record.get("metrics") or {}
            if name in metrics:
                out[i] = float(metrics[name])
        return out

    def parameter(self, name: str) -> np.ndarray:
        """One parameter across all points in spec order."""
        return np.array(
            [float(r["params"][name]) for r in self.records], dtype=float
        )


# -- per-point execution (runs in workers and in the serial path) ------------------


def _alarm_guard(timeout: float | None):
    """Context manager arming SIGALRM for one point, when possible.

    Signals only work in a process's main thread and on platforms with
    ``SIGALRM``; elsewhere the timeout degrades to "no limit" (documented).
    """

    class _Guard:
        def __enter__(self):
            self.armed = (
                timeout is not None
                and hasattr(signal, "SIGALRM")
                and threading.current_thread() is threading.main_thread()
            )
            if self.armed:
                def _raise(signum, frame):
                    raise PointTimeout(
                        f"point exceeded the {timeout:g} s per-point timeout"
                    )

                self.previous = signal.signal(signal.SIGALRM, _raise)
                signal.setitimer(signal.ITIMER_REAL, timeout)
            return self

        def __exit__(self, *exc):
            if self.armed:
                signal.setitimer(signal.ITIMER_REAL, 0.0)
                signal.signal(signal.SIGALRM, self.previous)
            return False

    return _Guard()


def _resolve_task(task: str | TaskAdapter) -> TaskAdapter:
    return get_task(task) if isinstance(task, str) else task


def _task_label(task: str | TaskAdapter) -> str:
    """Stable span tag for a task: registry name, else callable name."""
    if isinstance(task, str):
        return task
    return (
        registered_name(task)
        or getattr(task, "__name__", None)
        or type(task).__name__
    )


def _run_point(
    task: str | TaskAdapter,
    pid: str,
    params: Mapping[str, Any],
    timeout: float | None,
    attempt: int,
) -> dict[str, Any]:
    """Execute one point and build its record (never raises)."""
    from repro.core import memo

    before = memo.cache_snapshot()
    # Per-point observability delta, mirroring the cache-delta pattern:
    # snapshot before/after and ship only the difference (picklable).
    obs_before = obs.snapshot() if obs.enabled() else None
    started = time.perf_counter()
    record: dict[str, Any] = {
        "kind": "point",
        "id": pid,
        "params": dict(params),
        "attempts": attempt,
        "worker": os.getpid(),
    }
    with obs.span("campaign.point", task=_task_label(task)) as point_span:
        try:
            fn = _resolve_task(task)
            with _alarm_guard(timeout):
                metrics = fn(dict(params))
            if not isinstance(metrics, Mapping):
                raise ValidationError(
                    f"task must return a metric mapping, got {type(metrics).__name__}"
                )
            record["status"] = "ok"
            record["metrics"] = {str(k): float(v) for k, v in metrics.items()}
        except (Exception, PointTimeout) as exc:
            record["status"] = "failed"
            record["error"] = {
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(limit=20),
            }
        point_span.tag(status=record["status"])
    record["elapsed"] = time.perf_counter() - started
    after = memo.cache_snapshot()
    record["cache"] = {
        "hits": after["hits"] - before["hits"],
        "misses": after["misses"] - before["misses"],
        # Absolute worker-cache footprint estimate at record time (gauge).
        "bytes": int(after.get("bytes", 0)),
    }
    if obs_before is not None:
        record["obs"] = obs.delta(obs_before)
    return record


def _pool_entry(payload: tuple) -> dict[str, Any]:
    """Module-level (picklable) pool entry point."""
    return _run_point(*payload)


def _pool_init(cache_config: Mapping[str, Any], obs_enabled: bool = False) -> None:
    """Per-worker initializer: idempotently mirror the parent cache config.

    Each worker owns a private, initially cold :data:`repro.core.memo.
    grid_cache`; ``configure`` is idempotent so re-running the initializer
    (or forking an already-configured parent) is harmless.  The cold-warm
    cost is surfaced through per-record cache deltas in the telemetry.

    The parent's observability switch is mirrored too, so ``spawn``-started
    workers record spans exactly when the coordinator does (under ``fork``
    the flag is inherited and this is a no-op).
    """
    from repro.core import memo

    memo.configure(
        enabled=bool(cache_config.get("enabled", True)),
        maxsize=int(cache_config.get("maxsize", 256)),
    )
    if obs_enabled:
        obs.enable()
    else:
        obs.disable()


def _is_picklable(obj: Any) -> bool:
    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False


# -- coordinator -------------------------------------------------------------------


class _Coordinator:
    """Drives pending points through retries to terminal records."""

    def __init__(
        self,
        task: str | TaskAdapter,
        policy: ExecutionPolicy,
        telemetry: CampaignTelemetry,
        store: ResultStore | None,
        progress: ProgressCallback | None,
    ):
        self.task = task
        self.policy = policy
        self.telemetry = telemetry
        self.store = store
        self.progress = progress
        self.finalized: dict[str, dict[str, Any]] = {}
        self._since_checkpoint = 0

    # one queue entry: (index, point_id, params, attempt)

    def _finalize(self, record: dict[str, Any]) -> None:
        self.finalized[record["id"]] = record
        self.telemetry.record(record)
        if self.store is not None:
            self.store.append_point(record)
            self._since_checkpoint += 1
            if self._since_checkpoint >= self.policy.checkpoint_every:
                self._checkpoint()
        if self.progress is not None:
            self.progress(record, self.telemetry)

    def _checkpoint(self) -> None:
        if self.store is not None and self._since_checkpoint:
            self.store.append_checkpoint(
                {
                    "done": self.telemetry.done,
                    "failed": self.telemetry.failed,
                    "elapsed": self.telemetry.wall_seconds,
                }
            )
            self._since_checkpoint = 0

    def _should_retry(self, record: dict[str, Any], attempt: int) -> bool:
        return record["status"] == "failed" and attempt <= self.policy.retries

    def _backoff(self, attempt: int) -> None:
        if self.policy.backoff > 0:
            time.sleep(self.policy.backoff * attempt)

    # -- serial path -------------------------------------------------------------

    def run_serial(self, queue: "deque[tuple[int, str, dict, int]]") -> None:
        while queue:
            index, pid, params, attempt = queue.popleft()
            record = _run_point(
                self.task, pid, params, self.policy.timeout, attempt
            )
            if self._should_retry(record, attempt):
                self._backoff(attempt)
                queue.appendleft((index, pid, params, attempt + 1))
                continue
            self._finalize(record)
        self._checkpoint()

    # -- pool path ---------------------------------------------------------------

    def run_pool(self, queue: "deque[tuple[int, str, dict, int]]") -> None:
        """Chunked pool dispatch; falls back to serial if the pool breaks."""
        from repro.core import memo

        policy = self.policy
        cache_config = memo.cache_snapshot()
        max_inflight = policy.workers * policy.chunk_size
        inflight: dict[Any, tuple[int, str, dict, int]] = {}
        try:
            with ProcessPoolExecutor(
                max_workers=policy.workers,
                initializer=_pool_init,
                initargs=(cache_config, obs.enabled()),
            ) as pool:
                while queue or inflight:
                    while queue and len(inflight) < max_inflight:
                        entry = queue.popleft()
                        index, pid, params, attempt = entry
                        future = pool.submit(
                            _pool_entry,
                            (self.task, pid, params, policy.timeout, attempt),
                        )
                        inflight[future] = entry
                    ready, _ = wait(inflight, return_when=FIRST_COMPLETED)
                    for future in ready:
                        index, pid, params, attempt = inflight.pop(future)
                        try:
                            record = future.result()
                        except BrokenProcessPool:
                            raise
                        except Exception as exc:  # worker-side transport error
                            record = _transport_failure(pid, params, attempt, exc)
                        if self._should_retry(record, attempt):
                            self._backoff(attempt)
                            queue.append((index, pid, params, attempt + 1))
                        else:
                            self._finalize(record)
        except (BrokenProcessPool, OSError) as exc:
            # Pool died (OOM-killed worker, fork failure, ...): finish the
            # remaining points serially rather than losing the campaign.
            for entry in inflight.values():
                queue.append(entry)
            pending = deque(
                e for e in sorted(queue) if e[1] not in self.finalized
            )
            queue.clear()
            self.telemetry.note(
                f"process pool failed ({type(exc).__name__}: {exc}); "
                f"finished {len(pending)} remaining point(s) serially"
            )
            self.telemetry.mode = "pool+serial-fallback"
            self.run_serial(pending)
            return
        self._checkpoint()


def _transport_failure(
    pid: str, params: Mapping[str, Any], attempt: int, exc: Exception
) -> dict[str, Any]:
    """Record for a point whose worker-side result never arrived."""
    return {
        "kind": "point",
        "id": pid,
        "params": dict(params),
        "status": "failed",
        "attempts": attempt,
        "worker": 0,
        "elapsed": 0.0,
        "cache": {"hits": 0, "misses": 0, "bytes": 0},
        "error": {
            "type": type(exc).__name__,
            "message": str(exc),
            "traceback": traceback.format_exc(limit=20),
        },
    }


def _execute(
    spec: CampaignSpec,
    store: ResultStore | None,
    policy: ExecutionPolicy,
    progress: ProgressCallback | None,
    completed: Mapping[str, dict[str, Any]],
) -> CampaignResult:
    all_points = list(spec.points())
    pending = deque(
        (index, pid, params, 1)
        for index, (pid, params) in enumerate(all_points)
        if pid not in completed
    )
    telemetry = CampaignTelemetry(
        total_points=len(all_points),
        workers=max(int(policy.workers), 1),
        skipped=len(all_points) - len(pending),
    )
    coordinator = _Coordinator(spec.task, policy, telemetry, store, progress)

    use_pool = policy.workers > 1 and len(pending) > 1
    if use_pool and not isinstance(spec.task, str) and not _is_picklable(spec.task):
        telemetry.note(
            f"task {spec.task_name!r} is not picklable; using the serial path"
        )
        use_pool = False
    if use_pool:
        telemetry.mode = "pool"
        coordinator.run_pool(pending)
    else:
        telemetry.mode = "serial"
        telemetry.workers = 1
        coordinator.run_serial(pending)

    telemetry.finish()
    if store is not None:
        store.append_summary(telemetry.to_dict())
        store.close()

    ordered = []
    for pid, _params in all_points:
        if pid in coordinator.finalized:
            ordered.append(coordinator.finalized[pid])
        elif pid in completed:
            ordered.append(completed[pid])
    return CampaignResult(
        spec=spec,
        records=tuple(ordered),
        telemetry=telemetry,
        store_path=store.path if store is not None else None,
    )


# -- public entry points -----------------------------------------------------------


def _make_policy(
    policy: ExecutionPolicy | None, overrides: Mapping[str, Any]
) -> ExecutionPolicy:
    base = policy if policy is not None else ExecutionPolicy()
    return replace(base, **dict(overrides)) if overrides else base


def run_campaign(
    spec: CampaignSpec,
    store_path: str | Path | None = None,
    *,
    policy: ExecutionPolicy | None = None,
    progress: ProgressCallback | None = None,
    overwrite: bool = False,
    **policy_overrides: Any,
) -> CampaignResult:
    """Run every point of ``spec``; optionally persist to a JSONL store.

    ``policy_overrides`` (``workers=``, ``timeout=``, ``retries=``, ...)
    are shorthand for building an :class:`ExecutionPolicy`.
    """
    policy = _make_policy(policy, policy_overrides)
    store = (
        ResultStore.create(store_path, spec, overwrite=overwrite)
        if store_path is not None
        else None
    )
    return _execute(spec, store, policy, progress, completed={})


def resume_campaign(
    store_path: str | Path,
    *,
    task: str | TaskAdapter | None = None,
    spec: CampaignSpec | None = None,
    policy: ExecutionPolicy | None = None,
    progress: ProgressCallback | None = None,
    retry_failed: bool = False,
    **policy_overrides: Any,
) -> CampaignResult:
    """Complete a partially-run campaign, skipping finished points.

    The spec is rebuilt from the store header (registry-named tasks); a
    campaign run with a raw callable needs ``task=`` (and ``spec=`` if the
    header could not serialize the space).  ``retry_failed=True`` re-runs
    points whose terminal status was ``failed``.
    """
    policy = _make_policy(policy, policy_overrides)
    store = ResultStore.open(store_path)
    if spec is None:
        if task is None:
            spec = store.spec()
        else:
            from repro.campaign.spec import ParameterSpace

            data = store.spec_data()
            spec = CampaignSpec.create(
                name=data["name"],
                space=ParameterSpace.from_json(data["space"]),
                task=task,
                defaults=data.get("defaults") or None,
            )
    elif task is not None:
        spec = CampaignSpec.create(
            name=spec.name, space=spec.space, task=task,
            defaults=dict(spec.defaults),
        )
    completed_records = {
        r["id"]: r
        for r in store.point_records()
        if r["status"] == "ok" or (not retry_failed and r["status"] == "failed")
    }
    return _execute(spec, store, policy, progress, completed=completed_records)


def campaign_status(store_path: str | Path) -> dict[str, Any]:
    """Progress snapshot of a result store (see :meth:`ResultStore.status`)."""
    return ResultStore.open(store_path).status()
