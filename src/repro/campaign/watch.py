"""``repro campaign watch``: a stdlib-only live dashboard for running campaigns.

Tails the three live artifacts a campaign leaves next to its store —

* the append-only result JSONL (progress, terminal statuses),
* ``<store>.heartbeats/`` (one beat file per worker process),
* ``<store>.stream.jsonl`` (the streaming-metrics time-series, if on),
* ``<store>.manifest.json`` (run provenance)

— and renders a single refreshing screen: a progress bar with an ETA
derived from observed throughput, a per-point latency quantile line
(p50/p95/p99 over the merged records), one line per live worker (phase,
current point, elapsed, RSS, staleness), worst health-event counts, and
the provenance header.  Multi-host lease campaigns merge naturally:
progress counts come from :meth:`~repro.campaign.store.ResultStore.
merged_status` (main store + worker shards), worker lines group by host
when more than one host is beating, lease/batch progress gets its own
line, and the ETA sums the per-worker throughputs observed in the shared
stream file.  Everything is read-only and torn-file tolerant,
so watching a run (or the corpse of a SIGKILLed one) can never perturb
it.  ``--once`` renders a single frame and exits — that is what tests
and CI use; interactively, the screen refreshes in place until the
campaign completes or you press Ctrl-C (``q``/Ctrl-C both just end the
watcher, never the run).
"""

from __future__ import annotations

import sys
import time
from pathlib import Path
from typing import Any

from repro.campaign.store import ResultStore
from repro.obs import heartbeat as obs_heartbeat
from repro.obs import manifest as obs_manifest
from repro.obs import stream as obs_stream

__all__ = ["poll_store", "render", "watch"]


def poll_store(store_path: str | Path) -> dict[str, Any]:
    """One machine-readable liveness sample of a (possibly running) store.

    The JSON-shaped sibling of :func:`render` — progress counts from the
    store, the latest streaming-metrics sample (when the run streams), and
    the run manifest.  This is what the serving layer's job-polling
    endpoint returns, and what ``repro jobs`` prints: read-only,
    torn-file tolerant, safe against a live writer or a SIGKILLed corpse.
    """
    store = ResultStore.open(store_path)
    status = store.merged_status()
    out: dict[str, Any] = {
        "name": status["name"],
        "task": status["task"],
        "points": status["points"],
        "done": status["done"],
        "failed": status["failed"],
        "pending": status["pending"],
        "complete": status["complete"],
    }
    if status.get("shards"):
        out["shards"] = status["shards"]
    leases = _lease_progress(store.path)
    if leases is not None:
        out["leases"] = leases
    summary = status.get("summary")
    if summary:
        out["wall_seconds"] = summary.get("wall_seconds")
    manifest = obs_manifest.load_manifest(
        obs_manifest.manifest_path(store.path)
    )
    if manifest:
        out["manifest"] = {
            key: manifest.get(key)
            for key in ("spec_hash", "runs", "package_version", "git_sha")
            if manifest.get(key) is not None
        }
    samples = obs_stream.read_stream(obs_stream.stream_path(store.path))
    if samples:
        out["stream"] = samples[-1]
    return out

_BAR_WIDTH = 32


def _bar(done: int, failed: int, total: int) -> str:
    if total <= 0:
        return "[" + "?" * _BAR_WIDTH + "]"
    ok_cells = int(_BAR_WIDTH * done / total)
    bad_cells = int(_BAR_WIDTH * failed / total)
    if failed and bad_cells == 0:
        bad_cells = 1
    ok_cells = min(ok_cells, _BAR_WIDTH - bad_cells)
    rest = _BAR_WIDTH - ok_cells - bad_cells
    return "[" + "#" * ok_cells + "x" * bad_cells + "." * rest + "]"


def _fmt_seconds(seconds: float) -> str:
    seconds = max(float(seconds), 0.0)
    if seconds < 120:
        return f"{seconds:.0f}s"
    if seconds < 7200:
        return f"{seconds / 60:.0f}m"
    return f"{seconds / 3600:.1f}h"


def _fmt_bytes(n: float) -> str:
    return f"{float(n) / 1e6:.0f}MB"


def _eta_seconds(
    stream_records: list[dict[str, Any]], pending: int
) -> float | None:
    """Pending / throughput from the stream samples.

    A shared stream file can interleave samples from several lease
    workers (each tagged with its worker id), whose counters are
    per-worker, not global — so samples are grouped by worker and the
    observed throughputs *summed*.  With a single (untagged) coordinator
    stream this reduces exactly to the classic first-vs-last estimate.
    """
    if pending <= 0 or len(stream_records) < 2:
        return None
    by_worker: dict[Any, list[dict[str, Any]]] = {}
    for sample in stream_records:
        by_worker.setdefault(sample.get("worker"), []).append(sample)
    throughput = 0.0
    for samples in by_worker.values():
        if len(samples) < 2:
            continue
        first, last = samples[0], samples[-1]
        try:
            span = float(last["time"]) - float(first["time"])
            gained = (int(last["done"]) + int(last["failed"])) - (
                int(first["done"]) + int(first["failed"])
            )
        except (KeyError, TypeError, ValueError):
            continue
        if span <= 0 or gained <= 0:
            continue
        throughput += gained / span
    if throughput <= 0:
        return None
    return pending / throughput


def _point_latency_quantiles(store: ResultStore) -> dict[str, float]:
    """p50/p95/p99 of per-point elapsed seconds over all merged records.

    Folds the record elapsed times into a decade histogram and inverts it —
    the same estimator ``/v1/statz`` and ``repro obs summary`` use — so the
    dashboard's latency line agrees with the other surfaces.
    """
    from repro.obs.registry import HistogramStat, histogram_quantiles

    hist = HistogramStat("campaign.point.elapsed", {})
    try:
        records = store.merged_point_records()
    except Exception:
        return {}
    for record in records:
        value = record.get("elapsed")
        if isinstance(value, (int, float)) and float(value) >= 0.0:
            hist.observe(float(value))
    return histogram_quantiles(hist)


def _profile_line(store_path: Path) -> str | None:
    """Hottest frames from the store's profiler shards, if any exist."""
    from repro.obs import profile as obs_profile

    try:
        profiles = obs_profile.load_store_profiles(store_path)
        if not profiles:
            return None
        merged = obs_profile.merge_profiles(profiles)
        top = obs_profile.top_frames(merged, n=3)
    except Exception:
        return None
    if not merged.get("samples") or not top:
        return None
    parts = [f"{entry['frame']} {entry['fraction']:.0%}" for entry in top]
    return (
        "profile: " + " · ".join(parts)
        + f" ({merged['samples']} samples @ {merged['hz']} Hz)"
    )


def _slo_line(store_path: Path) -> str | None:
    """Worst SLO burn over the store's stream samples, if evaluable."""
    from repro.obs import slo as obs_slo

    try:
        result = obs_slo.evaluate_store(store_path)
    except Exception:
        return None
    slos = result.get("slos") or []
    if not slos:
        return None
    worst_name, worst_burn = None, -1.0
    for slo in slos:
        for window in slo.get("windows", []):
            burn = max(
                float(window["short"]["burn"]), float(window["long"]["burn"])
            )
            if burn > worst_burn:
                worst_name, worst_burn = slo["name"], burn
    verdict = "BREACH" if result.get("breach") else "ok"
    return f"slo: {verdict} · worst {worst_name} burning {worst_burn:.2g}x budget"


def _lease_progress(store_path: Path) -> dict[str, int] | None:
    """Batch-level lease counts for a lease-scheduled campaign, else None."""
    from repro.campaign import lease as lease_mod

    ldir = lease_mod.lease_dir(store_path)
    plan_path = ldir / "plan.json"
    if not plan_path.exists():
        return None
    try:
        import json

        plan = json.loads(plan_path.read_text(encoding="utf-8"))
        batches = plan["batches"]
    except (OSError, ValueError, KeyError):
        return None
    counts = {"batches": len(batches), "done": 0, "leased": 0, "expired": 0, "free": 0}
    for batch in batches:
        try:
            state = lease_mod.lease_state(ldir, batch["id"], 30.0)
        except (OSError, TypeError, KeyError):
            continue
        counts[state] = counts.get(state, 0) + 1
    return counts


def render(store_path: str | Path, now: float | None = None) -> str:
    """One dashboard frame as a plain string (no ANSI; raises on a bad path)."""
    now = time.time() if now is None else now
    store_path = Path(store_path)
    store = ResultStore.open(store_path)
    status = store.merged_status()
    manifest = obs_manifest.load_manifest(obs_manifest.manifest_path(store_path))
    beats = obs_heartbeat.read_heartbeats(obs_heartbeat.heartbeat_dir(store_path))
    stream_file = obs_stream.stream_path(store_path)
    stream_records = (
        obs_stream.read_stream(stream_file) if stream_file.exists() else []
    )

    total = int(status["points"])
    done, failed, pending = status["done"], status["failed"], status["pending"]
    lines = [
        f"campaign {status['name']!r} · task {status['task']}"
        + (" · COMPLETE" if status["complete"] else ""),
    ]
    if manifest is not None:
        lines.append(
            "manifest: spec "
            + str(manifest.get("spec_hash"))
            + f" · run #{manifest.get('runs', 1)}"
            + (
                f" · repro {manifest['package_version']}"
                if manifest.get("package_version")
                else ""
            )
            + (f" · git {manifest['git_sha']}" if manifest.get("git_sha") else "")
        )
    percent = 100.0 * (done + failed) / total if total else 0.0
    lines.append(
        f"{_bar(done, failed, total)} {done + failed}/{total} "
        f"({percent:.0f}%) · {done} ok · {failed} failed · {pending} pending"
        + (f" · {status['shards']} shard(s)" if status.get("shards") else "")
    )
    leases = _lease_progress(store_path)
    if leases is not None:
        parts = [f"{leases['done']}/{leases['batches']} batches done"]
        for state in ("leased", "expired", "free"):
            if leases.get(state):
                parts.append(f"{leases[state]} {state}")
        lines.append("leases: " + " · ".join(parts))

    eta = _eta_seconds(stream_records, pending)
    if eta is not None:
        lines.append(f"eta: ~{_fmt_seconds(eta)} at observed throughput")

    quantiles = _point_latency_quantiles(store)
    if quantiles:
        lines.append(
            "latency: "
            + " · ".join(
                f"{key}={quantiles[key]:.3g}s"
                for key in ("p50", "p95", "p99")
                if key in quantiles
            )
        )

    profile_line = _profile_line(store_path)
    if profile_line is not None:
        lines.append(profile_line)
    if stream_records:
        slo_line = _slo_line(store_path)
        if slo_line is not None:
            lines.append(slo_line)

    interval = 5.0
    if manifest and isinstance(manifest.get("policy"), dict):
        interval = float(manifest["policy"].get("heartbeat_interval") or 5.0)
    live = [b for b in beats if b.get("phase") != "stopped"]
    if live:
        by_host: dict[str, list[dict[str, Any]]] = {}
        for beat in live:
            by_host.setdefault(str(beat.get("host") or "localhost"), []).append(beat)
        multi_host = len(by_host) > 1

        def _beat_line(beat: dict[str, Any], indent: str) -> str:
            age = obs_heartbeat.beat_age(beat, now)
            stale = age > 3.0 * interval
            phase = beat.get("phase", "?")
            detail = ""
            if beat.get("point_id"):
                elapsed = float(beat.get("point_elapsed", 0.0)) + age
                detail = f" {beat['point_id']} ({_fmt_seconds(elapsed)})"
            # `pid` alone collides across hosts; the full hostname-pid
            # worker id disambiguates in the grouped (multi-host) view.
            label = (
                obs_heartbeat.beat_worker(beat)
                if multi_host
                else f"pid {beat.get('pid')}"
            )
            return (
                f"{indent}{label}: {phase}{detail} · "
                f"{beat.get('points_done', 0)} done · "
                f"{_fmt_bytes(beat.get('rss_bytes', 0))} · "
                f"beat {age:.1f}s ago"
                + ("  ** STALLED? **" if stale else "")
            )

        if multi_host:
            lines.append(f"workers ({len(live)} live on {len(by_host)} hosts):")
            for host in sorted(by_host):
                lines.append(f"  {host}:")
                lines.extend(_beat_line(b, "    ") for b in by_host[host])
        else:
            lines.append(f"workers ({len(live)} live):")
            lines.extend(_beat_line(b, "  ") for b in live)
    elif beats:
        lines.append(f"workers: none live ({len(beats)} stopped)")
    elif not status["complete"]:
        lines.append(
            "workers: no heartbeats found "
            "(run predates live telemetry, or they were cleaned up)"
        )

    if stream_records:
        last = stream_records[-1]
        extras = []
        if "cache_hits" in last:
            hits = int(last["cache_hits"])
            misses = int(last.get("cache_misses", 0))
            rate = 100.0 * hits / (hits + misses) if hits + misses else 0.0
            extras.append(f"cache {rate:.0f}% hit")
        if last.get("stalls"):
            extras.append(f"{last['stalls']} stall(s)")
        if last.get("stragglers"):
            extras.append(f"{last['stragglers']} straggler(s)")
        health = last.get("health") or {}
        for severity in ("error", "warning"):
            if health.get(severity):
                extras.append(f"{health[severity]} {severity}(s)")
        age = max(now - float(last.get("time", now)), 0.0)
        lines.append(
            f"stream: {len(stream_records)} sample(s), last {age:.1f}s ago"
            + (" · " + " · ".join(extras) if extras else "")
        )

    summary = status.get("summary")
    if summary is not None:
        lines.append(
            f"finished: {summary.get('done')} ok / {summary.get('failed')} "
            f"failed in {float(summary.get('wall_seconds', 0.0)):.2f} s "
            f"[{summary.get('mode')}]"
        )
    return "\n".join(lines)


def watch(
    store_path: str | Path,
    interval: float = 2.0,
    once: bool = False,
    out=None,
) -> int:
    """Render the dashboard, refreshing in place until complete (or Ctrl-C)."""
    out = sys.stdout if out is None else out
    while True:
        frame = render(store_path)
        if once:
            print(frame, file=out)
            return 0
        # Clear + home; plain ANSI keeps this stdlib-only.
        out.write("\x1b[2J\x1b[H" + frame + "\n")
        out.flush()
        if "COMPLETE" in frame.splitlines()[0]:
            return 0
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return 0
