"""Append-only JSONL result store with crash-safe checkpoint/resume.

A campaign's results live in one JSON-lines file.  Line kinds:

* ``campaign`` — the header: campaign name, the spec (when serializable),
  the total point count and a format version.  Written once at creation.
* ``point`` — one *terminal* record per point: status ``ok`` (with the
  metric dict) or ``failed`` (with the captured error), plus attempts,
  elapsed seconds, worker pid and the worker's grid-cache delta.
* ``checkpoint`` — periodic progress marker (done/failed counts, elapsed).
  Checkpoints are written with flush + ``fsync`` so a crash loses at most
  the points since the last checkpoint *line-wise* — and because every
  point line is flushed too, usually nothing at all.
* ``summary`` — the final telemetry dict, written when a run completes.

Crash semantics
---------------
Appends are single ``write()`` calls of one ``\\n``-terminated line.  A
process killed mid-write can leave at most one truncated final line; the
reader detects and ignores it (:meth:`ResultStore.records` skips an
undecodable *last* line, while corruption elsewhere raises).  ``resume``
therefore never double-counts a point: a point is complete iff its full
terminal line made it to disk.

Multi-writer campaigns (shards)
-------------------------------
The torn-tail repair truncates the file, which is only safe with a single
writer.  Multi-host lease workers therefore never append to the main
store: each worker owns a private *shard* store

    <store>.shards/<worker-id>.jsonl

(one writer per file, same format, same crash semantics) and readers
merge the main store with every shard via :meth:`merged_point_records`.
The merge keeps the last record per id within each file (so a retried-ok
beats an earlier failure, as in the single-file case), then across files
prefers ``ok`` over ``failed`` and otherwise the first file in
deterministic order (main store first, shards sorted by name).  A worker
killed mid-campaign leaves its shard behind; its completed points survive
and its replacement — a different worker id — gets a fresh shard.
"""

from __future__ import annotations

import io
import json
import os
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro._errors import ValidationError
from repro.campaign.spec import CampaignSpec

__all__ = ["ResultStore", "StoreCorruptError", "shard_dir"]

FORMAT_VERSION = 1


def shard_dir(store_path: str | Path) -> Path:
    """The per-worker shard directory for a result store path."""
    return Path(str(store_path) + ".shards")


class StoreCorruptError(ValidationError):
    """A result store line (other than a truncated tail) failed to parse."""


def _encode(record: Mapping[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"


class ResultStore:
    """Append-only JSONL store for one campaign's results.

    Use :meth:`create` for a fresh store (writes the header) and
    :meth:`open` to append to / inspect an existing one.  The instance is a
    context manager; writes go through one buffered append handle that is
    flushed per record and fsynced at checkpoints.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._handle: io.TextIOBase | None = None

    # -- lifecycle ---------------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str | Path,
        spec: CampaignSpec,
        overwrite: bool = False,
    ) -> "ResultStore":
        """Start a fresh store with a campaign header line."""
        store = cls(path)
        if store.path.exists() and not overwrite:
            raise ValidationError(
                f"result store {store.path} already exists; "
                "pass overwrite=True or resume it"
            )
        header: dict[str, Any] = {
            "kind": "campaign",
            "version": FORMAT_VERSION,
            "name": spec.name,
            "task": spec.task_name,
            "points": len(spec),
        }
        try:
            header["spec"] = spec.to_json()
        except ValidationError:
            # Callable task: embed the space anyway (with task: null) so the
            # store stays resumable from the library via resume(..., task=...),
            # just not from the CLI.
            header["spec"] = {
                "name": spec.name,
                "task": None,
                "defaults": dict(spec.defaults),
                "space": spec.space.to_json(),
            }
        store.path.parent.mkdir(parents=True, exist_ok=True)
        with store.path.open("w") as handle:
            handle.write(_encode(header))
            handle.flush()
            os.fsync(handle.fileno())
        return store

    @classmethod
    def open_shard(
        cls, base_path: str | Path, worker: str, spec: CampaignSpec
    ) -> "ResultStore":
        """Open (creating if missing) this worker's private shard store.

        Idempotent across worker restarts: an existing shard is reopened in
        append mode, so a worker that crashed and was relaunched under the
        *same* worker id keeps its completed records.  Creation is
        atomic-enough because worker ids (hostname+pid) are unique among
        live processes — two concurrent creators cannot share an id.
        """
        directory = shard_dir(base_path)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{worker}.jsonl"
        if path.exists():
            return cls.open(path)
        try:
            return cls.create(path, spec)
        except ValidationError:
            return cls.open(path)

    @classmethod
    def open(cls, path: str | Path) -> "ResultStore":
        """Open an existing store (validates the header)."""
        store = cls(path)
        if not store.path.exists():
            raise ValidationError(f"no result store at {store.path}")
        if store.path.is_dir():
            raise ValidationError(
                f"result store path {store.path} is a directory; "
                "pass the JSONL file itself"
            )
        store.header()  # validates
        return store

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Flush and close the append handle (reads stay available)."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None

    # -- writing -----------------------------------------------------------------

    def _repair_torn_tail(self) -> None:
        """Drop a trailing partial line left by a crash mid-append.

        Without this, the first append after a resume would concatenate onto
        the torn fragment and corrupt an otherwise-valid record.
        """
        with self.path.open("r+b") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            if size == 0:
                return
            handle.seek(size - 1)
            if handle.read(1) == b"\n":
                return
            handle.seek(0)
            data = handle.read()
            cut = data.rfind(b"\n") + 1  # 0 if no newline at all
            handle.truncate(cut)

    def _append(self, record: Mapping[str, Any], sync: bool = False) -> None:
        if self._handle is None:
            if self.path.exists():
                self._repair_torn_tail()
            self._handle = self.path.open("a")
        self._handle.write(_encode(record))
        self._handle.flush()
        if sync:
            os.fsync(self._handle.fileno())

    def append_point(self, record: Mapping[str, Any]) -> None:
        """Append one terminal point record (flushed, not fsynced)."""
        if record.get("kind") != "point":
            raise ValidationError("point records must carry kind='point'")
        if "id" not in record or "status" not in record:
            raise ValidationError("point records need 'id' and 'status'")
        self._append(record)

    def append_checkpoint(self, counts: Mapping[str, Any]) -> None:
        """Append an fsynced checkpoint marker."""
        self._append({"kind": "checkpoint", **counts}, sync=True)

    def append_summary(self, telemetry: Mapping[str, Any]) -> None:
        """Append the final fsynced telemetry summary."""
        self._append({"kind": "summary", **telemetry}, sync=True)

    # -- reading -----------------------------------------------------------------

    def records(self) -> Iterator[dict[str, Any]]:
        """Every decodable record, tolerating one truncated final line."""
        with self.path.open("r") as handle:
            lines = handle.readlines()
        for index, line in enumerate(lines):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError:
                if index == len(lines) - 1:
                    return  # torn tail from a crash mid-append
                raise StoreCorruptError(
                    f"{self.path}: undecodable record at line {index + 1}"
                ) from None
            if not isinstance(record, dict):
                raise StoreCorruptError(
                    f"{self.path}: line {index + 1} is not a JSON object"
                )
            yield record

    def header(self) -> dict[str, Any]:
        """The campaign header record."""
        for record in self.records():
            if record.get("kind") != "campaign":
                break
            if record.get("version") != FORMAT_VERSION:
                raise StoreCorruptError(
                    f"{self.path}: unsupported store version "
                    f"{record.get('version')!r}"
                )
            return record
        raise StoreCorruptError(f"{self.path}: missing campaign header line")

    def spec_data(self) -> dict[str, Any]:
        """The raw spec JSON from the header (``task`` may be ``None``)."""
        data = self.header().get("spec")
        if not data:
            raise ValidationError(f"{self.path} has no serialized spec")
        return data

    def spec(self) -> CampaignSpec:
        """Rebuild the campaign spec embedded in the header.

        Raises :class:`ValidationError` when the campaign was run with a
        non-registry callable task (header carries ``task: null``); resume
        such a store from the library by passing the task explicitly.
        """
        data = self.spec_data()
        if not data.get("task"):
            raise ValidationError(
                f"{self.path} was run with a non-registry task; resume it "
                "via repro.campaign.resume_campaign(..., task=...)"
            )
        return CampaignSpec.from_json(data)

    def point_records(self) -> list[dict[str, Any]]:
        """Terminal point records, de-duplicated (last record per id wins)."""
        by_id: dict[str, dict[str, Any]] = {}
        for record in self.records():
            if record.get("kind") == "point":
                by_id[record["id"]] = record
        return list(by_id.values())

    def completed_ids(self, include_failed: bool = True) -> set[str]:
        """Point ids resume() should skip.

        ``include_failed=False`` treats terminally-failed points as pending
        so a resume retries them.
        """
        out = set()
        for record in self.point_records():
            if record["status"] == "ok" or (
                include_failed and record["status"] == "failed"
            ):
                out.add(record["id"])
        return out

    def status(self) -> dict[str, Any]:
        """Progress snapshot: header fields + done/failed/pending counts."""
        header = self.header()
        points = self.point_records()
        done = sum(1 for r in points if r["status"] == "ok")
        failed = sum(1 for r in points if r["status"] == "failed")
        summary = None
        for record in self.records():
            if record.get("kind") == "summary":
                summary = record
        total = int(header.get("points") or 0)
        return {
            "name": header.get("name"),
            "task": header.get("task"),
            "points": total,
            "done": done,
            "failed": failed,
            "pending": max(total - done - failed, 0),
            "complete": total > 0 and done + failed >= total,
            "summary": summary,
        }

    # -- multi-writer merge (lease-scheduler shards) -------------------------------

    def shard_paths(self) -> list[Path]:
        """Shard store files next to this store, in deterministic name order."""
        directory = shard_dir(self.path)
        if not directory.is_dir():
            return []
        return sorted(directory.glob("*.jsonl"))

    def merged_point_records(self) -> list[dict[str, Any]]:
        """Terminal point records merged across the main store and all shards.

        Within each file the last record per id wins (a retried success
        beats an earlier failure, exactly as :meth:`point_records`).  Across
        files an ``ok`` record beats a ``failed`` one; between records of
        equal status the earliest file in deterministic order wins (main
        store first, then shards sorted by name), which makes the merge
        independent of filesystem enumeration order.
        """
        merged: dict[str, dict[str, Any]] = {}
        sources = [self.path, *self.shard_paths()]
        for path in sources:
            try:
                per_file = ResultStore(path).point_records()
            except (OSError, StoreCorruptError):
                continue
            for record in per_file:
                pid = record["id"]
                held = merged.get(pid)
                if held is None:
                    merged[pid] = record
                elif held["status"] != "ok" and record["status"] == "ok":
                    merged[pid] = record
        return list(merged.values())

    def terminal_record_counts(self) -> dict[str, int]:
        """``point id -> number of terminal records`` across store + shards.

        A well-behaved distributed run writes exactly one terminal record
        per point; any id counting 2+ means the lease protocol let two
        workers finish the same point (the CI smoke asserts this is empty
        after a worker SIGKILL).
        """
        counts: dict[str, int] = {}
        for path in [self.path, *self.shard_paths()]:
            try:
                records = ResultStore(path).records()
                for record in records:
                    if record.get("kind") == "point":
                        counts[record["id"]] = counts.get(record["id"], 0) + 1
            except (OSError, StoreCorruptError):
                continue
        return counts

    def merged_completed_ids(self, include_failed: bool = True) -> set[str]:
        """Point ids a resume/worker should skip, across store + shards."""
        out = set()
        for record in self.merged_point_records():
            if record["status"] == "ok" or (
                include_failed and record["status"] == "failed"
            ):
                out.add(record["id"])
        return out

    def merged_status(self) -> dict[str, Any]:
        """Like :meth:`status` but counting points across store + shards."""
        status = self.status()
        points = self.merged_point_records()
        done = sum(1 for r in points if r["status"] == "ok")
        failed = sum(1 for r in points if r["status"] == "failed")
        total = int(status["points"] or 0)
        status.update(
            done=done,
            failed=failed,
            pending=max(total - done - failed, 0),
            complete=total > 0 and done + failed >= total,
            shards=len(self.shard_paths()),
        )
        return status
