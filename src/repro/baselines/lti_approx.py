"""Classical continuous-time LTI PLL analysis (paper refs [2], [7]).

This is the textbook treatment the paper generalises: model the sampling
PFD as a continuous gain ``w0/2pi``, the VCO as ``v0/s``, and analyse the
rational loop ``A(s)`` with ordinary feedback theory.  The approximation
``H00 ~= A / (1 + A)`` (rightmost form of paper eq. 38) "works fine as long
as the unity gain frequency of the feedback loop is well below the frequency
of the reference signal" — the experiments quantify where it breaks.
"""

from __future__ import annotations

import numpy as np

from repro.lti.bode import (
    bandwidth_3db,
    gain_crossover,
    peaking_db,
    phase_margin,
    stability_margins,
)
from repro.lti.stability import hurwitz_stable
from repro.lti.timedomain import step_response
from repro.lti.transfer import TransferFunction
from repro.pll.architecture import PLL
from repro.pll.openloop import lti_open_loop


class ClassicalLTIAnalysis:
    """All classical loop metrics of a PLL, computed from ``A(s)`` alone."""

    def __init__(self, pll: PLL, pade_order: int = 0):
        self.pll = pll
        self.open_loop = lti_open_loop(pll, pade_order=pade_order)
        self.closed_loop = self.open_loop.feedback()

    # -- frequency domain -------------------------------------------------------

    def unity_gain_frequency(self, omega_min_factor: float = 1e-4, points: int = 4000) -> float:
        """LTI unity-gain frequency of ``A(s)`` (rad/s)."""
        w0 = self.pll.omega0
        return gain_crossover(self.open_loop, omega_min_factor * w0, 10 * w0, points)

    def phase_margin_deg(self, omega_min_factor: float = 1e-4, points: int = 4000) -> float:
        """LTI phase margin (degrees)."""
        w0 = self.pll.omega0
        return phase_margin(self.open_loop, omega_min_factor * w0, 10 * w0, points)

    def closed_loop_response(self, omega) -> np.ndarray:
        """``A/(1+A)`` on a frequency grid — the LTI approximation of H00."""
        return self.closed_loop.frequency_response(np.asarray(omega, dtype=float))

    def bandwidth(self, omega_min_factor: float = 1e-4, points: int = 4000) -> float:
        """Closed-loop -3 dB bandwidth (rad/s)."""
        w0 = self.pll.omega0
        return bandwidth_3db(self.closed_loop, omega_min_factor * w0, 10 * w0, points)

    def peaking(self, omega_min_factor: float = 1e-4, points: int = 4000) -> float:
        """Closed-loop passband peaking in dB."""
        w0 = self.pll.omega0
        return peaking_db(self.closed_loop, omega_min_factor * w0, 10 * w0, points)

    def margins(self):
        """Full :class:`~repro.lti.bode.MarginReport` of ``A(s)``."""
        w0 = self.pll.omega0
        return stability_margins(self.open_loop, 1e-4 * w0, 10 * w0)

    def is_stable(self) -> bool:
        """Closed-loop stability of the LTI approximation (pole test)."""
        return hurwitz_stable(self.closed_loop.den)

    # -- time domain ----------------------------------------------------------------

    def phase_step_response(self, t) -> np.ndarray:
        """Response of the VCO phase to a unit reference phase step.

        A type-2 loop settles to 1 with zero steady-state error; overshoot
        grows as phase margin shrinks.
        """
        return step_response(self.closed_loop, np.asarray(t, dtype=float))

    def error_transfer(self) -> TransferFunction:
        """The phase-error transfer ``1/(1+A)`` (highpass)."""
        one = TransferFunction.gain(1.0)
        return TransferFunction.from_rational(
            (one.rational / (one.rational + self.open_loop.rational)).simplified()
        )
