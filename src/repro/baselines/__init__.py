"""Baseline PLL analyses the paper compares against.

* :mod:`repro.baselines.lti_approx` — the classical continuous-time LTI
  approximation (Gardner's textbook analysis; paper refs [2], [7]): valid
  while the unity-gain frequency stays well below the reference frequency.
* :mod:`repro.baselines.zdomain` — the discrete-time z-domain model of
  Hein & Scott / Gardner (paper refs [3], [5]): captures sampling exactly at
  the sampling instants but obscures the mixed continuous/discrete nature
  the HTM description retains.

A structural identity links the baselines to the paper's method: the
effective open-loop gain satisfies ``lambda(s) = G_z(e^{sT})`` where ``G_z``
is the impulse-invariant z-domain open-loop gain — the HTM model contains
the z-domain model as its restriction to ``z = e^{sT}``, while additionally
describing inter-sample and frequency-conversion behaviour.
"""

from repro.baselines.lti_approx import ClassicalLTIAnalysis
from repro.baselines.zdomain import (
    ZTransferFunction,
    closed_loop_z,
    sampled_open_loop,
    stability_limit_ratio,
)

__all__ = [
    "ClassicalLTIAnalysis",
    "ZTransferFunction",
    "closed_loop_z",
    "sampled_open_loop",
    "stability_limit_ratio",
]
