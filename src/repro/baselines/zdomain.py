"""Discrete-time z-domain PLL model (Hein & Scott 1988; Gardner 1980).

The paper's refs [3] and [5] treat the charge-pump PLL as a sampled-data
system: the phase error is a sequence ``e[n]``, and the loop dynamics a
pulse transfer function ``G_z(z)``.  We build ``G_z`` by impulse-invariant
transformation of the continuous path between the sampler and the phase
output::

    F(s) = v0 * I_cp * Z_LF(s) / s        (filter + VCO; A(s) = F(s)/T)
    g(t) = L^{-1}{F},   G_z(z) = sum_{n>=0} g(nT) z^{-n}

computed in closed form from the partial fractions of ``F`` (poles up to
triple multiplicity — the loop has a double pole at DC).

Key structural identity (validated in the tests): the paper's effective
open-loop gain equals this model on the unit-circle image of the s-plane,

    lambda(s) = G_z(e^{sT}),

because ``lambda`` is the aliasing sum ``(1/T) sum_m F(s + j m w0)`` and
Poisson summation turns that into the sampled-impulse-response series
(exact when ``F`` has relative degree >= 2, which holds here).  The HTM
model therefore *contains* the z-domain model, while also describing
inter-sample behaviour and band conversion — the paper's criticism of
refs [3, 5] is precisely that "they still don't fully recognize the mixed
continuous-time/discrete-time nature of PLLs".
"""

from __future__ import annotations

import cmath
import math
from typing import Sequence

import numpy as np

from repro._errors import ValidationError
from repro._validation import check_order, check_positive
from repro.lti.rational import RationalFunction
from repro.pll.architecture import PLL


class ZTransferFunction:
    """A rational pulse transfer function ``G(z)`` with sample period ``T``.

    Thin z-semantics wrapper over :class:`RationalFunction` (polynomials are
    variable-agnostic): adds unit-circle evaluation, discrete stability and
    discrete frequency response.
    """

    __slots__ = ("_rf", "period")

    def __init__(self, num: Sequence[complex], den: Sequence[complex], period: float):
        self._rf = RationalFunction(num, den)
        self.period = check_positive("period", period)

    @classmethod
    def from_rational(cls, rf: RationalFunction, period: float) -> "ZTransferFunction":
        """Wrap an existing rational function."""
        obj = cls.__new__(cls)
        object.__setattr__(obj, "_rf", rf)
        object.__setattr__(obj, "period", check_positive("period", period))
        return obj

    @property
    def rational(self) -> RationalFunction:
        """Underlying rational function in ``z``."""
        return self._rf

    def __call__(self, z: complex | np.ndarray) -> complex | np.ndarray:
        """Evaluate at ``z``."""
        return self._rf(z)

    def at_s(self, s: complex | np.ndarray) -> complex | np.ndarray:
        """Evaluate at ``z = e^{sT}`` — the s-plane image used by the identity
        ``lambda(s) = G_z(e^{sT})``."""
        return self._rf(np.exp(np.asarray(s, dtype=complex) * self.period))

    def frequency_response(self, omega: Sequence[float] | np.ndarray) -> np.ndarray:
        """Evaluate on the unit circle at ``z = e^{j omega T}``."""
        omega_arr = np.asarray(omega, dtype=float)
        return np.asarray(self._rf(np.exp(1j * omega_arr * self.period)), dtype=complex)

    def eval_jomega(self, omega: Sequence[float] | np.ndarray) -> np.ndarray:
        """Alias for margin tooling compatibility."""
        return self.frequency_response(omega)

    def poles(self) -> np.ndarray:
        """Poles in the z-plane."""
        return self._rf.poles()

    def is_stable(self, margin: float = 0.0) -> bool:
        """True when every pole lies strictly inside the unit circle."""
        poles = self.poles()
        if poles.size == 0:
            return True
        return bool(np.all(np.abs(poles) < 1.0 - margin))

    def __repr__(self) -> str:
        return f"ZTransferFunction(order={self._rf.den_degree}, T={self.period:.6g})"


def _impulse_invariant_numerator(
    residue: complex, a: complex, order: int, period: float
) -> np.ndarray:
    """Numerator of the z-transform of samples of ``r t^{k-1} e^{pt}/(k-1)!``.

    The matching denominator is ``(z - a)^order`` with ``a = e^{pT}``::

        k=1:  r z
        k=2:  r T a z
        k=3:  r T^2 a z (z + a) / 2
    """
    if order == 1:
        return np.array([residue, 0.0], dtype=complex)
    if order == 2:
        return np.array([residue * period * a, 0.0], dtype=complex)
    if order == 3:
        scale = residue * period**2 * a / 2.0
        return np.array([scale, scale * a, 0.0], dtype=complex)
    raise ValidationError(
        f"impulse-invariant transform implemented up to pole multiplicity 3, got {order}"
    )


def _pole_group_transform(
    items: list[tuple[int, complex]], pole: complex, period: float
) -> RationalFunction:
    """Combine all terms of one pole cluster over the shared ``(z - a)^mu``.

    Building the common denominator *structurally* (rather than adding
    rationals and cancelling roots afterwards) keeps multiple poles exact —
    root-based cancellation loses ~eps^(1/mu) accuracy on clustered roots.
    """
    a = cmath.exp(pole * period)
    mu = max(order for order, _ in items)
    num_total = np.zeros(1, dtype=complex)
    base = np.array([1.0, -a], dtype=complex)
    for order, residue in items:
        piece = _impulse_invariant_numerator(residue, a, order, period)
        for _ in range(mu - order):
            piece = np.polymul(piece, base)
        num_total = np.polyadd(num_total, piece)
    den = np.array([1.0], dtype=complex)
    for _ in range(mu):
        den = np.polymul(den, base)
    return RationalFunction(num_total, den)


def _z_transform_of_samples(f_s: RationalFunction, period: float) -> RationalFunction:
    """Z-transform of the samples of ``L^{-1}{f_s}`` via partial fractions."""
    direct, terms = f_s.partial_fractions()
    if np.any(np.abs(direct) > 0):
        raise ValidationError("unexpected direct term in strictly proper F(s)")
    groups: dict[complex, list[tuple[int, complex]]] = {}
    for term in terms:
        groups.setdefault(term.pole, []).append((term.order, term.residue))
    total = RationalFunction.constant(0.0)
    for pole, items in groups.items():
        total = total + _pole_group_transform(items, pole, period)
    return total


def sampled_open_loop(pll: PLL) -> ZTransferFunction:
    """Discrete-time open-loop gain ``G_z(z)`` of a PLL.

    Impulse-sampling PFD: impulse-invariant transform of
    ``F(s) = v0 I_cp Z(s)/s`` (requires relative degree >= 2 so the
    ``g(0+)`` half-sample term vanishes).  Sample-and-hold PFD: the
    standard zero-order-hold transform
    ``G_z = (1 - z^{-1}) Z{ samples of L^{-1}(F/s) }``.

    In both cases ``G_z(e^{sT})`` reproduces the paper's ``lambda(s)``.
    """
    from repro.blocks.pfd import SampleHoldPFD

    if pll.has_delay:
        raise ValidationError("z-domain baseline assumes a delay-free loop")
    vco_tf = pll.vco.lti_transfer()  # raises for LPTV VCO
    f_s = (vco_tf * pll.h_lf).rational
    period = pll.period
    if isinstance(pll.pfd, SampleHoldPFD):
        # ZOH transform: (1 - z^-1) Z{ (F/s)(nT) } = ((z-1)/z) Z{...}.
        # Z{F/s} carries (z-1)^mu in its denominator (poles of F/s at s=0),
        # so cancel one (z-1) factor *structurally* — generic rational
        # multiplication would leave a removable num/den pair at z = 1 that
        # poisons the closed-loop pole test.
        stepped = f_s * RationalFunction.integrator()
        base = _z_transform_of_samples(stepped, period)
        den = base.den
        quotient, remainder = np.polydiv(den, np.array([1.0, -1.0]))
        rem_scale = float(np.max(np.abs(np.atleast_1d(remainder))))
        if rem_scale > 1e-9 * float(np.max(np.abs(den))):
            raise ValidationError(
                "ZOH transform: expected a (z-1) factor in the sampled "
                f"denominator, residual {rem_scale:.3g}"
            )
        new_den = np.polymul(np.atleast_1d(quotient), np.array([1.0, 0.0]))
        return ZTransferFunction.from_rational(
            RationalFunction(base.num, new_den), period
        )
    if f_s.relative_degree < 2:
        raise ValidationError(
            "impulse-invariant sampling requires relative degree >= 2 "
            f"(got {f_s.relative_degree}); g(0+) would contribute a half-sample term"
        )
    return ZTransferFunction.from_rational(_z_transform_of_samples(f_s, period), period)


def closed_loop_z(open_loop: ZTransferFunction) -> ZTransferFunction:
    """Discrete closed loop ``G_z / (1 + G_z)`` (negative unity feedback).

    Formed coefficient-wise as ``num / (den + num)`` — algebraically exact,
    avoiding the root-cancellation step of generic rational division (which
    is lossy around the multiple pole at ``z = 1``).
    """
    g = open_loop.rational
    num = g.num
    den = g.den
    closed_den = np.polyadd(den, num)
    return ZTransferFunction.from_rational(
        RationalFunction(num, closed_den), open_loop.period
    )


def step_response_samples(system: ZTransferFunction, samples: int) -> np.ndarray:
    """Discrete unit-step response ``y[n]`` of a pulse transfer function.

    Evaluated by running the difference equation implied by ``num/den``
    (direct-form filtering of a step input) — exact to round-off, no
    inverse-transform tables needed.
    """
    check_order("samples", samples, minimum=1)
    num = system.rational.num
    den = system.rational.den
    # Align numerator to the denominator's degree (causal system check).
    if num.size > den.size:
        raise ValidationError("non-causal pulse transfer function (num degree > den)")
    pad = den.size - num.size
    b = np.concatenate([np.zeros(pad, dtype=complex), num])
    a = den
    y = np.zeros(samples, dtype=complex)
    u = np.ones(samples)
    for n in range(samples):
        acc = 0.0 + 0.0j
        for k in range(b.size):
            if n - k >= 0:
                acc += b[k] * u[n - k]
        for k in range(1, a.size):
            if n - k >= 0:
                acc -= a[k] * y[n - k]
        y[n] = acc / a[0]
    if np.max(np.abs(y.imag)) < 1e-9 * max(float(np.max(np.abs(y.real))), 1e-30):
        return y.real.copy()
    return y


def stability_limit_ratio(
    designer,
    lo: float = 0.01,
    hi: float = 0.499,
    tol: float = 1e-4,
) -> float:
    """Largest stable ``w_UG / w0`` according to the z-domain model.

    Bisects on the ratio with the closed-loop pole-radius test — the
    discrete-time analogue of Gardner's stability limit.  ``designer`` maps
    a ratio to a :class:`PLL` (as in :func:`repro.pll.margins.margin_sweep`).

    Raises
    ------
    ValidationError
        If the loop is already unstable at ``lo`` or still stable at ``hi``.
    """

    def stable(ratio: float) -> bool:
        pll = designer(ratio)
        return closed_loop_z(sampled_open_loop(pll)).is_stable()

    if not stable(lo):
        raise ValidationError(f"loop already unstable at w_UG/w0 = {lo}")
    if stable(hi):
        raise ValidationError(f"loop still stable at w_UG/w0 = {hi}; no limit in range")
    while hi - lo > tol:
        mid = math.sqrt(lo * hi)
        if stable(mid):
            lo = mid
        else:
            hi = mid
    return lo
