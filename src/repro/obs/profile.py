"""Statistical sampling profiler attributing CPU samples to spans and traces.

The aggregate registry (:mod:`repro.obs.registry`) answers *how long* a
span took; the trace sink (:mod:`repro.obs.trace`) answers *when and
where* it ran.  This module answers the remaining question — *where the
CPU time goes inside a span* — with a zero-dependency statistical
sampler:

* **Signal mode** (the default on Unix main threads): ``SIGPROF`` +
  ``ITIMER_PROF`` fires on process CPU time, so samples cost nothing
  while the process is idle.  The handler walks the interrupted frame
  for the main thread and ``sys._current_frames()`` for every other
  live thread.
* **Thread mode** (fallback, and the only option off the main thread —
  e.g. an on-demand capture inside a serve worker thread): a daemon
  thread samples all threads at wall-clock ``1/hz``, excluding itself.

Every sample is attributed to the *active span path* and *trace context*
of the sampled thread.  Thread-local span/trace stacks cannot be read
cross-thread, so :func:`Profiler.start` installs plain ``{thread_id:
value}`` registries into :mod:`repro.obs.spans` / :mod:`repro.obs.trace`
(one extra dict store per span transition, gated on an ``is not None``
read — the disabled path is untouched).  Threads with no thread-local
context fall back to the process-wide campaign context, which is how
lease-worker samples join the originating request's ``trace_id``.

Free when off — design rule number one, shared with spans and trace:
with no profiler running, :func:`active` is a single module-global
attribute read and nothing else in this module executes.

Stacks fold into bounded ``(span path, frame stack)`` buckets (collapsed
-stack style, root first).  Per-worker shards land under
``<store>.profile/`` — the sibling-directory convention of
``<store>.trace/`` — written atomically (temp + ``os.replace``) so a
reader can never observe a torn shard.  The collector merges shards and
emits collapsed text (``frameA;frameB count``) or a self-contained
d3-flamegraph HTML page.
"""

from __future__ import annotations

import json
import math
import os
import signal
import sys
import threading
import time
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro._errors import ValidationError
from repro.obs import spans as _spans
from repro.obs import trace as _trace

__all__ = [
    "DEFAULT_HZ",
    "MAX_BUCKETS",
    "MAX_STACK_DEPTH",
    "MAX_TRACE_IDS",
    "Profiler",
    "active",
    "capture",
    "close_sink",
    "configure_sink",
    "flush",
    "load_store_profiles",
    "maybe_flush",
    "merge_profiles",
    "profile_delta",
    "profile_dir",
    "profile_requested",
    "read_profile",
    "requested_hz",
    "sink_configured",
    "start",
    "stop",
    "to_collapsed",
    "to_flamegraph_html",
    "top_frames",
]

#: Default sampling rate.  Prime, so the sampler cannot phase-lock with
#: periodic work (the same reason rates like 97/997 are conventional).
DEFAULT_HZ = 97

#: Frames kept per stack (deepest frames are dropped first).
MAX_STACK_DEPTH = 64

#: Distinct ``(span, stack)`` buckets kept; overflow is *counted* in
#: ``dropped`` rather than allocated, like the registry's event cap.
MAX_BUCKETS = 5000

#: Distinct trace ids remembered per bucket.
MAX_TRACE_IDS = 8

_TRUTHY = {"1", "true", "yes", "on"}

_OWN_FILE = __file__


def profile_requested() -> bool:
    """Whether ``REPRO_OBS_PROFILE`` asks for always-on sampling."""
    return os.environ.get("REPRO_OBS_PROFILE", "").strip().lower() in _TRUTHY


def requested_hz(default: int = DEFAULT_HZ) -> int:
    """Sampling rate from ``REPRO_OBS_PROFILE_HZ``, clamped to [1, 999]."""
    raw = os.environ.get("REPRO_OBS_PROFILE_HZ", "").strip()
    try:
        hz = int(raw)
    except ValueError:
        return default
    return hz if 1 <= hz <= 999 else default


def _frame_stack(frame: Any) -> str:
    """Fold one thread's frame chain into a root-first ``;``-joined stack.

    Frame labels are ``<file stem>.<function>`` — compact enough for
    collapsed-stack tooling, unambiguous enough to find the code.  The
    profiler's own frames are skipped so thread-mode sampling never
    reports itself.
    """
    labels: list[str] = []
    depth = 0
    while frame is not None and depth < MAX_STACK_DEPTH:
        code = frame.f_code
        if code.co_filename != _OWN_FILE:
            stem = os.path.splitext(os.path.basename(code.co_filename))[0]
            labels.append(f"{stem}.{code.co_name}")
        frame = frame.f_back
        depth += 1
    labels.reverse()
    return ";".join(labels)


class Profiler:
    """One live sampling session (use via the module-level :func:`start`).

    ``mode`` is ``"signal"``, ``"thread"``, or ``"auto"`` (signal when
    possible: main thread and ``SIGPROF`` available).  Signal mode
    samples on *CPU* time; thread mode on wall time (its ``clock`` field
    says which, so merged profiles stay interpretable).
    """

    def __init__(self, hz: int = DEFAULT_HZ, mode: str = "auto"):
        hz = int(hz)
        if not 1 <= hz <= 999:
            raise ValidationError("profiler hz must be in [1, 999]")
        if mode not in ("auto", "signal", "thread"):
            raise ValidationError("profiler mode must be 'auto', 'signal' or 'thread'")
        signal_ok = (
            hasattr(signal, "SIGPROF")
            and hasattr(signal, "setitimer")
            and threading.current_thread() is threading.main_thread()
        )
        if mode == "signal" and not signal_ok:
            raise ValidationError(
                "signal-mode profiling needs SIGPROF and the main thread"
            )
        self.hz = hz
        self.mode = "signal" if (mode != "thread" and signal_ok) else "thread"
        self.clock = "cpu" if self.mode == "signal" else "wall"
        self.samples = 0
        self.dropped = 0
        # (span path, stack) -> [count, {trace_id: count}].  Mutated only
        # by the sampler (the signal handler or the sampler thread), so no
        # lock is needed — a lock here could deadlock the signal handler
        # against the very thread it interrupted.  Readers copy-with-retry.
        self._buckets: dict[tuple[str, str], list] = {}
        self._span_paths: dict[int, str] = {}
        self._trace_ids: dict[int, str] = {}
        self._sampler_tid: int | None = None
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None
        self._prev_handler: Any = None
        self._running = False

    # -- sampling ----------------------------------------------------------------

    def _record(self, tid: int, stack: str) -> None:
        span = self._span_paths.get(tid, "")
        key = (span, stack)
        bucket = self._buckets.get(key)
        if bucket is None:
            if len(self._buckets) >= MAX_BUCKETS:
                self.dropped += 1
                return
            bucket = self._buckets[key] = [0, {}]
        bucket[0] += 1
        trace_id = self._trace_ids.get(tid)
        if trace_id is None:
            ctx = _trace.campaign_context()
            trace_id = ctx.trace_id if ctx is not None else None
        if trace_id is not None:
            traces = bucket[1]
            if trace_id in traces or len(traces) < MAX_TRACE_IDS:
                traces[trace_id] = traces.get(trace_id, 0) + 1

    def _collect(self, current_frame: Any, current_tid: int) -> None:
        self.samples += 1
        for tid, frame in sys._current_frames().items():
            if tid == self._sampler_tid:
                continue
            if tid == current_tid and current_frame is not None:
                # The handler's own frames would pollute the interrupted
                # thread's stack; the signal machinery hands us the frame
                # that was live when the timer fired.
                frame = current_frame
            stack = _frame_stack(frame)
            if stack:
                self._record(tid, stack)

    def _on_signal(self, signum: int, frame: Any) -> None:
        try:
            self._collect(frame, threading.get_ident())
        except Exception:
            self.dropped += 1

    def _run_thread(self) -> None:
        self._sampler_tid = threading.get_ident()
        interval = 1.0 / self.hz
        while not self._stop_event.wait(interval):
            try:
                self._collect(None, -1)
            except Exception:
                self.dropped += 1

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "Profiler":
        if self._running:
            return self
        self._running = True
        _spans.set_profile_paths(self._span_paths)
        _trace.set_profile_traces(self._trace_ids)
        if self.mode == "signal":
            interval = 1.0 / self.hz
            self._prev_handler = signal.signal(signal.SIGPROF, self._on_signal)
            signal.setitimer(signal.ITIMER_PROF, interval, interval)
        else:
            self._thread = threading.Thread(
                target=self._run_thread, name="repro-profiler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> dict[str, Any]:
        """Stop sampling and return the final profile dict."""
        if self._running:
            self._running = False
            if self.mode == "signal":
                try:
                    signal.setitimer(signal.ITIMER_PROF, 0.0)
                    if self._prev_handler is not None:
                        signal.signal(signal.SIGPROF, self._prev_handler)
                except (ValueError, OSError):
                    pass  # not the main thread any more; timer dies with us
            elif self._thread is not None:
                self._stop_event.set()
                self._thread.join(timeout=2.0)
            # Only uninstall registries we still own — a newer profiler may
            # have installed its own in the meantime.
            if _spans._profile_paths is self._span_paths:
                _spans.set_profile_paths(None)
            if _trace._profile_traces is self._trace_ids:
                _trace.set_profile_traces(None)
        return self.snapshot()

    # -- snapshots ---------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Picklable, JSON-safe profile dict (safe to call mid-sampling)."""
        from repro.obs import heartbeat as _hb

        items: list[tuple[tuple[str, str], int, dict[str, int]]] = []
        for _attempt in range(4):
            try:
                items = [
                    (key, bucket[0], dict(bucket[1]))
                    for key, bucket in self._buckets.items()
                ]
                break
            except RuntimeError:  # dict mutated by a concurrent sample tick
                continue
        items.sort(key=lambda entry: (-entry[1], entry[0]))
        return {
            "kind": "profile",
            "version": 1,
            "host": _hb.host_name(),
            "worker": _hb.worker_id(),
            "pid": os.getpid(),
            "hz": self.hz,
            "mode": self.mode,
            "clock": self.clock,
            "samples": self.samples,
            "dropped": self.dropped,
            "stacks": [
                {
                    "span": key[0],
                    "stack": key[1],
                    "count": count,
                    "trace_ids": traces,
                }
                for key, count, traces in items
            ],
        }


# ---------------------------------------------------------------------------
# Module-level lifecycle: one profiler per process (one itimer per process).
# ---------------------------------------------------------------------------

_active: Profiler | None = None
_capture_lock = threading.Lock()


def active() -> Profiler | None:
    """The running profiler, or ``None`` — the whole cost of being off."""
    return _active


def start(hz: int | None = None, mode: str = "auto") -> Profiler:
    """Start (or return the already-running) process profiler.

    Idempotent because a process has exactly one ``ITIMER_PROF``: a serve
    process with ``--profile`` that also runs an inline campaign must not
    have the campaign tear the server's profiler down (see :func:`stop`'s
    ownership note in the executor).
    """
    global _active
    if _active is not None:
        return _active
    profiler = Profiler(hz if hz is not None else requested_hz(), mode)
    profiler.start()
    _active = profiler
    return profiler


def stop() -> dict[str, Any] | None:
    """Stop the process profiler; flush its final profile to any sink."""
    global _active
    profiler = _active
    if profiler is None:
        return None
    _active = None
    profile = profiler.stop()
    path = _sink_path
    if path is not None:
        try:
            _write_profile(path, profile)
        except OSError:
            pass
    return profile


def capture(
    seconds: float, hz: int | None = None, mode: str = "auto"
) -> dict[str, Any]:
    """Blocking on-demand capture of ``seconds`` of samples.

    With a profiler already running this is a snapshot *delta* — only one
    itimer exists per process, so a second sampler cannot start; the
    window is diffed out of the running one instead.  Otherwise a
    temporary profiler runs for the window (thread mode off the main
    thread — the serve executor path).
    """
    seconds = float(seconds)
    if not 0.0 < seconds <= 600.0:
        raise ValidationError("capture seconds must be in (0, 600]")
    running = _active
    if running is not None:
        before = running.snapshot()
        time.sleep(seconds)
        return profile_delta(before, running.snapshot())
    if not _capture_lock.acquire(blocking=False):
        raise ValidationError("a profile capture is already running")
    try:
        profiler = Profiler(hz if hz is not None else requested_hz(), mode)
        profiler.start()
        try:
            time.sleep(seconds)
        finally:
            profile = profiler.stop()
        return profile
    finally:
        _capture_lock.release()


# ---------------------------------------------------------------------------
# Shard sink: <store>.profile/<worker>.json, rewritten atomically.
# ---------------------------------------------------------------------------

_sink_path: Path | None = None
_last_flush = 0.0


def profile_dir(store_path: str | Path) -> Path:
    """Sibling directory holding per-worker profile shards."""
    store = Path(store_path)
    return store.parent / (store.name + ".profile")


def configure_sink(target: str | Path, worker: str | None = None) -> Path:
    """Point periodic profile flushes at ``target`` (dir or ``.json`` file)."""
    global _sink_path
    target = Path(target)
    if target.suffix == ".json":
        path = target
    else:
        if worker is None:
            from repro.obs import heartbeat as _hb

            worker = _hb.worker_id()
        path = target / f"{worker}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    _sink_path = path
    return path


def sink_configured() -> bool:
    return _sink_path is not None


def close_sink() -> None:
    """Final flush, then detach the sink."""
    global _sink_path
    flush()
    _sink_path = None


def _write_profile(path: Path, profile: Mapping[str, Any]) -> None:
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(profile, sort_keys=True) + "\n", encoding="utf-8")
    os.replace(tmp, path)


def flush() -> None:
    """Rewrite the sink shard with the current cumulative profile."""
    global _last_flush
    profiler, path = _active, _sink_path
    if profiler is None or path is None:
        return
    try:
        _write_profile(path, profiler.snapshot())
    except OSError:
        pass  # a full disk must never take down the profiled work
    _last_flush = time.monotonic()


def maybe_flush(min_interval: float = 1.0) -> None:
    """Flush unless a flush happened within ``min_interval`` seconds."""
    if _active is None or _sink_path is None:
        return
    if time.monotonic() - _last_flush >= min_interval:
        flush()


# ---------------------------------------------------------------------------
# Readers / merge / delta
# ---------------------------------------------------------------------------


def read_profile(path: str | Path) -> dict[str, Any] | None:
    """Load one shard; ``None`` on missing/torn/foreign files."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(data, Mapping) or data.get("kind") != "profile":
        return None
    return dict(data)


def load_store_profiles(store_path: str | Path) -> list[dict[str, Any]]:
    """Every readable shard under ``<store>.profile/``, sorted by name."""
    out: list[dict[str, Any]] = []
    try:
        paths = sorted(profile_dir(store_path).glob("*.json"))
    except OSError:
        return out
    for path in paths:
        profile = read_profile(path)
        if profile is not None:
            out.append(profile)
    return out


def merge_profiles(profiles: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Merge shards: counts sum by ``(span, stack)``, trace ids dedup."""
    buckets: dict[tuple[str, str], list] = {}
    samples = dropped = 0
    workers: set[str] = set()
    hosts: set[str] = set()
    hz: int | None = None
    clocks: set[str] = set()
    merged_count = 0
    for profile in profiles:
        merged_count += 1
        samples += int(profile.get("samples", 0))
        dropped += int(profile.get("dropped", 0))
        if profile.get("worker"):
            workers.add(str(profile["worker"]))
        if profile.get("host"):
            hosts.add(str(profile["host"]))
        if hz is None and profile.get("hz"):
            hz = int(profile["hz"])
        if profile.get("clock"):
            clocks.add(str(profile["clock"]))
        for entry in profile.get("stacks") or []:
            key = (str(entry.get("span") or ""), str(entry.get("stack") or ""))
            bucket = buckets.get(key)
            if bucket is None:
                bucket = buckets[key] = [0, {}]
            bucket[0] += int(entry.get("count", 0))
            for trace_id, n in (entry.get("trace_ids") or {}).items():
                traces = bucket[1]
                if trace_id in traces or len(traces) < MAX_TRACE_IDS:
                    traces[trace_id] = traces.get(trace_id, 0) + int(n)
    items = sorted(buckets.items(), key=lambda kv: (-kv[1][0], kv[0]))
    return {
        "kind": "profile",
        "version": 1,
        "merged": merged_count,
        "workers": sorted(workers),
        "hosts": sorted(hosts),
        "hz": hz or DEFAULT_HZ,
        "clock": "+".join(sorted(clocks)) or "cpu",
        "samples": samples,
        "dropped": dropped,
        "stacks": [
            {"span": key[0], "stack": key[1], "count": bucket[0],
             "trace_ids": bucket[1]}
            for key, bucket in items
        ],
    }


def profile_delta(
    before: Mapping[str, Any], after: Mapping[str, Any]
) -> dict[str, Any]:
    """What was sampled between two snapshots of the *same* profiler."""

    def index(profile: Mapping[str, Any]) -> dict[tuple[str, str], Mapping]:
        return {
            (str(e.get("span") or ""), str(e.get("stack") or "")): e
            for e in profile.get("stacks") or []
        }

    prior = index(before)
    stacks = []
    for key, entry in index(after).items():
        old = prior.get(key)
        count = int(entry.get("count", 0)) - (
            int(old.get("count", 0)) if old else 0
        )
        if count <= 0:
            continue
        old_traces = (old.get("trace_ids") or {}) if old else {}
        traces = {
            tid: int(n) - int(old_traces.get(tid, 0))
            for tid, n in (entry.get("trace_ids") or {}).items()
            if int(n) - int(old_traces.get(tid, 0)) > 0
        }
        stacks.append(
            {"span": key[0], "stack": key[1], "count": count,
             "trace_ids": traces}
        )
    stacks.sort(key=lambda e: (-e["count"], e["span"], e["stack"]))
    out = dict(after)
    out["samples"] = int(after.get("samples", 0)) - int(before.get("samples", 0))
    out["dropped"] = int(after.get("dropped", 0)) - int(before.get("dropped", 0))
    out["stacks"] = stacks
    return out


# ---------------------------------------------------------------------------
# Emitters: collapsed text, flamegraph HTML, hottest frames.
# ---------------------------------------------------------------------------


def _collapsed_frames(entry: Mapping[str, Any]) -> list[str]:
    """Root-first frame list with the span path as synthetic parents."""
    frames: list[str] = []
    span = str(entry.get("span") or "")
    if span:
        frames.extend(f"span:{part}" for part in span.split("/") if part)
    stack = str(entry.get("stack") or "")
    if stack:
        frames.extend(stack.split(";"))
    return frames


def to_collapsed(profile: Mapping[str, Any]) -> str:
    """Collapsed-stack text (``a;b;c count`` per line, hottest first)."""
    lines = []
    for entry in profile.get("stacks") or []:
        frames = _collapsed_frames(entry)
        if frames:
            lines.append(f"{';'.join(frames)} {int(entry.get('count', 0))}")
    return "\n".join(lines) + ("\n" if lines else "")


def _flame_tree(profile: Mapping[str, Any]) -> dict[str, Any]:
    root: dict[str, Any] = {"name": "all", "value": 0, "children": {}}
    for entry in profile.get("stacks") or []:
        frames = _collapsed_frames(entry)
        count = int(entry.get("count", 0))
        if not frames or count <= 0:
            continue
        root["value"] += count
        node = root
        for frame in frames:
            child = node["children"].get(frame)
            if child is None:
                child = node["children"][frame] = {
                    "name": frame, "value": 0, "children": {}
                }
            child["value"] += count
            node = child

    def listify(node: dict[str, Any]) -> dict[str, Any]:
        children = [listify(c) for _name, c in sorted(node["children"].items())]
        out = {"name": node["name"], "value": node["value"]}
        if children:
            out["children"] = children
        return out

    return listify(root)


_FLAMEGRAPH_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{title}</title>
<link rel="stylesheet"
 href="https://cdn.jsdelivr.net/npm/d3-flame-graph@4.1.3/dist/d3-flamegraph.css">
<style>
 body {{ font-family: sans-serif; margin: 1rem; }}
 #meta {{ color: #555; margin-bottom: 0.75rem; font-size: 0.9rem; }}
</style>
</head>
<body>
<h1>{title}</h1>
<div id="meta">{meta}</div>
<div id="chart"></div>
<script src="https://cdn.jsdelivr.net/npm/d3@7.8.5/dist/d3.min.js"></script>
<script
 src="https://cdn.jsdelivr.net/npm/d3-flame-graph@4.1.3/dist/d3-flamegraph.min.js">
</script>
<script>
var data = {data};
var chart = flamegraph().width(Math.max(600, window.innerWidth - 60));
d3.select("#chart").datum(data).call(chart);
</script>
</body>
</html>
"""


def to_flamegraph_html(
    profile: Mapping[str, Any], title: str = "repro profile"
) -> str:
    """Self-describing d3-flamegraph page for one (merged) profile."""
    meta = (
        f"{int(profile.get('samples', 0))} samples at "
        f"{int(profile.get('hz', DEFAULT_HZ))} Hz "
        f"({profile.get('clock', 'cpu')} clock)"
    )
    workers = profile.get("workers") or (
        [profile["worker"]] if profile.get("worker") else []
    )
    if workers:
        meta += " · workers: " + ", ".join(str(w) for w in workers)
    dropped = int(profile.get("dropped", 0))
    if dropped:
        meta += f" · {dropped} dropped"
    return _FLAMEGRAPH_TEMPLATE.format(
        title=title,
        meta=meta,
        data=json.dumps(_flame_tree(profile)),
    )


def top_frames(profile: Mapping[str, Any], n: int = 3) -> list[dict[str, Any]]:
    """Hottest frames by *self* samples (leaf position), with totals.

    ``fraction`` is self samples over all attributed samples, so the
    campaign watch line can say ``grid.dense_grid 40%``.
    """
    self_counts: dict[str, int] = {}
    total_counts: dict[str, int] = {}
    attributed = 0
    for entry in profile.get("stacks") or []:
        stack = str(entry.get("stack") or "")
        count = int(entry.get("count", 0))
        if not stack or count <= 0:
            continue
        frames = stack.split(";")
        attributed += count
        leaf = frames[-1]
        self_counts[leaf] = self_counts.get(leaf, 0) + count
        for frame in set(frames):
            total_counts[frame] = total_counts.get(frame, 0) + count
    ranked = sorted(self_counts.items(), key=lambda kv: (-kv[1], kv[0]))
    out = []
    for frame, self_count in ranked[: max(0, int(n))]:
        out.append(
            {
                "frame": frame,
                "self": self_count,
                "total": total_counts.get(frame, self_count),
                "fraction": self_count / attributed if attributed else math.nan,
            }
        )
    return out
