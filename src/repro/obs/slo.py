"""Declarative SLOs with multi-window burn-rate evaluation.

The observability layer so far answers *what happened* (registry),
*where* (trace), and *where the CPU went* (profile).  This module
answers the operator's question: **is the service meeting its
objectives, and how fast is it spending its error budget?**

The model is the Google SRE multi-window, multi-burn-rate alert: an SLO
has an *objective* (e.g. 99% of points succeed), hence an *error budget*
(1%).  The burn rate over a window is the observed bad fraction divided
by the budget — burn 1 spends the budget exactly at the sustainable
rate; burn 14.4 exhausts a 30-day budget in ~2 days.  A *policy* pairs a
short and a long window with a factor, and breaches only when **both**
exceed it — the short window makes the alert fast, the long one keeps a
momentary blip from paging anyone.

Three SLI kinds, all computed from data the layer already collects:

* ``error_ratio`` — cumulative bad/total counters summed from named
  fields of stream samples (``failed`` vs ``done + failed``) or serve
  monitor samples (``failures`` vs ``requests``).
* ``latency`` — good events are observations at or under a threshold,
  estimated from the decade histograms by log-interpolation inside the
  containing decade (consistent with
  :func:`repro.obs.registry.histogram_quantiles`); histogram names match
  by prefix so ``serve.latency`` covers every endpoint.
* ``health_events`` — bad events are health events at or above a
  minimum severity, against a named total.

Windows **clamp to the available series span**: when the series is
shorter than the window the baseline is zero, so a short CI store still
evaluates (a 50%-failure smoke store burns at 50x a 1% budget — far
over any factor — while a healthy store burns 0).  Breaches emit
``obs.slo.burn`` health events (gated on ``obs.enabled()``) so the
existing ``repro obs health --fail-on`` machinery sees them too.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro._errors import ValidationError
from repro.obs import health as _health
from repro.obs import spans as _spans

__all__ = [
    "DEFAULT_WINDOWS",
    "BurnWindow",
    "SLIKinds",
    "SLISpec",
    "SLODefinition",
    "SLOMonitor",
    "default_campaign_slos",
    "default_serve_slos",
    "evaluate_slos",
    "evaluate_store",
    "format_slo_report",
    "histogram_good_count",
    "load_slo_spec",
    "parse_slo_spec",
]

SLIKinds = ("error_ratio", "latency", "health_events")


@dataclass(frozen=True)
class BurnWindow:
    """One multi-window burn-rate policy (breach = both windows over)."""

    name: str
    short_seconds: float
    long_seconds: float
    factor: float

    def __post_init__(self):
        if self.short_seconds <= 0 or self.long_seconds <= 0:
            raise ValidationError("burn windows must be positive")
        if self.short_seconds > self.long_seconds:
            raise ValidationError("short window must not exceed the long window")
        if self.factor <= 0:
            raise ValidationError("burn factor must be positive")


#: Google SRE workbook defaults: fast 5m/1h at 14.4x, slow 6h/3d at 6x.
DEFAULT_WINDOWS = (
    BurnWindow("fast", 300.0, 3600.0, 14.4),
    BurnWindow("slow", 21600.0, 259200.0, 6.0),
)


@dataclass(frozen=True)
class SLISpec:
    """What counts as a bad event for one SLO."""

    kind: str
    bad: tuple[str, ...] = ()
    total: tuple[str, ...] = ()
    histogram: str | None = None
    threshold_seconds: float | None = None
    min_severity: str = "error"

    def __post_init__(self):
        if self.kind not in SLIKinds:
            raise ValidationError(
                f"sli kind must be one of {SLIKinds}, got {self.kind!r}"
            )
        if self.kind == "error_ratio" and (not self.bad or not self.total):
            raise ValidationError("error_ratio sli needs 'bad' and 'total' fields")
        if self.kind == "latency":
            if not self.histogram or self.threshold_seconds is None:
                raise ValidationError(
                    "latency sli needs 'histogram' and 'threshold_seconds'"
                )
            if self.threshold_seconds <= 0:
                raise ValidationError("threshold_seconds must be positive")
        if self.kind == "health_events":
            if self.min_severity not in _health.SEVERITIES:
                raise ValidationError(
                    f"min_severity must be one of {_health.SEVERITIES}"
                )
            if not self.total:
                raise ValidationError("health_events sli needs a 'total' field")


@dataclass(frozen=True)
class SLODefinition:
    """One named objective over one SLI."""

    name: str
    objective: float
    sli: SLISpec
    windows: tuple[BurnWindow, ...] = field(default=DEFAULT_WINDOWS)

    def __post_init__(self):
        if not self.name:
            raise ValidationError("slo name must be non-empty")
        if not 0.0 < self.objective <= 1.0:
            raise ValidationError("slo objective must be in (0, 1]")
        if not self.windows:
            raise ValidationError("slo needs at least one burn window")

    @property
    def budget(self) -> float:
        return 1.0 - self.objective


# ---------------------------------------------------------------------------
# Spec parsing
# ---------------------------------------------------------------------------


def parse_slo_spec(data: Any) -> list[SLODefinition]:
    """Build definitions from the JSON spec form ``{"slos": [...]}``."""
    if isinstance(data, Mapping):
        raw_slos = data.get("slos")
    else:
        raw_slos = data
    if not isinstance(raw_slos, Sequence) or isinstance(raw_slos, (str, bytes)):
        raise ValidationError("slo spec must be {'slos': [...]} or a list")
    out: list[SLODefinition] = []
    for raw in raw_slos:
        if not isinstance(raw, Mapping):
            raise ValidationError("each slo must be a mapping")
        raw_sli = raw.get("sli")
        if not isinstance(raw_sli, Mapping):
            raise ValidationError(f"slo {raw.get('name')!r} needs an 'sli' mapping")
        sli = SLISpec(
            kind=str(raw_sli.get("kind", "")),
            bad=tuple(raw_sli.get("bad") or ()),
            total=tuple(raw_sli.get("total") or ()),
            histogram=raw_sli.get("histogram"),
            threshold_seconds=(
                float(raw_sli["threshold_seconds"])
                if raw_sli.get("threshold_seconds") is not None
                else None
            ),
            min_severity=str(raw_sli.get("min_severity", "error")),
        )
        windows = DEFAULT_WINDOWS
        if raw.get("windows"):
            windows = tuple(
                BurnWindow(
                    name=str(w.get("name", f"w{i}")),
                    short_seconds=float(w["short_seconds"]),
                    long_seconds=float(w["long_seconds"]),
                    factor=float(w["factor"]),
                )
                for i, w in enumerate(raw["windows"])
            )
        out.append(
            SLODefinition(
                name=str(raw.get("name", "")),
                objective=float(raw.get("objective", 0.0)),
                sli=sli,
                windows=windows,
            )
        )
    if not out:
        raise ValidationError("slo spec defines no slos")
    return out


def load_slo_spec(path: str | Path) -> list[SLODefinition]:
    """Parse a JSON SLO spec file."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise ValidationError(f"cannot read slo spec {path}: {exc}") from exc
    except ValueError as exc:
        raise ValidationError(f"slo spec {path} is not valid JSON: {exc}") from exc
    return parse_slo_spec(data)


def default_campaign_slos() -> list[SLODefinition]:
    """Built-in objectives for campaign stores (used when no spec is given)."""
    return [
        SLODefinition(
            name="campaign-success",
            objective=0.99,
            sli=SLISpec(
                kind="error_ratio", bad=("failed",), total=("done", "failed")
            ),
        ),
        SLODefinition(
            name="campaign-health",
            objective=0.999,
            sli=SLISpec(
                kind="health_events",
                min_severity="error",
                total=("done", "failed"),
            ),
        ),
    ]


def default_serve_slos() -> list[SLODefinition]:
    """Built-in objectives for the analysis server's monitor."""
    return [
        SLODefinition(
            name="serve-availability",
            objective=0.999,
            sli=SLISpec(
                kind="error_ratio", bad=("failures",), total=("requests",)
            ),
        ),
        SLODefinition(
            name="serve-latency-p95",
            objective=0.95,
            sli=SLISpec(
                kind="latency", histogram="serve.latency", threshold_seconds=1.0
            ),
        ),
    ]


# ---------------------------------------------------------------------------
# SLI extraction: raw sample / snapshot -> cumulative (bad, total)
# ---------------------------------------------------------------------------


def histogram_good_count(entry: Mapping[str, Any], threshold: float) -> float:
    """Observations at or under ``threshold``, from decade buckets.

    Counts whole decades below the threshold exactly; the containing
    decade is split by log-interpolation (samples are uniform in log
    space within a decade — the same assumption ``histogram_quantiles``
    makes, so a latency SLO and the reported p95 never disagree on which
    side of the threshold the quantile sits).
    """
    count = int(entry.get("count", 0))
    if count <= 0 or threshold <= 0:
        return 0.0
    good = 0.0
    for raw_decade, n in (entry.get("buckets") or {}).items():
        try:
            decade, n = int(raw_decade), int(n)
        except (TypeError, ValueError):
            continue
        if n <= 0:
            continue
        if 10.0 ** (decade + 1) <= threshold:
            good += n
        elif 10.0 ** decade >= threshold:
            continue
        else:
            good += n * min(1.0, max(0.0, math.log10(threshold) - decade))
    return min(float(count), good)


def _sum_fields(sample: Mapping[str, Any], names: Iterable[str]) -> float:
    total = 0.0
    for name in names:
        try:
            total += float(sample.get(name, 0) or 0)
        except (TypeError, ValueError):
            continue
    return total


def _health_bad_count(sample: Mapping[str, Any], min_severity: str) -> float:
    """Events at/above ``min_severity`` from a sample's ``health`` counts."""
    counts = sample.get("health") or {}
    floor = _health.severity_rank(min_severity)
    bad = 0.0
    for severity, n in counts.items():
        if _health.severity_rank(str(severity)) >= floor:
            try:
                bad += float(n)
            except (TypeError, ValueError):
                continue
    return bad


def _sample_point(sli: SLISpec, sample: Mapping[str, Any]) -> tuple[float, float]:
    """Cumulative ``(bad, total)`` of one stream/monitor sample."""
    if sli.kind == "error_ratio":
        return _sum_fields(sample, sli.bad), _sum_fields(sample, sli.total)
    if sli.kind == "health_events":
        bad = _health_bad_count(sample, sli.min_severity)
        total = max(_sum_fields(sample, sli.total), bad)
        return bad, total
    raise ValidationError(f"sli kind {sli.kind!r} is not sample-based")


def _snapshot_point(
    sli: SLISpec, snapshot: Mapping[str, Any]
) -> tuple[float, float]:
    """Cumulative ``(bad, total)`` of one registry snapshot (latency SLIs)."""
    total = bad = 0.0
    for key, entry in (snapshot.get("histograms") or {}).items():
        name = key.partition("[")[0]
        if not name.startswith(sli.histogram or ""):
            continue
        count = float(entry.get("count", 0))
        total += count
        bad += count - histogram_good_count(entry, float(sli.threshold_seconds))
    return bad, total


def _series(
    definition: SLODefinition,
    samples: Sequence[tuple[float, Mapping[str, Any]]],
    snapshots: Sequence[tuple[float, Mapping[str, Any]]],
) -> list[tuple[float, float, float]]:
    """Time-ordered cumulative ``(t, bad, total)`` series for one SLO."""
    source: list[tuple[float, float, float]] = []
    if definition.sli.kind == "latency":
        for t, snapshot in snapshots:
            bad, total = _snapshot_point(definition.sli, snapshot)
            source.append((float(t), bad, total))
    else:
        for t, sample in samples:
            bad, total = _sample_point(definition.sli, sample)
            source.append((float(t), bad, total))
    source.sort(key=lambda p: p[0])
    return source


# ---------------------------------------------------------------------------
# Burn-rate evaluation
# ---------------------------------------------------------------------------


def _window_burn(
    series: Sequence[tuple[float, float, float]],
    window_seconds: float,
    budget: float,
    now: float,
) -> dict[str, float]:
    """Burn rate over one trailing window of a cumulative series.

    The baseline is the last sample at or before the window start; when
    the series is younger than the window the baseline is zero (the
    clamping rule — a short store evaluates against everything it has).
    """
    if not series:
        return {"bad": 0.0, "total": 0.0, "bad_fraction": 0.0, "burn": 0.0}
    end = series[-1]
    start_t = now - window_seconds
    base_bad = base_total = 0.0
    for t, bad, total in series:
        if t <= start_t:
            base_bad, base_total = bad, total
        else:
            break
    bad_delta = max(0.0, end[1] - base_bad)
    total_delta = max(0.0, end[2] - base_total)
    fraction = bad_delta / total_delta if total_delta > 0 else 0.0
    if budget > 0:
        burn = fraction / budget
    else:
        burn = math.inf if bad_delta > 0 else 0.0
    return {
        "bad": bad_delta,
        "total": total_delta,
        "bad_fraction": fraction,
        "burn": burn,
    }


def evaluate_slos(
    definitions: Sequence[SLODefinition],
    *,
    samples: Sequence[tuple[float, Mapping[str, Any]]] = (),
    snapshots: Sequence[tuple[float, Mapping[str, Any]]] = (),
    now: float | None = None,
    emit_events: bool = True,
) -> dict[str, Any]:
    """Evaluate every SLO; returns ``{"slos": [...], "breach": bool}``.

    ``samples`` are ``(unix_time, sample_dict)`` pairs (stream samples or
    serve monitor samples); ``snapshots`` are ``(unix_time, registry
    snapshot)`` pairs for latency SLIs.  Breaches emit ``obs.slo.burn``
    health events when observability is enabled (and ``emit_events``).
    """
    results: list[dict[str, Any]] = []
    any_breach = False
    for definition in definitions:
        series = _series(definition, samples, snapshots)
        eval_now = now if now is not None else (
            series[-1][0] if series else time.time()
        )
        windows = []
        breach = False
        for policy in definition.windows:
            short = _window_burn(
                series, policy.short_seconds, definition.budget, eval_now
            )
            long = _window_burn(
                series, policy.long_seconds, definition.budget, eval_now
            )
            over = (
                short["burn"] > policy.factor and long["burn"] > policy.factor
            )
            breach = breach or over
            windows.append(
                {
                    "name": policy.name,
                    "short_seconds": policy.short_seconds,
                    "long_seconds": policy.long_seconds,
                    "factor": policy.factor,
                    "short": short,
                    "long": long,
                    "breach": over,
                }
            )
        end = series[-1] if series else (eval_now, 0.0, 0.0)
        result = {
            "name": definition.name,
            "kind": definition.sli.kind,
            "objective": definition.objective,
            "budget": definition.budget,
            "bad": end[1],
            "total": end[2],
            "samples": len(series),
            "windows": windows,
            "breach": breach,
        }
        results.append(result)
        any_breach = any_breach or breach
        if breach and emit_events and _spans.enabled():
            worst = max(
                (w for w in windows if w["breach"]),
                key=lambda w: w["short"]["burn"],
            )
            burn = worst["short"]["burn"]
            _spans.health_event(
                "obs.slo.burn",
                burn if math.isfinite(burn) else 1e9,
                worst["factor"],
                severity="error",
                message=(
                    f"SLO {definition.name} burning at "
                    f"{burn:.1f}x budget ({worst['name']} window, "
                    f"factor {worst['factor']:g})"
                ),
                slo=definition.name,
            )
    return {"slos": results, "breach": any_breach}


def evaluate_store(
    store_path: str | Path,
    definitions: Sequence[SLODefinition] | None = None,
    *,
    now: float | None = None,
) -> dict[str, Any]:
    """Evaluate SLOs over a campaign store's stream samples.

    Falls back to one synthetic sample built from the merged store status
    when the run streamed nothing — enough for the clamped single-window
    evaluation a CI gate needs.
    """
    from repro.obs import stream as _stream

    store_path = Path(store_path)
    definitions = list(definitions) if definitions else default_campaign_slos()
    samples: list[tuple[float, Mapping[str, Any]]] = []
    for sample in _stream.read_stream(_stream.stream_path(store_path)):
        t = sample.get("time")
        if isinstance(t, (int, float)):
            samples.append((float(t), sample))
    if not samples:
        from repro.campaign.store import ResultStore

        status = ResultStore.open(store_path).merged_status()
        samples = [
            (
                now if now is not None else time.time(),
                {
                    "done": status.get("done", 0),
                    "failed": status.get("failed", 0),
                },
            )
        ]
    result = evaluate_slos(definitions, samples=samples, now=now)
    result["store"] = str(store_path)
    return result


def format_slo_report(result: Mapping[str, Any]) -> str:
    """Human-readable burn-rate report for one evaluation result."""

    def fmt_burn(value: float) -> str:
        if math.isinf(value):
            return "inf"
        return f"{value:.2f}"

    lines = []
    if result.get("store"):
        lines.append(f"SLO report for {result['store']}")
    for slo in result.get("slos") or []:
        state = "BREACH" if slo.get("breach") else "ok"
        lines.append(
            f"{slo['name']}: objective {slo['objective'] * 100:g}% "
            f"(budget {slo['budget'] * 100:g}%), "
            f"bad {slo['bad']:g} of {slo['total']:g} — {state}"
        )
        for window in slo.get("windows") or []:
            mark = "BREACH" if window.get("breach") else "ok"
            lines.append(
                f"  {window['name']} "
                f"({window['short_seconds']:g}s/{window['long_seconds']:g}s "
                f"x{window['factor']:g}): "
                f"burn {fmt_burn(window['short']['burn'])} / "
                f"{fmt_burn(window['long']['burn'])} — {mark}"
            )
    if not lines:
        lines.append("no slos evaluated")
    lines.append(
        "overall: BREACH" if result.get("breach") else "overall: ok"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Serve-side monitor: a bounded ring of periodic samples
# ---------------------------------------------------------------------------


class SLOMonitor:
    """Rolling SLO evaluation for a long-lived process (the serve loop).

    Call :meth:`sample` periodically with a cumulative counters dict (and
    optionally a registry snapshot for latency SLIs); :meth:`evaluate`
    runs the burn-rate math over the retained ring.  Ring sizes bound
    memory: at a 10 s interval, 4096 samples cover ~11 h — beyond the
    fast windows and into the slow ones, which clamp gracefully.
    """

    def __init__(
        self,
        definitions: Sequence[SLODefinition] | None = None,
        *,
        max_samples: int = 4096,
        max_snapshots: int = 512,
    ):
        from collections import deque

        self.definitions = (
            list(definitions) if definitions else default_serve_slos()
        )
        self._samples: Any = deque(maxlen=max_samples)
        self._snapshots: Any = deque(maxlen=max_snapshots)
        self._lock = None  # samples appended from one task; reads copy

    def sample(
        self,
        sample: Mapping[str, Any],
        snapshot: Mapping[str, Any] | None = None,
        now: float | None = None,
    ) -> None:
        t = now if now is not None else time.time()
        self._samples.append((t, dict(sample)))
        if snapshot is not None:
            self._snapshots.append((t, snapshot))

    def evaluate(self, now: float | None = None) -> dict[str, Any]:
        return evaluate_slos(
            self.definitions,
            samples=list(self._samples),
            snapshots=list(self._snapshots),
            now=now,
        )
