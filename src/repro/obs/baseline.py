"""Benchmark-baseline tracking: diff bench JSONL runs and gate regressions.

Backs ``repro bench compare``.  Both sides of the comparison are the JSONL
the tier-1 benches append via ``--json-out``: one line per bench run, each
with a ``kind`` discriminator (``bench_grid_eval``, ``bench_campaign``,
``bench_obs_overhead``) and flat numeric metrics.  The committed baseline
(``BENCH_baseline.json``) is simply such a file checked into the repo; the
refresh procedure is documented in ``docs/PERFORMANCE.md``.

Gating rules
------------
* metrics ending in ``_seconds`` are **lower-better** and gated;
* metrics containing ``speedup`` are **higher-better** and gated;
* everything else (counts, ratios, parameters) is informational only.

A gated metric regresses when it degrades by more than ``tolerance``
relative to the baseline value.  Timings whose *both* sides sit under the
``min_seconds`` noise floor are skipped — sub-10ms smoke timings jitter far
beyond any sensible tolerance and would make the gate flap.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro._errors import ValidationError

__all__ = [
    "BenchComparison",
    "MetricDelta",
    "compare_benchmarks",
    "load_bench_lines",
    "parse_tolerance",
]

#: Default noise floor: timings below this on both sides are not gated.
DEFAULT_MIN_SECONDS = 0.01


def parse_tolerance(text: str | float) -> float:
    """Parse a tolerance given as ``'25%'``, ``'0.25'`` or a float."""
    if isinstance(text, (int, float)):
        value = float(text)
    else:
        stripped = str(text).strip()
        try:
            if stripped.endswith("%"):
                value = float(stripped[:-1]) / 100.0
            else:
                value = float(stripped)
        except ValueError:
            raise ValidationError(
                f"tolerance must look like '25%' or '0.25', got {text!r}"
            ) from None
    if value <= 0:
        raise ValidationError(f"tolerance must be positive, got {text!r}")
    return value


def load_bench_lines(paths: Iterable[str | Path]) -> dict[str, dict[str, Any]]:
    """Bench records keyed by ``kind`` from one or more JSONL files.

    Later lines win within and across files, so a file that accumulated
    several runs of the same bench compares against the freshest one.
    Non-bench lines (no ``kind`` starting with ``bench``) are ignored.
    """
    out: dict[str, dict[str, Any]] = {}
    for path in paths:
        path = Path(path)
        if not path.exists():
            raise ValidationError(f"no bench JSONL at {path}")
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValidationError(
                    f"{path}:{lineno} is not valid JSON: {exc}"
                ) from None
            if not isinstance(record, dict):
                continue
            kind = str(record.get("kind", ""))
            if kind.startswith("bench"):
                out[kind] = record
    return out


def _gated_direction(metric: str) -> str | None:
    """``'lower'`` / ``'higher'`` for gated metrics, ``None`` otherwise."""
    if metric.endswith("_seconds"):
        return "lower"
    if "speedup" in metric:
        return "higher"
    return None


@dataclass(frozen=True)
class MetricDelta:
    """One metric of one bench kind, compared across baseline and current."""

    kind: str
    metric: str
    baseline: float
    current: float
    direction: str | None  # 'lower' | 'higher' | None (informational)
    change: float  # signed relative change vs baseline (0.1 = +10%)
    regressed: bool
    skipped: str | None = None  # reason this metric was not gated

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "metric": self.metric,
            "baseline": self.baseline,
            "current": self.current,
            "direction": self.direction,
            "change": self.change,
            "regressed": self.regressed,
            "skipped": self.skipped,
        }


@dataclass
class BenchComparison:
    """Full result of one baseline comparison."""

    tolerance: float
    min_seconds: float
    deltas: list[MetricDelta] = field(default_factory=list)
    missing_kinds: list[str] = field(default_factory=list)
    new_kinds: list[str] = field(default_factory=list)
    baseline_label: str = "BENCH_baseline.json"

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_json(self) -> str:
        return json.dumps(
            {
                "tolerance": self.tolerance,
                "min_seconds": self.min_seconds,
                "ok": self.ok,
                "regressions": len(self.regressions),
                "missing_kinds": self.missing_kinds,
                "new_kinds": self.new_kinds,
                "deltas": [d.to_dict() for d in self.deltas],
            },
            indent=2,
            sort_keys=True,
        )

    def summary(self) -> str:
        gated = [d for d in self.deltas if d.direction and not d.skipped]
        lines = [
            f"bench compare: {len(gated)} gated metric(s) across "
            f"{len({d.kind for d in self.deltas})} bench kind(s), "
            f"tolerance {self.tolerance:.0%}"
        ]
        for delta in self.deltas:
            if not delta.direction:
                continue
            if delta.skipped:
                verdict = f"skipped ({delta.skipped})"
            elif delta.regressed:
                verdict = "REGRESSED"
            else:
                verdict = "ok"
            lines.append(
                f"  {delta.kind}.{delta.metric}: "
                f"{delta.baseline:g} -> {delta.current:g} "
                f"({delta.change:+.1%}, {delta.direction} is better) {verdict}"
            )
        for kind in self.missing_kinds:
            lines.append(f"  {kind}: in baseline but absent from current run")
        for kind in self.new_kinds:
            lines.append(
                f"  {kind}: no baseline entry with kind '{kind}' in "
                f"{self.baseline_label} — this bench is NOT gated; append its "
                f"--json-out line to {self.baseline_label} to start gating it"
            )
        if self.ok:
            lines.append("result: PASS")
        else:
            lines.append(f"result: FAIL ({len(self.regressions)} regression(s))")
        return "\n".join(lines)


def compare_benchmarks(
    baseline: Mapping[str, Mapping[str, Any]],
    current: Mapping[str, Mapping[str, Any]],
    tolerance: float = 0.25,
    min_seconds: float = DEFAULT_MIN_SECONDS,
    baseline_label: str = "BENCH_baseline.json",
) -> BenchComparison:
    """Compare two kind-keyed bench record sets (see :func:`load_bench_lines`).

    ``baseline_label`` names the baseline file in human-readable output so
    the un-gated-bench hint points at the file the user must actually edit.

    Raises :class:`ValidationError` when no bench kind overlaps — that is a
    wiring mistake (wrong files), not a clean pass.
    """
    comparison = BenchComparison(
        tolerance=float(tolerance),
        min_seconds=min_seconds,
        baseline_label=str(baseline_label),
    )
    shared = sorted(set(baseline) & set(current))
    comparison.missing_kinds = sorted(set(baseline) - set(current))
    comparison.new_kinds = sorted(set(current) - set(baseline))
    if not shared:
        raise ValidationError(
            "no bench kind appears in both the baseline and the current run "
            f"(baseline: {sorted(baseline)}, current: {sorted(current)})"
        )
    for kind in shared:
        base_rec, cur_rec = baseline[kind], current[kind]
        for metric in sorted(set(base_rec) & set(cur_rec)):
            base_val, cur_val = base_rec[metric], cur_rec[metric]
            if (
                isinstance(base_val, bool)
                or isinstance(cur_val, bool)
                or not isinstance(base_val, (int, float))
                or not isinstance(cur_val, (int, float))
            ):
                continue
            direction = _gated_direction(metric)
            base_f, cur_f = float(base_val), float(cur_val)
            change = (cur_f - base_f) / base_f if base_f != 0 else 0.0
            regressed = False
            skipped: str | None = None
            if direction == "lower":
                if max(base_f, cur_f) < min_seconds:
                    skipped = f"both under noise floor {min_seconds:g}s"
                else:
                    regressed = change > tolerance
            elif direction == "higher":
                regressed = change < -tolerance
            comparison.deltas.append(
                MetricDelta(
                    kind=kind,
                    metric=metric,
                    baseline=base_f,
                    current=cur_f,
                    direction=direction,
                    change=change,
                    regressed=regressed,
                    skipped=skipped,
                )
            )
    return comparison
