"""Process resource observability: RSS tracking, tracemalloc, memory budgets.

Campaign points that bloat memory are as dangerous as points that hang: a
single design point whose truncated HTM allocation grows past the machine
leads to an OOM-killed worker, a broken pool, and a serial crawl through
the remaining points.  This module gives the campaign executor cheap,
always-available memory facts and an opt-in allocation profile:

* :func:`peak_rss_bytes` — the process-lifetime peak resident set size
  (one ``getrusage`` call, normalised to bytes across platforms);
* :func:`current_rss_bytes` — the instantaneous RSS (``/proc/self/status``
  on Linux, falling back to the peak elsewhere) — what heartbeats report;
* per-point probes (:func:`point_probe_begin` / :func:`point_probe_end`)
  recording the peak RSS and its per-point growth into point records, plus
  ``tracemalloc`` top allocation sites when ``REPRO_OBS_MEM=1``;
* a **memory budget sentinel**: configure a budget (``configure(...)`` or
  the executor's ``memory_budget_mb`` policy knob) and any point whose
  peak RSS exceeds it is flagged ``over_budget`` in its record and emits a
  ``campaign.memory_budget`` warning health event.

Everything here is stdlib-only and never raises into the computation it
observes — probe failures degrade to zeros.
"""

from __future__ import annotations

import os
import sys
from typing import Any

from repro.obs import spans as _spans

__all__ = [
    "configure",
    "current_rss_bytes",
    "memory_budget_bytes",
    "peak_rss_bytes",
    "point_probe_begin",
    "point_probe_end",
    "tracemalloc_requested",
]

_TRUTHY = {"1", "true", "yes", "on"}

#: Top allocation sites kept per point when tracemalloc profiling is on.
TOP_ALLOCATIONS = 3

_budget_bytes: int | None = None


def tracemalloc_requested() -> bool:
    """Whether per-point tracemalloc profiling is requested (``REPRO_OBS_MEM=1``).

    Tracemalloc multiplies allocation cost, so it is opt-in on top of the
    usual observability switch, mirroring ``REPRO_OBS_SMW_CHECK``.
    """
    return os.environ.get("REPRO_OBS_MEM", "").strip().lower() in _TRUTHY


def configure(budget_mb: float | None = None) -> None:
    """Set (or clear) the per-point memory budget for this process.

    The executor calls this in every worker (pool initializer) and on the
    serial path, so the budget travels with the :class:`ExecutionPolicy`.
    """
    global _budget_bytes
    _budget_bytes = None if budget_mb is None else int(float(budget_mb) * 1e6)


def memory_budget_bytes() -> int | None:
    """The configured per-point budget in bytes, or ``None``."""
    return _budget_bytes


def peak_rss_bytes() -> int:
    """Process-lifetime peak RSS in bytes (0 where unavailable).

    ``ru_maxrss`` is kibibytes on Linux and bytes on macOS; both are
    normalised here.  The value is monotonic — it never shrinks when
    memory is freed — which is exactly what a "did this point bloat the
    worker" sentinel wants.
    """
    try:
        import resource

        raw = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except Exception:
        return 0
    if sys.platform == "darwin":
        return int(raw)
    return int(raw) * 1024


def current_rss_bytes() -> int:
    """Instantaneous RSS in bytes (Linux ``/proc``; peak RSS elsewhere)."""
    try:
        with open("/proc/self/status", "rb") as handle:
            for line in handle:
                if line.startswith(b"VmRSS:"):
                    return int(line.split()[1]) * 1024
    except Exception:
        pass
    return peak_rss_bytes()


def ensure_tracemalloc() -> bool:
    """Start tracemalloc if requested and not yet tracing; report tracing."""
    if not tracemalloc_requested():
        return False
    try:
        import tracemalloc

        if not tracemalloc.is_tracing():
            tracemalloc.start()
        return True
    except Exception:
        return False


def point_probe_begin() -> dict[str, Any]:
    """Capture the pre-point memory state (cheap; tracemalloc only if on)."""
    state: dict[str, Any] = {"peak": peak_rss_bytes(), "tm": None}
    if ensure_tracemalloc():
        try:
            import tracemalloc

            state["tm"] = tracemalloc.take_snapshot()
        except Exception:
            state["tm"] = None
    return state


def _top_allocations(before: Any) -> list[dict[str, Any]]:
    import tracemalloc

    after = tracemalloc.take_snapshot()
    stats = after.compare_to(before, "lineno")[:TOP_ALLOCATIONS]
    out = []
    for stat in stats:
        frame = stat.traceback[0]
        out.append(
            {
                "site": f"{os.path.basename(frame.filename)}:{frame.lineno}",
                "size_bytes": int(stat.size_diff),
                "count": int(stat.count_diff),
            }
        )
    return out


def point_probe_end(state: dict[str, Any]) -> dict[str, Any]:
    """Build the ``mem`` section of a point record and run the budget check."""
    peak = peak_rss_bytes()
    mem: dict[str, Any] = {
        "rss_peak": peak,
        "rss_delta": max(peak - int(state.get("peak", 0)), 0),
    }
    if state.get("tm") is not None:
        try:
            mem["alloc_top"] = _top_allocations(state["tm"])
        except Exception:
            pass
    budget = _budget_bytes
    if budget is not None and peak > budget:
        mem["over_budget"] = True
        _spans.health_event(
            "campaign.memory_budget",
            float(peak),
            float(budget),
            severity="warning",
            direction="above",
            message=(
                f"point peak RSS {peak / 1e6:.0f} MB exceeded the "
                f"{budget / 1e6:.0f} MB budget"
            ),
        )
    return mem
