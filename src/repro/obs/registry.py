"""Aggregating metric registry: span stats, typed counters, histograms.

The registry is the storage half of :mod:`repro.obs`.  It does **not**
record individual events — a 10k-point campaign would produce millions of
span events — but folds every observation into a bounded set of *buckets*
keyed by ``(name-path, tags)``:

* :class:`SpanStat` — call count, summed monotonic wall and CPU seconds,
  min/max wall, the distinct thread ids and process ids that contributed;
* :class:`CounterStat` — a monotonically-added float with an event count;
* :class:`HistogramStat` — count / total / min / max plus decade
  (``log10``) bucket counts, enough for "where does the distribution sit"
  questions without storing samples.

Everything round-trips through :meth:`ObsRegistry.snapshot` — a plain-dict,
picklable, JSON-safe form — and back through :func:`merge_snapshots` /
:func:`snapshot_delta`.  Campaign workers snapshot before/after each point
and ship the delta to the coordinator, mirroring the grid-cache delta
pattern of :class:`repro.campaign.telemetry.CampaignTelemetry`.
"""

from __future__ import annotations

import math
import os
import threading
from typing import Any, Mapping

__all__ = [
    "CounterStat",
    "HistogramStat",
    "ObsRegistry",
    "SpanStat",
    "bucket_key",
    "merge_snapshots",
    "snapshot_delta",
]

#: Cap on the distinct thread/process ids kept per bucket (provenance, not
#: accounting — the counts stay exact even when the id lists saturate).
MAX_IDS = 32


def bucket_key(name: str, tags: Mapping[str, Any]) -> str:
    """Stable string key for one ``(name, tags)`` bucket.

    ``"core.dense_grid[op=LTIOperator,order=8,points=200]"`` — used both as
    the in-memory dict key and as the JSON object key of snapshots, so
    snapshots merge without re-deriving structure.
    """
    if not tags:
        return name
    inner = ",".join(f"{k}={tags[k]}" for k in sorted(tags))
    return f"{name}[{inner}]"


def _decade(value: float) -> int:
    """Histogram bucket index: ``floor(log10(value))``, clamped sanely."""
    if value <= 0.0 or not math.isfinite(value):
        return -18
    return max(-18, min(18, math.floor(math.log10(value))))


class SpanStat:
    """Aggregated timings of one span bucket."""

    __slots__ = ("name", "tags", "count", "wall", "cpu", "wall_min", "wall_max",
                 "threads", "pids")

    def __init__(self, name: str, tags: Mapping[str, Any]):
        self.name = name
        self.tags = dict(tags)
        self.count = 0
        self.wall = 0.0
        self.cpu = 0.0
        self.wall_min = math.inf
        self.wall_max = 0.0
        self.threads: set[int] = set()
        self.pids: set[int] = set()

    def record(self, wall: float, cpu: float, thread_id: int, pid: int) -> None:
        self.count += 1
        self.wall += wall
        self.cpu += cpu
        self.wall_min = min(self.wall_min, wall)
        self.wall_max = max(self.wall_max, wall)
        if len(self.threads) < MAX_IDS:
            self.threads.add(thread_id)
        if len(self.pids) < MAX_IDS:
            self.pids.add(pid)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "span",
            "name": self.name,
            "tags": dict(self.tags),
            "count": self.count,
            "wall": self.wall,
            "cpu": self.cpu,
            "wall_min": self.wall_min if self.count else 0.0,
            "wall_max": self.wall_max,
            "threads": sorted(self.threads),
            "pids": sorted(self.pids),
        }


class CounterStat:
    """A typed, monotonically-accumulated counter bucket."""

    __slots__ = ("name", "tags", "value", "count")

    def __init__(self, name: str, tags: Mapping[str, Any]):
        self.name = name
        self.tags = dict(tags)
        self.value = 0.0
        self.count = 0

    def add(self, value: float) -> None:
        self.value += float(value)
        self.count += 1

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "counter",
            "name": self.name,
            "tags": dict(self.tags),
            "value": self.value,
            "count": self.count,
        }


class HistogramStat:
    """Count/total/min/max plus decade buckets of one observed quantity."""

    __slots__ = ("name", "tags", "count", "total", "vmin", "vmax", "buckets")

    def __init__(self, name: str, tags: Mapping[str, Any]):
        self.name = name
        self.tags = dict(tags)
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.vmin = min(self.vmin, value)
        self.vmax = max(self.vmax, value)
        decade = _decade(value)
        self.buckets[decade] = self.buckets.get(decade, 0) + 1

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "histogram",
            "name": self.name,
            "tags": dict(self.tags),
            "count": self.count,
            "total": self.total,
            "min": self.vmin if self.count else 0.0,
            "max": self.vmax if self.count else 0.0,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


class ObsRegistry:
    """Thread-safe, process-global store of span/counter/histogram buckets."""

    def __init__(self):
        self._lock = threading.Lock()
        self._spans: dict[str, SpanStat] = {}
        self._counters: dict[str, CounterStat] = {}
        self._histograms: dict[str, HistogramStat] = {}

    # -- recording ---------------------------------------------------------------

    def record_span(
        self,
        path: str,
        tags: Mapping[str, Any],
        wall: float,
        cpu: float,
        thread_id: int,
    ) -> None:
        key = bucket_key(path, tags)
        with self._lock:
            stat = self._spans.get(key)
            if stat is None:
                stat = self._spans[key] = SpanStat(path, tags)
            stat.record(wall, cpu, thread_id, os.getpid())

    def add(self, name: str, value: float, tags: Mapping[str, Any]) -> None:
        key = bucket_key(name, tags)
        with self._lock:
            stat = self._counters.get(key)
            if stat is None:
                stat = self._counters[key] = CounterStat(name, tags)
            stat.add(value)

    def observe(self, name: str, value: float, tags: Mapping[str, Any]) -> None:
        key = bucket_key(name, tags)
        with self._lock:
            stat = self._histograms.get(key)
            if stat is None:
                stat = self._histograms[key] = HistogramStat(name, tags)
            stat.observe(value)

    # -- bulk access -------------------------------------------------------------

    def reset(self) -> None:
        """Drop every bucket."""
        with self._lock:
            self._spans.clear()
            self._counters.clear()
            self._histograms.clear()

    def is_empty(self) -> bool:
        with self._lock:
            return not (self._spans or self._counters or self._histograms)

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict, picklable, JSON-safe snapshot of every bucket."""
        with self._lock:
            return {
                "pid": os.getpid(),
                "spans": {k: s.to_dict() for k, s in self._spans.items()},
                "counters": {k: c.to_dict() for k, c in self._counters.items()},
                "histograms": {
                    k: h.to_dict() for k, h in self._histograms.items()
                },
            }

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a snapshot (e.g. from a worker process) into the live buckets."""
        with self._lock:
            for key, entry in (snapshot.get("spans") or {}).items():
                stat = self._spans.get(key)
                if stat is None:
                    stat = self._spans[key] = SpanStat(
                        entry["name"], entry.get("tags") or {}
                    )
                stat.count += int(entry["count"])
                stat.wall += float(entry["wall"])
                stat.cpu += float(entry["cpu"])
                if entry["count"]:
                    stat.wall_min = min(stat.wall_min, float(entry["wall_min"]))
                stat.wall_max = max(stat.wall_max, float(entry["wall_max"]))
                stat.threads.update(list(entry.get("threads") or [])[:MAX_IDS])
                stat.pids.update(list(entry.get("pids") or [])[:MAX_IDS])
            for key, entry in (snapshot.get("counters") or {}).items():
                stat = self._counters.get(key)
                if stat is None:
                    stat = self._counters[key] = CounterStat(
                        entry["name"], entry.get("tags") or {}
                    )
                stat.value += float(entry["value"])
                stat.count += int(entry["count"])
            for key, entry in (snapshot.get("histograms") or {}).items():
                stat = self._histograms.get(key)
                if stat is None:
                    stat = self._histograms[key] = HistogramStat(
                        entry["name"], entry.get("tags") or {}
                    )
                stat.count += int(entry["count"])
                stat.total += float(entry["total"])
                if entry["count"]:
                    stat.vmin = min(stat.vmin, float(entry["min"]))
                    stat.vmax = max(stat.vmax, float(entry["max"]))
                for decade, n in (entry.get("buckets") or {}).items():
                    decade = int(decade)
                    stat.buckets[decade] = stat.buckets.get(decade, 0) + int(n)


def _empty_snapshot(pid: int | None = None) -> dict[str, Any]:
    return {
        "pid": os.getpid() if pid is None else pid,
        "spans": {},
        "counters": {},
        "histograms": {},
    }


def merge_snapshots(
    base: Mapping[str, Any] | None, other: Mapping[str, Any] | None
) -> dict[str, Any]:
    """Pure merge of two snapshot dicts (either may be ``None``)."""
    registry = ObsRegistry()
    if base:
        registry.merge(base)
    if other:
        registry.merge(other)
    merged = registry.snapshot()
    pids: set[int] = set()
    for snap in (base, other):
        if snap and "pid" in snap:
            pids.add(int(snap["pid"]))
    if pids:
        merged["pid"] = min(pids)
    return merged


def snapshot_delta(
    before: Mapping[str, Any], after: Mapping[str, Any]
) -> dict[str, Any]:
    """What happened between two snapshots of the *same* registry.

    Counts, summed times and counter values subtract exactly; min/max and
    id provenance are taken from ``after`` (a bucket min/max cannot be
    un-merged — documented approximation, irrelevant for fresh buckets).
    Buckets with no activity in the window are dropped, so a per-point
    campaign delta stays small.
    """
    delta = _empty_snapshot(after.get("pid"))
    for section, count_field in (
        ("spans", "count"), ("counters", "count"), ("histograms", "count")
    ):
        before_entries = before.get(section) or {}
        for key, entry in (after.get(section) or {}).items():
            prior = before_entries.get(key)
            if prior is None:
                if entry[count_field]:
                    delta[section][key] = dict(entry)
                continue
            changed = int(entry[count_field]) - int(prior[count_field])
            if changed <= 0:
                continue
            out = dict(entry)
            out[count_field] = changed
            for field in ("wall", "cpu", "value", "total"):
                if field in entry:
                    out[field] = float(entry[field]) - float(prior.get(field, 0.0))
            if "buckets" in entry:
                prior_buckets = prior.get("buckets") or {}
                out["buckets"] = {
                    k: int(v) - int(prior_buckets.get(k, 0))
                    for k, v in entry["buckets"].items()
                    if int(v) - int(prior_buckets.get(k, 0)) > 0
                }
            delta[section][key] = out
    return delta
