"""Aggregating metric registry: span stats, typed counters, histograms.

The registry is the storage half of :mod:`repro.obs`.  It does **not**
record individual events — a 10k-point campaign would produce millions of
span events — but folds every observation into a bounded set of *buckets*
keyed by ``(name-path, tags)``:

* :class:`SpanStat` — call count, summed monotonic wall and CPU seconds,
  min/max wall, the distinct thread ids and process ids that contributed;
* :class:`CounterStat` — a monotonically-added float with an event count;
* :class:`HistogramStat` — count / total / min / max plus decade
  (``log10``) bucket counts, enough for "where does the distribution sit"
  questions without storing samples;
* :class:`HealthStat` — a numerical-health diagnostics bucket (see
  :mod:`repro.obs.health`): severity, emit count, the *worst* observed
  value with its threshold and message.  Bounded to
  :data:`MAX_EVENT_BUCKETS` distinct buckets; overflow is counted in
  ``events_dropped`` rather than allocated.

Everything round-trips through :meth:`ObsRegistry.snapshot` — a plain-dict,
picklable, JSON-safe form — and back through :func:`merge_snapshots` /
:func:`snapshot_delta`.  Campaign workers snapshot before/after each point
and ship the delta to the coordinator, mirroring the grid-cache delta
pattern of :class:`repro.campaign.telemetry.CampaignTelemetry`.
"""

from __future__ import annotations

import math
import os
import threading
from typing import Any, Mapping

__all__ = [
    "CounterStat",
    "HealthStat",
    "HistogramStat",
    "ObsRegistry",
    "SpanStat",
    "bucket_key",
    "histogram_quantiles",
    "merge_snapshots",
    "snapshot_delta",
]

#: Cap on the distinct thread/process ids kept per bucket (provenance, not
#: accounting — the counts stay exact even when the id lists saturate).
MAX_IDS = 32

#: Cap on distinct health-event buckets per registry.  Events beyond the
#: cap are *counted* (``events_dropped``) but not stored, so a pathological
#: probe cannot grow the registry without bound.
MAX_EVENT_BUCKETS = 256


def bucket_key(name: str, tags: Mapping[str, Any]) -> str:
    """Stable string key for one ``(name, tags)`` bucket.

    ``"core.dense_grid[op=LTIOperator,order=8,points=200]"`` — used both as
    the in-memory dict key and as the JSON object key of snapshots, so
    snapshots merge without re-deriving structure.
    """
    if not tags:
        return name
    inner = ",".join(f"{k}={tags[k]}" for k in sorted(tags))
    return f"{name}[{inner}]"


def _decade(value: float) -> int:
    """Histogram bucket index: ``floor(log10(value))``, clamped sanely."""
    if value <= 0.0 or not math.isfinite(value):
        return -18
    return max(-18, min(18, math.floor(math.log10(value))))


class SpanStat:
    """Aggregated timings of one span bucket."""

    __slots__ = ("name", "tags", "count", "wall", "cpu", "wall_min", "wall_max",
                 "threads", "pids")

    def __init__(self, name: str, tags: Mapping[str, Any]):
        self.name = name
        self.tags = dict(tags)
        self.count = 0
        self.wall = 0.0
        self.cpu = 0.0
        self.wall_min = math.inf
        self.wall_max = 0.0
        self.threads: set[int] = set()
        self.pids: set[int] = set()

    def record(self, wall: float, cpu: float, thread_id: int, pid: int) -> None:
        self.count += 1
        self.wall += wall
        self.cpu += cpu
        self.wall_min = min(self.wall_min, wall)
        self.wall_max = max(self.wall_max, wall)
        if len(self.threads) < MAX_IDS:
            self.threads.add(thread_id)
        if len(self.pids) < MAX_IDS:
            self.pids.add(pid)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "span",
            "name": self.name,
            "tags": dict(self.tags),
            "count": self.count,
            "wall": self.wall,
            "cpu": self.cpu,
            "wall_min": self.wall_min if self.count else 0.0,
            "wall_max": self.wall_max,
            "threads": sorted(self.threads),
            "pids": sorted(self.pids),
        }


class CounterStat:
    """A typed, monotonically-accumulated counter bucket."""

    __slots__ = ("name", "tags", "value", "count")

    def __init__(self, name: str, tags: Mapping[str, Any]):
        self.name = name
        self.tags = dict(tags)
        self.value = 0.0
        self.count = 0

    def add(self, value: float) -> None:
        self.value += float(value)
        self.count += 1

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "counter",
            "name": self.name,
            "tags": dict(self.tags),
            "value": self.value,
            "count": self.count,
        }


class HistogramStat:
    """Count/total/min/max plus decade buckets of one observed quantity."""

    __slots__ = ("name", "tags", "count", "total", "vmin", "vmax", "buckets")

    def __init__(self, name: str, tags: Mapping[str, Any]):
        self.name = name
        self.tags = dict(tags)
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.vmin = min(self.vmin, value)
        self.vmax = max(self.vmax, value)
        decade = _decade(value)
        self.buckets[decade] = self.buckets.get(decade, 0) + 1

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "histogram",
            "name": self.name,
            "tags": dict(self.tags),
            "count": self.count,
            "total": self.total,
            "min": self.vmin if self.count else 0.0,
            "max": self.vmax if self.count else 0.0,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }


def histogram_quantiles(
    entry: Mapping[str, Any] | "HistogramStat",
    quantiles: tuple[float, ...] = (0.5, 0.95, 0.99),
) -> dict[str, float]:
    """Quantile estimates from a decade histogram.

    Accepts either a :class:`HistogramStat` or its ``to_dict()`` form (bucket
    keys may be ints or strings, as they are after a JSON round-trip).  The
    rank is located exactly from the bucket counts; the value within the
    containing decade ``[10^k, 10^(k+1))`` is interpolated geometrically
    (uniform in log-space, matching how the decades are laid out) and clamped
    to the histogram's observed ``[min, max]`` — so a single-valued histogram
    reports that value exactly at every quantile.

    Returns ``{"p50": ..., "p95": ..., "p99": ...}`` (keys follow the
    requested quantiles); empty dict when the histogram has no samples.
    """
    if isinstance(entry, HistogramStat):
        entry = entry.to_dict()
    count = int(entry.get("count", 0))
    if count <= 0:
        return {}
    buckets: dict[int, int] = {}
    for raw, n in (entry.get("buckets") or {}).items():
        try:
            buckets[int(raw)] = buckets.get(int(raw), 0) + int(n)
        except (TypeError, ValueError):
            continue
    vmin = float(entry.get("min", 0.0))
    vmax = float(entry.get("max", vmin))
    out: dict[str, float] = {}
    ordered = sorted(buckets.items())
    for q in quantiles:
        q = min(1.0, max(0.0, float(q)))
        label = f"p{q * 100:g}".replace(".", "_")
        target = q * count
        cumulative = 0
        value = vmax
        for decade, n in ordered:
            if n <= 0:
                continue
            if cumulative + n >= target:
                # position of the target rank inside this decade's samples
                frac = (target - cumulative - 0.5) / n if n > 1 else 0.5
                frac = min(1.0, max(0.0, frac))
                value = 10.0 ** (decade + frac)
                break
            cumulative += n
        out[label] = min(vmax, max(vmin, value))
    return out


def _is_worse(candidate: float, incumbent: float, direction: str) -> bool:
    """Whether ``candidate`` is a worse observation than ``incumbent``.

    ``direction='above'`` means large values are bad (residuals, condition
    numbers); ``'below'`` means small values are bad (``|1 + lambda|``
    margins).
    """
    if direction == "below":
        return candidate < incumbent
    return candidate > incumbent


class HealthStat:
    """Aggregated numerical-health events of one ``(name, tags, severity)``.

    Individual events are never stored — the bucket keeps the emit count
    and the *worst* observation (value, threshold, message, emitting span
    path), which is what ``repro obs health`` ranks and reports.
    """

    __slots__ = ("name", "tags", "severity", "direction", "count", "worst",
                 "threshold", "message", "path", "trace_id")

    def __init__(self, name: str, tags: Mapping[str, Any], severity: str,
                 direction: str = "above"):
        self.name = name
        self.tags = dict(tags)
        self.severity = severity
        self.direction = direction
        self.count = 0
        self.worst: float | None = None
        self.threshold = 0.0
        self.message = ""
        self.path: str | None = None
        self.trace_id: str | None = None

    def record(self, value: float, threshold: float, message: str,
               path: str | None, trace_id: str | None = None) -> None:
        value = float(value)
        self.count += 1
        if self.worst is None or _is_worse(value, self.worst, self.direction):
            self.worst = value
            self.threshold = float(threshold)
            self.message = message
            self.path = path
            self.trace_id = trace_id

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "health",
            "name": self.name,
            "tags": dict(self.tags),
            "severity": self.severity,
            "direction": self.direction,
            "count": self.count,
            "worst": self.worst if self.worst is not None else 0.0,
            "threshold": self.threshold,
            "message": self.message,
            "path": self.path,
            "trace_id": self.trace_id,
        }


class ObsRegistry:
    """Thread-safe, process-global store of span/counter/histogram buckets."""

    def __init__(self):
        self._lock = threading.Lock()
        self._spans: dict[str, SpanStat] = {}
        self._counters: dict[str, CounterStat] = {}
        self._histograms: dict[str, HistogramStat] = {}
        self._events: dict[str, HealthStat] = {}
        self._events_dropped = 0

    # -- recording ---------------------------------------------------------------

    def record_span(
        self,
        path: str,
        tags: Mapping[str, Any],
        wall: float,
        cpu: float,
        thread_id: int,
    ) -> None:
        key = bucket_key(path, tags)
        with self._lock:
            stat = self._spans.get(key)
            if stat is None:
                stat = self._spans[key] = SpanStat(path, tags)
            stat.record(wall, cpu, thread_id, os.getpid())

    def add(self, name: str, value: float, tags: Mapping[str, Any]) -> None:
        key = bucket_key(name, tags)
        with self._lock:
            stat = self._counters.get(key)
            if stat is None:
                stat = self._counters[key] = CounterStat(name, tags)
            stat.add(value)

    def observe(self, name: str, value: float, tags: Mapping[str, Any]) -> None:
        key = bucket_key(name, tags)
        with self._lock:
            stat = self._histograms.get(key)
            if stat is None:
                stat = self._histograms[key] = HistogramStat(name, tags)
            stat.observe(value)

    def record_event(
        self,
        name: str,
        severity: str,
        value: float,
        threshold: float,
        tags: Mapping[str, Any],
        direction: str = "above",
        message: str = "",
        path: str | None = None,
        trace_id: str | None = None,
    ) -> None:
        """Fold one health event into its ``(name, tags, severity)`` bucket."""
        key = f"{bucket_key(name, tags)}#{severity}"
        with self._lock:
            stat = self._events.get(key)
            if stat is None:
                if len(self._events) >= MAX_EVENT_BUCKETS:
                    self._events_dropped += 1
                    return
                stat = self._events[key] = HealthStat(
                    name, tags, severity, direction
                )
            stat.record(value, threshold, message, path, trace_id)

    # -- bulk access -------------------------------------------------------------

    def reset(self) -> None:
        """Drop every bucket."""
        with self._lock:
            self._spans.clear()
            self._counters.clear()
            self._histograms.clear()
            self._events.clear()
            self._events_dropped = 0

    def is_empty(self) -> bool:
        with self._lock:
            return not (
                self._spans
                or self._counters
                or self._histograms
                or self._events
                or self._events_dropped
            )

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict, picklable, JSON-safe snapshot of every bucket."""
        with self._lock:
            return {
                "pid": os.getpid(),
                "spans": {k: s.to_dict() for k, s in self._spans.items()},
                "counters": {k: c.to_dict() for k, c in self._counters.items()},
                "histograms": {
                    k: h.to_dict() for k, h in self._histograms.items()
                },
                "events": {k: e.to_dict() for k, e in self._events.items()},
                "events_dropped": self._events_dropped,
            }

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a snapshot (e.g. from a worker process) into the live buckets."""
        with self._lock:
            for key, entry in (snapshot.get("spans") or {}).items():
                stat = self._spans.get(key)
                if stat is None:
                    stat = self._spans[key] = SpanStat(
                        entry["name"], entry.get("tags") or {}
                    )
                stat.count += int(entry["count"])
                stat.wall += float(entry["wall"])
                stat.cpu += float(entry["cpu"])
                if entry["count"]:
                    stat.wall_min = min(stat.wall_min, float(entry["wall_min"]))
                stat.wall_max = max(stat.wall_max, float(entry["wall_max"]))
                stat.threads.update(list(entry.get("threads") or [])[:MAX_IDS])
                stat.pids.update(list(entry.get("pids") or [])[:MAX_IDS])
            for key, entry in (snapshot.get("counters") or {}).items():
                stat = self._counters.get(key)
                if stat is None:
                    stat = self._counters[key] = CounterStat(
                        entry["name"], entry.get("tags") or {}
                    )
                stat.value += float(entry["value"])
                stat.count += int(entry["count"])
            for key, entry in (snapshot.get("histograms") or {}).items():
                stat = self._histograms.get(key)
                if stat is None:
                    stat = self._histograms[key] = HistogramStat(
                        entry["name"], entry.get("tags") or {}
                    )
                stat.count += int(entry["count"])
                stat.total += float(entry["total"])
                if entry["count"]:
                    stat.vmin = min(stat.vmin, float(entry["min"]))
                    stat.vmax = max(stat.vmax, float(entry["max"]))
                for decade, n in (entry.get("buckets") or {}).items():
                    decade = int(decade)
                    stat.buckets[decade] = stat.buckets.get(decade, 0) + int(n)
            for key, entry in (snapshot.get("events") or {}).items():
                stat = self._events.get(key)
                if stat is None:
                    if len(self._events) >= MAX_EVENT_BUCKETS:
                        self._events_dropped += int(entry["count"])
                        continue
                    stat = self._events[key] = HealthStat(
                        entry["name"],
                        entry.get("tags") or {},
                        entry["severity"],
                        entry.get("direction", "above"),
                    )
                stat.count += int(entry["count"])
                value = float(entry.get("worst", 0.0))
                if entry["count"] and (
                    stat.worst is None
                    or _is_worse(value, stat.worst, stat.direction)
                ):
                    stat.worst = value
                    stat.threshold = float(entry.get("threshold", 0.0))
                    stat.message = str(entry.get("message", ""))
                    stat.path = entry.get("path")
                    stat.trace_id = entry.get("trace_id")
            self._events_dropped += int(snapshot.get("events_dropped", 0) or 0)


def _empty_snapshot(pid: int | None = None) -> dict[str, Any]:
    return {
        "pid": os.getpid() if pid is None else pid,
        "spans": {},
        "counters": {},
        "histograms": {},
        "events": {},
        "events_dropped": 0,
    }


def merge_snapshots(
    base: Mapping[str, Any] | None, other: Mapping[str, Any] | None
) -> dict[str, Any]:
    """Pure merge of two snapshot dicts (either may be ``None``)."""
    registry = ObsRegistry()
    if base:
        registry.merge(base)
    if other:
        registry.merge(other)
    merged = registry.snapshot()
    pids: set[int] = set()
    for snap in (base, other):
        if snap and "pid" in snap:
            pids.add(int(snap["pid"]))
    if pids:
        merged["pid"] = min(pids)
    return merged


def snapshot_delta(
    before: Mapping[str, Any], after: Mapping[str, Any]
) -> dict[str, Any]:
    """What happened between two snapshots of the *same* registry.

    Counts, summed times and counter values subtract exactly; min/max, id
    provenance and health-event worst values are taken from ``after`` (a
    bucket min/max cannot be un-merged — documented approximation,
    irrelevant for fresh buckets).  Buckets with no activity in the window
    are dropped, so a per-point campaign delta stays small.
    """
    delta = _empty_snapshot(after.get("pid"))
    for section, count_field in (
        ("spans", "count"),
        ("counters", "count"),
        ("histograms", "count"),
        ("events", "count"),
    ):
        before_entries = before.get(section) or {}
        for key, entry in (after.get(section) or {}).items():
            prior = before_entries.get(key)
            if prior is None:
                if entry[count_field]:
                    delta[section][key] = dict(entry)
                continue
            changed = int(entry[count_field]) - int(prior[count_field])
            if changed <= 0:
                continue
            out = dict(entry)
            out[count_field] = changed
            for field in ("wall", "cpu", "value", "total"):
                if field in entry:
                    out[field] = float(entry[field]) - float(prior.get(field, 0.0))
            if "buckets" in entry:
                prior_buckets = prior.get("buckets") or {}
                out["buckets"] = {
                    k: int(v) - int(prior_buckets.get(k, 0))
                    for k, v in entry["buckets"].items()
                    if int(v) - int(prior_buckets.get(k, 0)) > 0
                }
            delta[section][key] = out
    dropped = int(after.get("events_dropped", 0) or 0) - int(
        before.get("events_dropped", 0) or 0
    )
    delta["events_dropped"] = max(dropped, 0)
    return delta
