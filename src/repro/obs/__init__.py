"""repro.obs — zero-dependency observability: spans, counters, hooks.

A lightweight tracing/metrics layer for the hot paths of this library:
batched HTM grid evaluation, the rank-one closed-loop solve, the grid
cache, and the campaign executor.  Three design rules:

1. **Free when off.**  Disabled (the default), every entry point reduces
   to one module-global bool read; ``span()`` hands back a shared no-op.
   Overhead on the grid-eval hot path is benchmarked < 2%
   (``benchmarks/bench_obs_overhead.py``).
2. **Aggregate, never trace-log.**  Observations fold into bounded
   ``(path, tags)`` buckets (:mod:`repro.obs.registry`); a 10k-point
   campaign produces kilobytes, not gigabytes.
3. **Picklable across processes.**  ``snapshot()`` is plain-dict data;
   campaign workers ship per-point deltas that the coordinator merges —
   the same pattern the grid cache uses for its counters.

Quick start::

    from repro import obs

    obs.enable()                      # or REPRO_OBS=1 in the environment
    with obs.span("my.analysis", points=200):
        closed.frequency_response(grid)
    print(obs.summary())

    # campaigns: run with REPRO_OBS=1, then inspect the store
    #   repro obs summary results.jsonl
    #   repro obs top results.jsonl -n 10
    #   repro obs export results.jsonl --json

See ``docs/OBSERVABILITY.md`` for the span model and CLI examples.
"""

from __future__ import annotations

from repro.obs.health import (
    CheckResult,
    format_health,
    max_severity,
    severity_counts,
    worst_events,
)
from repro.obs.registry import (
    CounterStat,
    HealthStat,
    HistogramStat,
    ObsRegistry,
    SpanStat,
    merge_snapshots,
    snapshot_delta,
)
from repro.obs.report import (
    format_summary,
    format_top,
    load_snapshot,
    to_chrome_trace,
    to_csv,
    to_json,
)
from repro.obs.spans import (
    NullSpan,
    Span,
    add,
    add_hook,
    delta,
    disable,
    enable,
    enabled,
    health_event,
    observe,
    registry,
    remove_hook,
    reset,
    snapshot,
    span,
)

__all__ = [
    "CheckResult",
    "CounterStat",
    "HealthStat",
    "HistogramStat",
    "NullSpan",
    "ObsRegistry",
    "Span",
    "SpanStat",
    "add",
    "add_hook",
    "delta",
    "disable",
    "enable",
    "enabled",
    "format_health",
    "format_summary",
    "format_top",
    "health_event",
    "load_snapshot",
    "max_severity",
    "merge_snapshots",
    "observe",
    "registry",
    "remove_hook",
    "reset",
    "severity_counts",
    "snapshot",
    "snapshot_delta",
    "span",
    "summary",
    "to_chrome_trace",
    "to_csv",
    "to_json",
    "worst_events",
]


def summary() -> str:
    """Human-readable report of the current process-global registry."""
    return format_summary(snapshot())
