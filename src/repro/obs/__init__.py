"""repro.obs — zero-dependency observability: spans, counters, hooks.

A lightweight tracing/metrics layer for the hot paths of this library:
batched HTM grid evaluation, the rank-one closed-loop solve, the grid
cache, and the campaign executor.  Three design rules:

1. **Free when off.**  Disabled (the default), every entry point reduces
   to one module-global bool read; ``span()`` hands back a shared no-op.
   Overhead on the grid-eval hot path is benchmarked < 2%
   (``benchmarks/bench_obs_overhead.py``).
2. **Aggregate, never trace-log.**  Observations fold into bounded
   ``(path, tags)`` buckets (:mod:`repro.obs.registry`); a 10k-point
   campaign produces kilobytes, not gigabytes.
3. **Picklable across processes.**  ``snapshot()`` is plain-dict data;
   campaign workers ship per-point deltas that the coordinator merges —
   the same pattern the grid cache uses for its counters.

Quick start::

    from repro import obs

    obs.enable()                      # or REPRO_OBS=1 in the environment
    with obs.span("my.analysis", points=200):
        closed.frequency_response(grid)
    print(obs.summary())

    # campaigns: run with REPRO_OBS=1, then inspect the store
    #   repro obs summary results.jsonl
    #   repro obs top results.jsonl -n 10
    #   repro obs export results.jsonl --json

See ``docs/OBSERVABILITY.md`` for the span model and CLI examples.
"""

from __future__ import annotations

from repro.obs.health import (
    CheckResult,
    format_health,
    max_severity,
    severity_counts,
    worst_events,
)
from repro.obs.heartbeat import heartbeat_dir, read_heartbeats
from repro.obs.manifest import (
    build_manifest,
    check_manifest,
    load_manifest,
    manifest_path,
    spec_fingerprint,
    write_manifest,
)
from repro.obs.profile import (
    Profiler,
    load_store_profiles,
    merge_profiles,
    profile_dir,
    profile_requested,
    to_collapsed,
    to_flamegraph_html,
    top_frames,
)
from repro.obs.prom import sanitize_metric_name, to_prometheus
from repro.obs.registry import (
    CounterStat,
    HealthStat,
    HistogramStat,
    ObsRegistry,
    SpanStat,
    histogram_quantiles,
    merge_snapshots,
    snapshot_delta,
)
from repro.obs.report import (
    format_summary,
    format_top,
    load_snapshot,
    to_chrome_trace,
    to_csv,
    to_json,
)
from repro.obs.slo import (
    BurnWindow,
    SLISpec,
    SLODefinition,
    SLOMonitor,
    default_campaign_slos,
    default_serve_slos,
    evaluate_slos,
    evaluate_store,
    format_slo_report,
    load_slo_spec,
    parse_slo_spec,
)
from repro.obs.resources import (
    current_rss_bytes,
    peak_rss_bytes,
    tracemalloc_requested,
)
from repro.obs.spans import (
    NullSpan,
    Span,
    add,
    add_hook,
    delta,
    disable,
    enable,
    enabled,
    health_event,
    observe,
    registry,
    remove_hook,
    reset,
    snapshot,
    span,
)
from repro.obs.stream import (
    StreamEmitter,
    read_stream,
    stream_path,
    stream_requested,
)
from repro.obs.trace import (
    TraceContext,
    build_chrome_trace,
    critical_path_summary,
    format_critical_path,
    format_traceparent,
    new_context,
    parse_traceparent,
    trace_dir,
)

__all__ = [
    "BurnWindow",
    "CheckResult",
    "CounterStat",
    "HealthStat",
    "HistogramStat",
    "NullSpan",
    "ObsRegistry",
    "Profiler",
    "SLISpec",
    "SLODefinition",
    "SLOMonitor",
    "Span",
    "SpanStat",
    "StreamEmitter",
    "TraceContext",
    "add",
    "add_hook",
    "build_chrome_trace",
    "build_manifest",
    "check_manifest",
    "critical_path_summary",
    "current_rss_bytes",
    "default_campaign_slos",
    "default_serve_slos",
    "delta",
    "disable",
    "enable",
    "enabled",
    "evaluate_slos",
    "evaluate_store",
    "format_critical_path",
    "format_health",
    "format_slo_report",
    "format_summary",
    "format_top",
    "format_traceparent",
    "health_event",
    "heartbeat_dir",
    "histogram_quantiles",
    "load_manifest",
    "load_slo_spec",
    "load_snapshot",
    "load_store_profiles",
    "manifest_path",
    "max_severity",
    "merge_profiles",
    "merge_snapshots",
    "new_context",
    "observe",
    "parse_slo_spec",
    "parse_traceparent",
    "peak_rss_bytes",
    "profile_dir",
    "profile_requested",
    "read_heartbeats",
    "read_stream",
    "registry",
    "remove_hook",
    "reset",
    "sanitize_metric_name",
    "severity_counts",
    "snapshot",
    "snapshot_delta",
    "span",
    "spec_fingerprint",
    "stream_path",
    "stream_requested",
    "summary",
    "to_chrome_trace",
    "to_collapsed",
    "to_csv",
    "to_flamegraph_html",
    "to_json",
    "to_prometheus",
    "top_frames",
    "trace_dir",
    "tracemalloc_requested",
    "worst_events",
    "write_manifest",
]


def summary() -> str:
    """Human-readable report of the current process-global registry."""
    return format_summary(snapshot())
