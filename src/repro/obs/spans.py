"""Span runtime: the enabled switch, nested spans, counters, hooks.

This is the instrumentation half of :mod:`repro.obs`.  Design rule number
one: **the layer is free when off.**  Every instrumented call site guards
with :func:`enabled` (one module-global bool read) and, even unguarded,
:func:`span` returns a shared no-op context manager while disabled — no
allocation, no clock reads, no lock.  The disabled overhead is benchmarked
below 2% on the grid-evaluation hot path
(``benchmarks/bench_obs_overhead.py``).

Enabling
--------
Set ``REPRO_OBS=1`` in the environment before the process starts, or call
:func:`enable` / :func:`disable` at runtime.  ``REPRO_OBS_EXPORT=path``
additionally dumps the final registry snapshot as JSON at interpreter exit
(handy for benchmarks and one-shot scripts).

Span model
----------
``span(name, **tags)`` opens a nested tracing span: on entry it pushes
``name`` onto a thread-local stack and reads the monotonic wall clock
(``perf_counter``) and the CPU clock (``process_time``); on exit it folds
``(path, tags) -> (count, wall, cpu, min/max, thread id, pid)`` into the
process-global :class:`~repro.obs.registry.ObsRegistry`, where *path* is
the ``/``-joined chain of enclosing span names — so the same grid kernel
shows up separately under ``campaign.point/...`` and under a bare sweep.
Tags may be added mid-span with :meth:`Span.tag` (the campaign executor
tags points with their terminal status this way).

Profiling hooks
---------------
:func:`add_hook` registers a callable receiving one event dict per
finished span (``{"type": "span", "path", "tags", "wall", "cpu"}``) —
enough to bridge to cProfile, flamegraph emitters or live dashboards.
Hook exceptions are swallowed (and counted under ``obs.hook_errors``):
observability must never take down the computation it observes.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
import time
from typing import Any, Callable

from repro.obs.registry import ObsRegistry, snapshot_delta

__all__ = [
    "NullSpan",
    "Span",
    "add",
    "add_hook",
    "enable",
    "enabled",
    "disable",
    "health_event",
    "observe",
    "registry",
    "remove_hook",
    "reset",
    "set_profile_paths",
    "snapshot",
    "span",
]

_TRUTHY = {"1", "true", "yes", "on"}

_enabled: bool = os.environ.get("REPRO_OBS", "").strip().lower() in _TRUTHY
_registry = ObsRegistry()
_local = threading.local()
_hooks: list[Callable[[dict[str, Any]], None]] = []

# Installed by repro.obs.profile while a sampler is running: a plain
# {thread_id: active span path} dict the sampler can read cross-thread
# (thread-locals cannot be).  ``None`` — the default — keeps the span
# hot path at one extra global read.
_profile_paths: dict[int, str] | None = None


def set_profile_paths(registry: dict[int, str] | None) -> None:
    """Install (or remove) the profiler's cross-thread span-path registry."""
    global _profile_paths
    _profile_paths = registry


def enabled() -> bool:
    """Whether observability is recording (one global-bool read, no lock)."""
    return _enabled


def enable() -> None:
    """Turn recording on for this process."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn recording off (already-collected buckets are kept)."""
    global _enabled
    _enabled = False


def registry() -> ObsRegistry:
    """The process-global registry."""
    return _registry


def snapshot() -> dict[str, Any]:
    """Picklable snapshot of the process-global registry."""
    return _registry.snapshot()


def delta(before: dict[str, Any]) -> dict[str, Any]:
    """Activity since ``before`` (a prior :func:`snapshot` of this process)."""
    return snapshot_delta(before, _registry.snapshot())


def reset() -> None:
    """Drop every collected bucket (the enabled flag is untouched)."""
    _registry.reset()


def _stack() -> list[str]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


class NullSpan:
    """Shared do-nothing span handed out while observability is disabled."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def tag(self, **tags) -> "NullSpan":
        return self


_NULL_SPAN = NullSpan()


class Span:
    """One live nested span (use via ``with obs.span(...)``)."""

    __slots__ = ("name", "tags", "path", "_wall0", "_cpu0")

    def __init__(self, name: str, tags: dict[str, Any]):
        self.name = name
        self.tags = tags
        self.path = name

    def tag(self, **tags) -> "Span":
        """Attach/overwrite tags mid-span (before exit folds the bucket)."""
        self.tags.update(tags)
        return self

    def __enter__(self) -> "Span":
        stack = _stack()
        if stack:
            self.path = f"{stack[-1]}/{self.name}"
        stack.append(self.path)
        profiled = _profile_paths
        if profiled is not None:
            profiled[threading.get_ident()] = self.path
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, *exc) -> bool:
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        stack = _stack()
        if stack and stack[-1] == self.path:
            stack.pop()
        profiled = _profile_paths
        if profiled is not None:
            tid = threading.get_ident()
            if stack:
                profiled[tid] = stack[-1]
            else:
                profiled.pop(tid, None)
        _registry.record_span(
            self.path, self.tags, wall, cpu, threading.get_ident()
        )
        if _hooks:
            _dispatch(
                {
                    "type": "span",
                    "path": self.path,
                    "tags": dict(self.tags),
                    "wall": wall,
                    "cpu": cpu,
                }
            )
        return False


def span(name: str, **tags) -> Span | NullSpan:
    """Open a nested tracing span (no-op singleton while disabled)."""
    if not _enabled:
        return _NULL_SPAN
    return Span(name, tags)


def add(name: str, value: float = 1.0, **tags) -> None:
    """Accumulate a typed counter (no-op while disabled)."""
    if _enabled:
        _registry.add(name, value, tags)


def observe(name: str, value: float, **tags) -> None:
    """Record one histogram observation (no-op while disabled)."""
    if _enabled:
        _registry.observe(name, value, tags)


def health_event(
    name: str,
    value: float,
    threshold: float,
    *,
    severity: str = "warning",
    direction: str = "above",
    message: str = "",
    **tags,
) -> None:
    """Emit one numerical-health diagnostics event (no-op while disabled).

    Events fold into bounded ``(name, tags, severity)`` buckets keeping the
    emit count and the worst observation — see :mod:`repro.obs.health` for
    the severity model and the probe inventory.  The emitting span path (if
    any) is attached as provenance.  ``direction='above'`` marks values that
    should stay *below* the threshold (residuals, condition numbers);
    ``'below'`` marks values that should stay above it (``|1 + lambda|``).

    When a distributed trace context is active (request- or campaign-level,
    see :mod:`repro.obs.trace`), its ``trace_id`` is attached so a bad
    ``|1 + lambda|`` margin on a lease worker joins back to the request
    that asked for it.
    """
    if not _enabled:
        return
    stack = getattr(_local, "stack", None)
    path = stack[-1] if stack else None
    from repro.obs import trace as _trace

    ctx = _trace.context_or_campaign()
    _registry.record_event(
        name,
        severity,
        value,
        threshold,
        tags,
        direction=direction,
        message=message,
        path=path,
        trace_id=ctx.trace_id if ctx is not None else None,
    )


# -- profiling hooks -------------------------------------------------------------


def add_hook(hook: Callable[[dict[str, Any]], None]) -> None:
    """Register a per-span-event callback (opt-in profiling hook API)."""
    if hook not in _hooks:
        _hooks.append(hook)


def remove_hook(hook: Callable[[dict[str, Any]], None]) -> None:
    """Unregister a previously added hook (missing hooks are ignored)."""
    try:
        _hooks.remove(hook)
    except ValueError:
        pass


def _dispatch(event: dict[str, Any]) -> None:
    for hook in list(_hooks):
        try:
            hook(event)
        except Exception:
            _registry.add("obs.hook_errors", 1.0, {})


# -- atexit export ---------------------------------------------------------------


def _export_at_exit(path: str) -> None:
    try:
        snap = _registry.snapshot()
        with open(path, "w") as handle:
            json.dump(snap, handle, sort_keys=True, indent=2)
            handle.write("\n")
    except Exception:
        pass  # never let teardown instrumentation raise


_export_path = os.environ.get("REPRO_OBS_EXPORT", "").strip()
if _export_path:
    atexit.register(_export_at_exit, _export_path)
