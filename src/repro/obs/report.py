"""Reporting over observability snapshots: summary, top-N, JSON/CSV/trace.

The ``repro obs`` CLI subcommands are thin wrappers over this module.  A
*source* is either

* a campaign result store (JSONL) — the merged obs snapshot is read from
  the final ``summary`` record (falling back to merging the per-point
  ``obs`` deltas of an interrupted run), or
* a raw obs snapshot JSON file (e.g. one written via ``REPRO_OBS_EXPORT``).

Export formats: canonical JSON (:func:`to_json`), flat CSV rows
(:func:`to_csv`, for the campaign CSV tooling), and Chrome Trace Event
Format (:func:`to_chrome_trace`, loadable by ``chrome://tracing`` and
`Perfetto <https://ui.perfetto.dev>`_).
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Any, Mapping

from repro._errors import ValidationError
from repro.obs.registry import merge_snapshots

__all__ = [
    "format_summary",
    "format_top",
    "load_snapshot",
    "summary_json",
    "to_chrome_trace",
    "to_csv",
    "to_json",
    "top_json",
]


def load_snapshot(path: str | Path) -> dict[str, Any]:
    """Load an obs snapshot from a store/export file (see module docs)."""
    path = Path(path)
    if not path.exists():
        raise ValidationError(
            f"no obs source at {path} (expected a campaign store JSONL "
            "or an obs snapshot JSON file)"
        )
    if path.is_dir():
        raise ValidationError(
            f"obs source {path} is a directory; pass the store JSONL file "
            "or a snapshot JSON file inside it"
        )
    text = path.read_text()
    stripped = text.lstrip()
    if not stripped:
        raise ValidationError(f"{path} is empty")
    # A snapshot export is one (possibly pretty-printed) JSON object; a
    # campaign store is JSONL whose first line is the campaign header.
    try:
        data = json.loads(text)
    except json.JSONDecodeError:
        data = None
    if isinstance(data, dict) and "spans" in data:
        return data
    try:
        first = json.loads(stripped.splitlines()[0])
    except json.JSONDecodeError as exc:
        raise ValidationError(f"{path} is not JSON/JSONL: {exc}") from None
    if isinstance(first, dict) and first.get("kind") == "campaign":
        return _from_store(path)
    raise ValidationError(
        f"{path} holds neither a campaign store nor an obs snapshot "
        "(expected a campaign header line or a top-level 'spans' section)"
    )


def _from_store(path: Path) -> dict[str, Any]:
    """Obs snapshot of a campaign store: last summary, else merged deltas."""
    from repro.campaign.store import ResultStore

    store = ResultStore.open(path)
    merged: dict[str, Any] | None = None
    summary_obs: dict[str, Any] | None = None
    for record in store.records():
        if record.get("kind") == "summary" and record.get("obs"):
            summary_obs = record["obs"]
        elif record.get("kind") == "point" and record.get("obs"):
            merged = merge_snapshots(merged, record["obs"])
    snapshot = summary_obs or merged
    if snapshot is None:
        raise ValidationError(
            f"{path} holds no observability data — run the campaign with "
            "REPRO_OBS=1 (or repro.obs.enable()) to record spans"
        )
    return snapshot


def to_json(snapshot: Mapping[str, Any]) -> str:
    """Canonical JSON rendering of a snapshot."""
    return json.dumps(snapshot, sort_keys=True, indent=2)


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 100.0:
        return f"{seconds:.0f} s"
    if seconds >= 0.1:
        return f"{seconds:.2f} s"
    return f"{seconds * 1e3:.2f} ms"


def _span_rows(snapshot: Mapping[str, Any]) -> list[dict[str, Any]]:
    return list((snapshot.get("spans") or {}).values())


def format_summary(snapshot: Mapping[str, Any]) -> str:
    """Multi-section human-readable report of one snapshot."""
    lines: list[str] = []
    spans = _span_rows(snapshot)
    if spans:
        total_wall = sum(s["wall"] for s in spans)
        lines.append(
            f"spans: {len(spans)} bucket(s), "
            f"{sum(s['count'] for s in spans)} call(s), "
            f"{_fmt_seconds(total_wall)} busy (wall, incl. nesting)"
        )
        width = min(max(len(_span_label(s)) for s in spans), 64)
        for stat in sorted(spans, key=lambda s: -s["wall"]):
            mean = stat["wall"] / stat["count"] if stat["count"] else 0.0
            lines.append(
                f"  {_span_label(stat):<{width}}  "
                f"n={stat['count']:<7d} wall={_fmt_seconds(stat['wall']):>10} "
                f"cpu={_fmt_seconds(stat['cpu']):>10} "
                f"mean={_fmt_seconds(mean):>10} "
                f"procs={len(stat.get('pids') or [])}"
            )
    else:
        lines.append("spans: none recorded")
    counters = (snapshot.get("counters") or {}).values()
    if counters:
        lines.append("counters:")
        for stat in sorted(counters, key=lambda c: c["name"]):
            lines.append(
                f"  {_span_label(stat):<40}  value={stat['value']:g} "
                f"(n={stat['count']})"
            )
    histograms = (snapshot.get("histograms") or {}).values()
    if histograms:
        from repro.obs.registry import histogram_quantiles

        lines.append("histograms:")
        for stat in sorted(histograms, key=lambda h: h["name"]):
            mean = stat["total"] / stat["count"] if stat["count"] else 0.0
            quantiles = histogram_quantiles(stat)
            tail = ""
            if quantiles:
                tail = " " + " ".join(
                    f"{key.replace('_', '.')}={quantiles[key]:.3g}"
                    for key in ("p50", "p95", "p99")
                    if key in quantiles
                )
            lines.append(
                f"  {_span_label(stat):<40}  n={stat['count']} "
                f"mean={mean:g} min={stat['min']:g} max={stat['max']:g}"
                f"{tail}"
            )
    if (snapshot.get("events") or {}) or snapshot.get("events_dropped"):
        from repro.obs.health import format_health

        lines.append(format_health(snapshot))
    return "\n".join(lines)


def _span_label(stat: Mapping[str, Any]) -> str:
    tags = stat.get("tags") or {}
    if not tags:
        return str(stat["name"])
    inner = ",".join(f"{k}={tags[k]}" for k in sorted(tags))
    return f"{stat['name']}[{inner}]"


_CSV_COLUMNS = (
    "kind",
    "name",
    "tags",
    "count",
    "wall",
    "cpu",
    "value",
    "severity",
    "worst",
    "threshold",
    "message",
    "path",
)


def to_csv(snapshot: Mapping[str, Any]) -> str:
    """Flat CSV rendering of a snapshot — one row per bucket.

    All sections (spans, counters, histograms, health events) share one
    schema so the output concatenates cleanly with the campaign CSV
    tooling; columns that do not apply to a row's kind are left empty.
    Tags are rendered ``k=v`` joined with ``;``.
    """
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=_CSV_COLUMNS, extrasaction="ignore")
    writer.writeheader()

    def tag_text(stat: Mapping[str, Any]) -> str:
        tags = stat.get("tags") or {}
        return ";".join(f"{k}={tags[k]}" for k in sorted(tags))

    for stat in sorted(_span_rows(snapshot), key=lambda s: -s["wall"]):
        writer.writerow(
            {
                "kind": "span",
                "name": stat["name"],
                "tags": tag_text(stat),
                "count": stat["count"],
                "wall": stat["wall"],
                "cpu": stat["cpu"],
            }
        )
    for stat in sorted(
        (snapshot.get("counters") or {}).values(), key=lambda c: c["name"]
    ):
        writer.writerow(
            {
                "kind": "counter",
                "name": stat["name"],
                "tags": tag_text(stat),
                "count": stat["count"],
                "value": stat["value"],
            }
        )
    for stat in sorted(
        (snapshot.get("histograms") or {}).values(), key=lambda h: h["name"]
    ):
        writer.writerow(
            {
                "kind": "histogram",
                "name": stat["name"],
                "tags": tag_text(stat),
                "count": stat["count"],
                "value": stat["total"],
            }
        )
    for stat in sorted(
        (snapshot.get("events") or {}).values(),
        key=lambda e: (e.get("severity", ""), e.get("name", "")),
    ):
        writer.writerow(
            {
                "kind": "health",
                "name": stat["name"],
                "tags": tag_text(stat),
                "count": stat["count"],
                "severity": stat.get("severity", ""),
                "worst": stat.get("worst", ""),
                "threshold": stat.get("threshold", ""),
                "message": stat.get("message", ""),
                "path": stat.get("path") or "",
            }
        )
    return buffer.getvalue()


def to_chrome_trace(snapshot: Mapping[str, Any]) -> str:
    """Chrome Trace Event Format rendering of a snapshot.

    Loadable by ``chrome://tracing`` and Perfetto.  Snapshots hold
    aggregates, not raw events, so each span bucket becomes one complete
    (``ph: "X"``) slice whose duration is the bucket's total wall time,
    laid end to end per bucket name; counters become ``ph: "C"`` samples
    and health events ``ph: "i"`` instants at the emitting span's end.
    Timestamps are microseconds from an arbitrary zero.
    """
    trace_events: list[dict[str, Any]] = []
    cursor_us = 0.0
    for stat in sorted(_span_rows(snapshot), key=lambda s: -s["wall"]):
        duration_us = max(float(stat["wall"]) * 1e6, 1.0)
        trace_events.append(
            {
                "name": _span_label(stat),
                "cat": "span",
                "ph": "X",
                "ts": cursor_us,
                "dur": duration_us,
                "pid": 0,
                "tid": 0,
                "args": {
                    "count": stat["count"],
                    "cpu_seconds": stat["cpu"],
                    "wall_seconds": stat["wall"],
                    "tags": dict(stat.get("tags") or {}),
                },
            }
        )
        cursor_us += duration_us
    for stat in sorted(
        (snapshot.get("counters") or {}).values(), key=lambda c: c["name"]
    ):
        trace_events.append(
            {
                "name": _span_label(stat),
                "cat": "counter",
                "ph": "C",
                "ts": 0.0,
                "pid": 0,
                "args": {"value": stat["value"]},
            }
        )
    for stat in sorted(
        (snapshot.get("events") or {}).values(),
        key=lambda e: (e.get("severity", ""), e.get("name", "")),
    ):
        trace_events.append(
            {
                "name": _span_label(stat),
                "cat": f"health.{stat.get('severity', 'info')}",
                "ph": "i",
                "s": "g",
                "ts": max(cursor_us, 1.0),
                "pid": 0,
                "tid": 0,
                "args": {
                    "count": stat["count"],
                    "worst": stat.get("worst"),
                    "threshold": stat.get("threshold"),
                    "message": stat.get("message", ""),
                    "span_path": stat.get("path"),
                },
            }
        )
    return json.dumps(
        {"displayTimeUnit": "ms", "traceEvents": trace_events}, indent=2
    )


def summary_json(snapshot: Mapping[str, Any]) -> dict[str, Any]:
    """Machine-readable counterpart of :func:`format_summary`.

    One JSON-safe object with the same sections the human table prints —
    spans (wall-sorted), counters, histograms with quantiles, and health
    events — so CI and dashboards stop scraping the text output.
    """
    from repro.obs.health import severity_counts
    from repro.obs.registry import histogram_quantiles

    spans = sorted(_span_rows(snapshot), key=lambda s: -s["wall"])
    histograms = []
    for stat in sorted(
        (snapshot.get("histograms") or {}).values(), key=lambda h: h["name"]
    ):
        entry = dict(stat)
        entry["quantiles"] = histogram_quantiles(stat)
        entry["mean"] = (
            stat["total"] / stat["count"] if stat.get("count") else 0.0
        )
        histograms.append(entry)
    return {
        "kind": "obs_summary",
        "spans": [dict(s) for s in spans],
        "span_buckets": len(spans),
        "span_calls": sum(int(s.get("count", 0)) for s in spans),
        "wall_seconds": sum(float(s.get("wall", 0.0)) for s in spans),
        "counters": [
            dict(c)
            for c in sorted(
                (snapshot.get("counters") or {}).values(),
                key=lambda c: c["name"],
            )
        ],
        "histograms": histograms,
        "health": {
            "events": [
                dict(e) for e in (snapshot.get("events") or {}).values()
            ],
            "severity_counts": severity_counts(snapshot),
            "dropped": int(snapshot.get("events_dropped", 0) or 0),
        },
    }


def top_json(
    snapshot: Mapping[str, Any], n: int = 10, by: str = "wall"
) -> dict[str, Any]:
    """Machine-readable counterpart of :func:`format_top`."""
    if by not in ("wall", "cpu", "count"):
        raise ValidationError(f"top ordering must be wall/cpu/count, got {by!r}")
    ranked = sorted(_span_rows(snapshot), key=lambda s: -s[by])[: max(int(n), 1)]
    rows = []
    for rank, stat in enumerate(ranked, start=1):
        row = dict(stat)
        row["rank"] = rank
        row["label"] = _span_label(stat)
        row["mean"] = (
            stat["wall"] / stat["count"] if stat.get("count") else 0.0
        )
        rows.append(row)
    return {"kind": "obs_top", "by": by, "spans": rows}


def format_top(snapshot: Mapping[str, Any], n: int = 10, by: str = "wall") -> str:
    """The ``n`` hottest span buckets ordered by ``wall`` | ``cpu`` | ``count``."""
    if by not in ("wall", "cpu", "count"):
        raise ValidationError(f"top ordering must be wall/cpu/count, got {by!r}")
    spans = _span_rows(snapshot)
    if not spans:
        return "spans: none recorded"
    ranked = sorted(spans, key=lambda s: -s[by])[: max(int(n), 1)]
    lines = [f"top {len(ranked)} span bucket(s) by {by}:"]
    for rank, stat in enumerate(ranked, start=1):
        mean = stat["wall"] / stat["count"] if stat["count"] else 0.0
        lines.append(
            f"{rank:>3}. {_span_label(stat)}  "
            f"n={stat['count']} wall={_fmt_seconds(stat['wall'])} "
            f"cpu={_fmt_seconds(stat['cpu'])} mean={_fmt_seconds(mean)}"
        )
    return "\n".join(lines)
