"""Streaming metrics: periodic JSONL time-series snapshots of a live run.

The observability registry (PR 3) aggregates over a run's *lifetime* —
useful after the fact, blind during.  The stream emitter turns it into a
time-series: a daemon thread on the campaign coordinator appends one JSON
line every ``stream_interval`` seconds to

    <store>.stream.jsonl          (or an explicit ``stream_path=``)

Each line is a coordinator-side sample: sequence number, wall time, run
elapsed, telemetry progress counters (done / failed / pending), cache hit
totals, per-severity health counts, and worker liveness flags.  Plot it,
tail it, or feed it to ``repro campaign watch`` for a live ETA.

Opt-in: set ``REPRO_OBS_STREAM=1`` or pass ``stream_path=`` to
``run_campaign`` / ``resume_campaign``.  The emitter never touches the
result store's file handle, appends whole lines only, and swallows +
counts its own exceptions (``campaign.stream_errors``) — a full disk on
the stream path degrades the time-series, never the campaign.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Callable

from repro.obs import spans as _spans

__all__ = [
    "STREAM_VERSION",
    "StreamEmitter",
    "read_stream",
    "stream_path",
    "stream_requested",
]

STREAM_VERSION = 1

_TRUTHY = {"1", "true", "yes", "on"}


def stream_requested() -> bool:
    """Whether streaming is requested via the ``REPRO_OBS_STREAM`` env switch."""
    return os.environ.get("REPRO_OBS_STREAM", "").strip().lower() in _TRUTHY


def stream_path(store_path: str | Path) -> Path:
    """The default stream file for a result store path."""
    return Path(str(store_path) + ".stream.jsonl")


class StreamEmitter:
    """Background thread appending periodic samples as JSONL.

    ``sample`` is a zero-argument callable returning a JSON-serialisable
    dict; the emitter injects ``kind``/``version``/``seq``/``time`` around
    it.  Every failure path (sample raising, serialisation, I/O) is
    swallowed and counted in :attr:`errors` plus the
    ``campaign.stream_errors`` obs counter — the observed run must never
    be harmed by its observer.
    """

    def __init__(
        self,
        path: str | Path,
        sample: Callable[[], dict[str, Any]],
        interval: float = 1.0,
    ) -> None:
        self.path = Path(path)
        self.sample = sample
        self.interval = float(interval)
        self.errors = 0
        self._seq = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-stream", daemon=True
        )

    def _emit(self) -> None:
        try:
            record = dict(self.sample())
            record.setdefault("kind", "stream")
            record.setdefault("version", STREAM_VERSION)
            record["seq"] = self._seq
            record["time"] = time.time()
            line = json.dumps(record, sort_keys=True, default=str)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
            self._seq += 1
        except Exception:
            self.errors += 1
            _spans.add("campaign.stream_errors")

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self._emit()

    def start(self) -> None:
        self._emit()  # t=0 sample so even sub-interval runs leave a timeline
        self._thread.start()

    def stop(self) -> None:
        """Stop the thread and write one final sample (the run's end state)."""
        self._stop.set()
        self._thread.join(timeout=self.interval + 1.0)
        self._emit()


def read_stream(path: str | Path) -> list[dict[str, Any]]:
    """Parse a stream JSONL file, skipping undecodable (torn) lines.

    Mirrors the result store's torn-tail tolerance: a SIGKILL can land
    mid-append, so the reader treats any malformed line as absent.
    """
    path = Path(path)
    records: list[dict[str, Any]] = []
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return records
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict):
            records.append(record)
    return records
