"""Numerical-health diagnostics: severity model, probes, event reports.

The paper's machinery is only as trustworthy as its numerics: a truncated
HTM whose tail does not decay, an SMW closure whose ``1 + lambda(s)``
denominator grazes zero, an ill-conditioned feedback solve, or a NaN that
silently propagates through a campaign all *look* like answers.  This
module is the analysis half of the health layer:

* the **severity model** (``info`` < ``warning`` < ``error``) and the
  default probe thresholds;
* :class:`CheckResult` — a structured check outcome (value + threshold +
  pass flag) that still behaves like the bare float/bool the historical
  check utilities returned;
* :func:`check_finite` — the NaN/Inf/overflow guard used on ``dense_grid``
  outputs;
* snapshot reporting — :func:`events_from_snapshot`,
  :func:`severity_counts`, :func:`worst_events`, :func:`format_health` —
  which back the ``repro obs health`` CLI.

Events are *emitted* through :func:`repro.obs.spans.health_event` (a no-op
while observability is disabled) and *stored* as bounded aggregate buckets
in the registry (:class:`repro.obs.registry.HealthStat`), so they merge
across campaign workers exactly like span deltas.  The probe inventory
lives at the call sites:

====================================  =======================================
probe bucket                          emitted by
====================================  =======================================
``health.rank_one.near_singular``     :mod:`repro.core.rank_one` SMW solves
``health.rank_one.smw_residual``      opt-in per-solve identity check
                                      (``REPRO_OBS_SMW_CHECK=1``)
``health.closedloop.lambda_singular`` ``ClosedLoopHTM.effective_gain``
``health.closedloop.nonfinite``       ``ClosedLoopHTM.effective_gain``
``health.feedback.condition``         ``FeedbackOperator`` batched solve
``health.dense_grid.nonfinite``       ``HarmonicOperator.dense_grid``
``health.truncation.no_convergence``  :func:`choose_truncation_order`
``health.truncation.tail_growth``     :func:`choose_truncation_order`
``health.truncation.error_estimate``  :func:`truncation_error_estimate`
``health.aliasing.periodicity``       :meth:`AliasedSum.is_periodic_check`
====================================  =======================================
"""

from __future__ import annotations

import os
from typing import Any, Mapping

import numpy as np

from repro.obs import spans as _spans

__all__ = [
    "CheckResult",
    "CONDITION_LIMIT",
    "LAMBDA_SINGULAR_TOL",
    "SEVERITIES",
    "SMW_RESIDUAL_TOL",
    "TRUNCATION_WARN_TOL",
    "check_finite",
    "events_from_snapshot",
    "format_health",
    "max_severity",
    "severity_counts",
    "severity_rank",
    "smw_probe_enabled",
    "worst_events",
]

#: Severity levels, mildest first.  Ordering is what ``--fail-on`` gates.
SEVERITIES = ("info", "warning", "error")

_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}

#: ``|1 + lambda(s)|`` below this is treated as a near-singular loop
#: closure: ``s`` sits numerically on a closed-loop pole and every
#: closed-loop transfer divides by ~zero.
LAMBDA_SINGULAR_TOL = 1e-6

#: Condition number of the dense feedback system ``I + G`` above which the
#: batched solve has lost ~all double-precision digits.
CONDITION_LIMIT = 1e12

#: SMW identity residual above which the rank-one closure disagrees with
#: the dense inverse beyond round-off.
SMW_RESIDUAL_TOL = 1e-8

#: Relative truncation-error estimate above which an order is flagged as
#: inadequate for the requested grid.
TRUNCATION_WARN_TOL = 1e-3

_TRUTHY = {"1", "true", "yes", "on"}


def severity_rank(severity: str) -> int:
    """Numeric rank of a severity name (unknown names rank below ``info``)."""
    return _SEVERITY_RANK.get(severity, -1)


def smw_probe_enabled() -> bool:
    """Whether the opt-in per-solve SMW identity probe is on.

    The identity check materialises dense ``(2K+1)^2`` matrices per solve —
    far more work than the rank-one solve it verifies — so it is opt-in via
    ``REPRO_OBS_SMW_CHECK=1`` on top of the usual obs switch.
    """
    return (
        os.environ.get("REPRO_OBS_SMW_CHECK", "").strip().lower() in _TRUTHY
    )


class CheckResult:
    """Structured outcome of one numerical self-check.

    Carries the measured ``value``, the ``threshold`` it was judged
    against, and the ``passed`` flag.  For backward compatibility the
    object still *behaves* like the bare result the historical utilities
    returned: ``float(result)`` / ordering comparisons expose the value
    (``smw_identity_check(...) < 1e-9`` keeps working) and ``bool(result)``
    exposes the pass flag (``assert alias.is_periodic_check(s)`` keeps
    working).
    """

    __slots__ = ("name", "value", "threshold", "passed")

    def __init__(self, name: str, value: float, threshold: float, passed: bool):
        self.name = str(name)
        self.value = float(value)
        self.threshold = float(threshold)
        self.passed = bool(passed)

    # -- legacy float/bool behaviour ------------------------------------------

    def __float__(self) -> float:
        return self.value

    def __bool__(self) -> bool:
        return self.passed

    def _other_value(self, other: Any) -> float:
        if isinstance(other, CheckResult):
            return other.value
        return float(other)

    def __lt__(self, other: Any) -> bool:
        return self.value < self._other_value(other)

    def __le__(self, other: Any) -> bool:
        return self.value <= self._other_value(other)

    def __gt__(self, other: Any) -> bool:
        return self.value > self._other_value(other)

    def __ge__(self, other: Any) -> bool:
        return self.value >= self._other_value(other)

    def __eq__(self, other: Any) -> bool:
        try:
            return self.value == self._other_value(other)
        except (TypeError, ValueError):
            return NotImplemented

    def __hash__(self) -> int:
        return hash((self.name, self.value))

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "value": self.value,
            "threshold": self.threshold,
            "passed": self.passed,
        }

    def __repr__(self) -> str:
        verdict = "pass" if self.passed else "FAIL"
        return (
            f"CheckResult({self.name}: value={self.value:.3g} "
            f"threshold={self.threshold:.3g} {verdict})"
        )


def check_finite(
    name: str,
    values: Any,
    *,
    severity: str = "error",
    message: str = "non-finite values in output",
    **tags,
) -> bool:
    """NaN/Inf guard: emit an event when ``values`` contains non-finite data.

    Returns ``True`` when every element is finite.  The event value is the
    non-finite element *count* (threshold 0), so a campaign summary shows
    how much of a grid was poisoned, not just that something was.
    """
    arr = np.asarray(values)
    if arr.size == 0:
        return True
    bad = int(arr.size - np.count_nonzero(np.isfinite(arr)))
    if bad:
        _spans.health_event(
            name,
            float(bad),
            0.0,
            severity=severity,
            direction="above",
            message=f"{message} ({bad}/{arr.size} elements)",
            **tags,
        )
    return bad == 0


# -- snapshot reporting ------------------------------------------------------------


def events_from_snapshot(
    snapshot: Mapping[str, Any] | None,
) -> list[dict[str, Any]]:
    """Health-event bucket entries of one snapshot (empty list when none)."""
    if not snapshot:
        return []
    return [dict(e) for e in (snapshot.get("events") or {}).values()]


def severity_counts(snapshot: Mapping[str, Any] | None) -> dict[str, int]:
    """Summed event counts per severity (only severities that occurred)."""
    out: dict[str, int] = {}
    for entry in events_from_snapshot(snapshot):
        sev = str(entry.get("severity", "info"))
        out[sev] = out.get(sev, 0) + int(entry.get("count", 0))
    return out


def max_severity(snapshot: Mapping[str, Any] | None) -> str | None:
    """The worst severity present in a snapshot, or ``None``."""
    worst: str | None = None
    for entry in events_from_snapshot(snapshot):
        sev = str(entry.get("severity", "info"))
        if worst is None or severity_rank(sev) > severity_rank(worst):
            worst = sev
    return worst


def _badness(entry: Mapping[str, Any]) -> float:
    """How far past its threshold a bucket's worst observation sits.

    Normalised so larger is worse regardless of direction; used only for
    ranking, never reported.
    """
    value = float(entry.get("worst", 0.0))
    threshold = float(entry.get("threshold", 0.0))
    if entry.get("direction") == "below":
        if value <= 0.0:
            return np.inf
        return threshold / value
    if threshold <= 0.0:
        return value
    return value / threshold


def worst_events(
    snapshot: Mapping[str, Any] | None,
    n: int = 10,
    min_severity: str = "info",
) -> list[dict[str, Any]]:
    """The ``n`` worst event buckets at or above ``min_severity``.

    Ordered severity-first (errors before warnings), then by how far past
    the threshold the worst observation landed.
    """
    floor = severity_rank(min_severity)
    ranked = sorted(
        (
            e
            for e in events_from_snapshot(snapshot)
            if severity_rank(str(e.get("severity", "info"))) >= floor
        ),
        key=lambda e: (
            -severity_rank(str(e.get("severity", "info"))),
            -_badness(e),
        ),
    )
    return ranked[: max(int(n), 1)]


def _event_label(entry: Mapping[str, Any]) -> str:
    tags = entry.get("tags") or {}
    name = str(entry.get("name", "?"))
    if not tags:
        return name
    inner = ",".join(f"{k}={tags[k]}" for k in sorted(tags))
    return f"{name}[{inner}]"


def format_health(
    snapshot: Mapping[str, Any] | None,
    n: int = 10,
    min_severity: str = "info",
) -> str:
    """Human-readable health report of one snapshot (the CLI body)."""
    events = events_from_snapshot(snapshot)
    dropped = int((snapshot or {}).get("events_dropped", 0) or 0)
    if not events and not dropped:
        return "health: no events recorded"
    counts = severity_counts(snapshot)
    parts = [
        f"{counts[sev]} {sev}" for sev in reversed(SEVERITIES) if sev in counts
    ]
    lines = [
        f"health: {sum(counts.values())} event(s) in {len(events)} bucket(s)"
        + (f" — {', '.join(parts)}" if parts else "")
        + (f" ({dropped} dropped past the bucket cap)" if dropped else "")
    ]
    shown = worst_events(snapshot, n=n, min_severity=min_severity)
    if not shown:
        lines.append(f"  (no events at severity >= {min_severity})")
        return "\n".join(lines)
    width = min(max(len(_event_label(e)) for e in shown), 56)
    for entry in shown:
        sev = str(entry.get("severity", "info")).upper()
        relation = "<" if entry.get("direction") == "below" else ">"
        line = (
            f"  {sev:>7}  {_event_label(entry):<{width}}  "
            f"n={int(entry.get('count', 0)):<6d} "
            f"worst={float(entry.get('worst', 0.0)):.3g} "
            f"{relation} {float(entry.get('threshold', 0.0)):.3g}"
        )
        message = str(entry.get("message") or "")
        if message:
            line += f"  — {message}"
        lines.append(line)
    return "\n".join(lines)
