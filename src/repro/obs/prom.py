"""Prometheus text-format exposition of the aggregate obs registry.

Renders a registry snapshot (``repro.obs.snapshot()`` / merged snapshots)
into the Prometheus text exposition format, so ``GET /v1/metricsz`` serves
exactly the numbers ``repro obs summary`` prints:

- span stats -> ``repro_span_seconds_total`` / ``repro_span_calls_total``
  counters labelled by span path (and tags),
- counters -> ``repro_<name>_total``,
- decade histograms -> native Prometheus histograms with *cumulative*
  ``le`` buckets at the decade upper bounds (a decade bucket ``k`` covers
  ``[10^k, 10^(k+1))`` so its cumulative bound is ``10^(k+1)``),
- health events -> ``repro_health_events_total`` labelled by event name,
  severity, and direction.

Everything is pure string formatting over an existing snapshot dict — no
registry locks are held and nothing here runs unless a scraper asks.
"""
from __future__ import annotations

import math
import re
from typing import Any, Iterable, Mapping

__all__ = ["to_prometheus", "sanitize_metric_name", "format_sample"]

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """Coerce an obs name (dots, slashes, brackets) into a legal metric name."""
    cleaned = _NAME_BAD_CHARS.sub("_", name)
    if not cleaned or not _NAME_OK.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _escape_label(value: Any) -> str:
    text = str(value)
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: Mapping[str, Any]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{sanitize_metric_name(str(k))}="{_escape_label(v)}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def format_sample(name: str, labels: Mapping[str, Any], value: float) -> str:
    """One exposition line: ``name{labels} value``."""
    if isinstance(value, float):
        if math.isinf(value):
            rendered = "+Inf" if value > 0 else "-Inf"
        elif math.isnan(value):
            rendered = "NaN"
        elif value == int(value) and abs(value) < 1e15:
            rendered = str(int(value))
        else:
            rendered = repr(value)
    else:
        rendered = str(value)
    return f"{sanitize_metric_name(name)}{_render_labels(labels)} {rendered}"


def _split_key(key: str) -> tuple[str, dict[str, str]]:
    """Invert ``registry.bucket_key``: ``name[k=v,...]`` -> (name, labels)."""
    if "[" not in key or not key.endswith("]"):
        return key, {}
    name, _, raw = key.partition("[")
    labels: dict[str, str] = {}
    for pair in raw[:-1].split(","):
        if "=" in pair:
            k, _, v = pair.partition("=")
            labels[k] = v
    return name, labels


def _decade_upper(decade: int) -> str:
    """Cumulative ``le`` bound for decade bucket ``k``: 10^(k+1)."""
    return f"{10.0 ** (decade + 1):g}"


def _histogram_lines(key: str, entry: Mapping[str, Any]) -> Iterable[str]:
    name, labels = _split_key(key)
    metric = "repro_" + sanitize_metric_name(name)
    yield f"# TYPE {metric} histogram"
    buckets: dict[int, int] = {}
    for raw_decade, count in (entry.get("buckets") or {}).items():
        try:
            buckets[int(raw_decade)] = int(count)
        except (TypeError, ValueError):
            continue
    cumulative = 0
    for decade in sorted(buckets):
        cumulative += buckets[decade]
        yield format_sample(
            metric + "_bucket",
            {**labels, "le": _decade_upper(decade)},
            float(cumulative),
        )
    total_count = int(entry.get("count", cumulative))
    yield format_sample(metric + "_bucket", {**labels, "le": "+Inf"}, float(total_count))
    yield format_sample(metric + "_sum", labels, float(entry.get("total", 0.0)))
    yield format_sample(metric + "_count", labels, float(total_count))


def to_prometheus(snapshot: Mapping[str, Any] | None) -> str:
    """Render a registry snapshot as Prometheus text exposition format."""
    lines: list[str] = []
    snapshot = snapshot or {}

    spans = snapshot.get("spans") or {}
    if spans:
        lines.append("# HELP repro_span_seconds_total Cumulative wall seconds per span path.")
        lines.append("# TYPE repro_span_seconds_total counter")
        for key in sorted(spans):
            name, labels = _split_key(key)
            lines.append(
                format_sample(
                    "repro_span_seconds_total",
                    {**labels, "path": name},
                    float(spans[key].get("wall", 0.0)),
                )
            )
        lines.append("# HELP repro_span_calls_total Completed span count per span path.")
        lines.append("# TYPE repro_span_calls_total counter")
        for key in sorted(spans):
            name, labels = _split_key(key)
            lines.append(
                format_sample(
                    "repro_span_calls_total",
                    {**labels, "path": name},
                    float(spans[key].get("count", 0)),
                )
            )

    counters = snapshot.get("counters") or {}
    for key in sorted(counters):
        name, labels = _split_key(key)
        metric = "repro_" + sanitize_metric_name(name) + "_total"
        lines.append(f"# TYPE {sanitize_metric_name(metric)} counter")
        lines.append(format_sample(metric, labels, float(counters[key].get("value", 0.0))))

    for key in sorted(snapshot.get("histograms") or {}):
        lines.extend(_histogram_lines(key, snapshot["histograms"][key]))

    events = snapshot.get("events") or {}
    if events:
        lines.append("# HELP repro_health_events_total Health events by name and severity.")
        lines.append("# TYPE repro_health_events_total counter")
        for key in sorted(events):
            entry = events[key]
            name, labels = _split_key(key)
            labels = {
                **labels,
                "event": name,
                "severity": str(entry.get("severity", "warning")),
                "direction": str(entry.get("direction", "high")),
            }
            lines.append(
                format_sample(
                    "repro_health_events_total", labels, float(entry.get("count", 0))
                )
            )

    dropped = snapshot.get("events_dropped", 0)
    lines.append("# TYPE repro_health_events_dropped_total counter")
    lines.append(format_sample("repro_health_events_dropped_total", {}, float(dropped or 0)))

    return "\n".join(lines) + "\n"
