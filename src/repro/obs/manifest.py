"""Run manifests: one JSON file capturing everything needed to trust a run.

A campaign store records *what* was computed; the manifest records *under
which conditions*: the spec fingerprint, task name, package version, git
SHA (when the working tree is a git checkout), python/numpy versions,
platform string, the observability switches that were live, and the
execution-policy knobs.  Every ``run_campaign``/``resume_campaign`` writes

    <store>.manifest.json

atomically next to the store.  On resume the previous manifest is checked
against the resuming environment — any drift (different spec hash, task,
package or python version) is surfaced as telemetry notes and
``campaign.manifest_mismatch`` warning health events rather than an
error: resuming on a patched tree is sometimes exactly what you want, but
it should never be silent.  ``repro campaign status`` and ``repro
campaign watch`` surface the manifest alongside progress.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import platform
import subprocess
import time
from pathlib import Path
from typing import Any

from repro.obs import resources as _resources
from repro.obs import spans as _spans
from repro.obs import stream as _stream

__all__ = [
    "MANIFEST_VERSION",
    "build_manifest",
    "check_manifest",
    "environment_info",
    "load_manifest",
    "manifest_path",
    "spec_fingerprint",
    "write_manifest",
]

MANIFEST_VERSION = 1

#: Manifest keys compared on resume (mismatch → warning, never an error).
CHECKED_KEYS = ("spec_hash", "task", "points", "package_version", "python")


def manifest_path(store_path: str | Path) -> Path:
    """The manifest file for a result store path."""
    return Path(str(store_path) + ".manifest.json")


def spec_fingerprint(spec: Any) -> str:
    """Deterministic blake2b fingerprint of a campaign spec.

    Uses the same canonical-JSON serialisation as the store header when
    available; callable (unregistered) tasks fall back to hashing the
    name/task/defaults/space structure so a fingerprint always exists.
    """
    try:
        payload = spec.to_json()
    except Exception:
        payload = {
            "name": getattr(spec, "name", None),
            "task": getattr(spec, "task_name", None),
            "defaults": getattr(spec, "defaults", None),
            "points": len(spec),
        }
    if not isinstance(payload, str):
        payload = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.blake2b(payload.encode("utf-8"), digest_size=8).hexdigest()


def _git_sha() -> str | None:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except Exception:
        return None
    if proc.returncode != 0:
        return None
    sha = proc.stdout.strip()
    return sha or None


def _package_version() -> str | None:
    try:
        from repro import __version__

        return __version__
    except Exception:
        return None


def _numpy_version() -> str | None:
    try:
        import numpy

        return numpy.__version__
    except Exception:
        return None


def _backend_name() -> str | None:
    """The compute backend this run would resolve to (after any fallback).

    Lazily imported and defensive: the manifest must never fail to build
    because the core package is in a broken state.
    """
    try:
        from repro.core.backend import default_backend_name

        return default_backend_name()
    except Exception:
        return None


def environment_info() -> dict[str, Any]:
    """The environment half of a manifest: versions, platform, obs switches.

    Shared between campaign run manifests and the serving layer's server
    manifest — the same provenance questions apply to both.
    """
    return {
        "package_version": _package_version(),
        "git_sha": _git_sha(),
        "python": platform.python_version(),
        "numpy": _numpy_version(),
        "backend": _backend_name(),
        "platform": platform.platform(),
        "obs": {
            "enabled": _spans.enabled(),
            "stream": _stream.stream_requested(),
            "mem": _resources.tracemalloc_requested(),
        },
    }


def build_manifest(spec: Any, policy: Any = None) -> dict[str, Any]:
    """Capture the provenance of a run about to execute ``spec``."""
    manifest: dict[str, Any] = {
        "kind": "campaign_manifest",
        "version": MANIFEST_VERSION,
        "created": time.time(),
        "runs": 1,
        "campaign": getattr(spec, "name", None),
        "task": getattr(spec, "task_name", None) or "<callable>",
        "points": len(spec),
        "spec_hash": spec_fingerprint(spec),
        **environment_info(),
    }
    if policy is not None and dataclasses.is_dataclass(policy):
        manifest["policy"] = dataclasses.asdict(policy)
    return manifest


def write_manifest(path: str | Path, manifest: dict[str, Any]) -> Path:
    """Atomically write ``manifest`` to ``path`` (temp file + replace)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name("." + path.name + ".tmp")
    tmp.write_text(
        json.dumps(manifest, indent=2, sort_keys=True, default=str) + "\n",
        encoding="utf-8",
    )
    os.replace(tmp, path)
    return path


def load_manifest(path: str | Path) -> dict[str, Any] | None:
    """Load a manifest, returning ``None`` when missing or unparseable.

    Manifests are written atomically, so an unparseable file means someone
    else wrote it — the caller treats that the same as absent and rewrites.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict) or data.get("kind") != "campaign_manifest":
        return None
    return data


def check_manifest(previous: dict[str, Any], current: dict[str, Any]) -> list[str]:
    """Compare a stored manifest against the resuming run's manifest.

    Returns human-readable mismatch strings for the :data:`CHECKED_KEYS`
    that differ (missing-on-either-side counts as a match — old manifests
    stay resumable as the schema grows).
    """
    mismatches: list[str] = []
    for key in CHECKED_KEYS:
        old = previous.get(key)
        new = current.get(key)
        if old is None or new is None:
            continue
        if old != new:
            mismatches.append(f"{key}: stored {old!r}, resuming with {new!r}")
    return mismatches
