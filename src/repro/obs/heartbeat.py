"""Worker heartbeats: live per-process liveness files next to the ResultStore.

A campaign's JSONL store only shows *completed* points; while a worker is
inside a 40-minute stability cell there is no externally visible signal
distinguishing "still crunching" from "wedged in a BLAS call".  Heartbeats
close that gap.  Each worker process runs one daemon emitter thread that
periodically rewrites a single small JSON file

    <store>.heartbeats/<hostname>-<pid>.json

keyed by the process's *worker id* — hostname plus pid — so workers on
different hosts sharing one store (the lease scheduler's multi-host mode)
can never collide even when their pids coincide.  Each beat carries the
worker id, host, pid, current phase (``point`` / ``idle`` / ``stopped``), the point
id it is working on, how long that point has been running, how many points
it has finished, its instantaneous RSS, and — when observability is on —
its registry counter totals.  Writes are atomic (temp file + ``os.replace``)
so readers (the coordinator's liveness monitor and ``repro campaign
watch``) never see a torn beat, and the files live *outside* the store, so
they can never corrupt the append-only result log.

The emitter is deliberately boring: pure stdlib, one thread, exceptions
swallowed and counted (``campaign.heartbeat_errors``), and a no-op when
never started.  Coordinator-side analysis (stall/straggler classification)
lives in ``repro.campaign.executor``.
"""

from __future__ import annotations

import json
import os
import re
import socket
import threading
import time
from pathlib import Path
from typing import Any

from repro.obs import resources as _resources
from repro.obs import spans as _spans

__all__ = [
    "HEARTBEAT_VERSION",
    "beat_age",
    "beat_worker",
    "ensure_emitter",
    "heartbeat_dir",
    "host_name",
    "point_finished",
    "point_started",
    "read_heartbeats",
    "stop_emitter",
    "worker_id",
]

HEARTBEAT_VERSION = 2


def heartbeat_dir(store_path: str | Path) -> Path:
    """The per-run heartbeat directory for a result store path."""
    return Path(str(store_path) + ".heartbeats")


_HOST_SANITIZE = re.compile(r"[^A-Za-z0-9._-]+")


def host_name() -> str:
    """This machine's hostname, sanitized for use inside filenames."""
    raw = socket.gethostname() or "localhost"
    clean = _HOST_SANITIZE.sub("-", raw).strip("-.")
    return clean or "localhost"


def worker_id(pid: int | None = None, host: str | None = None) -> str:
    """Globally unique worker identity: ``<hostname>-<pid>``.

    Bare pids collide across hosts sharing one store; hostname+pid cannot
    (two workers on one host have distinct pids, two hosts have distinct
    names).  Used as the heartbeat filename, the shard-store name, the
    lease owner, and the liveness-monitor key.
    """
    return f"{host or host_name()}-{os.getpid() if pid is None else int(pid)}"


def beat_worker(beat: dict[str, Any]) -> str:
    """The worker id a beat belongs to (reconstructed for v1 beats)."""
    worker = beat.get("worker")
    if isinstance(worker, str) and worker:
        return worker
    return worker_id(pid=int(beat.get("pid", 0)), host=beat.get("host") or "localhost")


# ---------------------------------------------------------------------------
# Per-process worker state (what the emitter samples)
# ---------------------------------------------------------------------------

_lock = threading.Lock()
_state: dict[str, Any] = {"phase": "idle", "point_id": None, "started": None, "done": 0}
_emitter: _Emitter | None = None


def point_started(point_id: str) -> None:
    """Mark this process as working on ``point_id`` (called by the executor)."""
    with _lock:
        _state["phase"] = "point"
        _state["point_id"] = point_id
        _state["started"] = time.time()


def point_finished() -> None:
    """Mark the current point as done and return to the idle phase."""
    with _lock:
        _state["phase"] = "idle"
        _state["point_id"] = None
        _state["started"] = None
        _state["done"] = int(_state["done"]) + 1


def _sample(phase: str | None = None) -> dict[str, Any]:
    now = time.time()
    with _lock:
        state = dict(_state)
    host = host_name()
    beat: dict[str, Any] = {
        "kind": "heartbeat",
        "version": HEARTBEAT_VERSION,
        "pid": os.getpid(),
        "host": host,
        "worker": worker_id(host=host),
        "time": now,
        "phase": phase if phase is not None else state["phase"],
        "point_id": state["point_id"],
        "points_done": state["done"],
        "rss_bytes": _resources.current_rss_bytes(),
    }
    if state["started"] is not None:
        beat["point_elapsed"] = max(now - float(state["started"]), 0.0)
    if _spans.enabled():
        snap = _spans.snapshot()
        counters = {
            bucket["name"]: bucket["value"]
            for bucket in snap.get("counters", {}).values()
        }
        if counters:
            beat["counters"] = counters
    return beat


def _write_atomic(directory: Path, beat: dict[str, Any]) -> None:
    name = beat.get("worker") or str(beat["pid"])
    tmp = directory / f".{name}.tmp"
    tmp.write_text(json.dumps(beat, sort_keys=True), encoding="utf-8")
    os.replace(tmp, directory / f"{name}.json")


class _Emitter:
    """Daemon thread rewriting this process's beat file every ``interval`` s."""

    def __init__(self, directory: Path, interval: float) -> None:
        self.directory = Path(directory)
        self.interval = float(interval)
        self.errors = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-heartbeat", daemon=True
        )

    def start(self) -> None:
        self._beat()  # immediate first beat so the coordinator sees us early
        self._thread.start()

    def _beat(self, phase: str | None = None) -> None:
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            _write_atomic(self.directory, _sample(phase))
        except Exception:
            self.errors += 1
            _spans.add("campaign.heartbeat_errors")

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self._beat()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=self.interval + 1.0)
        self._beat(phase="stopped")


def ensure_emitter(directory: str | Path, interval: float) -> None:
    """Start this process's heartbeat emitter (idempotent per directory).

    Called from the pool initializer in every worker and from the
    coordinator on the serial path.  A second call with the same directory
    is a no-op; a different directory stops the old emitter first.
    """
    global _emitter
    directory = Path(directory)
    with _lock:
        current = _emitter
    if current is not None:
        alive = current._thread.is_alive()
        if alive and current.directory == directory:
            return
        # A forked worker inherits the parent's emitter object but not its
        # thread; a dead emitter is simply replaced (never "stopped", which
        # would write a misleading final beat under the child's pid).
        if alive:
            current.stop()
    emitter = _Emitter(directory, interval)
    with _lock:
        _emitter = emitter
    emitter.start()


def stop_emitter() -> int:
    """Stop this process's emitter (writing a final ``stopped`` beat).

    Returns the emitter's swallowed-error count (0 when never started).
    """
    global _emitter
    with _lock:
        emitter = _emitter
        _emitter = None
    if emitter is None:
        return 0
    emitter.stop()
    return emitter.errors


# ---------------------------------------------------------------------------
# Readers (coordinator + watch dashboard)
# ---------------------------------------------------------------------------


def read_heartbeats(directory: str | Path) -> list[dict[str, Any]]:
    """All parseable beats in ``directory``, sorted by (host, pid).

    Tolerant by construction: a missing directory yields ``[]``, and a
    file that cannot be parsed (e.g. mid-replace on a non-atomic
    filesystem) is skipped rather than raised on.
    """
    directory = Path(directory)
    beats: list[dict[str, Any]] = []
    try:
        paths = sorted(directory.glob("*.json"))
    except OSError:
        return beats
    for path in paths:
        try:
            beat = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue
        if isinstance(beat, dict) and beat.get("kind") == "heartbeat":
            beats.append(beat)
    return sorted(beats, key=lambda b: (str(b.get("host", "")), b.get("pid", 0)))


def beat_age(beat: dict[str, Any], now: float | None = None) -> float:
    """Seconds since the beat was written (clamped at 0)."""
    if now is None:
        now = time.time()
    return max(now - float(beat.get("time", now)), 0.0)
