"""Distributed trace context threaded through serve, campaigns, and lease workers.

The model follows the W3C Trace Context recommendation in miniature: a
``traceparent`` header of the form ``00-<32 hex trace_id>-<16 hex span_id>-<2
hex flags>`` names one position in a trace tree.  ``repro.serve`` accepts and
emits the header, the campaign executor stamps the context into the store
manifest, and pool/lease workers inherit it through the task envelope (pool
initargs) or the frozen lease plan, so every point record, stream sample, and
health event produced on any host can be joined back to the originating
request by ``trace_id``.

Span *events* (as opposed to the aggregate-only :mod:`repro.obs.registry`)
are appended to per-worker JSONL shards under ``<store>.trace/`` — the same
sibling-directory convention as ``<store>.shards/`` and
``<store>.heartbeats/``.  Each event is written with a single ``write()`` of
one full line so concurrent readers only ever observe a torn *tail*, which
:func:`read_trace_events` tolerates.

Everything here honours the PR-3 invariant: when no sink is configured and no
context is active, every recording entry point is a cheap early return — no
allocation, no I/O, no time syscalls.

The collector (:func:`build_chrome_trace`) merges trace shards, a serve-side
span log, heartbeats, and stream samples into one Chrome Trace Event Format
document with one process lane per host and one thread lane per worker, plus
a critical-path summary splitting wall time into queue wait, evaluation,
spill, and lease-reclaim buckets.
"""
from __future__ import annotations

import contextlib
import json
import os
import re
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping, Sequence

__all__ = [
    "TraceContext",
    "parse_traceparent",
    "format_traceparent",
    "new_trace_id",
    "new_span_id",
    "new_context",
    "current",
    "activate",
    "set_campaign",
    "set_profile_traces",
    "campaign_context",
    "context_or_campaign",
    "trace_dir",
    "configure_sink",
    "sink_configured",
    "close_sink",
    "record_event",
    "read_trace_events",
    "load_store_events",
    "build_chrome_trace",
    "critical_path_summary",
    "format_critical_path",
    "CRITICAL_PATH_BUCKETS",
]

TRACEPARENT_VERSION = "00"

_TRACEPARENT_RE = re.compile(
    r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$"
)


@dataclass(frozen=True)
class TraceContext:
    """One position in a trace tree (immutable)."""

    trace_id: str
    span_id: str
    parent_id: str | None = None
    flags: str = "01"

    def traceparent(self) -> str:
        return f"{TRACEPARENT_VERSION}-{self.trace_id}-{self.span_id}-{self.flags}"

    def child(self) -> "TraceContext":
        """A fresh span under this one, same trace."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=new_span_id(),
            parent_id=self.span_id,
            flags=self.flags,
        )

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"trace_id": self.trace_id, "span_id": self.span_id}
        if self.parent_id:
            out["parent_id"] = self.parent_id
        if self.flags != "01":
            out["flags"] = self.flags
        return out

    @staticmethod
    def from_dict(data: Any) -> "TraceContext | None":
        """Rebuild from a mapping; returns None on anything malformed."""
        if not isinstance(data, Mapping):
            return None
        trace_id = data.get("trace_id")
        span_id = data.get("span_id")
        if not isinstance(trace_id, str) or not isinstance(span_id, str):
            return None
        if len(trace_id) != 32 or len(span_id) != 16:
            return None
        parent = data.get("parent_id")
        if parent is not None and not isinstance(parent, str):
            parent = None
        flags = data.get("flags", "01")
        if not isinstance(flags, str) or len(flags) != 2:
            flags = "01"
        return TraceContext(trace_id=trace_id, span_id=span_id, parent_id=parent, flags=flags)


def new_trace_id() -> str:
    return os.urandom(16).hex()


def new_span_id() -> str:
    return os.urandom(8).hex()


def new_context() -> TraceContext:
    """A fresh root context (no parent)."""
    return TraceContext(trace_id=new_trace_id(), span_id=new_span_id())


def parse_traceparent(header: str | None) -> TraceContext | None:
    """Parse a ``traceparent`` header; None on anything non-conforming.

    The all-zero trace and span ids are invalid per the W3C spec and are
    rejected so a buggy client cannot collapse unrelated requests into one
    trace.
    """
    if not header:
        return None
    match = _TRACEPARENT_RE.match(header.strip().lower())
    if match is None:
        return None
    version, trace_id, span_id, flags = match.groups()
    if version == "ff":
        return None
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return TraceContext(trace_id=trace_id, span_id=span_id, flags=flags)


def format_traceparent(ctx: TraceContext) -> str:
    return ctx.traceparent()


# ---------------------------------------------------------------------------
# Context propagation: a thread-local "current" stack plus one process-wide
# campaign context that pool/lease workers inherit from the task envelope.
# ---------------------------------------------------------------------------

_local = threading.local()
_campaign_ctx: TraceContext | None = None

# Installed by repro.obs.profile while a sampler is running: a plain
# {thread_id: trace_id} dict readable cross-thread (the thread-local
# stack is not).  ``None`` keeps activate() at one extra global read.
_profile_traces: dict[int, str] | None = None


def set_profile_traces(registry: dict[int, str] | None) -> None:
    """Install (or remove) the profiler's cross-thread trace-id registry."""
    global _profile_traces
    _profile_traces = registry


def current() -> TraceContext | None:
    stack = getattr(_local, "stack", None)
    if stack:
        return stack[-1]
    return None


@contextlib.contextmanager
def activate(ctx: TraceContext | None) -> Iterator[TraceContext | None]:
    """Make ``ctx`` the thread's current context for the ``with`` body."""
    if ctx is None:
        yield None
        return
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    stack.append(ctx)
    profiled = _profile_traces
    if profiled is not None:
        profiled[threading.get_ident()] = ctx.trace_id
    try:
        yield ctx
    finally:
        if stack and stack[-1] is ctx:
            stack.pop()
        profiled = _profile_traces
        if profiled is not None:
            tid = threading.get_ident()
            if stack:
                profiled[tid] = stack[-1].trace_id
            else:
                profiled.pop(tid, None)


def set_campaign(ctx: TraceContext | None) -> None:
    """Install the campaign-root context for this process (workers)."""
    global _campaign_ctx
    _campaign_ctx = ctx


def campaign_context() -> TraceContext | None:
    return _campaign_ctx


def context_or_campaign() -> TraceContext | None:
    """The thread's current context, falling back to the campaign root."""
    ctx = current()
    if ctx is not None:
        return ctx
    return _campaign_ctx


# ---------------------------------------------------------------------------
# Span-event sink: one JSONL shard per worker under <store>.trace/ (or an
# explicit file for the serve process).  Free when not configured.
# ---------------------------------------------------------------------------

_sink_path: Path | None = None
_sink_lock = threading.Lock()
_sink_meta: dict[str, Any] = {}

TRACE_EVENT_KIND = "trace_span"


def trace_dir(store_path: str | Path) -> Path:
    """Sibling directory holding per-worker trace-event shards."""
    store = Path(store_path)
    return store.parent / (store.name + ".trace")


def configure_sink(target: str | Path, worker: str | None = None) -> Path:
    """Point span-event recording at ``target``.

    ``target`` may be a directory (a per-worker shard ``<worker>.jsonl`` is
    created inside it) or an explicit ``.jsonl``/``.json`` file path (the
    serve process logs to a single file).  Returns the resolved file path.
    """
    global _sink_path
    target = Path(target)
    if target.suffix in (".jsonl", ".json"):
        path = target
        path.parent.mkdir(parents=True, exist_ok=True)
    else:
        target.mkdir(parents=True, exist_ok=True)
        if worker is None:
            from . import heartbeat as _hb

            worker = _hb.worker_id()
        path = target / f"{worker}.jsonl"
    with _sink_lock:
        _sink_path = path
        _sink_meta.clear()
        _sink_meta.update(_worker_identity(worker))
    return path


def _worker_identity(worker: str | None) -> dict[str, Any]:
    from . import heartbeat as _hb

    return {
        "host": _hb.host_name(),
        "worker": worker or _hb.worker_id(),
        "pid": os.getpid(),
    }


def sink_configured() -> bool:
    return _sink_path is not None


def close_sink() -> None:
    global _sink_path
    with _sink_lock:
        _sink_path = None
        _sink_meta.clear()


def record_event(
    name: str,
    ctx: TraceContext | None,
    start: float,
    end: float,
    *,
    kind: str = "span",
    links: Sequence[Mapping[str, Any]] | None = None,
    **attrs: Any,
) -> None:
    """Append one span event to the configured sink.

    No-op (single attribute read) when no sink is configured or no context is
    supplied, which keeps untraced hot paths free.  Write failures are
    swallowed — tracing must never take down the work it observes.
    """
    path = _sink_path
    if path is None or ctx is None:
        return
    event: dict[str, Any] = {
        "kind": TRACE_EVENT_KIND,
        "event": kind,
        "name": name,
        "trace_id": ctx.trace_id,
        "span_id": ctx.span_id,
        "start": start,
        "end": end,
    }
    if ctx.parent_id:
        event["parent_id"] = ctx.parent_id
    event.update(_sink_meta)
    if links:
        event["links"] = [dict(link) for link in links]
    if attrs:
        event["attrs"] = attrs
    line = json.dumps(event, sort_keys=True, default=str) + "\n"
    try:
        with _sink_lock:
            with open(path, "a", encoding="utf-8") as handle:
                handle.write(line)
    except OSError:
        pass


# ---------------------------------------------------------------------------
# Readers (torn-tail tolerant, like obs.stream / the result store).
# ---------------------------------------------------------------------------


def read_trace_events(path: str | Path) -> list[dict[str, Any]]:
    """Read one trace-event shard; unparsable lines are skipped.

    A concurrent writer appends whole lines with single writes, so the only
    expected corruption is a torn final line, but every line is defensively
    parsed so one bad shard cannot block a cross-host merge.
    """
    path = Path(path)
    events: list[dict[str, Any]] = []
    try:
        raw = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError):
        return events
    for line in raw.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(event, dict) and event.get("kind") == TRACE_EVENT_KIND:
            events.append(event)
    return events


def load_store_events(store_path: str | Path) -> list[dict[str, Any]]:
    """Merge every per-worker trace shard for a store, ordered by start."""
    directory = trace_dir(store_path)
    events: list[dict[str, Any]] = []
    if directory.is_dir():
        for shard in sorted(directory.glob("*.jsonl")):
            events.extend(read_trace_events(shard))
    events.sort(key=lambda ev: (ev.get("start", 0.0), ev.get("name", "")))
    return events


# ---------------------------------------------------------------------------
# Collector: merged Chrome trace with per-host/per-worker lanes.
# ---------------------------------------------------------------------------

#: Maps span-event names onto critical-path buckets.  ``queue`` is time spent
#: waiting (batch window, idle lease workers), ``evaluate`` is HTM work,
#: ``spill`` is the job handoff to a campaign store, ``lease_reclaim`` is
#: distributed-coordination overhead.
CRITICAL_PATH_BUCKETS: dict[str, tuple[str, ...]] = {
    "queue": ("serve.batch.wait", "lease.idle"),
    "evaluate": (
        "campaign.point",
        "campaign.point_batch",
        "serve.request",
        "serve.batch",
    ),
    "spill": ("serve.job.spill",),
    "lease_reclaim": ("lease.reclaim", "lease.claim"),
}


def _bucket_for(name: str) -> str | None:
    base = name.split("/", 1)[0]
    for bucket, prefixes in CRITICAL_PATH_BUCKETS.items():
        if base in prefixes:
            return bucket
    return None


def critical_path_summary(events: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Aggregate span durations into queue/evaluate/spill/lease_reclaim.

    Durations within one bucket are summed across hosts (total work), and the
    per-bucket share is reported against the summed total so the dominant
    cost of a distributed run is visible at a glance.
    """
    totals: dict[str, float] = {bucket: 0.0 for bucket in CRITICAL_PATH_BUCKETS}
    counts: dict[str, int] = {bucket: 0 for bucket in CRITICAL_PATH_BUCKETS}
    span_min: float | None = None
    span_max: float | None = None
    for event in events:
        name = str(event.get("name", ""))
        start = event.get("start")
        end = event.get("end")
        if not isinstance(start, (int, float)) or not isinstance(end, (int, float)):
            continue
        if span_min is None or start < span_min:
            span_min = float(start)
        if span_max is None or end > span_max:
            span_max = float(end)
        bucket = _bucket_for(name)
        if bucket is None:
            continue
        totals[bucket] += max(0.0, float(end) - float(start))
        counts[bucket] += 1
    total = sum(totals.values())
    shares = {
        bucket: (totals[bucket] / total if total > 0 else 0.0)
        for bucket in totals
    }
    return {
        "buckets": {
            bucket: {
                "seconds": round(totals[bucket], 6),
                "events": counts[bucket],
                "share": round(shares[bucket], 4),
            }
            for bucket in totals
        },
        "busy_seconds": round(total, 6),
        "wall_seconds": round(
            (span_max - span_min) if span_min is not None and span_max is not None else 0.0,
            6,
        ),
    }


def format_critical_path(summary: Mapping[str, Any]) -> str:
    lines = ["critical path:"]
    buckets = summary.get("buckets", {})
    order = list(CRITICAL_PATH_BUCKETS) + [
        b for b in buckets if b not in CRITICAL_PATH_BUCKETS
    ]
    for bucket in order:
        entry = buckets.get(bucket)
        if not entry:
            continue
        lines.append(
            f"  {bucket:<14} {entry['seconds']:>10.4f}s"
            f"  {entry['share'] * 100:5.1f}%  ({entry['events']} events)"
        )
    lines.append(
        f"  {'busy total':<14} {summary.get('busy_seconds', 0.0):>10.4f}s"
        f"   wall {summary.get('wall_seconds', 0.0):.4f}s"
    )
    return "\n".join(lines)


def _collect_heartbeat_events(store_path: Path) -> list[dict[str, Any]]:
    """Heartbeat files become instant events on the owning worker's lane."""
    from . import heartbeat as _hb

    beats = _hb.read_heartbeats(_hb.heartbeat_dir(store_path))
    events = []
    for beat in beats:
        t = beat.get("time")
        if not isinstance(t, (int, float)):
            continue
        events.append(
            {
                "kind": TRACE_EVENT_KIND,
                "event": "instant",
                "name": f"heartbeat/{beat.get('phase', '?')}",
                "host": beat.get("host", "?"),
                "worker": beat.get("worker", "?"),
                "pid": beat.get("pid", 0),
                "start": float(t),
                "end": float(t),
                "attrs": {
                    "phase": beat.get("phase"),
                    "done": beat.get("done"),
                    "failed": beat.get("failed"),
                },
            }
        )
    return events


def _collect_stream_counters(store_path: Path) -> list[dict[str, Any]]:
    """Stream samples become Chrome counter events (progress over time)."""
    from . import stream as _stream

    path = _stream.stream_path(store_path)
    if not Path(path).exists():
        return []
    counters = []
    for sample in _stream.read_stream(path):
        t = sample.get("time")
        if not isinstance(t, (int, float)):
            continue
        counters.append(
            {
                "kind": TRACE_EVENT_KIND,
                "event": "counter",
                "name": "campaign.progress",
                "host": sample.get("host", "?"),
                "worker": sample.get("worker", sample.get("host", "?")),
                "pid": sample.get("pid", 0),
                "start": float(t),
                "end": float(t),
                "attrs": {
                    "done": sample.get("done", 0),
                    "failed": sample.get("failed", 0),
                },
            }
        )
    return counters


def build_chrome_trace(
    store_path: str | Path | None = None,
    *,
    serve_logs: Sequence[str | Path] = (),
    events: Sequence[Mapping[str, Any]] | None = None,
    trace_id: str | None = None,
) -> dict[str, Any]:
    """Merge trace shards + serve logs (+ heartbeats/stream) into one trace.

    Lanes: each distinct host becomes a Chrome *process* (pid lane) and each
    worker within it a *thread* (tid lane), named via ``process_name`` /
    ``thread_name`` metadata events.  Returns a Chrome Trace Event Format
    document with two extra top-level keys: ``criticalPath`` (see
    :func:`critical_path_summary`) and ``traceIds``.
    """
    merged: list[dict[str, Any]] = []
    if events is not None:
        merged.extend(dict(ev) for ev in events)
    if store_path is not None:
        store = Path(store_path)
        merged.extend(load_store_events(store))
        merged.extend(_collect_heartbeat_events(store))
        merged.extend(_collect_stream_counters(store))
    for log in serve_logs:
        merged.extend(read_trace_events(log))
    if trace_id is not None:
        merged = [
            ev
            for ev in merged
            if ev.get("trace_id") in (None, trace_id)
        ]

    spans = [ev for ev in merged if isinstance(ev.get("start"), (int, float))]
    t0 = min((float(ev["start"]) for ev in spans), default=0.0)

    # Stable lane assignment: hosts sorted, serve hosts first is not needed —
    # alphabetical is reproducible across runs of the collector.
    hosts: dict[str, int] = {}
    lanes: dict[tuple[str, str], int] = {}
    trace_events: list[dict[str, Any]] = []
    trace_ids: set[str] = set()

    def _lane(ev: Mapping[str, Any]) -> tuple[int, int]:
        host = str(ev.get("host", "?"))
        worker = str(ev.get("worker", host))
        if host not in hosts:
            hosts[host] = len(hosts) + 1
            trace_events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": hosts[host],
                    "tid": 0,
                    "args": {"name": f"host:{host}"},
                }
            )
        key = (host, worker)
        if key not in lanes:
            lanes[key] = len([k for k in lanes if k[0] == host]) + 1
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": hosts[host],
                    "tid": lanes[key],
                    "args": {"name": worker},
                }
            )
        return hosts[host], lanes[key]

    for ev in sorted(spans, key=lambda e: (float(e["start"]), str(e.get("name", "")))):
        pid, tid = _lane(ev)
        name = str(ev.get("name", "?"))
        start = float(ev["start"])
        end_raw = ev.get("end")
        end = float(end_raw) if isinstance(end_raw, (int, float)) else start
        args: dict[str, Any] = {}
        if ev.get("trace_id"):
            trace_ids.add(str(ev["trace_id"]))
            args["trace_id"] = ev["trace_id"]
        if ev.get("span_id"):
            args["span_id"] = ev["span_id"]
        if ev.get("parent_id"):
            args["parent_id"] = ev["parent_id"]
        attrs = ev.get("attrs")
        if isinstance(attrs, Mapping):
            args.update({str(k): v for k, v in attrs.items()})
        if ev.get("links"):
            args["links"] = ev["links"]
        etype = ev.get("event", "span")
        if etype == "counter":
            counters = {
                k: v
                for k, v in args.items()
                if isinstance(v, (int, float)) and k in ("done", "failed")
            }
            trace_events.append(
                {
                    "name": name,
                    "ph": "C",
                    "pid": pid,
                    "tid": tid,
                    "ts": round((start - t0) * 1e6, 3),
                    "args": counters or {"value": 0},
                }
            )
        elif etype == "instant" or end <= start:
            trace_events.append(
                {
                    "name": name,
                    "ph": "i",
                    "s": "t",
                    "pid": pid,
                    "tid": tid,
                    "ts": round((start - t0) * 1e6, 3),
                    "args": args,
                }
            )
        else:
            trace_events.append(
                {
                    "name": name,
                    "ph": "X",
                    "pid": pid,
                    "tid": tid,
                    "ts": round((start - t0) * 1e6, 3),
                    "dur": round((end - start) * 1e6, 3),
                    "args": args,
                }
            )

    span_events = [ev for ev in merged if ev.get("event", "span") == "span"]
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs.trace", "hosts": sorted(hosts)},
        "traceIds": sorted(trace_ids),
        "criticalPath": critical_path_summary(span_events),
    }
