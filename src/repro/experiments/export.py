"""CSV export of the figure data — reproducible plotting artifacts.

Writes one CSV per figure so the curves can be re-plotted with any external
tool without re-running the (simulation-backed) experiments.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.experiments.fig5 import Fig5Result
from repro.experiments.fig6 import Fig6Result
from repro.experiments.fig7 import Fig7Result


def export_fig5(directory: Path, result: Fig5Result) -> Path:
    """Write ``fig5.csv``: omega/wUG, |A| dB, arg A deg."""
    path = directory / "fig5.csv"
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["omega_over_wug", "magnitude_db", "phase_deg"])
        for row in result.as_rows():
            writer.writerow([f"{v:.10g}" for v in row])
    return path


def export_fig6(directory: Path, result: Fig6Result) -> Path:
    """Write ``fig6.csv``: per-curve H00 samples plus the simulation marks."""
    path = directory / "fig6.csv"
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["ratio", "kind", "omega_over_wug", "h00_db"])
        for curve in result.curves:
            for w, mag in zip(curve.omega_normalized, curve.h00_db):
                writer.writerow([curve.ratio, "htm", f"{w:.10g}", f"{mag:.10g}"])
            for w, mag in zip(curve.mark_omega_normalized, curve.mark_h00_db):
                writer.writerow([curve.ratio, "sim", f"{w:.10g}", f"{mag:.10g}"])
    return path


def export_fig7(directory: Path, result: Fig7Result) -> Path:
    """Write ``fig7.csv``: ratio, bandwidth extension, effective/LTI margins."""
    path = directory / "fig7.csv"
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["wug_over_w0", "bandwidth_extension", "pm_eff_deg", "pm_lti_deg"]
        )
        for ratio, ext, pm in zip(
            result.ratios, result.bandwidth_extension, result.phase_margin_eff_deg
        ):
            writer.writerow(
                [f"{ratio:.10g}", f"{ext:.10g}", f"{pm:.10g}", f"{result.phase_margin_lti_deg:.10g}"]
            )
    return path


def export_all(
    directory: str | Path, r5: Fig5Result, r6: Fig6Result, r7: Fig7Result
) -> list[Path]:
    """Write every figure CSV into ``directory`` (created if missing)."""
    out = Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    return [export_fig5(out, r5), export_fig6(out, r6), export_fig7(out, r7)]
