"""Run every experiment and print the paper-versus-measured tables.

Usage::

    python -m repro.experiments.runner [--fast]

``--fast`` shrinks simulation spans for a quick smoke run.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import fig5, fig6, fig7
from repro.experiments.accuracy import run_accuracy_claim, run_speedup_claim


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="smaller spans, quicker run")
    parser.add_argument("--plots", action="store_true", help="render ASCII figures too")
    parser.add_argument(
        "--csv", metavar="DIR", default=None, help="write figure data as CSV files into DIR"
    )
    args = parser.parse_args(argv)

    cycles = 120 if args.fast else 300
    discard = 80 if args.fast else 200

    print("=" * 72)
    r5 = fig5.run_fig5()
    print(fig5.format_table(r5))
    if args.plots:
        from repro.reporting import render_fig5

        print(render_fig5(r5))

    print("=" * 72)
    r6 = fig6.run_fig6(measure_cycles=cycles, discard_cycles=discard)
    print(fig6.format_table(r6))
    if args.plots:
        from repro.reporting import render_fig6

        print(render_fig6(r6))

    print("=" * 72)
    r7 = fig7.run_fig7(points=8 if args.fast else 14)
    print(fig7.format_table(r7))
    if args.plots:
        from repro.reporting import render_fig7

        print(render_fig7(r7))
    print(
        f"claim C3 — margin loss at wUG/w0=0.1: {100 * r7.degradation_at(0.1):.1f}% "
        "(paper: ~9%)"
    )

    if args.csv:
        from repro.experiments.export import export_all

        paths = export_all(args.csv, r5, r6, r7)
        print("CSV written: " + ", ".join(str(p) for p in paths))

    print("=" * 72)
    from repro.experiments import band_map

    print(band_map.format_table(band_map.run_band_map()))

    print("=" * 72)
    from repro.experiments import stability_map

    rmap = stability_map.run_stability_map(
        separations=(2.0, 4.0, 8.0) if args.fast else (1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0)
    )
    print(stability_map.format_table(rmap))

    print("=" * 72)
    acc = run_accuracy_claim(measure_cycles=cycles, discard_cycles=discard)
    print(
        f"claim C1 — max |HTM - simulation| relative error: "
        f"{100 * acc.max_relative_error:.3f}% (paper: within 2%)"
    )

    speed = run_speedup_claim(measure_cycles=cycles, discard_cycles=discard)
    print(
        f"claim C2 — HTM sweep {speed.htm_seconds:.3f}s vs simulation "
        f"{speed.simulation_seconds:.3f}s over {speed.frequency_points} points: "
        f"{speed.speedup:.0f}x speedup (paper: seconds vs minutes)"
    )
    print("=" * 72)
    return 0


if __name__ == "__main__":
    sys.exit(main())
