"""Experiment harness: regenerates every figure of the paper's evaluation.

The paper's evaluation (sec. 5) consists of Figures 5–7 plus two in-text
claims; each has a module here returning plain data records (no plotting
dependency) and a printable table:

* :mod:`~repro.experiments.fig5` — the typical open-loop characteristic
  ``A(j omega)`` (magnitude/phase vs ``omega/omega_UG``);
* :mod:`~repro.experiments.fig6` — baseband closed-loop transfer
  ``|H00(j omega)|`` for several ``omega_UG/omega_0``, HTM lines vs
  time-marching marks;
* :mod:`~repro.experiments.fig7` — effective unity-gain frequency and phase
  margin vs ``omega_UG/omega_0`` against the LTI horizontal;
* :mod:`~repro.experiments.accuracy` — the "within 2%" and "seconds vs
  minutes" claims (C1, C2) and the ~9% margin-degradation claim (C3).

``python -m repro.experiments.runner`` prints everything.
"""

from repro.experiments.fig5 import Fig5Result, run_fig5
from repro.experiments.fig6 import Fig6Curve, Fig6Result, run_fig6
from repro.experiments.fig7 import Fig7Result, run_fig7
from repro.experiments.accuracy import (
    AccuracyResult,
    SpeedupResult,
    run_accuracy_claim,
    run_speedup_claim,
)

__all__ = [
    "Fig5Result",
    "run_fig5",
    "Fig6Curve",
    "Fig6Result",
    "run_fig6",
    "Fig7Result",
    "run_fig7",
    "AccuracyResult",
    "SpeedupResult",
    "run_accuracy_claim",
    "run_speedup_claim",
]
