"""Figure 7: effective unity-gain frequency and phase margin vs loop speed.

Upper plot: ``omega_UG,eff / omega_UG`` — the unity-gain frequency of the
effective open-loop gain ``lambda(s)``, normalised to the LTI value, rising
above 1 as ``omega_UG / omega_0`` grows (the closed-loop bandwidth extends).

Lower plot: the phase margin of ``lambda(s)`` collapsing as the ratio grows,
against the horizontal line of the (ratio-independent) LTI prediction —
"this clearly illustrates the need to take time-varying effects into
account" (paper sec. 5).

The sweep also reports the stability boundary predicted independently by
the z-domain baseline; the effective phase margin extrapolates to zero
there, which LTI analysis cannot see at all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import check_positive
from repro.baselines.zdomain import stability_limit_ratio
from repro.pll.design import design_typical_loop, shape_phase_margin_deg
from repro.pll.margins import margin_sweep


@dataclass(frozen=True)
class Fig7Result:
    """Swept margin data."""

    ratios: np.ndarray  # omega_UG / omega_0
    bandwidth_extension: np.ndarray  # omega_UG,eff / omega_UG (upper plot)
    phase_margin_eff_deg: np.ndarray  # lower plot
    phase_margin_lti_deg: float  # the horizontal line
    stability_limit: float  # z-domain boundary (independent check)
    separation: float

    def degradation_at(self, ratio: float) -> float:
        """Interpolated fractional phase-margin loss at ``ratio`` (claim C3)."""
        pm = np.interp(ratio, self.ratios, self.phase_margin_eff_deg)
        return 1.0 - pm / self.phase_margin_lti_deg


def run_fig7(
    ratio_min: float = 0.01,
    ratio_max: float = 0.26,
    points: int = 14,
    separation: float = 4.0,
    omega0: float = 2 * np.pi,
) -> Fig7Result:
    """Sweep ``omega_UG / omega_0`` and measure the effective margins."""
    check_positive("ratio_min", ratio_min)
    if not ratio_min < ratio_max < 0.5:
        raise ValueError("need ratio_min < ratio_max < 0.5")
    ratios = np.logspace(np.log10(ratio_min), np.log10(ratio_max), points)

    def designer(ratio: float):
        return design_typical_loop(
            omega0=omega0, omega_ug=ratio * omega0, separation=separation
        )

    margins = margin_sweep(ratios, designer)
    limit = stability_limit_ratio(designer)
    return Fig7Result(
        ratios=ratios,
        bandwidth_extension=np.array([m.bandwidth_extension for m in margins]),
        phase_margin_eff_deg=np.array([m.phase_margin_eff_deg for m in margins]),
        phase_margin_lti_deg=shape_phase_margin_deg(separation),
        stability_limit=limit,
        separation=separation,
    )


def format_table(result: Fig7Result) -> str:
    """Printable sweep table."""
    lines = [
        "Fig. 7 — effective unity-gain frequency and phase margin vs wUG/w0",
        f"LTI phase margin (horizontal line): {result.phase_margin_lti_deg:.2f} deg; "
        f"z-domain stability limit: wUG/w0 = {result.stability_limit:.4f}",
        f"{'wUG/w0':>8} {'wUGeff/wUG':>11} {'PM_eff (deg)':>13} {'loss':>7}",
    ]
    for r, ext, pm in zip(
        result.ratios, result.bandwidth_extension, result.phase_margin_eff_deg
    ):
        loss = 100 * (1 - pm / result.phase_margin_lti_deg)
        lines.append(f"{r:>8.4f} {ext:>11.4f} {pm:>13.2f} {loss:>6.1f}%")
    return "\n".join(lines)
